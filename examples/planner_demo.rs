//! The declarative top of the stack: SQL in, cost-optimized distributed
//! execution out. Shows the §5.5.1-based optimizer switching join
//! strategies with the objective and the statistics, then runs the
//! chosen plan and cross-checks it.
//!
//! ```sh
//! cargo run --release --example planner_demo
//! ```

use pier::qp::catalog::{Catalog, TableStats};
use pier::qp::optimizer::{CostParams, Objective};
use pier::qp::plan::{QueryDesc, QueryOp};
use pier::qp::planner::plan_sql;
use pier::qp::semantics::{reference_eval, same_multiset};
use pier::qp::testkit::*;
use pier::simnet::time::Dur;
use pier::simnet::NetConfig;
use pier::workload::{RsParams, RsWorkload};
use pier_dht::DhtConfig;
use std::collections::HashMap;

const SQL: &str = "SELECT R.pkey, S.pkey, R.pad FROM R, S \
     WHERE R.num1 = S.pkey AND R.num2 > 49 AND S.num2 > 49 \
     AND f(R.num3, S.num3) > 49";

fn main() {
    let wl = RsWorkload::generate(RsParams {
        s_rows: 40,
        ..Default::default()
    });
    let mut catalog = Catalog::workload();
    catalog.set_stats(
        "R",
        TableStats {
            rows: wl.r.len() as u64,
            avg_tuple_bytes: 1024,
        },
    );
    catalog.set_stats(
        "S",
        TableStats {
            rows: wl.s.len() as u64,
            avg_tuple_bytes: 100,
        },
    );
    let net_params = CostParams::paper_baseline(64.0);

    for objective in [Objective::Latency, Objective::Traffic] {
        let op = plan_sql(SQL, &catalog, &net_params, objective).expect("plan");
        let chosen = match &op {
            QueryOp::Join(j) => j.strategy,
            _ => unreachable!(),
        };
        println!("objective {objective:?} -> strategy: {}", chosen.name());

        // Run the optimized plan and sanity-check against the reference.
        let mut tables = HashMap::new();
        tables.insert("R".to_string(), wl.r.clone());
        tables.insert("S".to_string(), wl.s.clone());
        let expected = reference_eval(&op, &tables);

        let mut sim = stabilized_pier_sim(
            64,
            DhtConfig::static_network(),
            NetConfig::paper_baseline(1),
        );
        publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
        publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
        settle_publish(&mut sim);
        let desc = QueryDesc::one_shot(objective as u64 + 1, 0, op);
        let results = run_query(&mut sim, 0, desc, Dur::from_secs(200));
        println!(
            "  {} results in {:?}, matches reference: {}",
            results.len(),
            time_to_last(&results),
            same_multiset(&expected, &rows_of(&results))
        );
    }
}

//! Continuous queries over live feeds (§7's "continuous queries over
//! streams", built as an extension): a windowed join correlating live
//! packet-trace streams, with window eviction implemented by DHT soft
//! state.
//!
//! ```sh
//! cargo run --release --example continuous_monitoring
//! ```

use pier::qp::expr::Expr;
use pier::qp::plan::{JoinSpec, JoinStrategy, QueryDesc, QueryOp, ScanSpec};
use pier::qp::testkit::*;
use pier::simnet::time::Dur;
use pier::simnet::NetConfig;
use pier::workload::intrusion;
use pier_dht::DhtConfig;

fn main() {
    let n = 32;
    let mut sim = stabilized_pier_sim(
        n,
        DhtConfig::static_network(),
        NetConfig::paper_baseline(23),
    );
    settle_publish(&mut sim);

    // Continuous self-join of the packet feed on destination port: pairs
    // of hosts hitting the same port within a 60 s window ("fingerprint"
    // correlation in the spirit of §2.1). packets(id, src, dst, port, b).
    let left = ScanSpec::new("packets", 5, 0).with_join_col(3);
    let right = ScanSpec::new("packets2", 5, 0).with_join_col(3);
    let mut join = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    join.project = vec![Expr::col(1), Expr::col(6), Expr::col(3)];
    let mut desc = QueryDesc::one_shot(1, 0, QueryOp::Join(join));
    desc.continuous = true;
    desc.window = Some(Dur::from_secs(60));
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(5));

    // Stream three batches of packets, 40 s apart, into both feeds.
    for batch in 0u64..3 {
        let pkts = intrusion::packet_trace(30, 12, 100 + batch);
        publish_round_robin(&mut sim, "packets", &pkts, 0, Dur::from_secs(120));
        let pkts2 = intrusion::packet_trace(30, 12, 200 + batch);
        publish_round_robin(&mut sim, "packets2", &pkts2, 0, Dur::from_secs(120));
        sim.run_for(Dur::from_secs(40));
        let so_far = sim.app(0).unwrap().query_results(1).len();
        println!("t={:6}: {} correlated host pairs so far", sim.now(), so_far);
    }

    // Matches only form within the 60 s window: batch 0 never joins
    // batch 2 because the rehashed state ages out of the DHT.
    let results = sim.app(0).unwrap().query_results(1);
    println!(
        "\nfinal: {} correlated pairs; window eviction kept stale state out",
        results.len()
    );
    for (t, row) in results.iter().take(5) {
        println!("  {t}  {row}");
    }
}

//! Quickstart: bring up a simulated PIER network, publish two tables,
//! and run the paper's §5.1 workload query with each join strategy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pier::qp::plan::{JoinStrategy, QueryOp};
use pier::qp::semantics::{recall, same_multiset};
use pier::qp::testkit::*;
use pier::simnet::time::Dur;
use pier::simnet::NetConfig;
use pier::workload::{RsParams, RsWorkload};
use pier_dht::DhtConfig;

fn main() {
    // 1. A 64-node PIER network: full mesh, 100 ms latency, 10 Mbps
    //    inbound per node — the paper's baseline network.
    let n = 64;

    // 2. The §5.1 synthetic workload: R (10×) ⨝ S with 50% selections
    //    and 1 KB padded results.
    let wl = RsWorkload::generate(RsParams {
        s_rows: 60,
        ..Default::default()
    });
    println!(
        "workload: |R| = {} tuples, |S| = {} tuples, {:.1} MB total",
        wl.r.len(),
        wl.s.len(),
        wl.total_bytes() as f64 / 1e6
    );

    for strategy in JoinStrategy::ALL {
        let mut sim =
            stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::paper_baseline(7));
        // 3. Every node publishes its local partition into the DHT
        //    (soft state: items carry lifetimes).
        publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
        publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
        settle_publish(&mut sim);

        // 4. Node 0 submits the query; the descriptor is multicast to
        //    all nodes and results flow straight back to node 0.
        let desc = pier::qp::plan::QueryDesc::one_shot(1, 0, QueryOp::Join(wl.join_spec(strategy)));
        let results = run_query(&mut sim, 0, desc, Dur::from_secs(300));

        // 5. Compare with the centralized reference evaluation.
        let expected = wl.expected(strategy);
        let actual = rows_of(&results);
        println!(
            "{:18} -> {:4} results, recall {:.3}, 30th tuple at {:?}, last at {:?}, exact: {}",
            strategy.name(),
            results.len(),
            recall(&expected, &actual),
            time_to_kth(&results, 30),
            time_to_last(&results),
            same_multiset(&expected, &actual),
        );
    }
}

//! Soft state under churn (§3.2.3 / §5.6): nodes fail, their stored
//! items vanish, and the publishers' renewal loop restores them —
//! exactly the mechanism behind Figure 6's recall curves.
//!
//! ```sh
//! cargo run --release --example churn_and_soft_state
//! ```

use pier::qp::expr::Expr;
use pier::qp::plan::{QueryDesc, QueryOp, ScanSpec};
use pier::qp::testkit::*;
use pier::qp::tuple::Tuple;
use pier::qp::value::Value;
use pier::simnet::time::Dur;
use pier::simnet::NetConfig;
use pier_dht::DhtConfig;

fn scan_count(sim: &mut pier::simnet::Sim<pier::qp::PierNode>, qid: u64) -> usize {
    let scan = ScanSpec::new("T", 1, 0);
    let desc = QueryDesc::one_shot(
        qid,
        0,
        QueryOp::Scan {
            scan,
            project: vec![Expr::col(0)],
        },
    );
    run_query(sim, 0, desc, Dur::from_secs(25)).len()
}

fn main() {
    let n = 40;
    let cfg = DhtConfig::default(); // maintenance on: heartbeats + takeover
    let mut sim = stabilized_pier_sim(n, cfg, NetConfig::latency_only(3));

    // Every node publishes 5 items with a 120 s lifetime, renewed every
    // 45 s.
    for i in 0..n as u32 {
        let rows: Vec<Tuple> = (0..5)
            .map(|k| Tuple::new(vec![Value::I64((i as i64) * 1000 + k)]))
            .collect();
        sim.with_app(i, |node, ctx| {
            node.publish_rows(ctx, "T", rows, 0, Dur::from_secs(120));
            node.start_renewals(ctx, Dur::from_secs(45));
        });
    }
    settle_publish(&mut sim);
    println!("published {} items over {n} nodes", n * 5);
    println!(
        "t={} scan finds {} items",
        sim.now(),
        scan_count(&mut sim, 1)
    );

    // Kill a quarter of the network at once.
    let victims: Vec<u32> = (1..=(n as u32 / 4)).collect();
    for &v in &victims {
        sim.fail_node(v);
    }
    println!("\nfailed {} nodes abruptly", victims.len());
    sim.run_for(Dur::from_secs(5));
    let survivors_items = (n - victims.len()) * 5;
    let now_found = scan_count(&mut sim, 2);
    println!(
        "t={} scan finds {now_found} — inside the 15 s detection window \
         multicast fragments and lookups routed via dead nodes are \
         silently dropped (\"during this time all the packets sent to \
         the failed node are simply dropped\", §5.6); live publishers \
         still own {survivors_items} items",
        sim.now()
    );

    // Wait for failure detection (15 s), takeover, and the next renewal
    // round: the survivors' items come back.
    sim.run_for(Dur::from_secs(60));
    let restored = scan_count(&mut sim, 3);
    println!(
        "t={} after takeover + renewals the scan finds {restored}/{survivors_items}",
        sim.now()
    );

    // The dead publishers' items age out for good.
    sim.run_for(Dur::from_secs(180));
    let final_count = scan_count(&mut sim, 4);
    println!(
        "t={} final count {final_count} (dead nodes' soft state aged out)",
        sim.now()
    );
}

//! Multi-way join pipelines: a 3-table SQL query planned with the
//! cost-based join-order search, executed as a left-deep chain of
//! symmetric-hash stages over the DHT, and cross-checked against the
//! centralized reference evaluator.
//!
//! ```sh
//! cargo run --release --example multiway_join
//! ```

use pier::qp::catalog::{Catalog, TableStats};
use pier::qp::optimizer::{CostParams, Objective};
use pier::qp::plan::{QueryDesc, QueryOp};
use pier::qp::planner::plan_sql;
use pier::qp::semantics::{reference_eval, same_multiset};
use pier::qp::testkit::*;
use pier::simnet::time::Dur;
use pier::simnet::NetConfig;
use pier::workload::{RsParams, RsWorkload};
use pier_dht::DhtConfig;

const SQL: &str = "SELECT R.pkey, S.pkey, T.pkey FROM R, S, T \
     WHERE R.num1 = S.pkey AND S.num3 = T.pkey \
     AND R.num2 > 49 AND T.num2 > 49";

fn main() {
    let wl = RsWorkload::generate(RsParams {
        s_rows: 40,
        t_rows: 60,
        ..Default::default()
    });
    let mut catalog = Catalog::workload();
    for (name, rows, bytes) in [
        ("R", wl.r.len(), 1024),
        ("S", wl.s.len(), 100),
        ("T", wl.t.len(), 100),
    ] {
        catalog.set_stats(
            name,
            TableStats {
                rows: rows as u64,
                avg_tuple_bytes: bytes,
            },
        );
    }

    // The planner parses the 3-table query, runs the greedy join-order
    // search over catalog cardinalities, and lowers to a left-deep
    // pipeline — the wide R table is joined last.
    let op = plan_sql(
        SQL,
        &catalog,
        &CostParams::paper_baseline(16.0),
        Objective::Traffic,
    )
    .expect("plan");
    let QueryOp::MultiJoin(m) = &op else {
        panic!("expected a pipeline");
    };
    let order: Vec<&str> = std::iter::once(m.base.table.as_str())
        .chain(m.stages.iter().map(|s| s.right.table.as_str()))
        .collect();
    println!("pipeline order: {}", order.join(" -> "));

    // Run it on a 16-node simulated overlay.
    let mut sim = stabilized_pier_sim(16, DhtConfig::static_network(), NetConfig::latency_only(1));
    for (table, rows) in [("R", &wl.r), ("S", &wl.s), ("T", &wl.t)] {
        publish_round_robin(&mut sim, table, rows, 0, Dur::from_secs(100_000));
    }
    settle_publish(&mut sim);
    let results = run_query(
        &mut sim,
        0,
        QueryDesc::one_shot(1, 0, op.clone()),
        Dur::from_secs(90),
    );

    let expected = reference_eval(&op, &wl.tables());
    println!(
        "distributed results: {} (reference: {})",
        results.len(),
        expected.len()
    );
    assert!(
        same_multiset(&expected, &rows_of(&results)),
        "pipeline output must match the reference multiset"
    );
    println!("multiset equality with the centralized reference: ok");
}

//! The §2.1 motivating application: communal network intrusion
//! detection. Runs all three example queries from the paper, written in
//! SQL, over synthetic Snort-style fingerprint feeds published by every
//! node.
//!
//! ```sh
//! cargo run --release --example intrusion_detection
//! ```

use pier::qp::catalog::Catalog;
use pier::qp::plan::{JoinStrategy, QueryDesc};
use pier::qp::sql::parse_query;
use pier::qp::testkit::*;
use pier::simnet::time::Dur;
use pier::simnet::NetConfig;
use pier::workload::intrusion;
use pier_dht::DhtConfig;

fn main() {
    let n = 48;
    let catalog = Catalog::intrusion();
    let mut sim = stabilized_pier_sim(
        n,
        DhtConfig::static_network(),
        NetConfig::paper_baseline(13),
    );

    // Wrapped monitoring tools publish their observations (§2.2's
    // "natural habitat" data, copied into the DHT as soft state).
    let reports = intrusion::intrusions(n * 8, 30, 96, 5);
    let reputations = intrusion::reputations(96, 5);
    let (gateways, robots) = intrusion::gateways_and_robots(n * 2, n * 2, 24, 5);
    publish_round_robin(&mut sim, "intrusions", &reports, 0, Dur::from_secs(100_000));
    publish_round_robin(
        &mut sim,
        "reputation",
        &reputations,
        0,
        Dur::from_secs(100_000),
    );
    publish_round_robin(
        &mut sim,
        "spamGateways",
        &gateways,
        0,
        Dur::from_secs(100_000),
    );
    publish_round_robin(&mut sim, "robots", &robots, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);

    let queries = [
        (
            "compromised subnets (spam gateway + web robot in one domain)",
            "SELECT S.source FROM spamGateways AS S, robots AS R \
             WHERE S.smtpGWDomain = R.clientDomain",
        ),
        (
            "widespread attacks (fingerprints reported > 10 times)",
            "SELECT I.fingerprint, count(*) AS cnt FROM intrusions I \
             GROUP BY I.fingerprint HAVING cnt > 10",
        ),
        (
            "reputation-weighted attack counts",
            "SELECT I.fingerprint, count(*) * sum(R.weight) AS wcnt \
             FROM intrusions I, reputation R WHERE R.address = I.address \
             GROUP BY I.fingerprint HAVING wcnt > 10",
        ),
    ];

    for (qid, (label, sql)) in queries.iter().enumerate() {
        let op = parse_query(sql, &catalog, JoinStrategy::SymmetricHash).expect("parse");
        let mut desc = QueryDesc::one_shot(qid as u64 + 1, 0, op);
        desc.n_nodes = n as u32;
        let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
        println!("\n=== {label}\n    {sql}");
        let mut rows = rows_of(&results);
        rows.sort_by_key(|t| t.to_string());
        rows.truncate(8);
        for row in &rows {
            println!("    {row}");
        }
        println!("    ... {} rows total", results.len());
    }
}

//! Regenerates the paper's fig4 experiment. See DESIGN.md for the
//! experiment index; set PIER_FULL=1 for paper-scale parameters.
fn main() {
    pier_bench::experiments::fig4_fig5();
}

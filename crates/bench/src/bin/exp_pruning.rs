//! Schema-aware projection pushdown: the 3-way padded workload with
//! pruning on vs off. Asserts pruned rehash traffic beats the unpruned
//! baseline (CI gate) and writes `results/BENCH_pruning.json`. See
//! DESIGN.md for the experiment index; `PIER_PRUNE=on|off|both` selects
//! the runs, `PIER_FULL=1` the paper-scale parameters.
fn main() {
    pier_bench::experiments::pruning();
}

//! Recall-vs-churn SLO: seeded kill scripts (low/mid/high churn tiers)
//! against a 48-node CAN holding once-published items with no renewal
//! loop, at replication k ∈ {1, 2, 3} over the *same* kill schedule per
//! tier. Hard-asserts the SLO frontier: worst-case scan recall ≥ 0.99
//! at k = 2 under mid churn (where the k = 1 soft-state baseline
//! measurably degrades below 0.99) and zero duplicate scan rows at
//! every k. Writes `results/BENCH_churn_slo.json` (CI bench-trajectory
//! artifact, gated on `slo_recall` and `duplicates`).
fn main() {
    pier_bench::experiments::churn_slo();
}

//! Regenerates the paper's chord experiment. See DESIGN.md for the
//! experiment index; set PIER_FULL=1 for paper-scale parameters.
fn main() {
    pier_bench::experiments::chord_vs_can();
}

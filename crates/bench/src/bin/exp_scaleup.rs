//! Engine scale-up: the Fig. 3 ladder pushed through 10^2 → 10^4 nodes
//! on one static CAN overlay per point, ~1 R tuple of source data per
//! node, publish + symmetric-hash join on a latency-only network.
//! Reports engine throughput (events processed per wall-clock second)
//! and hard-asserts recall 1.0 vs the reference evaluator at every
//! point — the 10^4-node run must complete *correctly*, not just fast.
//! Writes `results/BENCH_scaleup.json` (CI bench-trajectory artifact,
//! gated Higher-is-better on `events_per_sec`).
fn main() {
    pier_bench::experiments::scaleup();
}

//! Engine scale-up: the Fig. 3 ladder pushed through 10^2 → 10^4 nodes
//! on one static CAN overlay per point, ~1 R tuple of source data per
//! node, publish + symmetric-hash join on a latency-only network.
//! Reports engine throughput (events processed per wall-clock second)
//! and hard-asserts recall 1.0 vs the reference evaluator at every
//! point — the 10^4-node run must complete *correctly*, not just fast.
//!
//! After the sequential ladder, the 10^4-node point is re-run through
//! the sharded engine at W ∈ {1, 2, 4, …, `--shards N`} (default 4):
//! every width must reproduce the sequential result rows and event
//! count bit-for-bit, and on ≥ 4-core hosts W = 4 must reach ≥ 2.5×
//! sequential throughput.
//!
//! Writes `results/BENCH_scaleup.json` (CI bench-trajectory artifact,
//! gated Higher-is-better on both `events_per_sec` and
//! `events_per_sec_sharded`).
fn main() {
    let mut shards = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                let v = args.next().expect("--shards needs a value");
                shards = v.parse().expect("--shards must be a positive integer");
                assert!(shards >= 1, "--shards must be >= 1");
            }
            other => panic!("unknown argument {other:?} (expected --shards N)"),
        }
    }
    pier_bench::experiments::scaleup_with_shards(shards);
}

//! Runs every experiment of §5 plus the ablations, writing all tables to
//! stdout and `results/*.csv`. Set PIER_FULL=1 for paper-scale runs.
use pier_bench::experiments as e;

fn main() {
    let t0 = std::time::Instant::now();
    e::centralized();
    e::table4();
    e::fig3();
    e::fig4_fig5();
    e::fig6();
    e::fig7();
    e::fig8();
    e::multiway();
    e::pruning();
    e::continuous();
    e::multitenant();
    e::scaleup();
    e::ablation_dims();
    e::chord_vs_can();
    e::agg_flat_vs_hier();
    eprintln!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}

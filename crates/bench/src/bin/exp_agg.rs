//! Regenerates the paper's agg experiment. See DESIGN.md for the
//! experiment index; set PIER_FULL=1 for paper-scale parameters.
fn main() {
    pier_bench::experiments::agg_flat_vs_hier();
}

//! Multi-tenant standing-query lifecycle: ≥ 200 staggered standing
//! queries (flat, 2-way, and 3-way per-fingerprint tenants, the joins
//! carrying per-query `RENEW` periods) install, live for 3–5 epochs,
//! and uninstall over a shared 12-node DHT. Hard-asserts per-epoch
//! recall/precision 1.0 for every tenant while live, and zero residual
//! soft state in every tenant's `qns::*` namespaces one lifetime after
//! its uninstall (per-namespace storage audit). Writes
//! `results/BENCH_multitenant.json` (CI bench-trajectory artifact).
fn main() {
    pier_bench::experiments::multitenant();
}

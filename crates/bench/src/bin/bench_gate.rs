//! Bench-trajectory gate (CI): `bench_gate <baseline_dir> <fresh_dir>`
//! compares the committed `BENCH_*.json` artifacts against freshly
//! regenerated ones and exits non-zero on a >15% regression in any
//! experiment's headline metric (see `pier_bench::gate::HEADLINES`).
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <baseline_dir> <fresh_dir>");
        exit(2);
    }
    match pier_bench::gate::check_dirs(Path::new(&args[1]), Path::new(&args[2])) {
        Ok(report) => {
            print!("{report}");
            println!("bench-trajectory gate: OK");
        }
        Err(report) => {
            print!("{report}");
            eprintln!("bench-trajectory gate: FAILED (>15% headline regression)");
            exit(1);
        }
    }
}

//! Runs the experiments after fig5 (fig6 onward) — used when iterating
//! on the churn harness without repeating the earlier sweeps.
use pier_bench::experiments as e;
fn main() {
    let t0 = std::time::Instant::now();
    e::fig6();
    eprintln!("fig6 at {:.0}s", t0.elapsed().as_secs_f64());
    e::fig7();
    eprintln!("fig7 at {:.0}s", t0.elapsed().as_secs_f64());
    e::fig8();
    e::ablation_dims();
    e::chord_vs_can();
    e::agg_flat_vs_hier();
    eprintln!("remaining done in {:.0}s", t0.elapsed().as_secs_f64());
}

//! Continuous-query soft-state lifecycle: the §2.1 intrusion triage as
//! a standing 3-way join-aggregate re-emitting per-attacker groups
//! every epoch, run for ≥ 3× the legacy 600 s rehash horizon with
//! reports trickling in. Hard-asserts per-epoch recall and precision
//! 1.0 against the `reference_epochs` oracle (CI gate for the
//! rehash-renewal loop) and writes `results/BENCH_continuous.json`.
fn main() {
    pier_bench::experiments::continuous();
}

//! Multi-way join pipelines: the binary §5.1 workload join vs its 3-way
//! pipeline extension across network sizes. See DESIGN.md for the
//! experiment index; set PIER_FULL=1 for paper-scale parameters.
fn main() {
    pier_bench::experiments::multiway();
}

//! Regenerates the paper's fig7 experiment. See DESIGN.md for the
//! experiment index; set PIER_FULL=1 for paper-scale parameters.
fn main() {
    pier_bench::experiments::fig7();
}

//! Bench-trajectory gate: compare freshly produced `results/BENCH_*.json`
//! artifacts against the committed baselines and fail on a >15%
//! regression in any experiment's headline metric, so the perf
//! trajectory recorded in `results/` cannot silently decay.
//!
//! The artifacts are hand-formatted JSON written by the `exp_*` bins;
//! rather than pull in a JSON dependency (the container is offline), the
//! gate extracts `"key": <number>` pairs textually — exactly the shape
//! those writers emit — and aggregates them per metric.

use std::fmt::Write as _;
use std::path::Path;

/// Which direction is an improvement for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Better {
    Higher,
    Lower,
}

/// How multiple per-row samples of a metric fold into one headline value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fold {
    Min,
    Mean,
    Sum,
}

/// One headline metric of one experiment artifact.
#[derive(Clone, Copy, Debug)]
pub struct Headline {
    /// `BENCH_<experiment>.json` this metric lives in.
    pub experiment: &'static str,
    /// JSON key extracted from the artifact's rows.
    pub key: &'static str,
    pub fold: Fold,
    pub better: Better,
}

/// Maximum tolerated headline regression: 15%.
pub const TOLERANCE: f64 = 0.15;

/// The headline metric(s) per experiment: traffic must not grow, and
/// recall/ratio must not shrink, by more than [`TOLERANCE`].
pub const HEADLINES: &[Headline] = &[
    Headline {
        experiment: "pruning",
        key: "ratio",
        fold: Fold::Mean,
        better: Better::Higher,
    },
    Headline {
        experiment: "pruning",
        key: "pruned_rehash_mb",
        fold: Fold::Sum,
        better: Better::Lower,
    },
    Headline {
        experiment: "continuous",
        key: "recall",
        fold: Fold::Min,
        better: Better::Higher,
    },
    Headline {
        experiment: "continuous",
        key: "epoch_mb",
        fold: Fold::Sum,
        better: Better::Lower,
    },
    Headline {
        experiment: "multitenant",
        key: "min_recall",
        fold: Fold::Min,
        better: Better::Higher,
    },
    Headline {
        experiment: "multitenant",
        key: "traffic_mb",
        fold: Fold::Sum,
        better: Better::Lower,
    },
    // multitenant fairness: the worst per-tenant live-span recall under
    // quota governance (admission control + token-bucket shedding). A
    // starved co-tenant sinks this below 1.0 — the regression the
    // backpressure layer exists to prevent. (`extract` keys on the
    // leading quote, so this never collides with the per-class
    // `min_recall` rows.)
    Headline {
        experiment: "multitenant",
        key: "fairness_min_recall",
        fold: Fold::Min,
        better: Better::Higher,
    },
    // churn_slo: the replicated (k ≥ 2) recall frontier under scripted
    // churn must not sink, and scans must stay duplicate-free. The
    // artifact carries `slo_recall` only in k ≥ 2 rows, so the Min fold
    // tracks the SLO surface without the k = 1 baseline dragging it down.
    Headline {
        experiment: "churn_slo",
        key: "slo_recall",
        fold: Fold::Min,
        better: Better::Higher,
    },
    Headline {
        experiment: "churn_slo",
        key: "duplicates",
        fold: Fold::Sum,
        better: Better::Lower,
    },
    // scaleup: engine throughput on the 10^2 → 10^4 ladder. Mean over
    // the ladder points so a slowdown at any scale moves the headline;
    // wall-clock based, so the gate protects the trajectory on a given
    // machine rather than an absolute number.
    Headline {
        experiment: "scaleup",
        key: "events_per_sec",
        fold: Fold::Mean,
        better: Better::Higher,
    },
    // scaleup, sharded engine: throughput of the W-sweep rows at the
    // 10^4-node point (the key is absent from the sequential-ladder
    // rows, so the two folds stay separate). Mean over the sweep so a
    // slowdown at any width moves the headline; the in-bin asserts
    // already pin bit-identity, this gates the speed itself.
    Headline {
        experiment: "scaleup",
        key: "events_per_sec_sharded",
        fold: Fold::Mean,
        better: Better::Higher,
    },
];

/// Every `"key": <number>` occurrence in the artifact text.
pub fn extract(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let trimmed = rest.trim_start();
        let end = trimmed
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(trimmed.len());
        if let Ok(v) = trimmed[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

fn fold(vals: &[f64], how: Fold) -> Option<f64> {
    if vals.is_empty() {
        return None;
    }
    Some(match how {
        Fold::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
        Fold::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
        Fold::Sum => vals.iter().sum(),
    })
}

/// Compare one experiment artifact pair against every headline that
/// applies to it. Returns human-readable verdict lines; `Err` lines are
/// regressions beyond [`TOLERANCE`].
pub fn compare(experiment: &str, baseline: &str, fresh: &str) -> Result<Vec<String>, Vec<String>> {
    let mut report = Vec::new();
    let mut failures = Vec::new();
    if !HEADLINES.iter().any(|h| h.experiment == experiment) {
        // An artifact nobody registered a headline for would otherwise
        // pass silently — the exact decay this gate exists to prevent.
        return Err(vec![format!(
            "FAIL {experiment}: no headline metrics registered in gate::HEADLINES \
             for this BENCH artifact"
        )]);
    }
    for h in HEADLINES.iter().filter(|h| h.experiment == experiment) {
        let (Some(old), Some(new)) = (
            fold(&extract(baseline, h.key), h.fold),
            fold(&extract(fresh, h.key), h.fold),
        ) else {
            failures.push(format!(
                "{experiment}: headline '{}' missing from baseline or fresh artifact",
                h.key
            ));
            continue;
        };
        let ok = match h.better {
            // A zero baseline cannot shrink below tolerance; any finite
            // growth over a zero baseline is treated as within bounds
            // only when the absolute value stays negligible.
            Better::Higher => new >= old * (1.0 - TOLERANCE),
            Better::Lower => new <= old * (1.0 + TOLERANCE) || new - old < 1e-9,
        };
        let line = format!(
            "{experiment}.{} ({:?}, {:?} is better): baseline {old:.4} -> fresh {new:.4}",
            h.key, h.fold, h.better
        );
        if ok {
            report.push(format!("OK   {line}"));
        } else {
            failures.push(format!(
                "FAIL {line} (>{:.0}% regression)",
                TOLERANCE * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        failures.extend(report);
        Err(failures)
    }
}

/// Gate a whole results directory: every committed `BENCH_*.json` in
/// `baseline_dir` must have a fresh counterpart in `fresh_dir` whose
/// headline metrics have not regressed. Returns the full report, or the
/// failure lines.
pub fn check_dirs(baseline_dir: &Path, fresh_dir: &Path) -> Result<String, String> {
    let mut report = String::new();
    let mut failed = false;
    let mut entries: Vec<_> = std::fs::read_dir(baseline_dir)
        .map_err(|e| format!("read {}: {e}", baseline_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines under {}",
            baseline_dir.display()
        ));
    }
    for name in entries {
        let experiment = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let old = std::fs::read_to_string(baseline_dir.join(&name))
            .map_err(|e| format!("read baseline {name}: {e}"))?;
        let fresh_path = fresh_dir.join(&name);
        let new = match std::fs::read_to_string(&fresh_path) {
            Ok(s) => s,
            Err(e) => {
                failed = true;
                let _ = writeln!(report, "FAIL {experiment}: fresh artifact missing ({e})");
                continue;
            }
        };
        match compare(&experiment, &old, &new) {
            Ok(lines) => {
                for l in lines {
                    let _ = writeln!(report, "{l}");
                }
            }
            Err(lines) => {
                failed = true;
                for l in lines {
                    let _ = writeln!(report, "{l}");
                }
            }
        }
    }
    if failed {
        Err(report)
    } else {
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn continuous_artifact(recall: f64, mb: f64) -> String {
        format!(
            "{{\n  \"experiment\": \"continuous\",\n  \"rows\": [\n    \
             {{\"epoch\": 0, \"recall\": {recall:.4}, \"precision\": 1.0, \"epoch_mb\": {mb:.4}}},\n    \
             {{\"epoch\": 1, \"recall\": 1.0000, \"precision\": 1.0, \"epoch_mb\": {mb:.4}}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn extract_reads_every_occurrence() {
        let j = continuous_artifact(0.98, 1.5);
        assert_eq!(extract(&j, "recall"), vec![0.98, 1.0]);
        assert_eq!(extract(&j, "epoch_mb"), vec![1.5, 1.5]);
        assert!(extract(&j, "absent").is_empty());
    }

    #[test]
    fn unchanged_artifacts_pass() {
        let j = continuous_artifact(1.0, 2.0);
        assert!(compare("continuous", &j, &j).is_ok());
    }

    #[test]
    fn injected_traffic_regression_fails_the_gate() {
        // +20% traffic (> the 15% tolerance) must fail…
        let old = continuous_artifact(1.0, 2.0);
        let worse = continuous_artifact(1.0, 2.4);
        let err = compare("continuous", &old, &worse).unwrap_err();
        assert!(
            err.iter()
                .any(|l| l.contains("FAIL") && l.contains("epoch_mb")),
            "{err:?}"
        );
        // …while +10% stays within bounds.
        let slightly = continuous_artifact(1.0, 2.2);
        assert!(compare("continuous", &old, &slightly).is_ok());
    }

    #[test]
    fn injected_recall_regression_fails_the_gate() {
        let old = continuous_artifact(1.0, 2.0);
        let worse = continuous_artifact(0.80, 2.0);
        let err = compare("continuous", &old, &worse).unwrap_err();
        assert!(err.iter().any(|l| l.contains("recall")), "{err:?}");
    }

    #[test]
    fn missing_headline_is_a_failure() {
        let old = continuous_artifact(1.0, 2.0);
        assert!(compare("continuous", &old, "{}").is_err());
    }

    #[test]
    fn unregistered_experiment_is_a_failure() {
        // A new BENCH_*.json with no HEADLINES entry must not pass
        // silently.
        let j = "{\"experiment\": \"newexp\", \"rows\": [{\"metric\": 1.0}]}";
        let err = compare("newexp", j, j).unwrap_err();
        assert!(err[0].contains("no headline metrics"), "{err:?}");
    }

    fn multitenant_artifact(fairness: f64, class_recall: f64) -> String {
        format!(
            "{{\"experiment\": \"multitenant\", \"traffic_mb\": 35.0,\n  \
             \"fairness_min_recall\": {fairness:.4},\n  \"rows\": [\n    \
             {{\"class\": \"flat\", \"tenants\": 438, \"min_recall\": {class_recall:.4}, \
             \"min_precision\": 1.0}}\n]}}"
        )
    }

    #[test]
    fn multitenant_starvation_regression_fails_the_gate() {
        let old = multitenant_artifact(1.0, 1.0);
        // The fairness key folds alone: the per-class `min_recall` rows
        // must not leak into it (nor vice versa).
        assert_eq!(extract(&old, "fairness_min_recall"), vec![1.0]);
        assert_eq!(extract(&old, "min_recall"), vec![1.0]);
        // A starved co-tenant (fairness sunk, per-class rows intact)
        // fails on exactly the fairness headline.
        let starved = multitenant_artifact(0.60, 1.0);
        let err = compare("multitenant", &old, &starved).unwrap_err();
        assert!(
            err.iter()
                .any(|l| l.contains("FAIL") && l.contains("fairness_min_recall")),
            "{err:?}"
        );
        assert!(
            err.iter()
                .any(|l| l.contains("OK") && l.contains("multitenant.min_recall")),
            "per-class headline must still pass: {err:?}"
        );
        assert!(compare("multitenant", &old, &old).is_ok());
    }

    fn churn_artifact(k2_recall: f64, dups: usize) -> String {
        format!(
            "{{\"experiment\": \"churn_slo\", \"rows\": [\n  \
             {{\"tier\": \"mid\", \"kills\": 4, \"k\": 1, \"recall\": 0.9167, \"duplicates\": 0}},\n  \
             {{\"tier\": \"mid\", \"kills\": 4, \"k\": 2, \"recall\": {k2_recall:.4}, \
             \"slo_recall\": {k2_recall:.4}, \"duplicates\": {dups}}}\n]}}"
        )
    }

    #[test]
    fn churn_slo_recall_regression_fails_the_gate() {
        let old = churn_artifact(1.0, 0);
        // The k = 1 baseline row must not leak into the slo_recall fold…
        assert_eq!(extract(&old, "slo_recall"), vec![1.0]);
        // …and a sunk k ≥ 2 frontier fails.
        let worse = churn_artifact(0.80, 0);
        let err = compare("churn_slo", &old, &worse).unwrap_err();
        assert!(
            err.iter()
                .any(|l| l.contains("FAIL") && l.contains("slo_recall")),
            "{err:?}"
        );
        assert!(compare("churn_slo", &old, &old).is_ok());
    }

    #[test]
    fn churn_slo_duplicates_over_zero_baseline_fail() {
        // Any duplicate over a zero baseline is a regression (the
        // Better::Lower zero-baseline branch tolerates only < 1e-9).
        let old = churn_artifact(1.0, 0);
        let dup = churn_artifact(1.0, 2);
        let err = compare("churn_slo", &old, &dup).unwrap_err();
        assert!(
            err.iter()
                .any(|l| l.contains("FAIL") && l.contains("duplicates")),
            "{err:?}"
        );
    }

    /// Throughput artifact with the ladder rows scaled by `factor` and
    /// the sharded W-sweep row scaled by `sharded_factor` — the two
    /// headline keys must regress independently.
    fn scaleup_artifact(factor: f64, sharded_factor: f64) -> String {
        format!(
            "{{\"experiment\": \"scaleup\", \"rows\": [\n  \
             {{\"nodes\": 100, \"events\": 60000, \"wall_s\": 0.050, \
             \"events_per_sec\": {:.0}, \"results\": 40, \"recall\": 1.0000}},\n  \
             {{\"nodes\": 10000, \"events\": 6000000, \"wall_s\": 5.000, \
             \"events_per_sec\": {:.0}, \"results\": 1000, \"recall\": 1.0000}},\n  \
             {{\"nodes\": 10000, \"w\": 4, \"events\": 6000000, \
             \"events_per_sec_sharded\": {:.0}, \"identical\": true}}\n]}}",
            1_200_000.0 * factor,
            1_000_000.0 * factor,
            2_500_000.0 * sharded_factor
        )
    }

    #[test]
    fn scaleup_throughput_regression_fails_the_gate() {
        // A 20% events/sec slowdown (> the 15% tolerance, Higher is
        // better) must fail…
        let old = scaleup_artifact(1.0, 1.0);
        let err = compare("scaleup", &old, &scaleup_artifact(0.8, 1.0)).unwrap_err();
        assert!(
            err.iter()
                .any(|l| l.contains("FAIL") && l.contains("events_per_sec")),
            "{err:?}"
        );
        // …and the suffixed sharded key must not satisfy the sequential
        // headline (or vice versa): a sharded-only slowdown fails on
        // exactly the sharded key.
        let err = compare("scaleup", &old, &scaleup_artifact(1.0, 0.8)).unwrap_err();
        assert!(
            err.iter()
                .any(|l| l.contains("FAIL") && l.contains("events_per_sec_sharded")),
            "{err:?}"
        );
        assert!(
            err.iter()
                .any(|l| l.contains("OK") && l.contains("events_per_sec (")),
            "sequential headline must still pass: {err:?}"
        );
        // …while the same artifact and a 5% wobble pass.
        assert!(compare("scaleup", &old, &old).is_ok());
        assert!(compare("scaleup", &old, &scaleup_artifact(0.95, 0.95)).is_ok());
    }

    #[test]
    fn pruning_ratio_shrink_fails() {
        let mk = |ratio: f64| {
            format!(
                "{{\"experiment\": \"pruning\", \"rows\": [{{\"nodes\": 8, \
                 \"pruned_rehash_mb\": 1.0, \"ratio\": {ratio:.2}}}]}}"
            )
        };
        assert!(compare("pruning", &mk(3.2), &mk(3.0)).is_ok());
        assert!(compare("pruning", &mk(3.2), &mk(2.0)).is_err());
    }
}

//! The experiments of §5, one function per table/figure, plus ablations.
//! Each prints a table and writes `results/<name>.csv`.

use pier_core::expr::Expr;
use pier_core::metrics::net_stats_json;
use pier_core::plan::{AggCall, AggFunc, AggSpec, JoinStrategy, QueryDesc, QueryOp, ScanSpec};
use pier_core::tenant::{AdmissionError, Quota};
use pier_core::testkit::{
    metrics_snapshot, publish_round_robin, rows_of, run_query, settle_publish,
    stabilized_pier_sharded, stabilized_pier_sim, PierEngine,
};
use pier_core::{optimizer, NodeRequest, PierNode, PublishReport, TableRate, Tuple, Value};
use pier_dht::{DhtConfig, OverlayKind};
use pier_simnet::time::{Dur, Time};
use pier_simnet::topology::TransitStub;
use pier_simnet::{Cluster, Fault, FaultDriver, FaultScript, NetConfig, NodeId, ShardMap, Sim};
use pier_workload::{intrusion, RsParams, RsWorkload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use crate::{
    average, full_scale, results_dir, run_join, run_multi_join, run_multi_join_pruning,
    strategy_label, JoinRun, ResultTable, RunMetrics,
};

fn seeds() -> Vec<u64> {
    if full_scale() {
        vec![11, 22, 33]
    } else {
        vec![11, 22]
    }
}

fn params_for_nodes(n: usize, seed: u64) -> RsParams {
    // Load proportional to the network size (each node contributes a
    // fixed amount of source data, as in Fig. 3), with a floor so the
    // 30th-tuple metric is defined at small n.
    RsParams {
        // ~20 R tuples (≈20 KB) of source data per node, with a floor so
        // the 30th-tuple metric is defined at small n.
        s_rows: (n as u64 * 2).max(40),
        seed,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// E1 — §5.3 centralized vs distributed
// ---------------------------------------------------------------------

pub fn centralized() {
    let n: u64 = 1024;
    // T = bytes passing the selections. With 50% selectivity on both
    // tables the paper quotes ~0.5 GB for a ~1 GB database.
    let db_bytes = 1e9;
    let t_bytes = 0.5 * db_bytes;
    let mut tab = ResultTable::new(
        "e1_centralized",
        &[
            "computation_nodes",
            "inbound_per_node_MB",
            "time_at_10Mbps_s",
            "bw_for_60s_response_Mbps",
        ],
    );
    for m in [1u64, 2, 8, 16, 64, 256, n] {
        let per_node = t_bytes * (1.0 - (m as f64) / (n as f64)).max(0.0) / m as f64;
        let time_s = per_node * 8.0 / 10e6;
        let bw = per_node * 8.0 / 60.0 / 1e6;
        tab.row(vec![
            m.to_string(),
            ResultTable::fmt_cell(per_node / 1e6),
            ResultTable::fmt_cell(time_s),
            ResultTable::fmt_cell(bw),
        ]);
    }
    tab.emit();

    // Cross-check in the simulator: confining the join to one node
    // concentrates inbound traffic by roughly the node count.
    let n_sim = 32;
    let mk = |m: Option<u32>| {
        let mut run = JoinRun::new(
            n_sim,
            JoinStrategy::SymmetricHash,
            params_for_nodes(n_sim, 7),
            NetConfig::paper_baseline(7),
        );
        run.computation_nodes = m;
        run_join(&run)
    };
    let one = mk(Some(1));
    let all = mk(None);
    let mut tab = ResultTable::new(
        "e1_centralized_simcheck",
        &["computation_nodes", "max_inbound_MB", "time_to_last_s"],
    );
    tab.row(vec![
        "1".into(),
        ResultTable::fmt_cell(one.max_inbound_mb),
        ResultTable::fmt_cell(one.t_last),
    ]);
    tab.row(vec![
        n_sim.to_string(),
        ResultTable::fmt_cell(all.max_inbound_mb),
        ResultTable::fmt_cell(all.t_last),
    ]);
    tab.emit();
}

// ---------------------------------------------------------------------
// E2 — Figure 3: scale-up on the full mesh
// ---------------------------------------------------------------------

pub fn fig3() {
    let node_counts: Vec<usize> = if full_scale() {
        vec![2, 8, 32, 128, 512, 2048, 8192]
    } else {
        vec![2, 8, 32, 128, 512]
    };
    let mut tab = ResultTable::new(
        "fig3_scaleup",
        &["nodes", "m=1", "m=2", "m=8", "m=16", "m=N"],
    );
    for &n in &node_counts {
        let mut cells = vec![n.to_string()];
        for m in [Some(1u32), Some(2), Some(8), Some(16), None] {
            let t = average(&seeds(), |seed| {
                let mut run = JoinRun::new(
                    n,
                    JoinStrategy::SymmetricHash,
                    params_for_nodes(n, seed),
                    NetConfig::paper_baseline(seed),
                );
                run.computation_nodes = m;
                run.settle = Dur::from_secs(1200);
                run_join(&run).t_30th
            });
            cells.push(ResultTable::fmt_cell(t));
        }
        tab.row(cells);
    }
    tab.emit();
}

// ---------------------------------------------------------------------
// E3 — Table 4: join strategies, infinite bandwidth
// ---------------------------------------------------------------------

pub fn table4() {
    let n = if full_scale() { 1024 } else { 256 };
    let mut tab = ResultTable::new(
        "table4_strategies",
        &["strategy", "measured_t_last_s", "analytical_s"],
    );
    let p = optimizer::CostParams::paper_baseline(n as f64);
    for strategy in JoinStrategy::ALL {
        let t = average(&seeds(), |seed| {
            let run = JoinRun::new(
                n,
                strategy,
                RsParams {
                    s_rows: 40,
                    seed,
                    ..Default::default()
                },
                NetConfig::latency_only(seed),
            );
            run_join(&run).t_last
        });
        tab.row(vec![
            strategy_label(strategy).into(),
            ResultTable::fmt_cell(t),
            ResultTable::fmt_cell(optimizer::latency_model(strategy, &p)),
        ]);
    }
    tab.emit();
}

// ---------------------------------------------------------------------
// E4/E5 — Figures 4 & 5: selectivity sweep (traffic & time-to-last)
// ---------------------------------------------------------------------

fn selectivity_sweep() -> Vec<(u32, Vec<RunMetrics>)> {
    let n = if full_scale() { 512 } else { 128 };
    let sels: Vec<u32> = if full_scale() {
        (1..=10).map(|k| k * 10).collect()
    } else {
        vec![10, 40, 70, 100]
    };
    let mut out = Vec::new();
    for &sel in &sels {
        let metrics: Vec<RunMetrics> = JoinStrategy::ALL
            .into_iter()
            .map(|strategy| {
                // The paper joins ~100 GB over 10 Mbps links; we keep the
                // data:bandwidth ratio (hence the bottleneck structure)
                // by scaling both down — ~3 MB of base data over 50 kbps
                // inbound links.
                let net = NetConfig {
                    inbound_bps: Some(50e3),
                    ..NetConfig::paper_baseline(42)
                };
                let mut run = JoinRun::new(
                    n,
                    strategy,
                    RsParams {
                        s_rows: if full_scale() { 600 } else { 300 },
                        sel_s_pct: sel,
                        seed: 42,
                        ..Default::default()
                    },
                    net,
                );
                run.settle = Dur::from_secs(3000);
                run_join(&run)
            })
            .collect();
        out.push((sel, metrics));
    }
    out
}

pub fn fig4_fig5() {
    let sweep = selectivity_sweep();
    let mut t4 = ResultTable::new(
        "fig4_traffic",
        &["sel_s_pct", "shj_MB", "fm_MB", "ssj_MB", "bloom_MB"],
    );
    let mut t5 = ResultTable::new(
        "fig5_time_to_last",
        &["sel_s_pct", "shj_s", "fm_s", "ssj_s", "bloom_s"],
    );
    for (sel, metrics) in &sweep {
        t4.row(
            std::iter::once(sel.to_string())
                .chain(metrics.iter().map(|m| ResultTable::fmt_cell(m.traffic_mb)))
                .collect(),
        );
        t5.row(
            std::iter::once(sel.to_string())
                .chain(metrics.iter().map(|m| ResultTable::fmt_cell(m.t_last)))
                .collect(),
        );
    }
    t4.emit();
    t5.emit();
}

// ---------------------------------------------------------------------
// E6 — Figure 6: recall under churn for different refresh periods
// ---------------------------------------------------------------------

pub fn fig6() {
    let n = if full_scale() { 512 } else { 160 };
    // The paper's x-axis reaches 240 failures/min on 4096 nodes (~5.9 %
    // churn/min). We apply the same *fractional* churn to our smaller
    // network so the soft-state dynamics (loss window vs renewal period)
    // stay comparable; rows are labeled in paper-equivalent rates.
    let rates: Vec<u32> = vec![0, 60, 120, 240];
    let refreshes: Vec<u64> = vec![30, 60, 150, 225];
    let mut tab = ResultTable::new(
        "fig6_recall",
        &[
            "failures_per_min",
            "refresh_30s",
            "refresh_60s",
            "refresh_150s",
            "refresh_225s",
        ],
    );
    for &rate in &rates {
        let scaled =
            ((rate as f64 * n as f64 / 4096.0).round() as u32).max(if rate > 0 { 1 } else { 0 });
        let mut cells = vec![rate.to_string()];
        for &refresh in &refreshes {
            cells.push(format!("{:.1}", churn_recall(n, scaled, refresh) * 100.0));
        }
        tab.row(cells);
    }
    tab.emit();
}

/// Run a churn scenario and return average recall of periodic scans.
fn churn_recall(n: usize, failures_per_min: u32, refresh_s: u64) -> f64 {
    let items_per_node = 4usize;
    let cfg = DhtConfig {
        keepalive: Dur::from_secs(2),
        fail_after: Dur::from_secs(15), // the paper's detection delay
        ..DhtConfig::default()
    };
    let mut sim = stabilized_pier_sim(n, cfg.clone(), NetConfig::latency_only(99));

    // Every node publishes `items_per_node` rows and renews them.
    let lifetime = Dur::from_secs(refresh_s * 2);
    let refresh = Dur::from_secs(refresh_s);
    let mut published: Vec<Vec<i64>> = vec![Vec::new(); n]; // per engine slot
    for (i, slot) in published.iter_mut().enumerate() {
        let rows: Vec<pier_core::Tuple> = (0..items_per_node)
            .map(|k| {
                let pk = (i * 1_000_000 + k) as i64;
                pier_core::tuple::Tuple::new(vec![pier_core::Value::I64(pk)])
            })
            .collect();
        *slot = rows.iter().map(|t| t.get(0).as_i64().unwrap()).collect();
        sim.with_app(i as NodeId, |node, ctx| {
            node.publish_rows(ctx, "T", rows, 0, lifetime);
            node.start_renewals(ctx, refresh);
        });
    }
    settle_publish(&mut sim);

    let mut rng = SmallRng::seed_from_u64(4242);
    let mut recalls = Vec::new();
    let horizon_s = 240u64;
    let fail_gap = if failures_per_min == 0 {
        u64::MAX
    } else {
        (60_000 / failures_per_min as u64).max(1) // ms between failures
    };
    let mut next_fail_ms = fail_gap;
    let mut next_query_ms = 30_000u64;
    let mut qid = 1000u64;
    let mut elapsed_ms = 0u64;
    let mut pending_query: Option<(u64, Vec<i64>)> = None;

    while elapsed_ms < horizon_s * 1000 {
        let next_event = next_fail_ms.min(next_query_ms);
        let advance = next_event.saturating_sub(elapsed_ms).max(1);
        sim.run_for(Dur::from_micros(advance * 1000));
        elapsed_ms += advance;

        if elapsed_ms >= next_fail_ms {
            next_fail_ms += fail_gap;
            // Fail a random live node (never the query node 0) and add a
            // fresh replacement that joins and publishes its own data.
            let victims: Vec<u32> = (1..sim.node_count() as u32)
                .filter(|&i| sim.alive(i))
                .collect();
            if victims.len() > n / 2 {
                let v = victims[rng.gen_range(0..victims.len())];
                sim.fail_node(v);
                published[v as usize].clear();
                let fresh_id = sim.node_count() as NodeId;
                let fresh = sim.add_node(PierNode::new(cfg.clone(), fresh_id, Some(0)));
                debug_assert_eq!(fresh, fresh_id);
                // Publish immediately: puts issued before the join
                // completes are retried by the provider's tick loop.
                let base = (fresh as usize) * 1_000_000 + 500_000;
                let rows: Vec<pier_core::Tuple> = (0..items_per_node)
                    .map(|k| {
                        pier_core::tuple::Tuple::new(vec![pier_core::Value::I64((base + k) as i64)])
                    })
                    .collect();
                published.push(rows.iter().map(|t| t.get(0).as_i64().unwrap()).collect());
                sim.with_app(fresh, |node, ctx| {
                    node.publish_rows(ctx, "T", rows, 0, lifetime);
                    node.start_renewals(ctx, refresh);
                });
            }
        }

        if elapsed_ms >= next_query_ms {
            next_query_ms += 30_000;
            // Harvest the previous query first.
            if let Some((q, truth)) = pending_query.take() {
                let got: Vec<i64> = sim
                    .app(0)
                    .unwrap()
                    .query_results(q)
                    .iter()
                    .filter_map(|(_, t)| t.get(0).as_i64())
                    .collect();
                let hit = got.iter().filter(|pk| truth.contains(pk)).count();
                if !truth.is_empty() {
                    recalls.push(hit as f64 / truth.len() as f64);
                }
            }
            // Reachable snapshot: items published by currently live nodes.
            let truth: Vec<i64> = (0..sim.node_count() as u32)
                .filter(|&i| sim.alive(i))
                .flat_map(|i| published[i as usize].iter().copied())
                .collect();
            qid += 1;
            let scan = ScanSpec::new("T", 1, 0);
            let desc = QueryDesc::one_shot(
                qid,
                0,
                QueryOp::Scan {
                    scan,
                    project: vec![Expr::col(0)],
                },
            );
            sim.with_app(0, |node, ctx| node.submit(ctx, desc));
            pending_query = Some((qid, truth));
        }
    }
    if recalls.is_empty() {
        f64::NAN
    } else {
        recalls.iter().sum::<f64>() / recalls.len() as f64
    }
}

// ---------------------------------------------------------------------
// E7 — Figure 7: transit-stub topology
// ---------------------------------------------------------------------

pub fn fig7() {
    let node_counts: Vec<usize> = if full_scale() {
        vec![2, 8, 32, 128, 512, 2048]
    } else {
        vec![2, 8, 32, 128, 512]
    };
    let mut tab = ResultTable::new("fig7_transit_stub", &["nodes", "m=1", "m=N"]);
    for &n in &node_counts {
        let mut cells = vec![n.to_string()];
        for m in [Some(1u32), None] {
            let t = average(&seeds(), |seed| {
                let net = NetConfig {
                    topology: Arc::new(TransitStub::paper_default(n as u32, seed)),
                    inbound_bps: Some(10e6),
                    seed,
                };
                let mut run = JoinRun::new(
                    n,
                    JoinStrategy::SymmetricHash,
                    params_for_nodes(n, seed),
                    net,
                );
                run.computation_nodes = m;
                run.settle = Dur::from_secs(1200);
                run_join(&run).t_30th
            });
            cells.push(ResultTable::fmt_cell(t));
        }
        tab.row(cells);
    }
    tab.emit();
}

// ---------------------------------------------------------------------
// E8 — Figure 8: real (threaded) deployment
// ---------------------------------------------------------------------

pub fn fig8() {
    let node_counts = [2usize, 4, 8, 16, 32, 64];
    let mut tab = ResultTable::new("fig8_deployment", &["nodes", "t_30th_ms", "results"]);
    for &n in &node_counts {
        let (t30, count) = threaded_join_run(n);
        tab.row(vec![
            n.to_string(),
            t30.map_or("-".into(), |ms| format!("{ms:.1}")),
            count.to_string(),
        ]);
    }
    tab.emit();
}

/// One wall-clock run on the threaded engine; returns (ms to the 30th
/// tuple, result count).
pub fn threaded_join_run(n: usize) -> (Option<f64>, usize) {
    let params = params_for_nodes(n.max(64), 5); // load scaled with n
    let wl = RsWorkload::generate(RsParams {
        s_rows: ((n as u64) * 4).max(40),
        ..params
    });
    let cfg = DhtConfig::static_network();
    let states = pier_dht::can::balanced_overlay(n, cfg.dims, Time::ZERO);
    let apps: Vec<PierNode> = states
        .into_iter()
        .enumerate()
        .map(|(i, st)| {
            PierNode::with_dht(pier_dht::Dht::with_can(cfg.clone(), i as NodeId, st), None)
        })
        .collect();
    let cluster = Cluster::spawn(apps, 77);

    // Publish each partition from its home node.
    let mut per_node: Vec<(Vec<pier_core::Tuple>, Vec<pier_core::Tuple>)> =
        vec![(Vec::new(), Vec::new()); n];
    for (i, row) in wl.r.iter().enumerate() {
        per_node[i % n].0.push(row.clone());
    }
    for (i, row) in wl.s.iter().enumerate() {
        per_node[i % n].1.push(row.clone());
    }
    for (i, (r, s)) in per_node.into_iter().enumerate() {
        for (table, rows) in [("R", r), ("S", s)] {
            cluster.request(
                i as NodeId,
                NodeRequest::PublishRows {
                    table: table.to_string(),
                    rows,
                    pkey_col: 0,
                    lifetime: Dur::from_secs(100_000),
                },
            );
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(400));

    let desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
    let t0 = cluster.now();
    cluster.request(0, NodeRequest::Submit(Box::new(desc)));

    // Poll until the result count stops growing.
    let mut last = 0usize;
    let mut stable = 0;
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let count = cluster
            .request(0, NodeRequest::ResultCount(1))
            .expect("initiator alive")
            .into_count();
        if count == last && count > 0 {
            stable += 1;
            if stable > 6 {
                break;
            }
        } else {
            stable = 0;
        }
        last = count;
    }
    let times: Vec<Time> = cluster
        .request(0, NodeRequest::TimedResults(1))
        .expect("initiator alive")
        .into_timed_results()
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    cluster.shutdown();
    let mut rel: Vec<f64> = times
        .iter()
        .map(|t| t.since(t0).as_secs_f64() * 1e3)
        .collect();
    rel.sort_by(f64::total_cmp);
    (rel.get(29).copied(), rel.len())
}

// ---------------------------------------------------------------------
// E9 — multi-way join pipelines (§7 "richer queries", built)
// ---------------------------------------------------------------------

/// Binary workload join vs the 3-way pipeline extension across network
/// sizes: time-to-last, aggregate query traffic, and recall. The
/// pipeline pays one extra rehash per added table but stays fully
/// pipelined, so its latency grows by roughly one stage depth, not
/// multiplicatively.
pub fn multiway() {
    let node_counts: Vec<usize> = if full_scale() {
        vec![16, 64, 256, 1024]
    } else {
        vec![8, 16, 32]
    };
    let mut tab = ResultTable::new(
        "multiway_pipeline",
        &[
            "nodes",
            "2way_t_last_s",
            "3way_t_last_s",
            "2way_traffic_mb",
            "3way_traffic_mb",
            "3way_recall",
        ],
    );
    for &n in &node_counts {
        let cfg = |seed| {
            let mut params = params_for_nodes(n, seed);
            params.t_rows = 80;
            let mut run = JoinRun::new(
                n,
                JoinStrategy::SymmetricHash,
                params,
                NetConfig::paper_baseline(seed),
            );
            run.settle = Dur::from_secs(600);
            run
        };
        let two: Vec<RunMetrics> = seeds().iter().map(|&s| run_join(&cfg(s))).collect();
        let three: Vec<RunMetrics> = seeds().iter().map(|&s| run_multi_join(&cfg(s))).collect();
        let avg = |v: &[RunMetrics], pick: &dyn Fn(&RunMetrics) -> f64| {
            let vals: Vec<f64> = v.iter().map(pick).filter(|x| x.is_finite()).collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        tab.row(vec![
            n.to_string(),
            ResultTable::fmt_cell(avg(&two, &|m| m.t_last)),
            ResultTable::fmt_cell(avg(&three, &|m| m.t_last)),
            ResultTable::fmt_cell(avg(&two, &|m| m.traffic_mb)),
            ResultTable::fmt_cell(avg(&three, &|m| m.traffic_mb)),
            ResultTable::fmt_cell(avg(&three, &|m| m.recall)),
        ]);
    }
    tab.emit();
}

// ---------------------------------------------------------------------
// E9 — schema-aware projection pushdown (the §4.2 byte argument)
// ---------------------------------------------------------------------

/// The 3-way padded workload (`R` carries a 1 KB pad nobody downstream
/// reads) with schema-aware pruning on vs off: aggregate rehash traffic
/// must collapse once intermediates stop carrying the pad. Besides the
/// CSV table, writes machine-readable `results/BENCH_pruning.json` (the
/// repo's perf-trajectory artifact) and hard-asserts the win, so CI
/// fails if the optimization silently regresses.
///
/// `PIER_PRUNE=on|off|both` (default `both`) selects which runs happen;
/// the assertion only fires when both sides are measured.
pub fn pruning() {
    let mode = std::env::var("PIER_PRUNE").unwrap_or_else(|_| "both".into());
    let node_counts: Vec<usize> = if full_scale() {
        vec![16, 64, 256]
    } else {
        vec![8, 16]
    };
    let mut tab = ResultTable::new(
        "e9_pruning",
        &[
            "nodes",
            "pruned_rehash_mb",
            "unpruned_rehash_mb",
            "ratio",
            "pruned_recall",
            "unpruned_recall",
        ],
    );
    let mut json_rows = Vec::new();
    for &n in &node_counts {
        let cfg = |seed| {
            let mut params = params_for_nodes(n, seed);
            params.t_rows = 80;
            let mut run = JoinRun::new(
                n,
                JoinStrategy::SymmetricHash,
                params,
                NetConfig::paper_baseline(seed),
            );
            run.settle = Dur::from_secs(600);
            run
        };
        let measure = |prune: bool| -> Option<Vec<RunMetrics>> {
            let want = mode == "both" || mode == if prune { "on" } else { "off" };
            want.then(|| {
                seeds()
                    .iter()
                    .map(|&s| run_multi_join_pruning(&cfg(s), prune))
                    .collect()
            })
        };
        let pruned = measure(true);
        let unpruned = measure(false);
        let avg = |v: &Option<Vec<RunMetrics>>, pick: &dyn Fn(&RunMetrics) -> f64| {
            v.as_ref().map_or(f64::NAN, |v| {
                v.iter().map(pick).sum::<f64>() / v.len() as f64
            })
        };
        let p_mb = avg(&pruned, &|m| m.rehash_mb);
        let u_mb = avg(&unpruned, &|m| m.rehash_mb);
        let p_rec = avg(&pruned, &|m| m.recall);
        let u_rec = avg(&unpruned, &|m| m.recall);
        let ratio = u_mb / p_mb;
        tab.row(vec![
            n.to_string(),
            ResultTable::fmt_cell(p_mb),
            ResultTable::fmt_cell(u_mb),
            ResultTable::fmt_cell(ratio),
            ResultTable::fmt_cell(p_rec),
            ResultTable::fmt_cell(u_rec),
        ]);
        json_rows.push(format!(
            "    {{\"nodes\": {n}, \"pruned_rehash_mb\": {p_mb:.4}, \
             \"unpruned_rehash_mb\": {u_mb:.4}, \"ratio\": {ratio:.2}, \
             \"pruned_recall\": {p_rec:.4}, \"unpruned_recall\": {u_rec:.4}}}"
        ));
        if let (Some(_), Some(_)) = (&pruned, &unpruned) {
            assert!(
                (p_rec - 1.0).abs() < 1e-9 && (u_rec - 1.0).abs() < 1e-9,
                "pruning must not change results: recall {p_rec} / {u_rec}"
            );
            assert!(
                p_mb < u_mb,
                "pruned rehash traffic ({p_mb:.3} MB) must beat unpruned ({u_mb:.3} MB)"
            );
        }
    }
    tab.emit();
    if mode != "both" {
        // A single-side run has NaN for the unmeasured side; don't
        // clobber the committed artifact with invalid JSON.
        println!("PIER_PRUNE={mode}: BENCH_pruning.json not rewritten (needs both sides)");
        return;
    }
    let json = format!(
        "{{\n  \"experiment\": \"pruning\",\n  \"query\": \
         \"SELECT R.pkey, S.pkey, T.pkey FROM R, S, T (R carries a 1 KB pad)\",\n  \
         \"metric\": \"aggregate DHT-layer rehash traffic, MB\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    std::fs::write(dir.join("BENCH_pruning.json"), json).expect("write BENCH_pruning.json");
}

// ---------------------------------------------------------------------
// E10 — continuous-query soft-state lifecycle (standing triage query)
// ---------------------------------------------------------------------

/// The §2.1 intrusion triage run as a *standing* 3-way join-aggregate:
/// reports trickle in every epoch while the query re-emits per-attacker
/// `count(*)` / `max(severity)` groups, for ≥ 3× the legacy 600 s
/// rehash horizon. The rehash-renewal loop keeps advisory/reputation
/// join state alive, so per-epoch recall and precision stay 1.0 against
/// `reference_epochs` — hard-asserted (CI gate; pre-renewal, rehashed
/// state silently aged out and late reports lost their joins). Prints
/// recall and DHT traffic per epoch and writes
/// `results/BENCH_continuous.json`.
pub fn continuous() {
    use pier_core::semantics::{precision, recall, reference_epochs, TimedRows};
    use pier_core::sql::parse_continuous_query;
    use pier_core::Catalog;
    use std::collections::HashMap;

    let n = 16usize;
    let epoch = Dur::from_secs(120);
    // 16 epochs × 120 s = 1920 s ≈ 3.2 × the old 600 s fallback.
    let n_epochs: usize = if full_scale() { 24 } else { 16 };
    let legacy_horizon_s = 600.0;
    let per_batch = 24usize;
    let distinct_fp = 10u64;
    let distinct_addr = 20u64;
    let seed = 4242u64;

    let catalog = Catalog::intrusion();
    let desc = parse_continuous_query(
        &intrusion::triage_standing_sql(None, epoch.as_micros() / 1_000_000),
        &catalog,
        JoinStrategy::SymmetricHash,
        1010,
        0,
    )
    .expect("standing triage SQL");
    let op = desc.op.clone();

    let mut sim: Sim<PierNode> = stabilized_pier_sim(
        n,
        DhtConfig::static_network(),
        NetConfig::latency_only(seed),
    );
    // The renewal loop every node runs; the rehash fallback horizon
    // derives from it (3 × 150 s = 450 s ≪ the run length).
    for i in 0..n {
        sim.with_app(i as NodeId, |node, ctx| {
            node.start_renewals(ctx, Dur::from_secs(150));
        });
    }
    let advisories = intrusion::advisories(distinct_fp, seed);
    let reputation = intrusion::reputations(distinct_addr, seed);
    let batch0 = intrusion::intrusions_from(0, per_batch, distinct_fp, distinct_addr, seed);
    let life = Dur::from_secs(100_000);
    publish_round_robin(&mut sim, "advisories", &advisories, 0, life);
    publish_round_robin(&mut sim, "reputation", &reputation, 0, life);
    publish_round_robin(&mut sim, "intrusions", &batch0, 0, life);
    settle_publish(&mut sim);

    let t0 = sim.now();
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    let mut timed_reports: TimedRows = batch0.iter().map(|r| (Time::ZERO, r.clone())).collect();
    // Per-epoch traffic: bytes delivered between consecutive boundaries,
    // read from the metrics-registry snapshot (the operator-facing
    // surface) instead of a private engine tally — the parity assert
    // below pins that the two can never drift apart.
    let mut boundary_bytes = vec![metrics_snapshot(&sim).net.bytes];
    for k in 1..=n_epochs {
        sim.run_until(t0 + epoch.saturating_mul(k as u64));
        boundary_bytes.push(metrics_snapshot(&sim).net.bytes);
        if k < n_epochs {
            // A fresh report batch lands shortly after each boundary —
            // the late ones long after unrenewed state would be gone.
            sim.run_for(Dur::from_secs(10));
            let batch = intrusion::intrusions_from(
                (k * per_batch) as i64,
                per_batch,
                distinct_fp,
                distinct_addr,
                seed ^ k as u64,
            );
            publish_round_robin(&mut sim, "intrusions", &batch, 0, life);
            let at = sim.now().since(t0);
            timed_reports.extend(batch.iter().map(|r| (Time::ZERO + at, r.clone())));
        }
    }

    // The snapshot's net section is the engine's ground truth,
    // byte-for-byte — the bench numbers above ARE the observable ones.
    let snap = metrics_snapshot(&sim);
    assert_eq!(snap.net, sim.net_stats(), "metrics snapshot == NetStats");
    assert_eq!(net_stats_json(&snap.net), net_stats_json(&sim.net_stats()));

    let mut timed: HashMap<String, TimedRows> = HashMap::new();
    timed.insert("intrusions".to_string(), timed_reports);
    for (name, rows) in [("advisories", &advisories), ("reputation", &reputation)] {
        timed.insert(
            name.to_string(),
            rows.iter().map(|r| (Time::ZERO, r.clone())).collect(),
        );
    }
    let expected = reference_epochs(&op, &timed, None, epoch, n_epochs);

    let mut got: Vec<Vec<pier_core::Tuple>> = vec![Vec::new(); n_epochs];
    for (at, row) in sim.app(0).unwrap().query_results(1010) {
        let k = (at.since(t0).as_micros() / epoch.as_micros()) as usize;
        if k < n_epochs {
            got[k].push(row.clone());
        }
    }

    let mut tab = ResultTable::new(
        "e10_continuous",
        &["epoch", "t_s", "groups", "recall", "precision", "epoch_mb"],
    );
    let mut json_rows = Vec::new();
    let mut min_recall = f64::INFINITY;
    let mut min_precision = f64::INFINITY;
    for k in 0..n_epochs {
        let r = recall(&expected[k], &got[k]);
        let p = precision(&expected[k], &got[k]);
        min_recall = min_recall.min(r);
        min_precision = min_precision.min(p);
        let mb = (boundary_bytes[k + 1] - boundary_bytes[k]) as f64 / 1e6;
        let t_s = epoch.as_secs_f64() * k as f64;
        tab.row(vec![
            k.to_string(),
            format!("{t_s:.0}"),
            expected[k].len().to_string(),
            ResultTable::fmt_cell(r),
            ResultTable::fmt_cell(p),
            ResultTable::fmt_cell(mb),
        ]);
        json_rows.push(format!(
            "    {{\"epoch\": {k}, \"t_s\": {t_s:.0}, \"groups\": {}, \
             \"recall\": {r:.4}, \"precision\": {p:.4}, \"epoch_mb\": {mb:.4}}}",
            expected[k].len()
        ));
        assert!(!expected[k].is_empty(), "oracle epoch {k} must have groups");
    }
    tab.emit();

    let run_s = epoch.as_secs_f64() * n_epochs as f64;
    assert!(
        run_s >= 3.0 * legacy_horizon_s,
        "the run must cover ≥ 3 legacy horizons ({run_s} s)"
    );
    assert!(
        (min_recall - 1.0).abs() < 1e-9 && (min_precision - 1.0).abs() < 1e-9,
        "a standing query must keep recall/precision 1.0 across every epoch \
         (got min recall {min_recall}, min precision {min_precision})"
    );

    let json = format!(
        "{{\n  \"experiment\": \"continuous\",\n  \"query\": \
         \"standing 3-way intrusion triage: count(*), max(severity) per attacker, EPOCH 120 s\",\n  \
         \"run_s\": {run_s:.0},\n  \"legacy_horizon_s\": {legacy_horizon_s:.0},\n  \
         \"metric\": \"per-epoch recall/precision vs reference_epochs; DHT traffic per epoch, MB\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    std::fs::write(dir.join("BENCH_continuous.json"), json).expect("write BENCH_continuous.json");
}

// ---------------------------------------------------------------------
// E11 — multi-tenant standing-query lifecycle (install → epochs → uninstall)
// ---------------------------------------------------------------------

/// The "millions of users" scale path, miniaturized *and governed*:
/// hundreds of staggered standing queries — flat per-fingerprint
/// aggregates plus 2-way and 3-way join aggregates carrying per-query
/// `RENEW` periods — are installed in waves, live for 3–5 epochs while
/// reports stream in, and are uninstalled again, continuously, over a
/// shared 12-node DHT with *no* node-global renewal loop. Every tenant
/// carries a [`Quota`] priced by the PR 3 cost model and installs
/// through the typed admission surface ([`PierNode::try_submit`]).
/// Hard-asserts (CI gate):
///
/// * ≥ 500 quota-governed tenants, per-epoch recall and precision 1.0
///   for every tenant while it is live (oracle:
///   [`pier_core::semantics::reference_epochs_at`] restricted to each
///   query's own install→uninstall span);
/// * a greedy tenant whose budget undercuts its query's price is
///   refused with a typed [`AdmissionError::PricedTraffic`] — no
///   multicast, no partial install;
/// * a hot tenant flooding a noise table mid-run has the overflow shed
///   at ingress by its token bucket ([`PierNode::publish_rows_from`])
///   with co-tenant recall untouched — slow-tenant isolation;
/// * zero residual soft state in every tenant's `qns::*` namespaces one
///   lifetime after its uninstall (per-namespace storage audit) — the
///   §3.3 reclamation-by-expiry answer to distributed garbage
///   collection, now driven by explicit teardown;
/// * the final [`pier_core::MetricsSnapshot`] matches the engine's
///   [`pier_simnet::NetStats`] byte-for-byte
///   ([`net_stats_json`]) and its governance counters match the
///   harness-observed rejection/shed tallies exactly.
///
/// Writes `results/BENCH_multitenant.json` (headlines: `min_recall`,
/// `fairness_min_recall`, `traffic_mb`) for the bench-trajectory gate.
pub fn multitenant() {
    use pier_core::semantics::{precision, recall, reference_epochs_at, TimedRows};
    use pier_core::sql::parse_continuous_query;
    use pier_core::Catalog;
    use std::collections::HashMap;

    let n = 12usize;
    let epoch = Dur::from_secs(30);
    let per_wave = 12usize;
    let n_tenants: usize = if full_scale() { 1000 } else { 516 };
    let distinct_fp = 10u64;
    let distinct_addr = 16u64;
    let renew_secs = 40u64; // per-query horizon: 3 × 40 = 120 s
    let reclaim = Dur::from_secs(130); // one horizon + sweep margin
    let rows_per_batch = 16usize;
    let seed = 7171u64;

    let catalog = Catalog::intrusion();
    let strategy = JoinStrategy::SymmetricHash;
    // Tenant i: fingerprint i % distinct_fp; one in twenty runs the full
    // 3-way triage, two in twenty the 2-way severity join (both with
    // per-query renewal), the rest the flat per-address count.
    let class_of = |i: usize| match i % 20 {
        0 => "3way",
        1 | 2 => "2way",
        _ => "flat",
    };
    let sql_of = |i: usize| {
        let fp = i as u64 % distinct_fp;
        match class_of(i) {
            "3way" => intrusion::tenant_triage_sql(fp, 30, renew_secs),
            "2way" => intrusion::tenant_severity_sql(fp, 30, renew_secs),
            _ => intrusion::tenant_count_sql(fp, 30),
        }
    };
    let qid_of = |i: usize| 5000 + i as u64;
    // Lifetimes: 3, 4, or 5 epochs, staggered across install waves.
    let epochs_of = |i: usize| 3 + (i % 3);

    let mut sim: Sim<PierNode> = stabilized_pier_sim(
        n,
        DhtConfig::static_network(),
        NetConfig::latency_only(seed),
    );
    let life = Dur::from_secs(100_000);
    let advisories = intrusion::advisories(distinct_fp, seed);
    let reputation = intrusion::reputations(distinct_addr, seed);
    let batch0 = intrusion::intrusions_from(0, rows_per_batch, distinct_fp, distinct_addr, seed);
    publish_round_robin(&mut sim, "advisories", &advisories, 0, life);
    publish_round_robin(&mut sim, "reputation", &reputation, 0, life);
    publish_round_robin(&mut sim, "intrusions", &batch0, 0, life);
    settle_publish(&mut sim);

    // ---- governance setup -------------------------------------------
    // Tenant ids are 1-based (tenant 0 is the unmetered default the
    // harness publishes under). Every node gets the same table-rate
    // catalog and quota book, so the install multicast converges on the
    // same admission verdict overlay-wide.
    let tenant_of = |i: usize| (i + 1) as u32;
    let greedy_tenant = (n_tenants + 1) as u32;
    let flood_tenant = (n_tenants + 2) as u32;
    let avg_bytes =
        |rows: &[Tuple]| rows.iter().map(|r| r.wire_size() as f64).sum::<f64>() / rows.len() as f64;
    let table_rates = [
        // The stream: one batch per epoch.
        (
            "intrusions",
            TableRate {
                rows_per_sec: rows_per_batch as f64 / epoch.as_secs_f64(),
                avg_tuple_bytes: avg_bytes(&batch0),
            },
        ),
        // Static side tables: published once, renewed never.
        (
            "advisories",
            TableRate {
                rows_per_sec: 0.05,
                avg_tuple_bytes: avg_bytes(&advisories),
            },
        ),
        (
            "reputation",
            TableRate {
                rows_per_sec: 0.05,
                avg_tuple_bytes: avg_bytes(&reputation),
            },
        ),
    ];
    for id in 0..n as NodeId {
        sim.with_app(id, |node, _| {
            for (table, rate) in table_rates {
                node.governor.set_table_rate(pier_dht::ns_of(table), rate);
            }
        });
    }
    // Price each class once (fingerprint choice does not move the
    // price — the cost model sees the same shape and rates) and give
    // every tenant ~30% headroom over its own class's price.
    let price_of = |sim: &Sim<PierNode>, i: usize| {
        let desc = parse_continuous_query(&sql_of(i), &catalog, strategy, 4000, 0).unwrap();
        sim.app(0).unwrap().governor.price(&desc)
    };
    let class_price = [price_of(&sim, 0), price_of(&sim, 1), price_of(&sim, 3)];
    assert!(
        class_price.iter().all(|p| *p > 0.0),
        "every query class must price > 0 B/s (got {class_price:?})"
    );
    let price_by_class = |i: usize| match class_of(i) {
        "3way" => class_price[0],
        "2way" => class_price[1],
        _ => class_price[2],
    };
    for id in 0..n as NodeId {
        sim.with_app(id, |node, _| {
            for i in 0..n_tenants {
                node.governor.set_quota(
                    tenant_of(i),
                    Quota {
                        max_standing: 2,
                        max_priced_bytes_per_sec: price_by_class(i) * 1.3,
                        ..Quota::unlimited()
                    },
                );
            }
            // The greedy tenant's budget undercuts the cheapest class.
            node.governor.set_quota(
                greedy_tenant,
                Quota {
                    max_priced_bytes_per_sec: class_price[2] * 0.5,
                    ..Quota::unlimited()
                },
            );
            // The flood tenant may publish 200 B/s sustained, 2 KB burst.
            node.governor.set_quota(
                flood_tenant,
                Quota {
                    publish_bytes_per_sec: 200.0,
                    publish_burst_bytes: 2_000.0,
                    ..Quota::unlimited()
                },
            );
        });
    }
    // Admission control refuses the greedy tenant up front: typed
    // rejection, nothing multicast, nothing installed anywhere.
    let greedy_desc = parse_continuous_query(&sql_of(3), &catalog, strategy, 4999, 0)
        .unwrap()
        .with_tenant(greedy_tenant);
    let verdict = sim
        .with_app(0, |node, ctx| node.try_submit(ctx, greedy_desc))
        .unwrap();
    match verdict {
        Err(AdmissionError::PricedTraffic { tenant, .. }) => assert_eq!(tenant, greedy_tenant),
        other => panic!("greedy tenant must be refused on price, got {other:?}"),
    }

    let t0 = sim.now();
    let bytes0 = metrics_snapshot(&sim).net.bytes;

    // Timeline: tenant i installs at wave i / per_wave (every 30 s, on
    // the epoch grid so its flush instants stay ≥ 5 s clear of the
    // publish instants at +10), is uninstalled 10 s past its last
    // epoch boundary, and is audited one reclamation horizon later.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Ev {
        Publish,
        Uninstall(usize),
        Install(usize),
        Audit(usize),
        Flood,
    }
    let install_at = |i: usize| t0 + epoch.saturating_mul((i / per_wave) as u64);
    let uninstall_at =
        |i: usize| install_at(i) + epoch.saturating_mul(epochs_of(i) as u64) + Dur::from_secs(10);
    let mut events: Vec<(Time, Ev)> = (0..n_tenants)
        .flat_map(|i| {
            [
                (install_at(i), Ev::Install(i)),
                (uninstall_at(i), Ev::Uninstall(i)),
                (uninstall_at(i) + reclaim, Ev::Audit(i)),
            ]
        })
        .collect();
    let last_wave = (n_tenants - 1) / per_wave;
    for k in 0..last_wave + 6 {
        events.push((
            t0 + epoch.saturating_mul(k as u64) + Dur::from_secs(10),
            Ev::Publish,
        ));
    }
    // The hot-tenant flood lands mid-run, clear of both the epoch grid
    // and the publish instants.
    events.push((t0 + epoch.saturating_mul(2) + Dur::from_secs(18), Ev::Flood));
    events.sort();

    let mut timed_reports: TimedRows = batch0.iter().map(|r| (Time::ZERO, r.clone())).collect();
    let mut next_batch = 1usize;
    let mut peak_installed = 0usize;
    let mut audited = 0usize;
    let mut flood_report = PublishReport::default();
    for (at, ev) in events {
        sim.run_until(at);
        match ev {
            Ev::Install(i) => {
                let desc = parse_continuous_query(&sql_of(i), &catalog, strategy, qid_of(i), 0)
                    .expect("tenant SQL")
                    .with_tenant(tenant_of(i));
                let priced = sim
                    .with_app(0, |node, ctx| node.try_submit(ctx, desc))
                    .unwrap()
                    .unwrap_or_else(|e| panic!("tenant {i} ({}) refused: {e}", class_of(i)));
                assert!(priced > 0.0);
                peak_installed =
                    peak_installed.max(sim.app(0).map_or(0, |nd| nd.installed_query_count()) + 1);
            }
            Ev::Flood => {
                // 600 rows against a 2 KB burst + 200 B/s refill: the
                // token bucket admits a sliver and sheds the rest at
                // ingress — nothing shed ever reaches the wire. The
                // noise table is outside every oracle, and its 60 s
                // lifetime expires the admitted sliver long before the
                // final occupancy audit.
                let rows: Vec<Tuple> = (0..600)
                    .map(|j| Tuple::new(vec![Value::I64(j), Value::I64(j * 7)]))
                    .collect();
                flood_report = sim
                    .with_app(0, |node, ctx| {
                        node.publish_rows_from(
                            ctx,
                            flood_tenant,
                            "floodnoise",
                            rows,
                            0,
                            Dur::from_secs(60),
                        )
                    })
                    .unwrap();
                assert!(
                    flood_report.accepted > 0 && flood_report.shed > 400,
                    "the flood must be clipped at ingress, not admitted \
                     ({flood_report:?})"
                );
            }
            Ev::Publish => {
                let batch = intrusion::intrusions_from(
                    (next_batch * rows_per_batch) as i64,
                    rows_per_batch,
                    distinct_fp,
                    distinct_addr,
                    seed ^ next_batch as u64,
                );
                next_batch += 1;
                publish_round_robin(&mut sim, "intrusions", &batch, 0, life);
                let rel = sim.now().since(t0);
                timed_reports.extend(batch.iter().map(|r| (Time::ZERO + rel, r.clone())));
            }
            Ev::Uninstall(i) => {
                let qid = qid_of(i);
                sim.with_app(0, |node, ctx| node.cancel(ctx, qid));
            }
            Ev::Audit(i) => {
                // Per-namespace storage audit one lifetime after the
                // uninstall: the tenant must have left nothing behind.
                let now = sim.now();
                let left: usize = (0..n as NodeId)
                    .filter_map(|id| sim.app(id))
                    .map(|node| node.query_soft_state(now, qid_of(i), 2))
                    .sum();
                audited += 1;
                assert_eq!(
                    left,
                    0,
                    "tenant {i} ({}) left {left} soft-state items one lifetime after uninstall",
                    class_of(i)
                );
            }
        }
    }
    assert_eq!(audited, n_tenants);
    // Whole-system occupancy audit: with every tenant audited, the only
    // namespaces still holding live items anywhere are the three base
    // tables — no query left soft state in *any* namespace, known or
    // not (stronger than the per-tenant qns::* checks above).
    let base_ns: Vec<pier_dht::Ns> = ["intrusions", "advisories", "reputation"]
        .iter()
        .map(|t| pier_dht::ns_of(t))
        .collect();
    let end = sim.now();
    for id in 0..n as NodeId {
        for (ns, count) in sim.app(id).unwrap().dht.store.occupancy(end) {
            assert!(
                base_ns.contains(&ns),
                "node {id}: namespace {ns:#x} still holds {count} live items after all uninstalls"
            );
        }
    }
    // Read traffic through the metrics registry, not the engine: the
    // snapshot's net section must BE the engine's ground truth —
    // typed and byte-for-byte through the canonical JSON rendering.
    let snap = metrics_snapshot(&sim);
    assert_eq!(snap.net, sim.net_stats(), "metrics snapshot == NetStats");
    assert_eq!(
        net_stats_json(&snap.net),
        net_stats_json(&sim.net_stats()),
        "canonical JSON renders identically for snapshot and engine"
    );
    // Governance counters line up with what the harness saw happen:
    // exactly one refused install (the greedy tenant, on node 0) and
    // exactly the flood's shed rows.
    assert_eq!(snap.rejected_installs(), 1, "one greedy rejection");
    assert_eq!(snap.shed_publishes(), flood_report.shed as u64);
    let traffic_mb = (snap.net.bytes - bytes0) as f64 / 1e6;
    let run_s = sim.now().since(t0).as_secs_f64();

    // Ground truth per tenant, restricted to its live span: epochs are
    // relative to its own install; rows that predate it count from its
    // epoch 0.
    let mut timed: HashMap<String, TimedRows> = HashMap::new();
    timed.insert("intrusions".to_string(), timed_reports);
    for (name, rows) in [("advisories", &advisories), ("reputation", &reputation)] {
        timed.insert(
            name.to_string(),
            rows.iter().map(|r| (Time::ZERO, r.clone())).collect(),
        );
    }
    let mut per_class: HashMap<&str, (usize, f64, f64)> = HashMap::new();
    let mut nonempty = 0usize;
    let mut tenant_epochs = 0usize;
    for i in 0..n_tenants {
        let desc = parse_continuous_query(&sql_of(i), &catalog, strategy, qid_of(i), 0).unwrap();
        let install = install_at(i);
        let rel_tables: HashMap<String, TimedRows> = timed
            .iter()
            .map(|(name, rows)| {
                let shifted: TimedRows = rows
                    .iter()
                    .map(|(t, r)| {
                        (
                            Time::ZERO + t.since(Time::ZERO + install.since(t0)),
                            r.clone(),
                        )
                    })
                    .collect();
                (name.clone(), shifted)
            })
            .collect();
        let k = epochs_of(i);
        let instants: Vec<Time> = (0..k)
            .map(|e| Time::ZERO + epoch.saturating_mul(e as u64))
            .collect();
        let expected = reference_epochs_at(&desc.op, &rel_tables, None, &instants);
        let mut got: Vec<Vec<pier_core::Tuple>> = vec![Vec::new(); k];
        for (t, row) in sim.app(0).unwrap().query_results(qid_of(i)) {
            let e = (t.since(install).as_micros() / epoch.as_micros()) as usize;
            if *t >= install && e < k {
                got[e].push(row.clone());
            }
        }
        let entry = per_class
            .entry(class_of(i))
            .or_insert((0, f64::INFINITY, f64::INFINITY));
        entry.0 += 1;
        for e in 0..k {
            let r = recall(&expected[e], &got[e]);
            let p = precision(&expected[e], &got[e]);
            entry.1 = entry.1.min(r);
            entry.2 = entry.2.min(p);
            tenant_epochs += 1;
            if !expected[e].is_empty() {
                nonempty += 1;
            }
            assert!(
                (r - 1.0).abs() < 1e-9 && (p - 1.0).abs() < 1e-9,
                "tenant {i} ({}) epoch {e}: recall {r} precision {p}, \
                 expected {:?} got {:?}",
                class_of(i),
                expected[e],
                got[e]
            );
        }
    }
    assert!(n_tenants >= 500, "the scale path needs ≥ 500 tenants");
    assert!(
        nonempty * 10 >= tenant_epochs * 3,
        "the workload must keep most tenants busy ({nonempty}/{tenant_epochs} non-empty)"
    );

    let mut tab = ResultTable::new(
        "e11_multitenant",
        &["class", "tenants", "min_recall", "min_precision"],
    );
    let mut json_rows = Vec::new();
    let mut min_recall = f64::INFINITY;
    let mut min_precision = f64::INFINITY;
    for class in ["flat", "2way", "3way"] {
        let (count, r, p) = per_class[class];
        min_recall = min_recall.min(r);
        min_precision = min_precision.min(p);
        tab.row(vec![
            class.into(),
            count.to_string(),
            ResultTable::fmt_cell(r),
            ResultTable::fmt_cell(p),
        ]);
        json_rows.push(format!(
            "    {{\"class\": \"{class}\", \"tenants\": {count}, \
             \"min_recall\": {r:.4}, \"min_precision\": {p:.4}}}"
        ));
    }
    tab.emit();
    println!(
        "multitenant: {n_tenants} quota-governed tenants over {run_s:.0} s, \
         peak {peak_installed} concurrent, {traffic_mb:.2} MB, \
         1 rejected install, {} shed publishes",
        flood_report.shed
    );

    let json = format!(
        "{{\n  \"experiment\": \"multitenant\",\n  \"workload\": \
         \"{n_tenants} staggered quota-governed standing queries \
         (flat / 2-way / 3-way, per-query RENEW) over {n} nodes, EPOCH 30 s\",\n  \
         \"run_s\": {run_s:.0},\n  \"peak_concurrent\": {peak_installed},\n  \
         \"traffic_mb\": {traffic_mb:.4},\n  \
         \"fairness_min_recall\": {min_recall:.4},\n  \
         \"rejected_installs\": {},\n  \"shed_publishes\": {},\n  \
         \"metric\": \"per-tenant per-epoch recall/precision over each live span; \
         typed admission rejection; token-bucket shed flood; \
         zero residual soft state one lifetime after uninstall\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        snap.rejected_installs(),
        flood_report.shed,
        json_rows.join(",\n")
    );
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    std::fs::write(dir.join("BENCH_multitenant.json"), json).expect("write BENCH_multitenant.json");
}

// ---------------------------------------------------------------------
// E12 — churn SLO: scan recall under scripted kills, k = 1 vs k ≥ 2
// ---------------------------------------------------------------------

/// One churn tier at one replication factor: a seeded [`FaultScript`]
/// kills nodes of a 48-node CAN holding 192 once-published items (long
/// lifetime, *no* renewal loop — replication is the only durability
/// channel), with a one-shot scan issued between kill slots and after
/// the final repair. Scans are scheduled clear of the detection blind
/// window (a dead-but-undetected node's zone is dark to `lscan` until
/// takeover promotes the replicas), so what they measure is durability,
/// not detection latency. Returns the worst-case scan recall against
/// the full published set and the total duplicate rows across scans.
fn churn_slo_run(k: usize, kills: usize, seed: u64) -> (f64, usize) {
    const N: usize = 48;
    const ITEMS_PER_NODE: usize = 4;
    let slot = Dur::from_secs(24);
    let span = slot.saturating_mul(kills as u64 + 1);
    let cfg = DhtConfig {
        keepalive: Dur::from_secs(1),
        fail_after: Dur::from_secs(5),
        ..DhtConfig::default()
    }
    .with_replication(k);
    let mut sim = stabilized_pier_sim(N, cfg, NetConfig::latency_only(seed));

    let mut truth: std::collections::HashSet<i64> = std::collections::HashSet::new();
    for i in 0..N {
        let rows: Vec<pier_core::Tuple> = (0..ITEMS_PER_NODE)
            .map(|j| {
                let pk = (i * 1_000_000 + j) as i64;
                pier_core::tuple::Tuple::new(vec![pier_core::Value::I64(pk)])
            })
            .collect();
        truth.extend(rows.iter().filter_map(|t| t.get(0).as_i64()));
        sim.with_app(i as NodeId, |node, ctx| {
            node.publish_rows(ctx, "T", rows, 0, Dur::from_secs(3600));
        });
    }
    settle_publish(&mut sim);

    // Kills are centered at slot·(i+1) with ±slot/5 jitter; scans run
    // 10 s before each center (≥ 9 s after the latest possible previous
    // kill — past detection + takeover + anti-entropy — and complete
    // ≥ 1 s before the earliest possible next kill), plus a final scan
    // after the last repair has settled.
    let candidates: Vec<NodeId> = (1..N as NodeId).collect();
    let script = FaultScript::churn(seed, span, kills, &candidates);
    let mut drv = FaultDriver::new(script);
    let mut scan_at: Vec<Dur> = (0..kills as u64)
        .map(|i| slot.saturating_mul(i + 1) - Dur::from_secs(10))
        .collect();
    scan_at.push(span + Dur::from_secs(6));

    let t0 = sim.now();
    let mut qid = 5000u64;
    let mut worst_recall = f64::INFINITY;
    let mut duplicates = 0usize;
    let mut scans = scan_at.into_iter().peekable();
    loop {
        let target = match (drv.next_at(), scans.peek().copied()) {
            (Some(f), Some(s)) => f.min(s),
            (Some(f), None) => f,
            (None, Some(s)) => s,
            (None, None) => break,
        };
        sim.run_until(t0 + target);
        let elapsed = sim.now().since(t0);
        drv.advance(elapsed, |f| {
            if let Fault::Kill { node } = *f {
                sim.fail_node(node);
            }
        });
        if scans.peek().is_some_and(|&s| elapsed >= s) {
            scans.next();
            qid += 1;
            let scan = ScanSpec::new("T", 1, 0);
            let desc = QueryDesc::one_shot(
                qid,
                0,
                QueryOp::Scan {
                    scan,
                    project: vec![Expr::col(0)],
                },
            );
            sim.with_app(0, |node, ctx| node.submit(ctx, desc));
            sim.run_for(Dur::from_secs(4));
            let got: Vec<i64> = sim
                .app(0)
                .unwrap()
                .query_results(qid)
                .iter()
                .filter_map(|(_, t)| t.get(0).as_i64())
                .collect();
            let distinct: std::collections::HashSet<i64> = got.iter().copied().collect();
            duplicates += got.len() - distinct.len();
            let hits = distinct.iter().filter(|pk| truth.contains(pk)).count();
            worst_recall = worst_recall.min(hits as f64 / truth.len() as f64);
        }
    }
    (worst_recall, duplicates)
}

/// E12 — the recall-vs-churn SLO (§5.9 resilience, replicated): three
/// churn tiers × k ∈ {1, 2, 3} over the *same* seeded kill schedule per
/// tier, so the only variable across k is the replication factor. The
/// SLO this repo commits to (and the bench gate enforces): worst-case
/// scan recall ≥ 0.99 at k = 2 under the mid tier — where the k = 1
/// soft-state baseline measurably degrades — and zero duplicate scan
/// rows at every k.
pub fn churn_slo() {
    let tiers: &[(&str, usize, u64)] = &[("low", 2, 71), ("mid", 4, 72), ("high", 8, 73)];
    let mut tab = ResultTable::new(
        "e12_churn_slo",
        &["tier", "kills", "k", "min_recall", "duplicates"],
    );
    let mut json_rows = Vec::new();
    for &(tier, kills, seed) in tiers {
        for k in 1..=3usize {
            let (recall, dups) = churn_slo_run(k, kills, seed);
            assert_eq!(
                dups, 0,
                "{tier} tier, k={k}: scans must never return duplicate rows"
            );
            if tier == "mid" {
                if k == 1 {
                    assert!(
                        recall < 0.99,
                        "mid tier k=1 must degrade below the SLO (got {recall:.4}); \
                         if churn no longer bites, raise the tier"
                    );
                }
                if k == 2 {
                    assert!(
                        recall >= 0.99,
                        "mid tier k=2 must hold the 0.99 recall SLO (got {recall:.4})"
                    );
                }
            }
            tab.row(vec![
                tier.into(),
                kills.to_string(),
                k.to_string(),
                ResultTable::fmt_cell(recall),
                dups.to_string(),
            ]);
            // `slo_recall` appears only in k ≥ 2 rows: the gate's Min
            // fold then tracks exactly the replicated frontier, while
            // the k = 1 baseline stays visible under plain `recall`.
            let slo = if k >= 2 {
                format!(", \"slo_recall\": {recall:.4}")
            } else {
                String::new()
            };
            json_rows.push(format!(
                "    {{\"tier\": \"{tier}\", \"kills\": {kills}, \"k\": {k}, \
                 \"recall\": {recall:.4}{slo}, \"duplicates\": {dups}}}"
            ));
        }
    }
    tab.emit();

    let json = format!(
        "{{\n  \"experiment\": \"churn_slo\",\n  \"workload\": \
         \"48-node CAN, 192 once-published items (no renewals), seeded kill scripts \
         (2/4/8 kills) x replication k in 1..3; one-shot scans between kill slots\",\n  \
         \"metric\": \"worst-case scan recall vs all published items; duplicates across \
         all scans; SLO: recall >= 0.99 at k=2 under mid churn, 0 duplicates at every k\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    std::fs::write(dir.join("BENCH_churn_slo.json"), json).expect("write BENCH_churn_slo.json");
}

// ---------------------------------------------------------------------
// E13 — engine scale-up: the Fig. 3 ladder pushed to 10^4 nodes
// ---------------------------------------------------------------------

/// One scale-up measurement: build an `n`-node overlay, run one full
/// workload round (publish + settle + symmetric-hash join) and report
/// engine throughput as events processed per wall-clock second, with
/// recall against the reference evaluator as the correctness guard.
///
/// The workload is ~1 R tuple per node (with a floor), so the event
/// count grows roughly linearly with `n` and the 10^4 point stays a
/// smoke-sized run.
struct ScaleupRun {
    events: u64,
    wall: f64,
    rows: Vec<pier_core::Tuple>,
    recall: f64,
}

fn scaleup_drive(sim: &mut impl PierEngine, n: usize, seed: u64) -> ScaleupRun {
    let params = RsParams {
        s_rows: (n as u64 / 10).max(40),
        seed,
        ..Default::default()
    };
    let wl = RsWorkload::generate(params);

    let e0 = sim.events_processed();
    let t0 = std::time::Instant::now();
    publish_round_robin(sim, "R", &wl.r, 0, Dur::from_secs(100_000));
    publish_round_robin(sim, "S", &wl.s, 0, Dur::from_secs(100_000));
    settle_publish(sim);
    sim.run_for(Dur::from_secs(30));

    let expected = wl.expected(JoinStrategy::SymmetricHash);
    let mut desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
    desc.n_nodes = n as u32;
    let results = run_query(sim, 0, desc, Dur::from_secs(120));
    let wall = t0.elapsed().as_secs_f64();
    let events = sim.events_processed() - e0;

    let rows = rows_of(&results);
    let recall = pier_core::semantics::recall(&expected, &rows);
    assert!(
        recall > 0.999,
        "scale-up at n={n} must stay correct (recall {recall:.4})"
    );
    ScaleupRun {
        events,
        wall,
        rows,
        recall,
    }
}

fn scaleup_point(n: usize, seed: u64) -> ScaleupRun {
    let mut sim: Sim<PierNode> = stabilized_pier_sim(
        n,
        DhtConfig::static_network(),
        NetConfig::latency_only(seed),
    );
    scaleup_drive(&mut sim, n, seed)
}

fn scaleup_point_sharded(n: usize, seed: u64, w: usize) -> ScaleupRun {
    let mut sim = stabilized_pier_sharded(
        n,
        DhtConfig::static_network(),
        NetConfig::latency_only(seed),
        ShardMap::round_robin(w),
    );
    scaleup_drive(&mut sim, n, seed)
}

/// E13: engine throughput across 10^2 → 10^4 nodes. The default preset
/// IS the committed preset — `bench_gate` folds the mean of the
/// `events_per_sec` rows against the committed artifact, so the ladder
/// must match row-for-row between CI smoke and the baseline.
///
/// Each point is measured best-of-reps: the run is deterministic, so
/// every rep processes identical events and the *fastest* rep is the
/// engine's throughput with the one-sided OS noise (scheduling, page
/// faults, cold caches) filtered out. Reps scale inversely with the
/// per-rep event count so small ladder points aggregate enough work to
/// be stable.
pub fn scaleup() {
    scaleup_with_shards(4);
}

/// E13 with an explicit worker-sweep width: after the sequential ladder,
/// the top (10^4-node) point is re-run through [`ShardedSim`] at
/// W ∈ {1, 2, 4, …, `shards`}. Every sharded run must reproduce the
/// sequential result rows and event count bit-for-bit (the conservative
/// time-window barrier is exact, not approximate), and the W-sweep table
/// reports speedup over the sequential engine.
///
/// On hosts with ≥ 4 cores the W = 4 point must reach ≥ 2.5× sequential
/// throughput; on smaller hosts (CI smoke boxes are often 1–2 cores) the
/// sweep still runs — the bit-identity asserts are the point there — but
/// the speedup floor is skipped because there is no parallelism to buy.
///
/// [`ShardedSim`]: pier_simnet::ShardedSim
pub fn scaleup_with_shards(shards: usize) {
    let ladder: &[usize] = &[100, 1_000, 10_000];
    let seed = 11u64;
    let mut tab = ResultTable::new(
        "e13_scaleup",
        &[
            "nodes",
            "events",
            "reps",
            "best_wall_s",
            "events_per_sec",
            "results",
            "recall",
        ],
    );
    let mut json_rows = Vec::new();
    let mut top = None;
    for &n in ladder {
        let first = scaleup_point(n, seed);
        let reps = (2_000_000 / first.events.max(1)).clamp(2, 64);
        let mut best = first.wall;
        for _ in 1..reps {
            let rerun = scaleup_point(n, seed);
            assert_eq!(
                (rerun.events, rerun.rows.len()),
                (first.events, first.rows.len()),
                "reps must be deterministic"
            );
            best = best.min(rerun.wall);
        }
        let eps = first.events as f64 / best;
        tab.row(vec![
            n.to_string(),
            first.events.to_string(),
            reps.to_string(),
            ResultTable::fmt_cell(best),
            format!("{eps:.0}"),
            first.rows.len().to_string(),
            ResultTable::fmt_cell(first.recall),
        ]);
        json_rows.push(format!(
            "    {{\"nodes\": {n}, \"events\": {events}, \"reps\": {reps}, \
             \"best_wall_s\": {best:.3}, \"events_per_sec\": {eps:.0}, \
             \"results\": {results}, \"recall\": {recall:.4}}}",
            events = first.events,
            results = first.rows.len(),
            recall = first.recall,
        ));
        if n == *ladder.last().unwrap() {
            top = Some((first, eps));
        }
    }
    tab.emit();

    // W-sweep at the top ladder point: widths 1, 2, 4, … up to `shards`.
    let (seq, seq_eps) = top.expect("ladder is non-empty");
    let n = *ladder.last().unwrap();
    let mut widths: Vec<usize> = vec![1, 2, 4];
    widths.retain(|&w| w <= shards);
    if !widths.contains(&shards) {
        widths.push(shards);
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut sh_tab = ResultTable::new(
        "e13_scaleup_sharded",
        &[
            "w",
            "events",
            "reps",
            "best_wall_s",
            "events_per_sec",
            "speedup_vs_seq",
            "identical",
        ],
    );
    for &w in &widths {
        let first = scaleup_point_sharded(n, seed, w);
        assert_eq!(
            first.events, seq.events,
            "sharded W={w} must process the same events as sequential"
        );
        assert_eq!(
            first.rows, seq.rows,
            "sharded W={w} must reproduce the sequential result rows bit-for-bit"
        );
        let reps = (2_000_000 / first.events.max(1)).clamp(2, 64);
        let mut best = first.wall;
        for _ in 1..reps {
            let rerun = scaleup_point_sharded(n, seed, w);
            assert_eq!(
                (rerun.events, rerun.rows.len()),
                (first.events, first.rows.len()),
                "sharded reps must be deterministic"
            );
            best = best.min(rerun.wall);
        }
        let eps = first.events as f64 / best;
        let speedup = eps / seq_eps;
        if w >= 4 && cores >= 4 {
            assert!(
                speedup >= 2.5,
                "W={w} on a {cores}-core host must reach >= 2.5x sequential \
                 throughput (got {speedup:.2}x)"
            );
        }
        sh_tab.row(vec![
            w.to_string(),
            first.events.to_string(),
            reps.to_string(),
            ResultTable::fmt_cell(best),
            format!("{eps:.0}"),
            format!("{speedup:.2}"),
            "yes".to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"nodes\": {n}, \"w\": {w}, \"events\": {events}, \"reps\": {reps}, \
             \"best_wall_s\": {best:.3}, \"events_per_sec_sharded\": {eps:.0}, \
             \"speedup_vs_seq\": {speedup:.3}, \"identical\": true}}",
            events = first.events,
        ));
    }
    sh_tab.emit();

    let json = format!(
        "{{\n  \"experiment\": \"scaleup\",\n  \"workload\": \
         \"static CAN overlay at 100/1000/10000 nodes, ~1 R tuple per node (floor 400), \
         publish + symmetric-hash join, latency-only network; plus a sharded-engine \
         W-sweep at the 10000-node point (bit-identical to sequential at every W)\",\n  \
         \"metric\": \"engine events processed per wall-clock second, best-of-reps per \
         ladder point (mean over the ladder, higher is better); recall vs the reference \
         evaluator must stay 1.0; events_per_sec_sharded is the same metric through the \
         sharded engine (mean over the W-sweep, higher is better)\",\n  \
         \"host_cores\": {cores},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    std::fs::write(dir.join("BENCH_scaleup.json"), json).expect("write BENCH_scaleup.json");
}

// ---------------------------------------------------------------------
// A1 — ablation: CAN dimensionality
// ---------------------------------------------------------------------

pub fn ablation_dims() {
    let mut tab = ResultTable::new(
        "a1_can_dims",
        &["d", "avg_hops_n1024", "expected_n^(1/d)", "t_30th_n128_s"],
    );
    for d in [2usize, 3, 4, 6] {
        // Measured average greedy path length on a balanced 1024 overlay.
        let states = pier_dht::can::balanced_overlay(1024, d, Time::ZERO);
        let mut total = 0u64;
        let mut cnt = 0u64;
        for key in 0..400u64 {
            let p = pier_dht::geom::Point::from_key(key.wrapping_mul(0x9E37_79B9), d);
            let mut cur = (key as usize * 131) % 1024;
            let mut hops = 0u64;
            while !states[cur].owns_point(p) && hops < 4096 {
                cur = states[cur].next_hop(p).unwrap() as usize;
                hops += 1;
            }
            total += hops;
            cnt += 1;
        }
        let measured = total as f64 / cnt as f64;
        let expected = (d as f64 / 4.0) * 1024f64.powf(1.0 / d as f64);

        let t = {
            let mut run = JoinRun::new(
                128,
                JoinStrategy::SymmetricHash,
                params_for_nodes(128, 13),
                NetConfig::paper_baseline(13),
            );
            run.dht = DhtConfig::static_network().with_dims(d);
            run_join(&run).t_30th
        };
        tab.row(vec![
            d.to_string(),
            ResultTable::fmt_cell(measured),
            ResultTable::fmt_cell(expected),
            ResultTable::fmt_cell(t),
        ]);
    }
    tab.emit();
}

// ---------------------------------------------------------------------
// A2 — ablation: CAN vs Chord (§3.2 validation)
// ---------------------------------------------------------------------

pub fn chord_vs_can() {
    let n = 128;
    let mut tab = ResultTable::new(
        "a2_chord_vs_can",
        &[
            "strategy",
            "can_t_last_s",
            "chord_t_last_s",
            "can_MB",
            "chord_MB",
        ],
    );
    for strategy in JoinStrategy::ALL {
        let mut vals = Vec::new();
        for overlay in [OverlayKind::Can, OverlayKind::Chord] {
            let mut run = JoinRun::new(
                n,
                strategy,
                RsParams {
                    s_rows: 40,
                    seed: 17,
                    ..Default::default()
                },
                NetConfig::latency_only(17),
            );
            run.dht = DhtConfig::static_network().with_overlay(overlay);
            let m = run_join(&run);
            vals.push(m);
        }
        tab.row(vec![
            strategy_label(strategy).into(),
            ResultTable::fmt_cell(vals[0].t_last),
            ResultTable::fmt_cell(vals[1].t_last),
            ResultTable::fmt_cell(vals[0].traffic_mb),
            ResultTable::fmt_cell(vals[1].traffic_mb),
        ]);
    }
    tab.emit();
}

// ---------------------------------------------------------------------
// A3 — extension: flat vs hierarchical aggregation
// ---------------------------------------------------------------------

pub fn agg_flat_vs_hier() {
    let mut tab = ResultTable::new(
        "a3_aggregation",
        &["nodes", "mode", "t_last_s", "max_inbound_KB", "groups"],
    );
    for n in [64usize, 192] {
        for hier in [false, true] {
            let rows = intrusion::intrusions(n * 6, 24, 64, 3);
            let mut sim: Sim<PierNode> =
                stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::paper_baseline(3));
            publish_round_robin(&mut sim, "intrusions", &rows, 0, Dur::from_secs(100_000));
            settle_publish(&mut sim);
            let pre = sim.stats().clone();
            let mut agg = AggSpec::new(
                vec![1],
                vec![AggCall {
                    func: AggFunc::Count,
                    arg: None,
                }],
            );
            agg.hierarchical = hier;
            agg.harvest = Dur::from_secs(10);
            let scan = ScanSpec::new("intrusions", 3, 0);
            let mut desc = QueryDesc::one_shot(9, 0, QueryOp::Agg { scan, agg });
            desc.n_nodes = n as u32;
            let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
            let stats = sim.stats().since(&pre);
            tab.row(vec![
                n.to_string(),
                if hier { "hierarchical" } else { "flat" }.into(),
                results
                    .iter()
                    .map(|(t, _)| t.as_secs_f64())
                    .fold(0.0f64, f64::max)
                    .to_string(),
                ResultTable::fmt_cell(stats.max_inbound() as f64 / 1e3),
                results.len().to_string(),
            ]);
        }
    }
    tab.emit();
}

//! # pier-bench
//!
//! Experiment harness for PIER (Huebsch et al., VLDB 2003): shared
//! infrastructure for the binaries under `src/bin/` that regenerate
//! every table and figure of the paper's §5, plus the criterion
//! micro-benchmarks under `benches/`.
//!
//! Each `exp_*` binary wraps one function of [`experiments`], prints a
//! human-readable table, and writes CSV under `results/`; the
//! experiment-binary index lives in the repository `README.md`. Run
//! parameters default to minutes-scale networks; [`full_scale`]
//! (`PIER_FULL=1`) switches to paper-scale ones.
//!
//! The building blocks here — [`JoinRun`] describing one distributed
//! join run and [`RunMetrics`] carrying its measured outcomes
//! (time-to-30th-tuple, time-to-last, aggregate and max-inbound query
//! traffic, recall) — are shared by the experiments and reusable from
//! tests.

pub mod gate;

use std::fmt::Write as _;
use std::path::PathBuf;

use pier_core::plan::{JoinStrategy, QueryDesc, QueryOp};
use pier_core::testkit::{
    publish_round_robin, rows_of, run_query, settle_publish, stabilized_pier_sim, time_to_kth,
    time_to_last,
};
use pier_core::PierNode;
use pier_dht::DhtConfig;
use pier_simnet::time::Dur;
use pier_simnet::{NetConfig, Sim};
use pier_workload::{RsParams, RsWorkload};

/// Scale of an experiment run. `PIER_FULL=1` selects paper-scale
/// parameters; the default keeps every binary under a few minutes.
pub fn full_scale() -> bool {
    std::env::var("PIER_FULL").is_ok_and(|v| v == "1")
}

/// Metrics from one distributed join run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMetrics {
    pub n_nodes: usize,
    pub results: usize,
    pub expected: usize,
    /// Seconds to the 30th result tuple (Fig. 3/7/8 metric).
    pub t_30th: f64,
    /// Seconds to the last result tuple (Table 4 / Fig. 5 metric).
    pub t_last: f64,
    /// Aggregate query traffic in MB (Fig. 4 metric): lookups, rehash
    /// and fetch data, multicasts — overlay upkeep excluded.
    pub traffic_mb: f64,
    /// DHT-layer query traffic only (rehash puts, stage republishes,
    /// lookups, fetches) — the direct result-delivery bytes excluded,
    /// so projection-pushdown savings are visible even when the final
    /// ship dominates.
    pub rehash_mb: f64,
    /// Maximum inbound bytes at any single node, MB.
    pub max_inbound_mb: f64,
    pub recall: f64,
}

/// Configuration of one join experiment run.
#[derive(Clone)]
pub struct JoinRun {
    pub n_nodes: usize,
    pub strategy: JoinStrategy,
    pub params: RsParams,
    pub net: NetConfig,
    pub computation_nodes: Option<u32>,
    /// Virtual time to let the query run.
    pub settle: Dur,
    pub dht: DhtConfig,
}

impl JoinRun {
    pub fn new(n_nodes: usize, strategy: JoinStrategy, params: RsParams, net: NetConfig) -> Self {
        JoinRun {
            n_nodes,
            strategy,
            params,
            net,
            computation_nodes: None,
            settle: Dur::from_secs(400),
            dht: DhtConfig::static_network(),
        }
    }
}

/// Execute the §5.1 workload join once and collect the §5 metrics.
pub fn run_join(cfg: &JoinRun) -> RunMetrics {
    let wl = RsWorkload::generate(cfg.params);
    let expected = wl.expected(cfg.strategy);
    let mut join = wl.join_spec(cfg.strategy);
    join.computation_nodes = cfg.computation_nodes;
    execute_workload_query(cfg, &wl, QueryOp::Join(join), expected, false, true)
}

/// Execute the 3-way pipeline extension of the workload (R ⨝ S ⨝ T as
/// chained symmetric-hash stages) and collect the same metrics.
/// `strategy` and `computation_nodes` of the run config do not apply.
pub fn run_multi_join(cfg: &JoinRun) -> RunMetrics {
    let wl = RsWorkload::generate(cfg.params);
    let expected = wl.expected_multi();
    let op = QueryOp::MultiJoin(wl.multi_join_spec());
    execute_workload_query(cfg, &wl, op, expected, true, true)
}

/// Execute the narrow-SELECT 3-way pipeline (`R.pad` published but read
/// by nobody downstream) with schema-aware pruning on or off — the
/// `exp_pruning` measurement core.
pub fn run_multi_join_pruning(cfg: &JoinRun, prune: bool) -> RunMetrics {
    let wl = RsWorkload::generate(cfg.params);
    let expected = wl.expected_multi_narrow();
    let op = QueryOp::MultiJoin(wl.multi_join_spec_narrow());
    execute_workload_query(cfg, &wl, op, expected, true, prune)
}

/// Shared measurement core: publish the workload tables, snapshot the
/// traffic meters, run one query, and extract the §5 metrics.
fn execute_workload_query(
    cfg: &JoinRun,
    wl: &RsWorkload,
    op: QueryOp,
    expected: Vec<pier_core::Tuple>,
    with_t: bool,
    prune: bool,
) -> RunMetrics {
    let mut sim: Sim<PierNode> = stabilized_pier_sim(cfg.n_nodes, cfg.dht.clone(), cfg.net.clone());
    publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
    if with_t {
        publish_round_robin(&mut sim, "T", &wl.t, 0, Dur::from_secs(100_000));
    }
    settle_publish(&mut sim);
    sim.run_for(Dur::from_secs(30));

    // Snapshot traffic after load, before the query.
    let pre_stats = sim.stats().clone();
    let meter_pre: u64 = (0..cfg.n_nodes)
        .map(|i| sim.app(i as u32).unwrap().dht.meter.query_traffic())
        .sum();

    let mut desc = QueryDesc::one_shot(1, 0, op).with_prune(prune);
    desc.n_nodes = cfg.n_nodes as u32;
    let results = run_query(&mut sim, 0, desc, cfg.settle);

    let meter_post: u64 = (0..cfg.n_nodes)
        .map(|i| {
            sim.app(i as u32)
                .map(|n| n.dht.meter.query_traffic())
                .unwrap_or(0)
        })
        .sum();
    // Query traffic = DHT-layer query bytes + direct result bytes.
    let engine = sim.stats().since(&pre_stats);
    let result_bytes: u64 = results
        .iter()
        .map(|(_, r)| (pier_dht::msg::HEADER_BYTES + 8 + r.wire_size()) as u64)
        .sum();
    let traffic = (meter_post - meter_pre) + result_bytes;

    let actual = rows_of(&results);
    RunMetrics {
        n_nodes: cfg.n_nodes,
        results: results.len(),
        expected: expected.len(),
        t_30th: time_to_kth(&results, 30).map_or(f64::NAN, |d| d.as_secs_f64()),
        t_last: time_to_last(&results).map_or(f64::NAN, |d| d.as_secs_f64()),
        traffic_mb: traffic as f64 / 1e6,
        rehash_mb: (meter_post - meter_pre) as f64 / 1e6,
        max_inbound_mb: engine.max_inbound() as f64 / 1e6,
        recall: pier_core::semantics::recall(&expected, &actual),
    }
}

/// Average a metric extractor over several seeds.
pub fn average<F: Fn(u64) -> f64>(seeds: &[u64], f: F) -> f64 {
    let vals: Vec<f64> = seeds
        .iter()
        .map(|&s| f(s))
        .filter(|v| v.is_finite())
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// A simple results table: header + rows, printed aligned and saved as
/// CSV under `results/<name>.csv`.
pub struct ResultTable {
    pub name: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    pub fn new(name: &str, header: &[&str]) -> Self {
        ResultTable {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    pub fn fmt_cell(v: f64) -> String {
        if v.is_nan() {
            "-".to_string()
        } else if v >= 100.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.2}")
        }
    }

    /// Print to stdout and write `results/<name>.csv`.
    pub fn emit(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        println!("\n== {} ==\n{out}", self.name);

        let dir = results_dir();
        let _ = std::fs::create_dir_all(&dir);
        let mut csv = self.header.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let _ = std::fs::write(dir.join(format!("{}.csv", self.name)), csv);
    }
}

/// Where experiment outputs land (workspace `results/`).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.join("results")
}

/// Paper-style label for a strategy (figure legends).
pub fn strategy_label(s: JoinStrategy) -> &'static str {
    match s {
        JoinStrategy::SymmetricHash => "Sym. Hash Join",
        JoinStrategy::FetchMatches => "Fetch Matches",
        JoinStrategy::SymmetricSemiJoin => "Sym. Semi-Join",
        JoinStrategy::BloomFilter => "Bloom Filter",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_run_produces_finite_metrics() {
        let params = RsParams {
            s_rows: 12,
            ..Default::default()
        };
        let run = JoinRun::new(
            8,
            JoinStrategy::SymmetricHash,
            params,
            NetConfig::latency_only(1),
        );
        let m = run_join(&run);
        assert!(m.results > 0);
        assert!((m.recall - 1.0).abs() < 1e-9, "recall {}", m.recall);
        assert!(m.t_last > 0.0);
        assert!(m.traffic_mb > 0.0);
    }

    #[test]
    fn average_skips_nan() {
        let avg = average(&[1, 2, 3], |s| if s == 2 { f64::NAN } else { s as f64 });
        assert!((avg - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_formatting_and_csv() {
        let mut t = ResultTable::new("unit_test_table", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.emit();
        let csv = std::fs::read_to_string(results_dir().join("unit_test_table.csv")).unwrap();
        assert!(csv.starts_with("a,b\n1,2"));
    }
}
pub mod experiments;

//! Criterion micro-benchmarks of the query processor: expression
//! evaluation, Bloom filters, aggregation accumulators, the SQL parser,
//! and an end-to-end simulated join.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pier_core::bloom::BloomFilter;
use pier_core::catalog::Catalog;
use pier_core::expr::{Expr, Func};
use pier_core::plan::{AggCall, AggFunc, JoinStrategy};
use pier_core::sql::parse_query;
use pier_core::tuple;
use pier_workload::{RsParams, RsWorkload};

fn bench_expr(c: &mut Criterion) {
    let t = tuple![10i64, 60i64, 7i64, 8i64];
    let pred = Expr::and(
        Expr::gt(Expr::col(1), Expr::lit(49i64)),
        Expr::gt(
            Expr::Call(Func::WorkloadF, vec![Expr::col(2), Expr::col(3)]),
            Expr::lit(29i64),
        ),
    );
    c.bench_function("expr_eval_workload_pred", |b| {
        b.iter(|| black_box(pred.matches(black_box(&t))))
    });
}

fn bench_bloom(c: &mut Criterion) {
    let mut f = BloomFilter::for_capacity(10_000);
    for k in 0..10_000u64 {
        f.insert(k.wrapping_mul(0x9E37_79B9));
    }
    c.bench_function("bloom_insert", |b| {
        let mut g = BloomFilter::for_capacity(10_000);
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            g.insert(black_box(k));
        })
    });
    c.bench_function("bloom_contains", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E37_79B9);
            black_box(f.contains(black_box(k)))
        })
    });
    c.bench_function("bloom_union", |b| {
        let g = f.clone();
        b.iter(|| {
            let mut h = f.clone();
            h.union(black_box(&g));
            black_box(h.load())
        })
    });
}

fn bench_agg(c: &mut Criterion) {
    let calls = vec![
        AggCall {
            func: AggFunc::Count,
            arg: None,
        },
        AggCall {
            func: AggFunc::Sum,
            arg: Some(Expr::col(0)),
        },
    ];
    c.bench_function("agg_update", |b| {
        let mut g = pier_core::agg::GroupAccs::new(&calls);
        let t = tuple![7i64];
        b.iter(|| g.update(black_box(&calls), black_box(&t)))
    });
}

fn bench_sql(c: &mut Criterion) {
    let catalog = Catalog::workload();
    c.bench_function("sql_parse_workload_query", |b| {
        b.iter(|| {
            black_box(
                parse_query(
                    "SELECT R.pkey, S.pkey, R.pad FROM R, S \
                     WHERE R.num1 = S.pkey AND R.num2 > 50 AND S.num2 > 50 \
                     AND f(R.num3, S.num3) > 30",
                    &catalog,
                    JoinStrategy::SymmetricHash,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_reference_join(c: &mut Criterion) {
    let wl = RsWorkload::generate(RsParams {
        s_rows: 100,
        ..Default::default()
    });
    let spec = wl.join_spec(JoinStrategy::SymmetricHash);
    c.bench_function("reference_join_1000x100", |b| {
        b.iter(|| black_box(pier_core::semantics::reference_join(&spec, &wl.r, &wl.s)))
    });
}

fn bench_e2e_join(c: &mut Criterion) {
    // Whole-simulation cost of one distributed symmetric hash join on 32
    // nodes — the engine-level "macro" benchmark.
    c.bench_function("sim_shj_32_nodes", |b| {
        b.iter(|| {
            let run = pier_bench::JoinRun::new(
                32,
                JoinStrategy::SymmetricHash,
                RsParams {
                    s_rows: 20,
                    ..Default::default()
                },
                pier_simnet::NetConfig::latency_only(3),
            );
            black_box(pier_bench::run_join(&run).results)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_expr, bench_bloom, bench_agg, bench_sql, bench_reference_join, bench_e2e_join
);
criterion_main!(benches);

//! Criterion micro-benchmarks of the DHT substrate: CAN geometry and
//! routing, overlay construction, Chord steps, and the simulator's event
//! loop throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pier_dht::can::{balanced_overlay, balanced_zones};
use pier_dht::chord::{balanced_chord_overlay, ring_of_key};
use pier_dht::geom::{Point, Zone};
use pier_simnet::time::{Dur, Time};
use pier_simnet::{NetConfig, Sim};

fn bench_geometry(c: &mut Criterion) {
    let zones = balanced_zones(1024, 4);
    c.bench_function("zone_contains_1024", |b| {
        let p = Point::from_key(12345, 4);
        b.iter(|| black_box(zones.iter().filter(|z| z.contains(black_box(p), 4)).count()))
    });
    c.bench_function("zone_dist2", |b| {
        let p = Point::from_key(999, 4);
        let z = zones[17];
        b.iter(|| black_box(z.dist2(black_box(p), 4)))
    });
    c.bench_function("zone_subtract", |b| {
        let whole = Zone::whole(4);
        let inner = zones[3];
        b.iter(|| black_box(whole.subtract(black_box(&inner), 4)))
    });
}

fn bench_routing(c: &mut Criterion) {
    let states = balanced_overlay(1024, 4, Time::ZERO);
    c.bench_function("can_greedy_route_1024", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            let p = Point::from_key(key, 4);
            let mut cur = 0usize;
            let mut hops = 0;
            while !states[cur].owns_point(p) && hops < 100 {
                cur = states[cur].next_hop(p).unwrap() as usize;
                hops += 1;
            }
            black_box(hops)
        })
    });
    let ring = balanced_chord_overlay(1024, Time::ZERO);
    c.bench_function("chord_find_succ_1024", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            let pos = ring_of_key(key);
            let mut cur = 0usize;
            let mut hops = 0u32;
            loop {
                match ring[cur].find_succ_step(pos) {
                    Ok((_, id)) => break black_box(id + hops),
                    Err(next) => {
                        cur = next as usize;
                        hops += 1;
                    }
                }
            }
        })
    });
}

fn bench_overlay_build(c: &mut Criterion) {
    c.bench_function("balanced_overlay_256", |b| {
        b.iter(|| black_box(balanced_overlay(256, 4, Time::ZERO)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    // End-to-end simulator throughput: a 64-node multicast, measured as
    // whole-simulation wall time.
    c.bench_function("sim_multicast_64", |b| {
        b.iter(|| {
            let mut sim: Sim<pier_dht::harness::DhtNode<Vec<u8>>> =
                pier_dht::harness::stabilized_can_sim(
                    64,
                    pier_dht::DhtConfig::static_network(),
                    NetConfig::latency_only(1),
                );
            sim.with_app(0, |node, ctx| {
                let mut env = pier_dht::CtxEnv { ctx };
                let mut ev = Vec::new();
                node.dht.multicast(&mut env, vec![1, 2, 3], &mut ev);
            });
            sim.run_for(Dur::from_secs(30));
            black_box(sim.events_processed())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_geometry, bench_routing, bench_overlay_build, bench_simulator
);
criterion_main!(benches);

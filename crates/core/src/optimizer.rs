//! Cost-based join-strategy selection.
//!
//! §7 lists query optimization as future work; we build the piece the
//! paper itself derives: the §5.5.1 analytical latency model (validated
//! there against Table 4) and a Figure-4-shaped traffic model, and pick
//! the cheapest of the four strategies under a chosen objective.

use crate::plan::{JoinStrategy, QueryDesc, QueryOp, ScanSpec};
use pier_dht::Ns;

/// Network-level parameters of the cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Number of nodes in the overlay.
    pub n_nodes: f64,
    /// One overlay-hop latency in seconds (paper baseline: 0.1 s).
    pub hop_latency: f64,
    /// Time for a query multicast to reach all nodes (paper: ≈3 s at
    /// n = 1024).
    pub multicast_time: f64,
    /// CAN dimensionality (lookup path ~ (d/4)·n^(1/d)).
    pub dims: f64,
}

impl CostParams {
    pub fn paper_baseline(n_nodes: f64) -> Self {
        CostParams {
            n_nodes,
            hop_latency: 0.1,
            // The multicast depth grows slowly with n; anchor at the
            // paper's ≈3 s for 1024 nodes and scale with n^(1/d).
            multicast_time: 3.0 * (n_nodes.powf(0.25) / 1024f64.powf(0.25)),
            dims: 4.0,
        }
    }

    /// Average lookup latency: (d/4)·n^(1/d) hops (§3.1.1).
    pub fn lookup_latency(&self) -> f64 {
        (self.dims / 4.0) * self.n_nodes.powf(1.0 / self.dims) * self.hop_latency
    }
}

/// Workload statistics feeding the model (shapes of §5.1 / Fig. 4).
#[derive(Clone, Copy, Debug)]
pub struct JoinStats {
    pub rows_r: f64,
    pub rows_s: f64,
    /// On-the-wire sizes of *full* base tuples — what a Fetch Matches
    /// get or a semi-join fetch moves (those retrieve published rows,
    /// which the query cannot prune).
    pub bytes_r: f64,
    pub bytes_s: f64,
    /// On-the-wire sizes of the *pruned* rehash projections — what the
    /// schema-aware dataflow actually rehashes per tuple (join key ∪
    /// residual-predicate ∪ output columns; see
    /// [`crate::plan::StageSchema`]). Equal to `bytes_*` when nothing
    /// can be pruned.
    pub ship_r: f64,
    pub ship_s: f64,
    /// Selectivity of the local predicates.
    pub sel_r: f64,
    pub sel_s: f64,
    /// Fraction of (selected) R rows with a join partner in S.
    pub match_r: f64,
    /// Result tuple wire size.
    pub bytes_result: f64,
    /// Bloom filter size per fragment, bytes.
    pub bloom_bytes: f64,
}

impl JoinStats {
    /// §5.1's synthetic workload at a given S-predicate selectivity.
    pub fn workload(total_bytes: f64, sel_s: f64) -> JoinStats {
        // |R| = 10·|S|; R tuples carry the ~1 KB pad (it is projected
        // into the result, so every strategy must move it); S tuples are
        // ~100 B.
        let rows_s = total_bytes / (10.0 * 1024.0 + 100.0);
        JoinStats {
            rows_r: rows_s * 10.0,
            rows_s,
            bytes_r: 1024.0,
            bytes_s: 100.0,
            // The workload projects R.pad into the result, so pruning
            // cannot drop it: rehashes ship (nearly) full tuples.
            ship_r: 1024.0,
            ship_s: 100.0,
            sel_r: 0.5,
            sel_s,
            match_r: 0.9,
            bytes_result: 1024.0,
            bloom_bytes: 8192.0,
        }
    }

    /// Estimated result cardinality: R rows passing their predicate,
    /// with a partner, whose partner passes the S predicate; the f()
    /// predicate halves again — but a constant factor common to all
    /// strategies can be dropped for strategy *selection* and kept
    /// simple here. Also the per-stage cardinality estimate the greedy
    /// join-order search chains through a pipeline.
    pub fn results(&self) -> f64 {
        self.rows_r * self.sel_r * self.match_r * self.sel_s
    }
}

/// Optimization objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Minimize time-to-last-tuple in a latency-bound network (§5.5.1).
    Latency,
    /// Minimize aggregate network traffic (Figure 4's metric).
    Traffic,
}

/// Analytical time-to-last-result in a latency-bound (infinite
/// bandwidth) network — the §5.5.1 derivation, which the paper checks
/// against Table 4.
pub fn latency_model(strategy: JoinStrategy, p: &CostParams) -> f64 {
    let lookup = p.lookup_latency();
    let hop = p.hop_latency;
    let mcast = p.multicast_time;
    match strategy {
        // multicast + lookup + put + deliver
        JoinStrategy::SymmetricHash => mcast + lookup + hop + hop,
        // multicast + lookup + request + reply + deliver
        JoinStrategy::FetchMatches => mcast + lookup + 3.0 * hop,
        // multicast + 2 lookups + 4 directs
        JoinStrategy::SymmetricSemiJoin => mcast + 2.0 * lookup + 4.0 * hop,
        // 2 multicasts + 2 lookups + 3 directs
        JoinStrategy::BloomFilter => 2.0 * mcast + 2.0 * lookup + 3.0 * hop,
    }
}

/// Analytical aggregate traffic in bytes (Figure 4's shape).
pub fn traffic_model(strategy: JoinStrategy, s: &JoinStats) -> f64 {
    let result_traffic = s.results() * s.bytes_result;
    const MINI: f64 = 24.0;
    const GET: f64 = 80.0;
    // Every DHT put is a lookup followed by a direct transfer (§3.2.3
    // footnote 6); the lookup hops along the overlay.
    const LOOKUP: f64 = 80.0;
    match strategy {
        JoinStrategy::SymmetricHash => {
            // Both tables rehashed after local selections, pruned to
            // the columns downstream operators read.
            s.rows_r * s.sel_r * (s.ship_r + LOOKUP)
                + s.rows_s * s.sel_s * (s.ship_s + LOOKUP)
                + result_traffic
        }
        JoinStrategy::FetchMatches => {
            // A get per selected R row; the S tuple always comes back
            // ("the S tuple must still be retrieved ... regardless of how
            // selective the predicate is"), so traffic is ~constant in
            // sel_s.
            s.rows_r * s.sel_r * (GET + s.match_r * s.bytes_s) + result_traffic
        }
        JoinStrategy::SymmetricSemiJoin => {
            // Tiny projections rehashed, then only matching full tuples
            // fetched: linear in sel_s.
            let minis = (s.rows_r * s.sel_r + s.rows_s * s.sel_s) * (MINI + LOOKUP);
            let matches = s.rows_r * s.sel_r * s.match_r * s.sel_s;
            minis + matches * (s.bytes_r + s.bytes_s + 2.0 * GET) + result_traffic
        }
        JoinStrategy::BloomFilter => {
            // Filters out, OR-ed filters multicast back, then a filtered
            // rehash: only R rows whose key appears in (the filter of) S
            // survive — plus S's own rehash.
            let filters = 2.0 * s.bloom_bytes * 8.0;
            let r_kept = s.rows_r * s.sel_r * (s.match_r * s.sel_s + 0.03);
            let s_kept = s.rows_s * s.sel_s;
            filters + r_kept * (s.ship_r + LOOKUP) + s_kept * (s.ship_s + LOOKUP) + result_traffic
        }
    }
}

/// Catalog-derived card of one base table, input to the join-order
/// search: row count, average wire bytes per tuple, the wire bytes of
/// the columns the query actually ships (join keys, residual-predicate
/// and output columns — what survives projection pushdown), and the
/// estimated selectivity of its pushed-down local predicates.
#[derive(Clone, Copy, Debug)]
pub struct TableCard {
    pub rows: f64,
    /// Full tuple width on the wire.
    pub bytes: f64,
    /// Pruned width: what a rehash of this table contributes to an
    /// intermediate. `bytes` when the query reads every column.
    pub ship_bytes: f64,
    pub sel: f64,
}

impl TableCard {
    /// Rows surviving the local selection.
    fn effective_rows(&self) -> f64 {
        self.rows * self.sel
    }
}

/// Greedy left-deep join-order search for an N-way equi-join.
///
/// `edges` are the query's equality predicates as table-index pairs.
/// Starting from the table with the smallest effective cardinality that
/// participates in a join edge, the search repeatedly appends the
/// *connected* table whose stage would move the fewest bytes under the
/// symmetric-hash [`traffic_model`] (the §5.5.1-validated latency model
/// is order-insensitive for a pipeline, so traffic is the
/// discriminating objective), chaining each stage's estimated
/// [`JoinStats::results`] cardinality into the next. Byte accounting
/// uses the *pruned* [`TableCard::ship_bytes`] widths, so the order
/// reacts to where wide columns get dropped: a table whose 1 KB pad is
/// projected into the result is expensive to pipeline early, while the
/// same table with the pad pruned is cheap. Disconnected tables, if
/// any, are appended last (lowering will reject the cross product).
/// Returns a permutation of `0..cards.len()`.
pub fn greedy_join_order(cards: &[TableCard], edges: &[(usize, usize)]) -> Vec<usize> {
    let n = cards.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let touches_edge = |i: usize| edges.iter().any(|&(a, b)| a == i || b == i);
    let argmin = |it: &mut dyn Iterator<Item = usize>, key: &dyn Fn(usize) -> f64| {
        it.min_by(|&a, &b| key(a).total_cmp(&key(b)))
    };
    let start = argmin(&mut (0..n).filter(|&i| touches_edge(i)), &|i| {
        cards[i].effective_rows()
    })
    .unwrap_or(0);

    let mut order = vec![start];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != start).collect();
    // The accumulated intermediate: its local predicates are already
    // applied, so sel = 1 from here on; its width is the sum of the
    // *pruned* contributions of the tables joined so far.
    let mut cur_rows = cards[start].effective_rows();
    let mut cur_bytes = cards[start].ship_bytes;
    while !remaining.is_empty() {
        let connected = |i: usize| {
            edges
                .iter()
                .any(|&(a, b)| (a == i && order.contains(&b)) || (b == i && order.contains(&a)))
        };
        let stage_stats = |i: usize| JoinStats {
            rows_r: cur_rows,
            rows_s: cards[i].rows,
            bytes_r: cur_bytes,
            bytes_s: cards[i].bytes,
            ship_r: cur_bytes,
            ship_s: cards[i].ship_bytes,
            sel_r: 1.0,
            sel_s: cards[i].sel,
            match_r: 0.9,
            bytes_result: cur_bytes + cards[i].ship_bytes,
            bloom_bytes: 2048.0,
        };
        let cost = |i: usize| traffic_model(JoinStrategy::SymmetricHash, &stage_stats(i));
        let next = argmin(
            &mut remaining.iter().copied().filter(|&i| connected(i)),
            &cost,
        )
        .or_else(|| argmin(&mut remaining.iter().copied(), &cost))
        .unwrap();
        let stats = stage_stats(next);
        cur_rows = stats.results();
        cur_bytes += cards[next].ship_bytes;
        order.push(next);
        remaining.retain(|&i| i != next);
    }
    order
}

/// Pick the cheapest strategy for the objective.
pub fn choose_strategy(p: &CostParams, s: &JoinStats, objective: Objective) -> JoinStrategy {
    let cost = |st: JoinStrategy| match objective {
        Objective::Latency => latency_model(st, p),
        Objective::Traffic => traffic_model(st, s),
    };
    JoinStrategy::ALL
        .into_iter()
        .min_by(|a, b| cost(*a).total_cmp(&cost(*b)))
        .unwrap()
}

// ---------------------------------------------------------------------
// Admission pricing (the quota hook of the tenant governor)
// ---------------------------------------------------------------------

/// Publish-rate statistics of one base table — the per-second analogue
/// of the catalog's [`crate::catalog::TableStats`], feeding admission
/// pricing: how fast fresh tuples arrive and how wide they are on the
/// wire. Registered per namespace with the tenant governor
/// ([`crate::tenant::TenantGovernor::set_table_rate`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableRate {
    /// Fresh publications per second across all publishers.
    pub rows_per_sec: f64,
    /// Average on-the-wire tuple size in bytes.
    pub avg_tuple_bytes: f64,
}

impl Default for TableRate {
    /// Conservative default for tables nobody profiled: one ~100 B
    /// tuple per second (the catalog default's width at a slow trickle).
    fn default() -> Self {
        TableRate {
            rows_per_sec: 1.0,
            avg_tuple_bytes: 100.0,
        }
    }
}

/// Admission price of a query descriptor: modeled steady-state traffic
/// in **bytes per second**, charged against the owning tenant's quota
/// before the descriptor is installed.
///
/// The price reuses the byte-accurate [`traffic_model`] unchanged —
/// feeding it per-*second* arrival rows instead of per-*run* table
/// cardinalities turns its per-run bytes into bytes/sec. Joins are
/// priced under their own strategy; pipelines fold left-deep with each
/// stage's estimated [`JoinStats::results`] rate chained into the next
/// (the same chaining [`greedy_join_order`] uses); scans and
/// aggregations price as their input's selected arrival bytes (what
/// gets shipped or rehashed into the aggregation namespace). Predicate
/// selectivity uses the planner's classical ½ default.
pub fn price_query(desc: &QueryDesc, rate_of: &dyn Fn(Ns) -> TableRate) -> f64 {
    let sel = |pred: bool| if pred { 0.5 } else { 1.0 };
    let scan_term = |s: &ScanSpec| {
        let r = rate_of(s.ns);
        r.rows_per_sec * sel(s.pred.is_some()) * r.avg_tuple_bytes
    };
    // Stats of one pipeline stage: left input at (rows/sec, bytes)
    // joining a base-table scan.
    let stage_stats = |l_rows: f64, l_bytes: f64, l_sel: f64, right: &ScanSpec| {
        let r = rate_of(right.ns);
        JoinStats {
            rows_r: l_rows,
            rows_s: r.rows_per_sec,
            bytes_r: l_bytes,
            bytes_s: r.avg_tuple_bytes,
            ship_r: l_bytes,
            ship_s: r.avg_tuple_bytes,
            sel_r: l_sel,
            sel_s: sel(right.pred.is_some()),
            match_r: 0.9,
            bytes_result: l_bytes + r.avg_tuple_bytes,
            bloom_bytes: 2048.0,
        }
    };
    let pipeline_price = |m: &crate::plan::MultiJoinSpec| {
        let base = rate_of(m.base.ns);
        let mut rows = base.rows_per_sec;
        let mut bytes = base.avg_tuple_bytes;
        let mut cur_sel = sel(m.base.pred.is_some());
        let mut total = 0.0;
        for stage in &m.stages {
            let s = stage_stats(rows, bytes, cur_sel, &stage.right);
            total += traffic_model(JoinStrategy::SymmetricHash, &s);
            rows = s.results().max(f64::MIN_POSITIVE);
            bytes = s.bytes_result;
            cur_sel = 1.0;
        }
        total
    };
    match &desc.op {
        QueryOp::Scan { scan, .. } => scan_term(scan),
        QueryOp::Agg { scan, .. } => scan_term(scan),
        QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => {
            let l = rate_of(j.left.ns);
            let s = stage_stats(
                l.rows_per_sec,
                l.avg_tuple_bytes,
                sel(j.left.pred.is_some()),
                &j.right,
            );
            traffic_model(j.strategy, &s)
        }
        QueryOp::MultiJoin(m) | QueryOp::MultiJoinAgg { join: m, .. } => pipeline_price(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_reproduces_table_4_ordering() {
        // Table 4 (n = 1024, 100 ms hops, infinite bandwidth):
        // SHJ 3.73 < FM 3.78 < SSJ 4.47 < Bloom 6.85.
        let p = CostParams::paper_baseline(1024.0);
        let shj = latency_model(JoinStrategy::SymmetricHash, &p);
        let fm = latency_model(JoinStrategy::FetchMatches, &p);
        let ssj = latency_model(JoinStrategy::SymmetricSemiJoin, &p);
        let bloom = latency_model(JoinStrategy::BloomFilter, &p);
        assert!(
            shj < fm && fm < ssj && ssj < bloom,
            "{shj} {fm} {ssj} {bloom}"
        );
        // And the absolute values land near the paper's Table 4.
        assert!((shj - 3.73).abs() < 0.4, "shj {shj}");
        assert!((fm - 3.78).abs() < 0.4, "fm {fm}");
        assert!((ssj - 4.47).abs() < 0.6, "ssj {ssj}");
        assert!((bloom - 6.85).abs() < 1.2, "bloom {bloom}");
    }

    #[test]
    fn traffic_model_reproduces_figure_4_crossovers() {
        let total = 1e9; // ~1 GB of base data
                         // At low selectivity on S, Bloom beats symmetric hash by skipping
                         // most of R's rehash.
        let low = JoinStats::workload(total, 0.1);
        assert!(
            traffic_model(JoinStrategy::BloomFilter, &low)
                < traffic_model(JoinStrategy::SymmetricHash, &low)
        );
        // At high selectivity the filters stop helping (Fig. 4: "the
        // algorithm starts to perform similar to the symmetric join").
        let high = JoinStats::workload(total, 1.0);
        let b = traffic_model(JoinStrategy::BloomFilter, &high);
        let shj = traffic_model(JoinStrategy::SymmetricHash, &high);
        assert!((b - shj).abs() / shj < 0.25, "bloom {b} vs shj {shj}");
        // Fetch Matches is flat in sel_s.
        let fm_low = traffic_model(JoinStrategy::FetchMatches, &JoinStats::workload(total, 0.1));
        let fm_high = traffic_model(JoinStrategy::FetchMatches, &JoinStats::workload(total, 0.9));
        let base_low = JoinStats::workload(total, 0.1).results() * 1024.0;
        let base_high = JoinStats::workload(total, 0.9).results() * 1024.0;
        assert!(((fm_high - base_high) - (fm_low - base_low)).abs() < 1e-3 * fm_low);
        // Semi-join grows linearly and stays below SHJ.
        for sel in [0.2, 0.5, 0.8] {
            let st = JoinStats::workload(total, sel);
            assert!(
                traffic_model(JoinStrategy::SymmetricSemiJoin, &st)
                    < traffic_model(JoinStrategy::SymmetricHash, &st)
            );
        }
    }

    #[test]
    fn chooser_switches_with_objective_and_selectivity() {
        let p = CostParams::paper_baseline(1024.0);
        let s = JoinStats::workload(1e9, 0.5);
        assert_eq!(
            choose_strategy(&p, &s, Objective::Latency),
            JoinStrategy::SymmetricHash
        );
        // Traffic objective never picks plain SHJ when semi-join wins.
        let choice = choose_strategy(&p, &s, Objective::Traffic);
        assert_ne!(choice, JoinStrategy::SymmetricHash);
    }

    /// A card whose query ships every column (no pruning opportunity).
    fn full_card(rows: f64, bytes: f64, sel: f64) -> TableCard {
        TableCard {
            rows,
            bytes,
            ship_bytes: bytes,
            sel,
        }
    }

    #[test]
    fn greedy_order_starts_small_and_stays_connected() {
        // A big R, medium S, tiny T in a chain R — S — T.
        let cards = [
            full_card(100_000.0, 1024.0, 1.0),
            full_card(10_000.0, 100.0, 1.0),
            full_card(100.0, 100.0, 1.0),
        ];
        let order = greedy_join_order(&cards, &[(0, 1), (1, 2)]);
        // T is smallest but only connects to S: start at T, then S, then
        // the expensive R last.
        assert_eq!(order, vec![2, 1, 0]);
        // Two tables: trivial order.
        assert_eq!(greedy_join_order(&cards[..2], &[(0, 1)]), vec![0, 1]);
    }

    #[test]
    fn greedy_order_reacts_to_dropped_wide_columns() {
        // A star centered on S (table 1): R — S — T, where R is wide
        // (1 KB pad) and T has many more rows than R.
        let wide_r = full_card(1000.0, 1024.0, 1.0);
        let s = full_card(100.0, 28.0, 1.0);
        let t = full_card(4000.0, 28.0, 1.0);
        let edges = [(0, 1), (1, 2)];
        // Pad projected into the result: R's rehash ships ~1 KB per
        // row, so the greedy order defers R to the end.
        let order = greedy_join_order(&[wide_r, s, t], &edges);
        assert_eq!(order.len(), 3);
        assert_eq!(*order.last().unwrap(), 0, "wide R pipelines last");
        // Same tables, but the query never reads the pad: R's pruned
        // ship width collapses and T (more rows to move) goes last.
        let narrow_r = TableCard {
            ship_bytes: 20.0,
            ..wide_r
        };
        let order = greedy_join_order(&[narrow_r, s, t], &edges);
        assert_eq!(
            *order.last().unwrap(),
            2,
            "row count dominates once the pad is pruned"
        );
    }

    #[test]
    fn greedy_order_is_always_a_permutation() {
        let cards = [
            full_card(50.0, 10.0, 0.5),
            full_card(5000.0, 10.0, 1.0),
            full_card(500.0, 10.0, 0.5),
            full_card(5.0, 10.0, 1.0),
        ];
        // Star centered on table 1, plus a disconnected table 3.
        let mut order = greedy_join_order(&cards, &[(0, 1), (1, 2)]);
        assert_eq!(order.last(), Some(&3), "disconnected table goes last");
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lookup_latency_follows_fourth_root() {
        let a = CostParams::paper_baseline(16.0).lookup_latency();
        let b = CostParams::paper_baseline(256.0).lookup_latency();
        assert!((b / a - 2.0).abs() < 1e-9);
    }
}

//! Scalar expressions over tuples.
//!
//! Expressions are resolved to column indices at plan-build time (by the
//! SQL front-end or by hand-wired plans) and evaluated dynamically. The
//! small built-in function table includes `f(x, y)` — the paper's §5.1
//! workload applies an opaque two-table predicate `f(R.num3, S.num3) >
//! constant3` that forces evaluation *above* the equi-join.

use std::fmt;

use crate::tuple::Tuple;
use crate::value::Value;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Built-in scalar functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Func {
    /// The workload's opaque cross-table function: `(x + y) mod 100`.
    /// Uniform inputs make `f(x,y) > c` have selectivity `(100-c)/100`,
    /// which is how experiments dial the §5.1 `constant3`.
    WorkloadF,
    Abs,
    Min,
    Max,
}

/// An expression tree over a single (possibly concatenated) tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column reference by index.
    Col(usize),
    Lit(Value),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Call(Func, Vec<Expr>),
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    pub fn gt(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Gt, l, r)
    }

    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::Eq, l, r)
    }

    pub fn and(l: Expr, r: Expr) -> Expr {
        Expr::bin(BinOp::And, l, r)
    }

    /// Conjunction of many predicates (`true` if empty).
    pub fn conjunction(mut preds: Vec<Expr>) -> Expr {
        match preds.len() {
            0 => Expr::lit(true),
            1 => preds.pop().unwrap(),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().unwrap();
                it.fold(first, Expr::and)
            }
        }
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, t: &Tuple) -> Value {
        match self {
            Expr::Col(i) => t.vals.get(*i).cloned().unwrap_or(Value::Null),
            Expr::Lit(v) => v.clone(),
            Expr::Not(e) => Value::Bool(!e.eval(t).truthy()),
            Expr::Bin(op, l, r) => {
                let lv = l.eval(t);
                match op {
                    // Short-circuit logicals.
                    BinOp::And => {
                        if !lv.truthy() {
                            return Value::Bool(false);
                        }
                        return Value::Bool(r.eval(t).truthy());
                    }
                    BinOp::Or => {
                        if lv.truthy() {
                            return Value::Bool(true);
                        }
                        return Value::Bool(r.eval(t).truthy());
                    }
                    _ => {}
                }
                let rv = r.eval(t);
                match op {
                    BinOp::Eq => Value::Bool(lv == rv),
                    BinOp::Ne => Value::Bool(lv != rv),
                    BinOp::Lt => Value::Bool(lv < rv),
                    BinOp::Le => Value::Bool(lv <= rv),
                    BinOp::Gt => Value::Bool(lv > rv),
                    BinOp::Ge => Value::Bool(lv >= rv),
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        arith(*op, &lv, &rv)
                    }
                    BinOp::And | BinOp::Or => unreachable!(),
                }
            }
            Expr::Call(f, args) => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(t)).collect();
                call(*f, &vals)
            }
        }
    }

    /// Evaluate as a predicate.
    pub fn matches(&self, t: &Tuple) -> bool {
        self.eval(t).truthy()
    }

    /// Shift all column references by `delta` — used to rebase predicates
    /// onto the right-hand side of a concatenated join tuple.
    pub fn shift_cols(&self, delta: usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(i + delta),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Not(e) => Expr::Not(Box::new(e.shift_cols(delta))),
            Expr::Bin(op, l, r) => Expr::bin(*op, l.shift_cols(delta), r.shift_cols(delta)),
            Expr::Call(f, args) => {
                Expr::Call(*f, args.iter().map(|a| a.shift_cols(delta)).collect())
            }
        }
    }

    /// Remap column references through `map[i] -> new index`; `None`
    /// means the column was projected away (returns Err).
    pub fn remap_cols(&self, map: &dyn Fn(usize) -> Option<usize>) -> Result<Expr, String> {
        Ok(match self {
            Expr::Col(i) => Expr::Col(map(*i).ok_or_else(|| format!("column {i} projected away"))?),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_cols(map)?)),
            Expr::Bin(op, l, r) => Expr::bin(*op, l.remap_cols(map)?, r.remap_cols(map)?),
            Expr::Call(f, args) => Expr::Call(
                *f,
                args.iter()
                    .map(|a| a.remap_cols(map))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    /// Columns referenced by this expression.
    pub fn columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Lit(_) => {}
            Expr::Not(e) => e.columns(out),
            Expr::Bin(_, l, r) => {
                l.columns(out);
                r.columns(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.columns(out);
                }
            }
        }
    }

    /// Estimated wire size when shipped inside a query descriptor.
    pub fn wire_size(&self) -> usize {
        match self {
            Expr::Col(_) => 3,
            Expr::Lit(v) => 1 + v.wire_size(),
            Expr::Not(e) => 1 + e.wire_size(),
            Expr::Bin(_, l, r) => 2 + l.wire_size() + r.wire_size(),
            Expr::Call(_, args) => 2 + args.iter().map(Expr::wire_size).sum::<usize>(),
        }
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Value {
    // Integer arithmetic when both sides are integers; else float.
    if let (Value::I64(a), Value::I64(b)) = (l, r) {
        return match op {
            BinOp::Add => Value::I64(a.wrapping_add(*b)),
            BinOp::Sub => Value::I64(a.wrapping_sub(*b)),
            BinOp::Mul => Value::I64(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::I64(a / b)
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::I64(a.rem_euclid(*b))
                }
            }
            _ => unreachable!(),
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => match op {
            BinOp::Add => Value::F64(a + b),
            BinOp::Sub => Value::F64(a - b),
            BinOp::Mul => Value::F64(a * b),
            BinOp::Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::F64(a / b)
                }
            }
            BinOp::Mod => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::F64(a.rem_euclid(b))
                }
            }
            _ => unreachable!(),
        },
        _ => Value::Null,
    }
}

fn call(f: Func, args: &[Value]) -> Value {
    match f {
        Func::WorkloadF => match (
            args.first().and_then(Value::as_i64),
            args.get(1).and_then(Value::as_i64),
        ) {
            (Some(x), Some(y)) => Value::I64((x + y).rem_euclid(100)),
            _ => Value::Null,
        },
        Func::Abs => match args.first() {
            Some(Value::I64(i)) => Value::I64(i.abs()),
            Some(Value::F64(x)) => Value::F64(x.abs()),
            _ => Value::Null,
        },
        Func::Min => args.iter().min().cloned().unwrap_or(Value::Null),
        Func::Max => args.iter().max().cloned().unwrap_or(Value::Null),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op:?} {r})"),
            Expr::Call(func, args) => {
                write!(f, "{func:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn comparisons_and_arithmetic() {
        let t = tuple![10i64, 3i64, 2.5];
        let e = Expr::gt(Expr::col(0), Expr::col(1));
        assert!(e.matches(&t));
        let sum = Expr::bin(BinOp::Add, Expr::col(0), Expr::col(2));
        assert_eq!(sum.eval(&t), Value::F64(12.5));
        let m = Expr::bin(BinOp::Mod, Expr::col(0), Expr::col(1));
        assert_eq!(m.eval(&t), Value::I64(1));
        let div0 = Expr::bin(BinOp::Div, Expr::col(0), Expr::lit(0i64));
        assert_eq!(div0.eval(&t), Value::Null);
    }

    #[test]
    fn short_circuit_logicals() {
        let t = tuple![1i64];
        // Col(9) is out of range -> Null; AND short-circuits before it.
        let e = Expr::and(Expr::lit(false), Expr::col(9));
        assert!(!e.matches(&t));
        let o = Expr::bin(BinOp::Or, Expr::lit(true), Expr::col(9));
        assert!(o.matches(&t));
    }

    #[test]
    fn workload_f_selectivity_shape() {
        // f(x, y) = (x + y) mod 100: over uniform x,y the predicate
        // f > 49 holds for half the domain.
        let mut hits = 0;
        let total = 100 * 100;
        for x in 0..100i64 {
            for y in 0..100i64 {
                let t = tuple![x, y];
                let e = Expr::gt(
                    Expr::Call(Func::WorkloadF, vec![Expr::col(0), Expr::col(1)]),
                    Expr::lit(49i64),
                );
                if e.matches(&t) {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits * 2, total);
    }

    #[test]
    fn shift_and_remap_columns() {
        let e = Expr::eq(Expr::col(1), Expr::lit(5i64));
        let shifted = e.shift_cols(3);
        assert_eq!(shifted, Expr::eq(Expr::col(4), Expr::lit(5i64)));
        let remapped = e
            .remap_cols(&|i| if i == 1 { Some(0) } else { None })
            .unwrap();
        assert_eq!(remapped, Expr::eq(Expr::col(0), Expr::lit(5i64)));
        assert!(Expr::col(2).remap_cols(&|_| None).is_err());
    }

    #[test]
    fn conjunction_of_zero_one_many() {
        let t = tuple![1i64];
        assert!(Expr::conjunction(vec![]).matches(&t));
        assert!(Expr::conjunction(vec![Expr::lit(true)]).matches(&t));
        assert!(!Expr::conjunction(vec![Expr::lit(true), Expr::lit(false)]).matches(&t));
    }

    #[test]
    fn columns_collects_unique_refs() {
        let e = Expr::and(
            Expr::gt(Expr::col(2), Expr::col(0)),
            Expr::eq(Expr::col(2), Expr::lit(1i64)),
        );
        let mut cols = Vec::new();
        e.columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 2]);
    }
}

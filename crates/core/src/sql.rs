//! A declarative front-end: the SQL subset the paper's queries use.
//!
//! §7 lists "declarative query parsing" as future work layered *above*
//! the query processor; we build it. Supported:
//!
//! ```sql
//! SELECT expr [AS name], ...
//! FROM table [AS t] [, table [AS t] ...]
//! [WHERE conjunctive predicates, incl. cross-table equalities]
//! [GROUP BY cols] [HAVING expr]
//! [WINDOW n [SECONDS|MS|MINUTES]] [EPOCH n [SECONDS|MS|MINUTES]]
//! [RENEW n [SECONDS|MS|MINUTES]]
//! ```
//!
//! which covers all three §2.1 intrusion-detection examples and the §5.1
//! workload query, plus N-table equi-join chains and stars. The parser
//! resolves names against the [`Catalog`] and emits a fully
//! index-resolved [`QueryOp`]: binary joins keep the four-strategy
//! repertoire of §4; three or more tables lower to a left-deep
//! [`MultiJoinSpec`] pipeline of chained symmetric hash joins. Parsing
//! and lowering are split (`parse_sql` / `lower_parsed`, crate-internal)
//! so the cost-based planner can choose the join order between the two.
//!
//! `WINDOW`, `EPOCH`, and `RENEW` make a query *standing* (continuous,
//! §3.2.3 / §7): `WINDOW` bounds the lifetime of rehashed soft state (a
//! sliding time window), `EPOCH` — aggregates only — re-emits every
//! surviving group each epoch ([`crate::plan::AggSpec::epoch`]), and
//! `RENEW` — unwindowed queries only — gives the query its own renewal
//! period for that soft state ([`crate::plan::QueryDesc::renew_every`]),
//! so multi-tenant standing queries need no node-global renewal loop.
//! Use [`parse_continuous_query`] to get the full [`QueryDesc`];
//! [`parse_query`] (and the planner) reject all three clauses since a
//! bare [`QueryOp`] cannot honor them.

use pier_simnet::time::Dur;
use pier_simnet::NodeId;

use crate::catalog::Catalog;
use crate::expr::{BinOp, Expr, Func};
use crate::plan::{
    AggCall, AggFunc, AggSpec, JoinSpec, JoinStage, JoinStrategy, MultiJoinSpec, QueryDesc,
    QueryOp, ScanSpec,
};
use crate::value::Value;

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

fn lex(input: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '%' | '=' => {
                out.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '%' => "%",
                    _ => "=",
                }));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Sym("<="));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Tok::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Sym(">="));
                    i += 2;
                } else {
                    out.push(Tok::Sym(">"));
                    i += 1;
                }
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Sym("<>"));
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err("unterminated string literal".into());
                }
                i += 1;
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if text.contains('.') {
                    out.push(Tok::Float(text.parse().map_err(|e| format!("{e}"))?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|e| format!("{e}"))?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            ';' => i += 1,
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser AST (pre-resolution)
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum PExpr {
    Col(String),
    Lit(Value),
    Bin(BinOp, Box<PExpr>, Box<PExpr>),
    Not(Box<PExpr>),
    Call(Func, Vec<PExpr>),
    Agg(AggFunc, Option<Box<PExpr>>),
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn kw(&mut self, word: &str) -> bool {
        if let Some(Tok::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case(word) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, word: &str) -> Result<(), String> {
        if self.kw(word) {
            Ok(())
        } else {
            Err(format!("expected {word} at token {:?}", self.peek()))
        }
    }

    fn sym(&mut self, s: &str) -> bool {
        if let Some(Tok::Sym(have)) = self.peek() {
            if *have == s {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), String> {
        if self.sym(s) {
            Ok(())
        } else {
            Err(format!("expected '{s}' at token {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Tok::Ident(w)) => Ok(w),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// A duration literal with an optional unit (seconds by default).
    fn duration(&mut self) -> Result<Dur, String> {
        let n = match self.next() {
            Some(Tok::Int(i)) if i >= 0 => i as f64,
            Some(Tok::Float(x)) if x >= 0.0 => x,
            other => return Err(format!("expected a duration, got {other:?}")),
        };
        let scale = if self.kw("SECONDS") || self.kw("S") {
            1.0
        } else if self.kw("MS") || self.kw("MILLISECONDS") {
            1e-3
        } else if self.kw("MINUTES") {
            60.0
        } else {
            1.0
        };
        let d = Dur::from_secs_f64(n * scale);
        if d == Dur::ZERO {
            return Err("durations must be positive".into());
        }
        Ok(d)
    }

    // expr := or
    fn expr(&mut self) -> Result<PExpr, String> {
        let mut left = self.and_expr()?;
        while self.kw("OR") {
            let right = self.and_expr()?;
            left = PExpr::Bin(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<PExpr, String> {
        let mut left = self.cmp_expr()?;
        while self.kw("AND") {
            let right = self.cmp_expr()?;
            left = PExpr::Bin(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<PExpr, String> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Sym("=")) => Some(BinOp::Eq),
            Some(Tok::Sym("<>")) => Some(BinOp::Ne),
            Some(Tok::Sym("<")) => Some(BinOp::Lt),
            Some(Tok::Sym("<=")) => Some(BinOp::Le),
            Some(Tok::Sym(">")) => Some(BinOp::Gt),
            Some(Tok::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(PExpr::Bin(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<PExpr, String> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => BinOp::Add,
                Some(Tok::Sym("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = PExpr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<PExpr, String> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("*")) => BinOp::Mul,
                Some(Tok::Sym("/")) => BinOp::Div,
                Some(Tok::Sym("%")) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = PExpr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<PExpr, String> {
        if self.kw("NOT") {
            return Ok(PExpr::Not(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<PExpr, String> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(PExpr::Lit(Value::I64(i))),
            Some(Tok::Float(x)) => Ok(PExpr::Lit(Value::F64(x))),
            Some(Tok::Str(s)) => Ok(PExpr::Lit(Value::str(&s))),
            Some(Tok::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(word)) => {
                // Aggregate / scalar function call?
                if self.peek() == Some(&Tok::Sym("(")) {
                    self.pos += 1;
                    let lower = word.to_ascii_lowercase();
                    if let Some(func) = agg_func(&lower) {
                        // count(*) has no argument.
                        if self.sym("*") {
                            self.expect_sym(")")?;
                            return Ok(PExpr::Agg(func, None));
                        }
                        let arg = self.expr()?;
                        self.expect_sym(")")?;
                        return Ok(PExpr::Agg(func, Some(Box::new(arg))));
                    }
                    let func =
                        scalar_func(&lower).ok_or_else(|| format!("unknown function '{word}'"))?;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::Sym(")")) {
                        loop {
                            args.push(self.expr()?);
                            if !self.sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    return Ok(PExpr::Call(func, args));
                }
                // Qualified column?
                if self.sym(".") {
                    let field = self.ident()?;
                    return Ok(PExpr::Col(format!("{word}.{field}")));
                }
                Ok(PExpr::Col(word))
            }
            other => Err(format!("unexpected token {other:?}")),
        }
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    Some(match name {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        _ => return None,
    })
}

fn scalar_func(name: &str) -> Option<Func> {
    Some(match name {
        "f" => Func::WorkloadF,
        "abs" => Func::Abs,
        "least" => Func::Min,
        "greatest" => Func::Max,
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Name resolution & lowering
// ---------------------------------------------------------------------

/// One FROM-clause table, pre-resolution. Column offsets are *not*
/// stored here: they depend on the join order chosen at lowering time.
#[derive(Clone)]
pub(crate) struct FromTable {
    alias: String,
    table: String,
    schema: crate::tuple::SchemaRef,
    pkey_col: usize,
}

/// Parsed SELECT item.
#[derive(Clone)]
struct SelectItem {
    expr: PExpr,
    alias: Option<String>,
}

/// A parsed-but-not-yet-lowered query: FROM tables in syntactic order,
/// the star-expanded SELECT list, the WHERE conjuncts, and grouping.
///
/// Lowering ([`lower_parsed`]) binds a *join order* — a permutation of
/// the FROM tables — before any column index is baked in, which is what
/// lets the planner reorder N-way joins cost-based while `parse_query`
/// keeps the syntactic order.
pub(crate) struct ParsedQuery {
    tables: Vec<FromTable>,
    select: Vec<SelectItem>,
    conjuncts: Vec<PExpr>,
    group_by: Vec<String>,
    having: Option<PExpr>,
    /// `WINDOW n`: sliding soft-state window of a standing query.
    pub(crate) window: Option<Dur>,
    /// `EPOCH n`: re-emission period of a continuous aggregate.
    pub(crate) epoch: Option<Dur>,
    /// `RENEW n`: per-query renewal period of an unwindowed standing
    /// query's rehash soft state.
    pub(crate) renew: Option<Dur>,
}

impl ParsedQuery {
    pub(crate) fn n_tables(&self) -> usize {
        self.tables.len()
    }
}

/// A FROM table placed at a definite offset within the concatenated
/// schema of one particular join order.
struct ResolvedTable {
    alias: String,
    table: String,
    schema: crate::tuple::SchemaRef,
    pkey_col: usize,
    offset: usize,
}

struct Resolver {
    tables: Vec<ResolvedTable>,
}

impl Resolver {
    /// Place `tables[order[0]], tables[order[1]], ...` at cumulative
    /// offsets.
    fn new(tables: &[FromTable], order: &[usize]) -> Resolver {
        let mut out = Vec::with_capacity(order.len());
        let mut offset = 0;
        for &i in order {
            let t = &tables[i];
            out.push(ResolvedTable {
                alias: t.alias.clone(),
                table: t.table.clone(),
                schema: t.schema.clone(),
                pkey_col: t.pkey_col,
                offset,
            });
            offset += t.schema.arity();
        }
        Resolver { tables: out }
    }

    /// Which ordered table a global column index belongs to.
    fn table_of(&self, col: usize) -> usize {
        self.tables
            .iter()
            .rposition(|t| t.offset <= col)
            .expect("column offset")
    }

    /// Resolve a (possibly qualified) column name to a global index over
    /// the concatenated FROM schemas.
    fn col(&self, name: &str) -> Result<usize, String> {
        if let Some((prefix, field)) = name.split_once('.') {
            for t in &self.tables {
                if t.alias.eq_ignore_ascii_case(prefix) || t.table.eq_ignore_ascii_case(prefix) {
                    return t
                        .schema
                        .col(field)
                        .map(|i| i + t.offset)
                        .ok_or_else(|| format!("no column '{field}' in {}", t.table));
                }
            }
            return Err(format!("unknown table qualifier '{prefix}'"));
        }
        let mut hit = None;
        for t in &self.tables {
            if let Some(i) = t.schema.col(name) {
                if hit.is_some() {
                    return Err(format!("ambiguous column '{name}'"));
                }
                hit = Some(i + t.offset);
            }
        }
        hit.ok_or_else(|| format!("unknown column '{name}'"))
    }

    /// Lower a scalar (non-aggregate) expression to indexed form.
    fn lower(&self, e: &PExpr) -> Result<Expr, String> {
        Ok(match e {
            PExpr::Col(name) => Expr::Col(self.col(name)?),
            PExpr::Lit(v) => Expr::Lit(v.clone()),
            PExpr::Bin(op, l, r) => Expr::bin(*op, self.lower(l)?, self.lower(r)?),
            PExpr::Not(inner) => Expr::Not(Box::new(self.lower(inner)?)),
            PExpr::Call(f, args) => Expr::Call(
                *f,
                args.iter()
                    .map(|a| self.lower(a))
                    .collect::<Result<_, _>>()?,
            ),
            PExpr::Agg(..) => return Err("aggregate in scalar context".into()),
        })
    }
}

fn contains_agg(e: &PExpr) -> bool {
    match e {
        PExpr::Agg(..) => true,
        PExpr::Col(_) | PExpr::Lit(_) => false,
        PExpr::Not(i) => contains_agg(i),
        PExpr::Bin(_, l, r) => contains_agg(l) || contains_agg(r),
        PExpr::Call(_, args) => args.iter().any(contains_agg),
    }
}

/// Split a conjunctive predicate into its top-level conjuncts.
fn conjuncts(e: PExpr, out: &mut Vec<PExpr>) {
    match e {
        PExpr::Bin(BinOp::And, l, r) => {
            conjuncts(*l, out);
            conjuncts(*r, out);
        }
        other => out.push(other),
    }
}

/// Parse a SQL string against a catalog into a [`ParsedQuery`], leaving
/// join order and strategy unbound.
pub(crate) fn parse_sql(sql: &str, catalog: &Catalog) -> Result<ParsedQuery, String> {
    let mut p = Parser {
        toks: lex(sql)?,
        pos: 0,
    };
    p.expect_kw("SELECT")?;
    let mut items: Vec<SelectItem> = Vec::new();
    loop {
        if p.sym("*") {
            items.push(SelectItem {
                expr: PExpr::Col("*".into()),
                alias: None,
            });
        } else {
            let expr = p.expr()?;
            let alias = if p.kw("AS") { Some(p.ident()?) } else { None };
            items.push(SelectItem { expr, alias });
        }
        if !p.sym(",") {
            break;
        }
    }
    p.expect_kw("FROM")?;
    let mut tables: Vec<FromTable> = Vec::new();
    loop {
        let table = p.ident()?;
        let def = catalog
            .get(&table)
            .ok_or_else(|| format!("unknown table '{table}'"))?;
        // Optional alias, with or without AS — but stop at keywords.
        let alias = if p.kw("AS") {
            p.ident()?
        } else if let Some(Tok::Ident(w)) = p.peek() {
            let kw = [
                "WHERE", "GROUP", "HAVING", "AND", "OR", "AS", "SELECT", "FROM", "WINDOW", "EPOCH",
                "RENEW",
            ];
            if kw.iter().any(|k| w.eq_ignore_ascii_case(k)) {
                table.clone()
            } else {
                p.ident()?
            }
        } else {
            table.clone()
        };
        tables.push(FromTable {
            alias,
            table: def.schema.name.clone(),
            schema: def.schema.clone(),
            pkey_col: def.pkey_col,
        });
        if !p.sym(",") {
            break;
        }
    }

    let where_expr = if p.kw("WHERE") { Some(p.expr()?) } else { None };
    let group_by: Vec<String> = if p.kw("GROUP") {
        p.expect_kw("BY")?;
        let mut cols = Vec::new();
        loop {
            let mut name = p.ident()?;
            if p.sym(".") {
                name = format!("{name}.{}", p.ident()?);
            }
            cols.push(name);
            if !p.sym(",") {
                break;
            }
        }
        cols
    } else {
        Vec::new()
    };
    let having = if p.kw("HAVING") {
        Some(p.expr()?)
    } else {
        None
    };
    let window = if p.kw("WINDOW") {
        Some(p.duration()?)
    } else {
        None
    };
    let epoch = if p.kw("EPOCH") {
        Some(p.duration()?)
    } else {
        None
    };
    let renew = if p.kw("RENEW") {
        Some(p.duration()?)
    } else {
        None
    };
    if p.peek().is_some() {
        return Err(format!("trailing tokens at {:?}", p.peek()));
    }

    // Expand `*` in FROM order so output columns are order-independent:
    // qualified names re-resolve correctly under any join order.
    let mut select: Vec<SelectItem> = Vec::new();
    for item in items {
        if item.expr == PExpr::Col("*".into()) {
            for t in &tables {
                for f in &t.schema.fields {
                    select.push(SelectItem {
                        expr: PExpr::Col(format!("{}.{}", t.alias, f.name)),
                        alias: None,
                    });
                }
            }
        } else {
            select.push(item);
        }
    }

    let mut cs = Vec::new();
    if let Some(w) = where_expr {
        conjuncts(w, &mut cs);
    }

    Ok(ParsedQuery {
        tables,
        select,
        conjuncts: cs,
        group_by,
        having,
        window,
        epoch,
        renew,
    })
}

/// WHERE conjuncts classified against one join order.
struct Classified {
    /// Single-table predicates per ordered table, remapped to each
    /// table's local columns (pushed to the scan).
    scan_preds: Vec<Vec<Expr>>,
    /// Cross-table equality edges as global column pairs, the end in the
    /// earlier-ordered table first; conjunct order preserved.
    edges: Vec<(usize, usize)>,
    /// Remaining conjuncts, evaluable only above a join (global basis).
    cross_preds: Vec<Expr>,
}

fn classify(resolver: &Resolver, conjs: &[PExpr]) -> Result<Classified, String> {
    let n = resolver.tables.len();
    let mut out = Classified {
        scan_preds: vec![Vec::new(); n],
        edges: Vec::new(),
        cross_preds: Vec::new(),
    };
    for pe in conjs {
        let lowered = resolver.lower(pe)?;
        let mut cols = Vec::new();
        lowered.columns(&mut cols);
        let mut ts: Vec<usize> = cols.iter().map(|&c| resolver.table_of(c)).collect();
        ts.sort_unstable();
        ts.dedup();
        if ts.len() <= 1 {
            // Single-table (or constant) predicate: push to that scan.
            let t = ts.first().copied().unwrap_or(0);
            let off = resolver.tables[t].offset;
            let local = lowered
                .remap_cols(&|c| Some(c - off))
                .map_err(|e| e.to_string())?;
            out.scan_preds[t].push(local);
            continue;
        }
        if let Expr::Bin(BinOp::Eq, a, b) = &lowered {
            if let (Expr::Col(x), Expr::Col(y)) = (a.as_ref(), b.as_ref()) {
                let (tx, ty) = (resolver.table_of(*x), resolver.table_of(*y));
                if tx != ty {
                    let (lo, hi) = if tx < ty { (*x, *y) } else { (*y, *x) };
                    out.edges.push((lo, hi));
                    continue;
                }
            }
        }
        out.cross_preds.push(lowered);
    }
    Ok(out)
}

/// Columns a parsed expression reads, descending into aggregate
/// arguments (which scalar lowering rejects), as global indices.
fn pexpr_columns(resolver: &Resolver, e: &PExpr, out: &mut Vec<usize>) -> Result<(), String> {
    match e {
        PExpr::Col(name) => {
            let c = resolver.col(name)?;
            if !out.contains(&c) {
                out.push(c);
            }
        }
        PExpr::Lit(_) => {}
        PExpr::Not(i) => pexpr_columns(resolver, i, out)?,
        PExpr::Bin(_, l, r) => {
            pexpr_columns(resolver, l, out)?;
            pexpr_columns(resolver, r, out)?;
        }
        PExpr::Call(_, args) => {
            for a in args {
                pexpr_columns(resolver, a, out)?;
            }
        }
        PExpr::Agg(_, arg) => {
            if let Some(a) = arg {
                pexpr_columns(resolver, a, out)?;
            }
        }
    }
    Ok(())
}

/// Join-graph summary the cost-based planner needs to pick an order:
/// per-table predicate presence, the equality edges as FROM-order
/// table-index pairs, and the required-columns analysis — which columns
/// of each table the dataflow must ever ship (join keys, columns of
/// residual cross-table predicates, and SELECT / GROUP BY /
/// aggregate-argument columns; columns read only by pushed-down scan
/// predicates are evaluated at the data's home node and never ship).
pub(crate) struct PlanInfo {
    pub(crate) table_names: Vec<String>,
    pub(crate) has_pred: Vec<bool>,
    pub(crate) edges: Vec<(usize, usize)>,
    /// Per FROM-order table: shipped columns as local indices, sorted.
    pub(crate) ship_cols: Vec<Vec<usize>>,
}

pub(crate) fn plan_info(p: &ParsedQuery) -> Result<PlanInfo, String> {
    let order: Vec<usize> = (0..p.tables.len()).collect();
    let resolver = Resolver::new(&p.tables, &order);
    let cls = classify(&resolver, &p.conjuncts)?;
    let mut shipped: Vec<usize> = Vec::new();
    for item in &p.select {
        pexpr_columns(&resolver, &item.expr, &mut shipped)?;
    }
    for g in &p.group_by {
        let c = resolver.col(g)?;
        if !shipped.contains(&c) {
            shipped.push(c);
        }
    }
    if let Some(h) = &p.having {
        // HAVING may reference select aliases; those resolve to columns
        // already collected from the SELECT list, so skip unknown names.
        let mut cols = Vec::new();
        if pexpr_columns(&resolver, h, &mut cols).is_ok() {
            for c in cols {
                if !shipped.contains(&c) {
                    shipped.push(c);
                }
            }
        }
    }
    for e in &cls.cross_preds {
        e.columns(&mut shipped);
    }
    for &(a, b) in &cls.edges {
        for c in [a, b] {
            if !shipped.contains(&c) {
                shipped.push(c);
            }
        }
    }
    let mut ship_cols: Vec<Vec<usize>> = vec![Vec::new(); p.tables.len()];
    for c in shipped {
        let t = resolver.table_of(c);
        ship_cols[t].push(c - resolver.tables[t].offset);
    }
    for cols in &mut ship_cols {
        cols.sort_unstable();
        cols.dedup();
    }
    Ok(PlanInfo {
        table_names: p.tables.iter().map(|t| t.table.clone()).collect(),
        has_pred: cls.scan_preds.iter().map(|v| !v.is_empty()).collect(),
        edges: cls
            .edges
            .iter()
            .map(|&(a, b)| (resolver.table_of(a), resolver.table_of(b)))
            .collect(),
        ship_cols,
    })
}

/// Aggregate lowering: collect distinct aggregate calls from SELECT and
/// HAVING, then rewrite both onto the `[groups..., aggs...]` basis.
fn build_agg(
    resolver: &Resolver,
    select: &[SelectItem],
    group_by: &[String],
    having: &Option<PExpr>,
) -> Result<AggSpec, String> {
    let group_cols: Vec<usize> = group_by
        .iter()
        .map(|g| resolver.col(g))
        .collect::<Result<_, _>>()?;
    // Collect distinct aggregate calls.
    let mut calls: Vec<(AggFunc, Option<PExpr>)> = Vec::new();
    fn collect(e: &PExpr, calls: &mut Vec<(AggFunc, Option<PExpr>)>) {
        match e {
            PExpr::Agg(f, arg) => {
                let key = (*f, arg.as_deref().cloned());
                if !calls.contains(&key) {
                    calls.push(key);
                }
            }
            PExpr::Bin(_, l, r) => {
                collect(l, calls);
                collect(r, calls);
            }
            PExpr::Not(i) => collect(i, calls),
            PExpr::Call(_, args) => args.iter().for_each(|a| collect(a, calls)),
            _ => {}
        }
    }
    for item in select {
        collect(&item.expr, &mut calls);
    }
    if let Some(h) = having {
        collect(h, &mut calls);
    }
    // Lower an expression onto the [groups..., aggs...] basis.
    struct AggLower<'a> {
        resolver: &'a Resolver,
        group_cols: &'a [usize],
        calls: &'a [(AggFunc, Option<PExpr>)],
        aliases: &'a [(String, Expr)],
    }
    impl AggLower<'_> {
        fn lower(&self, e: &PExpr) -> Result<Expr, String> {
            match e {
                PExpr::Agg(f, arg) => {
                    let idx = self
                        .calls
                        .iter()
                        .position(|(cf, ca)| cf == f && ca.as_ref() == arg.as_deref())
                        .unwrap();
                    Ok(Expr::Col(self.group_cols.len() + idx))
                }
                PExpr::Col(name) => {
                    // A select alias (e.g. HAVING cnt > 10)?
                    if let Some((_, e)) = self
                        .aliases
                        .iter()
                        .find(|(a, _)| a.eq_ignore_ascii_case(name))
                    {
                        return Ok(e.clone());
                    }
                    let base = self.resolver.col(name)?;
                    self.group_cols
                        .iter()
                        .position(|&g| g == base)
                        .map(Expr::Col)
                        .ok_or_else(|| format!("column '{name}' not in GROUP BY"))
                }
                PExpr::Lit(v) => Ok(Expr::Lit(v.clone())),
                PExpr::Bin(op, l, r) => Ok(Expr::bin(*op, self.lower(l)?, self.lower(r)?)),
                PExpr::Not(i) => Ok(Expr::Not(Box::new(self.lower(i)?))),
                PExpr::Call(f, args) => Ok(Expr::Call(
                    *f,
                    args.iter()
                        .map(|a| self.lower(a))
                        .collect::<Result<_, _>>()?,
                )),
            }
        }
    }
    let agg_calls: Vec<AggCall> = calls
        .iter()
        .map(|(f, arg)| {
            Ok(AggCall {
                func: *f,
                arg: arg.as_ref().map(|a| resolver.lower(a)).transpose()?,
            })
        })
        .collect::<Result<_, String>>()?;
    let mut aliases: Vec<(String, Expr)> = Vec::new();
    let mut output = Vec::new();
    for item in select {
        let lower = AggLower {
            resolver,
            group_cols: &group_cols,
            calls: &calls,
            aliases: &aliases,
        };
        let e = lower.lower(&item.expr)?;
        if let Some(a) = &item.alias {
            aliases.push((a.clone(), e.clone()));
        }
        output.push(e);
    }
    let having_expr = having
        .as_ref()
        .map(|h| {
            AggLower {
                resolver,
                group_cols: &group_cols,
                calls: &calls,
                aliases: &aliases,
            }
            .lower(h)
        })
        .transpose()?;
    let mut spec = AggSpec::new(group_cols, agg_calls);
    spec.output = output;
    spec.having = having_expr;
    Ok(spec)
}

/// Narrow a join's output projection to the columns its aggregation
/// reads (GROUP BY keys and aggregate arguments), remapping the
/// [`AggSpec`] onto the narrowed basis — the required-columns analysis
/// for aggregate queries, so the schema-aware dataflow never ships a
/// column the aggregation ignores. Returns the projection expressions.
fn narrow_agg_input(agg: &mut AggSpec) -> Vec<Expr> {
    let mut used = agg.group_cols.clone();
    for call in &agg.aggs {
        if let Some(a) = &call.arg {
            a.columns(&mut used);
        }
    }
    used.sort_unstable();
    used.dedup();
    let map = |c: usize| used.iter().position(|&u| u == c);
    agg.group_cols = agg.group_cols.iter().map(|&c| map(c).unwrap()).collect();
    for call in &mut agg.aggs {
        if let Some(a) = &mut call.arg {
            *a = a.remap_cols(&map).expect("agg argument column kept");
        }
    }
    used.into_iter().map(Expr::col).collect()
}

/// Lower a parsed query under a specific join order (a permutation of
/// the FROM tables). One table lowers to a scan or aggregation; two
/// tables to a binary [`JoinSpec`] under the given strategy; three or
/// more to a left-deep [`MultiJoinSpec`] pipeline of chained symmetric
/// hash joins (the `strategy` argument applies to binary joins only).
pub(crate) fn lower_parsed(
    p: &ParsedQuery,
    order: &[usize],
    strategy: JoinStrategy,
) -> Result<QueryOp, String> {
    let n = p.tables.len();
    {
        let mut seen = vec![false; n];
        if order.len() != n {
            return Err("join order must cover every FROM table".into());
        }
        for &i in order {
            if i >= n || seen[i] {
                return Err("join order is not a permutation".into());
            }
            seen[i] = true;
        }
    }
    let resolver = Resolver::new(&p.tables, order);
    let mut cls = classify(&resolver, &p.conjuncts)?;

    let has_agg = !p.group_by.is_empty()
        || p.select.iter().any(|i| contains_agg(&i.expr))
        || p.having.as_ref().is_some_and(contains_agg);
    if p.epoch.is_some() && !has_agg {
        return Err("EPOCH requires aggregation (GROUP BY or aggregate calls)".into());
    }

    let make_scan = |t: &ResolvedTable, preds: Vec<Expr>| {
        let mut s = ScanSpec::new(&t.table, t.schema.arity(), t.pkey_col);
        if !preds.is_empty() {
            s.pred = Some(Expr::conjunction(preds));
        }
        s
    };

    let lower_select = |resolver: &Resolver| -> Result<Vec<Expr>, String> {
        p.select.iter().map(|i| resolver.lower(&i.expr)).collect()
    };

    match n {
        1 => {
            let scan = make_scan(&resolver.tables[0], std::mem::take(&mut cls.scan_preds[0]));
            if has_agg {
                let mut agg = build_agg(&resolver, &p.select, &p.group_by, &p.having)?;
                agg.epoch = p.epoch;
                Ok(QueryOp::Agg { scan, agg })
            } else {
                Ok(QueryOp::Scan {
                    scan,
                    project: lower_select(&resolver)?,
                })
            }
        }
        2 => {
            let mut edges = cls.edges.into_iter();
            let (jl, jr_global) = edges
                .next()
                .ok_or_else(|| "two-table query needs an equality join predicate".to_string())?;
            let arity_l = resolver.tables[0].schema.arity();
            let left = make_scan(&resolver.tables[0], std::mem::take(&mut cls.scan_preds[0]))
                .with_join_col(jl);
            let right = make_scan(&resolver.tables[1], std::mem::take(&mut cls.scan_preds[1]))
                .with_join_col(jr_global - arity_l);
            let mut join = JoinSpec::new(strategy, left, right);
            let mut post = cls.cross_preds;
            // Extra cross-table equalities are checked above the join.
            for (a, b) in edges {
                post.push(Expr::eq(Expr::col(a), Expr::col(b)));
            }
            join.post_pred = if post.is_empty() {
                None
            } else {
                Some(Expr::conjunction(post))
            };
            if has_agg {
                // The aggregation consumes only the columns it reads.
                let mut agg = build_agg(&resolver, &p.select, &p.group_by, &p.having)?;
                agg.epoch = p.epoch;
                join.project = narrow_agg_input(&mut agg);
                Ok(QueryOp::JoinAgg { join, agg })
            } else {
                join.project = lower_select(&resolver)?;
                Ok(QueryOp::Join(join))
            }
        }
        _ => {
            // Left-deep multi-way pipeline: stage k joins ordered table
            // k + 1 against the accumulated prefix.
            let n_stages = n - 1;
            let mut stage_join: Vec<Option<(usize, usize)>> = vec![None; n_stages];
            let mut stage_preds: Vec<Vec<Expr>> = vec![Vec::new(); n_stages];
            for (lo, hi) in cls.edges {
                let th = resolver.table_of(hi);
                let k = th - 1;
                if stage_join[k].is_none() {
                    stage_join[k] = Some((lo, hi - resolver.tables[th].offset));
                } else {
                    // A second edge into the same table: checked as a
                    // stage predicate over the accumulated schema.
                    stage_preds[k].push(Expr::eq(Expr::col(lo), Expr::col(hi)));
                }
            }
            for e in cls.cross_preds {
                let mut cols = Vec::new();
                e.columns(&mut cols);
                let k = cols
                    .iter()
                    .map(|&c| resolver.table_of(c))
                    .max()
                    .expect("cross pred has columns")
                    - 1;
                stage_preds[k].push(e);
            }
            for (k, sj) in stage_join.iter().enumerate() {
                if sj.is_none() {
                    return Err(format!(
                        "no equality predicate connects table '{}' to the preceding \
                         tables (cross products are unsupported)",
                        resolver.tables[k + 1].table
                    ));
                }
            }
            let base = make_scan(&resolver.tables[0], std::mem::take(&mut cls.scan_preds[0]));
            let stages: Vec<JoinStage> = (0..n_stages)
                .map(|k| {
                    let (left_col, right_col) = stage_join[k].unwrap();
                    let preds = std::mem::take(&mut cls.scan_preds[k + 1]);
                    JoinStage {
                        right: make_scan(&resolver.tables[k + 1], preds).with_join_col(right_col),
                        left_col,
                        stage_pred: if stage_preds[k].is_empty() {
                            None
                        } else {
                            Some(Expr::conjunction(std::mem::take(&mut stage_preds[k])))
                        },
                    }
                })
                .collect();
            let mut m = MultiJoinSpec::new(base, stages);
            if has_agg {
                // The aggregation consumes only the columns it reads.
                let mut agg = build_agg(&resolver, &p.select, &p.group_by, &p.having)?;
                agg.epoch = p.epoch;
                m.project = narrow_agg_input(&mut agg);
                Ok(QueryOp::MultiJoinAgg { join: m, agg })
            } else {
                m.project = lower_select(&resolver)?;
                Ok(QueryOp::MultiJoin(m))
            }
        }
    }
}

/// Parse a SQL string against a catalog, producing a resolved query op
/// with tables joined in FROM order. Binary joins default to the given
/// strategy; 3+-table queries lower to a symmetric-hash pipeline. The
/// cost-based entry point ([`crate::planner::plan_sql`]) additionally
/// picks the strategy and the join order.
pub fn parse_query(
    sql: &str,
    catalog: &Catalog,
    strategy: JoinStrategy,
) -> Result<QueryOp, String> {
    let parsed = parse_sql(sql, catalog)?;
    if parsed.window.is_some() || parsed.epoch.is_some() || parsed.renew.is_some() {
        // A bare QueryOp has nowhere to carry the window, and an epoch
        // or renewal period only makes sense on a standing descriptor —
        // silently wrapping either in a one-shot would be a different
        // query.
        return Err(
            "WINDOW/EPOCH/RENEW make a query continuous — use parse_continuous_query".into(),
        );
    }
    let order: Vec<usize> = (0..parsed.n_tables()).collect();
    lower_parsed(&parsed, &order, strategy)
}

/// Parse a SQL string with optional `WINDOW` / `EPOCH` / `RENEW`
/// clauses into a complete standing [`QueryDesc`]: continuous, with the
/// window bound to the descriptor (rehashed soft-state lifetime), the
/// epoch bound to the aggregation spec (per-epoch re-emission), and the
/// renewal period bound to the descriptor (per-query soft-state
/// renewal). Plain SQL parses too — the result is then a continuous
/// query with no window, epoch, or renewal period.
pub fn parse_continuous_query(
    sql: &str,
    catalog: &Catalog,
    strategy: JoinStrategy,
    qid: u64,
    initiator: NodeId,
) -> Result<QueryDesc, String> {
    let parsed = parse_sql(sql, catalog)?;
    if parsed.renew.is_some() && parsed.window.is_some() {
        // Windowed soft state must age out of the DHT — renewing it
        // would widen the window arbitrarily.
        return Err("RENEW applies to unwindowed queries (windowed state must age out)".into());
    }
    let order: Vec<usize> = (0..parsed.n_tables()).collect();
    let window = parsed.window;
    let renew = parsed.renew;
    let op = lower_parsed(&parsed, &order, strategy)?;
    let mut desc = QueryDesc::standing(qid, initiator, op, window);
    desc.renew_every = renew;
    Ok(desc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{reference_eval, same_multiset};
    use crate::tuple;
    use crate::tuple::Tuple;
    use std::collections::HashMap;

    fn catalogs() -> (Catalog, Catalog) {
        (Catalog::workload(), Catalog::intrusion())
    }

    #[test]
    fn parses_the_workload_query() {
        let (wl, _) = catalogs();
        let op = parse_query(
            "SELECT R.pkey, S.pkey, R.pad FROM R, S \
             WHERE R.num1 = S.pkey AND R.num2 > 50 AND S.num2 > 50 \
             AND f(R.num3, S.num3) > 30",
            &wl,
            JoinStrategy::SymmetricHash,
        )
        .unwrap();
        let QueryOp::Join(j) = op else {
            panic!("expected join")
        };
        assert_eq!(j.left.join_col, Some(1));
        assert_eq!(j.right.join_col, Some(0));
        assert!(j.left.pred.is_some());
        assert!(j.right.pred.is_some());
        assert!(j.post_pred.is_some());
        assert_eq!(j.project.len(), 3);
    }

    #[test]
    fn parses_the_simple_intrusion_aggregate() {
        let (_, intr) = catalogs();
        let op = parse_query(
            "SELECT I.fingerprint, count(*) AS cnt FROM intrusions I \
             GROUP BY I.fingerprint HAVING cnt > 10",
            &intr,
            JoinStrategy::SymmetricHash,
        )
        .unwrap();
        let QueryOp::Agg { agg, .. } = op else {
            panic!("expected agg")
        };
        assert_eq!(agg.group_cols, vec![1]);
        assert_eq!(agg.aggs.len(), 1);
        assert!(agg.having.is_some());
    }

    #[test]
    fn parses_the_weighted_intrusion_query() {
        let (_, intr) = catalogs();
        let op = parse_query(
            "SELECT I.fingerprint, count(*) * sum(R.weight) AS wcnt \
             FROM intrusions I, reputation R WHERE R.address = I.address \
             GROUP BY I.fingerprint HAVING wcnt > 10",
            &intr,
            JoinStrategy::SymmetricHash,
        )
        .unwrap();
        let QueryOp::JoinAgg { join, agg } = op else {
            panic!("expected join+agg")
        };
        // intrusions.address is col 2; reputation.address is col 0.
        assert_eq!(join.left.join_col, Some(2));
        assert_eq!(join.right.join_col, Some(0));
        assert_eq!(agg.aggs.len(), 2); // count(*), sum(weight)
        assert!(agg.having.is_some());
    }

    #[test]
    fn parses_the_compromised_nodes_join() {
        let (_, intr) = catalogs();
        let op = parse_query(
            "SELECT S.source FROM spamGateways AS S, robots AS R \
             WHERE S.smtpGWDomain = R.clientDomain",
            &intr,
            JoinStrategy::FetchMatches,
        )
        .unwrap();
        let QueryOp::Join(j) = op else { panic!() };
        assert_eq!(j.strategy, JoinStrategy::FetchMatches);
        assert_eq!(j.project.len(), 1);
    }

    #[test]
    fn parsed_query_evaluates_like_handwritten_reference() {
        let (wl, _) = catalogs();
        let op = parse_query(
            "SELECT R.pkey, S.num3 FROM R, S WHERE R.num1 = S.pkey AND R.num2 > 49",
            &wl,
            JoinStrategy::SymmetricHash,
        )
        .unwrap();
        let r: Vec<Tuple> = (0..40i64)
            .map(|k| tuple![k, k % 7, (k * 13) % 100, k % 5, crate::value::Value::Pad(8)])
            .collect();
        let s: Vec<Tuple> = (0..7i64).map(|k| tuple![k, 10i64, k + 100]).collect();
        let mut tables = HashMap::new();
        tables.insert("R".to_string(), r.clone());
        tables.insert("S".to_string(), s.clone());
        let out = reference_eval(&op, &tables);
        // Manual expectation.
        let mut expected = Vec::new();
        for t in &r {
            if let crate::value::Value::I64(num2) = t.get(2) {
                if *num2 > 49 {
                    let k = t.get(1).as_i64().unwrap();
                    expected.push(tuple![t.get(0).as_i64().unwrap(), k + 100]);
                }
            }
        }
        assert!(same_multiset(&out, &expected));
        assert!(!out.is_empty());
    }

    #[test]
    fn parses_a_three_table_chain() {
        let (wl, _) = catalogs();
        let op = parse_query(
            "SELECT R.pkey, S.pkey, T.pkey FROM R, S, T \
             WHERE R.num1 = S.pkey AND S.num3 = T.pkey \
             AND R.num2 > 50 AND T.num2 > 50 AND f(R.num3, S.num3) > 30",
            &wl,
            JoinStrategy::SymmetricHash,
        )
        .unwrap();
        let QueryOp::MultiJoin(m) = op else {
            panic!("expected multi-join")
        };
        assert_eq!(m.n_tables(), 3);
        assert_eq!(m.stages[0].left_col, 1); // R.num1
        assert_eq!(m.stages[0].right.join_col, Some(0)); // S.pkey
        assert_eq!(m.stages[1].left_col, 7); // S.num3 within R ++ S
        assert_eq!(m.stages[1].right.join_col, Some(0)); // T.pkey
        assert!(m.base.pred.is_some(), "R.num2 pushed to the R scan");
        assert!(m.stages[0].right.pred.is_none());
        assert!(m.stages[1].right.pred.is_some(), "T.num2 pushed to T");
        assert!(
            m.stages[0].stage_pred.is_some(),
            "f() evaluable after stage 0"
        );
        assert_eq!(m.project.len(), 3);
    }

    #[test]
    fn parses_a_three_table_star_with_aggregation() {
        let (_, intr) = catalogs();
        let op = parse_query(
            "SELECT I.fingerprint, count(*) AS cnt, max(A.severity) \
             FROM intrusions I, advisories A, reputation R \
             WHERE I.fingerprint = A.fingerprint AND I.address = R.address \
             AND A.severity > 6 AND R.weight > 1 \
             GROUP BY I.fingerprint HAVING cnt > 2",
            &intr,
            JoinStrategy::SymmetricHash,
        )
        .unwrap();
        let QueryOp::MultiJoinAgg { join, agg } = op else {
            panic!("expected multi-join agg")
        };
        // Star: both stages join against intrusions' columns.
        assert_eq!(join.stages[0].left_col, 1); // I.fingerprint
        assert_eq!(join.stages[1].left_col, 2); // I.address
                                                // The join ships only what the aggregation reads: the GROUP BY
                                                // key I.fingerprint and the max() argument A.severity.
        assert_eq!(join.project.len(), 2);
        assert_eq!(join.project[0], Expr::col(1)); // I.fingerprint
        assert_eq!(join.project[1], Expr::col(4)); // A.severity
        assert_eq!(agg.group_cols, vec![0], "remapped onto the narrow basis");
        assert_eq!(agg.aggs.len(), 2);
        assert!(agg.having.is_some());
    }

    #[test]
    fn multiway_lowering_matches_reference_under_any_order() {
        let (wl, _) = catalogs();
        let parsed = parse_sql(
            "SELECT R.pkey, T.num3 FROM R, S, T \
             WHERE R.num1 = S.pkey AND S.num3 = T.pkey AND T.num2 > 20",
            &wl,
        )
        .unwrap();
        let r: Vec<Tuple> = (0..40i64)
            .map(|k| tuple![k, k % 7, (k * 13) % 100, k % 5, crate::value::Value::Pad(8)])
            .collect();
        let s: Vec<Tuple> = (0..7i64).map(|k| tuple![k, 10i64, k % 3]).collect();
        let t: Vec<Tuple> = (0..3i64).map(|k| tuple![k, 50i64, k + 200]).collect();
        let mut tables = HashMap::new();
        tables.insert("R".to_string(), r);
        tables.insert("S".to_string(), s);
        tables.insert("T".to_string(), t);
        let mut baseline: Option<Vec<Tuple>> = None;
        // Every valid left-deep order yields the same result multiset
        // with the same output schema.
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2], [1, 2, 0]] {
            let op = lower_parsed(&parsed, &order, JoinStrategy::SymmetricHash).unwrap();
            let out = reference_eval(&op, &tables);
            assert!(!out.is_empty(), "order {order:?}");
            match &baseline {
                None => baseline = Some(out),
                Some(b) => assert!(same_multiset(b, &out), "order {order:?}"),
            }
        }
        // An order that breaks the chain (T before S, never adjacent to
        // its only edge partner) still connects via the accumulated
        // prefix, so only truly disconnected queries error:
        let bad = parse_sql("SELECT R.pkey FROM R, S, T WHERE R.num1 = S.pkey", &wl).unwrap();
        let err = lower_parsed(&bad, &[0, 1, 2], JoinStrategy::SymmetricHash).unwrap_err();
        assert!(err.contains("cross products"), "{err}");
    }

    #[test]
    fn window_and_epoch_clauses_build_a_standing_query() {
        let (_, intr) = catalogs();
        let desc = super::parse_continuous_query(
            "SELECT I.fingerprint, count(*) AS cnt FROM intrusions I \
             GROUP BY I.fingerprint HAVING cnt > 2 \
             WINDOW 90 SECONDS EPOCH 30 SECONDS",
            &intr,
            JoinStrategy::SymmetricHash,
            7,
            3,
        )
        .unwrap();
        assert!(desc.continuous);
        assert_eq!(desc.qid, 7);
        assert_eq!(desc.initiator, 3);
        assert_eq!(desc.window, Some(pier_simnet::time::Dur::from_secs(90)));
        let QueryOp::Agg { agg, .. } = &desc.op else {
            panic!("expected agg")
        };
        assert_eq!(agg.epoch, Some(pier_simnet::time::Dur::from_secs(30)));

        // Units: MS and MINUTES; bare numbers default to seconds.
        let desc = super::parse_continuous_query(
            "SELECT count(*) FROM intrusions WINDOW 2 MINUTES EPOCH 500 MS",
            &intr,
            JoinStrategy::SymmetricHash,
            8,
            0,
        )
        .unwrap();
        assert_eq!(desc.window, Some(pier_simnet::time::Dur::from_secs(120)));
        let QueryOp::Agg { agg, .. } = &desc.op else {
            panic!()
        };
        assert_eq!(agg.epoch, Some(pier_simnet::time::Dur::from_millis(500)));

        // Plain SQL through the continuous entry: standing, unwindowed.
        let desc = super::parse_continuous_query(
            "SELECT address FROM intrusions",
            &intr,
            JoinStrategy::SymmetricHash,
            9,
            0,
        )
        .unwrap();
        assert!(desc.continuous && desc.window.is_none());
    }

    #[test]
    fn renew_clause_binds_a_per_query_renewal_period() {
        let (_, intr) = catalogs();
        let desc = super::parse_continuous_query(
            "SELECT I.address, count(*) FROM intrusions I, advisories A \
             WHERE I.fingerprint = A.fingerprint \
             GROUP BY I.address EPOCH 30 SECONDS RENEW 45 SECONDS",
            &intr,
            JoinStrategy::SymmetricHash,
            11,
            0,
        )
        .unwrap();
        assert!(desc.continuous);
        assert_eq!(
            desc.renew_every,
            Some(pier_simnet::time::Dur::from_secs(45))
        );

        // RENEW alone makes a query standing (a renewed continuous join).
        let desc = super::parse_continuous_query(
            "SELECT I.address, R.weight FROM intrusions I, reputation R \
             WHERE I.address = R.address RENEW 20 SECONDS",
            &intr,
            JoinStrategy::SymmetricHash,
            12,
            0,
        )
        .unwrap();
        assert_eq!(
            desc.renew_every,
            Some(pier_simnet::time::Dur::from_secs(20))
        );
        assert!(desc.window.is_none());

        // One-shot entry points reject it…
        let err = parse_query(
            "SELECT address FROM intrusions RENEW 10 SECONDS",
            &intr,
            JoinStrategy::SymmetricHash,
        )
        .unwrap_err();
        assert!(err.contains("parse_continuous_query"), "{err}");
        // …and a window excludes renewal (windowed state must age out).
        let err = super::parse_continuous_query(
            "SELECT count(*) FROM intrusions WINDOW 60 SECONDS EPOCH 30 SECONDS RENEW 10 SECONDS",
            &intr,
            JoinStrategy::SymmetricHash,
            13,
            0,
        )
        .unwrap_err();
        assert!(err.contains("unwindowed"), "{err}");
        // Zero renewal periods are rejected like any other duration.
        assert!(super::parse_continuous_query(
            "SELECT count(*) FROM intrusions EPOCH 30 SECONDS RENEW 0",
            &intr,
            JoinStrategy::SymmetricHash,
            14,
            0,
        )
        .is_err());
    }

    #[test]
    fn epoch_requires_aggregation_and_window_requires_continuous() {
        let (_, intr) = catalogs();
        // Through the one-shot entry points both clauses are rejected.
        let err = parse_query(
            "SELECT address FROM intrusions EPOCH 10 SECONDS",
            &intr,
            JoinStrategy::SymmetricHash,
        )
        .unwrap_err();
        assert!(err.contains("parse_continuous_query"), "{err}");
        // EPOCH on a non-aggregate query is rejected at lowering.
        let err = super::parse_continuous_query(
            "SELECT address FROM intrusions EPOCH 10 SECONDS",
            &intr,
            JoinStrategy::SymmetricHash,
            1,
            0,
        )
        .unwrap_err();
        assert!(err.contains("EPOCH requires aggregation"), "{err}");
        let err = parse_query(
            "SELECT address FROM intrusions WINDOW 10 SECONDS",
            &intr,
            JoinStrategy::SymmetricHash,
        )
        .unwrap_err();
        assert!(err.contains("parse_continuous_query"), "{err}");
        // Zero and negative durations are rejected.
        assert!(super::parse_continuous_query(
            "SELECT count(*) FROM intrusions EPOCH 0",
            &intr,
            JoinStrategy::SymmetricHash,
            1,
            0,
        )
        .is_err());
    }

    #[test]
    fn rejects_unknown_names_and_bad_syntax() {
        let (wl, _) = catalogs();
        assert!(
            parse_query("SELECT x FROM R", &wl, JoinStrategy::SymmetricHash)
                .unwrap_err()
                .contains("unknown column")
        );
        assert!(
            parse_query("SELECT R.pkey FROM U", &wl, JoinStrategy::SymmetricHash)
                .unwrap_err()
                .contains("unknown table")
        );
        assert!(parse_query(
            "SELECT R.pkey, S.pkey FROM R, S",
            &wl,
            JoinStrategy::SymmetricHash
        )
        .unwrap_err()
        .contains("join predicate"));
        assert!(parse_query("FROM R", &wl, JoinStrategy::SymmetricHash).is_err());
    }

    #[test]
    fn star_expansion_and_alias_free_tables() {
        let (wl, _) = catalogs();
        let op = parse_query(
            "SELECT * FROM S WHERE num2 > 10",
            &wl,
            JoinStrategy::SymmetricHash,
        )
        .unwrap();
        let QueryOp::Scan { project, .. } = op else {
            panic!()
        };
        assert_eq!(project.len(), 3);
    }

    #[test]
    fn arithmetic_and_precedence() {
        let (wl, _) = catalogs();
        let op = parse_query(
            "SELECT pkey + 2 * num2 FROM S WHERE num2 >= 1 AND num3 <> 4",
            &wl,
            JoinStrategy::SymmetricHash,
        )
        .unwrap();
        let QueryOp::Scan { project, scan } = op else {
            panic!()
        };
        // 2*num2 binds tighter than +.
        let t = tuple![10i64, 3i64, 9i64];
        assert_eq!(project[0].eval(&t), crate::value::Value::I64(16));
        assert!(scan.pred.unwrap().matches(&t));
    }
}

//! DHT payloads and node-to-node messages of the query processor.

use pier_dht::msg::DhtMsg;
use pier_simnet::Wire;

use crate::agg::GroupAccs;
use crate::bloom::BloomFilter;
use crate::plan::QueryDesc;
use crate::tuple::FlatRow;
use crate::value::Value;

/// Which input of a binary join a fragment belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

impl Side {
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Everything PIER stores in or ships through the DHT.
// Variant sizes intentionally differ: a `Mini` projection IS the small
// fast path next to a full `Row`/`Tagged` tuple; boxing would add an
// allocation to the hottest path for no wire-size benefit.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum QpItem {
    /// A base-table tuple published by a wrapper (§2.2's "natural
    /// habitat" data, copied into the DHT as soft state). Stored and
    /// shipped in flat wire form: renewal, replication, and re-homing
    /// clone a refcounted byte buffer, not a `Vec<Value>`.
    Row(FlatRow),
    /// A rehashed join tuple in `NQ`: tagged with source table (§4.1)
    /// and carrying the join value to guard against resourceID hash
    /// collisions.
    Tagged {
        qid: u64,
        side: Side,
        join: Value,
        row: FlatRow,
    },
    /// Symmetric semi-join projection: (resourceID, join key) only.
    Mini {
        qid: u64,
        side: Side,
        pkey: Value,
        join: Value,
    },
    /// A Bloom-filter fragment (en route to a collector) or an OR-ed
    /// filter (multicast back); `side` names the table it summarizes.
    Bloom {
        qid: u64,
        side: Side,
        filter: BloomFilter,
    },
    /// A partial aggregate for one group.
    Partial {
        qid: u64,
        group: Vec<Value>,
        accs: GroupAccs,
    },
    /// A query descriptor (multicast payload).
    Query(QueryDesc),
    /// Best-effort uninstall notice (multicast payload): receivers tear
    /// the query down — cancel timers, stop renewing, drop operator
    /// state — and its DHT soft state then ages out within one lifetime
    /// (§3.2.3 reclamation-by-expiry; there is no distributed delete).
    Cancel { qid: u64 },
}

impl Wire for QpItem {
    fn wire_size(&self) -> usize {
        match self {
            QpItem::Row(t) => 2 + t.wire(),
            QpItem::Tagged { join, row, .. } => 11 + join.wire_size() + row.wire(),
            QpItem::Mini { pkey, join, .. } => 11 + pkey.wire_size() + join.wire_size(),
            QpItem::Bloom { filter, .. } => 11 + filter.wire_size(),
            QpItem::Partial { group, accs, .. } => {
                10 + group.iter().map(Value::wire_size).sum::<usize>() + accs.wire_size()
            }
            QpItem::Query(d) => d.wire_size(),
            QpItem::Cancel { .. } => 10,
        }
    }
}

/// The complete message type of a PIER node: the DHT sublayer's protocol
/// plus the query processor's direct (IP) messages.
#[allow(clippy::large_enum_variant)] // see QpItem: payload variants dominate by design
#[derive(Clone, Debug)]
pub enum PierMsg {
    Dht(DhtMsg<QpItem>),
    /// A result tuple delivered directly to the query initiator (§4.1:
    /// "sent to ... the initiating site of the query").
    Result {
        qid: u64,
        /// Logical identity of the result (derived from the constituent
        /// instanceIDs). Under `replication > 1` a healed replica can
        /// re-run a probe a dead primary already answered; the initiator
        /// drops re-emissions by this identity. `0` = never deduplicated
        /// (aggregate emissions, which legitimately repeat every epoch).
        ident: u64,
        row: FlatRow,
    },
    /// A partial aggregate climbing the hierarchical aggregation tree.
    AggUp {
        qid: u64,
        group: Vec<Value>,
        accs: GroupAccs,
    },
}

impl Wire for PierMsg {
    fn wire_size(&self) -> usize {
        match self {
            PierMsg::Dht(m) => m.wire_size(),
            PierMsg::Result { row, .. } => pier_dht::msg::HEADER_BYTES + 16 + row.wire(),
            PierMsg::AggUp { group, accs, .. } => {
                pier_dht::msg::HEADER_BYTES
                    + 8
                    + group.iter().map(Value::wire_size).sum::<usize>()
                    + accs.wire_size()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn padded_result_tuple_is_1kb_on_the_wire() {
        // The workload pads result tuples to 1 KB via R.pad (§5.1).
        let row = FlatRow::from_tuple(&tuple![1i64, 2i64, Value::Pad(1000)]);
        let msg = PierMsg::Result {
            qid: 1,
            ident: 0,
            row,
        };
        assert!(msg.wire_size() > 1000 && msg.wire_size() < 1120);
    }

    #[test]
    fn mini_is_much_smaller_than_tagged() {
        let mini = QpItem::Mini {
            qid: 1,
            side: Side::Left,
            pkey: Value::I64(1),
            join: Value::I64(2),
        };
        let tagged = QpItem::Tagged {
            qid: 1,
            side: Side::Left,
            join: Value::I64(2),
            row: FlatRow::from_tuple(&tuple![1i64, 2i64, 3i64, Value::Pad(1000)]),
        };
        assert!(mini.wire_size() * 10 < tagged.wire_size());
    }

    #[test]
    fn side_opposite() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
    }
}

//! The PIER node: DHT stack + query processor in one automaton (Fig. 1).
//!
//! The query processor is push-based (§3.3): there is no iterator loop,
//! only reactions to DHT upcalls — a query multicast installs operator
//! state, `newData` callbacks drive probing, `get` completions drive
//! fetching, timers drive Bloom collection and aggregate harvests, and
//! result tuples flow directly to the initiating node.

use std::collections::HashMap;
use std::sync::Arc;

use pier_dht::env::DhtEnv;
use pier_dht::event::DhtEvent;
use pier_dht::msg::Entry;
use pier_dht::{Dht, DhtConfig, Ns, Rid, DHT_TICK_TOKEN};
use pier_simnet::app::{App, Ctx};
use pier_simnet::time::{Dur, Time};
use pier_simnet::NodeId;
use rand::Rng;

use crate::agg::GroupAccs;
use crate::bloom::BloomFilter;
use crate::item::{PierMsg, QpItem, Side};
use crate::plan::{
    qns, AggSpec, JoinSpec, JoinStrategy, MultiJoinSpec, PipelineSchema, QueryDesc, QueryOp,
    ScanSpec,
};
use crate::tuple::Tuple;
use crate::value::Value;

/// Adapter: the DHT sublayer speaks `DhtMsg<QpItem>`, wrapped in
/// [`PierMsg::Dht`] on the wire.
struct PierEnv<'a, 'b> {
    ctx: &'a mut Ctx<'b, PierMsg>,
}

impl<'a, 'b> DhtEnv<QpItem> for PierEnv<'a, 'b> {
    fn now(&self) -> Time {
        self.ctx.now
    }
    fn me(&self) -> NodeId {
        self.ctx.me
    }
    fn send(&mut self, to: NodeId, msg: pier_dht::msg::DhtMsg<QpItem>) {
        self.ctx.send(to, PierMsg::Dht(msg));
    }
    fn timer(&mut self, after: Dur, token: u64) {
        self.ctx.set_timer(after, token);
    }
    fn rand64(&mut self) -> u64 {
        self.ctx.rng.gen()
    }
}

/// What an outstanding DHT `get` was issued for.
enum GetPurpose {
    /// Fetch Matches: probing the right table for one left tuple.
    FmProbe { qid: u64, left_row: Tuple },
    /// Symmetric semi-join: fetching one side of a matched pair.
    SemiFetch { qid: u64, pair: u64, side: Side },
}

/// Deferred work bound to a timer token.
enum TimerAction {
    /// Bloom collector: OR the collected fragments and multicast.
    BloomFlush { qid: u64, side: Side },
    /// Flat aggregation: finalize locally-owned groups, emit results.
    AggHarvest { qid: u64 },
    /// Join-aggregation: push locally accumulated partials into `NA`.
    JoinAggFlush { qid: u64 },
    /// Hierarchical aggregation: send merged partials to the tree parent.
    HierFlush { qid: u64 },
    /// Republish all soft state (the renewal loop of §3.2.3 / Fig. 6).
    Renew,
}

/// Per-query operator state at one node.
struct QueryInstance {
    desc: QueryDesc,
    /// Schema-aware projection plan: what every rehash, stage republish,
    /// and initiator ship carries, with expressions remapped onto the
    /// pruned layouts (binary joins and pipelines alike).
    view: Option<Arc<PipelineSchema>>,
    /// OR-ed Bloom filters received per summarized side.
    filters: [Option<BloomFilter>; 2],
    /// Whether each local side has been rehashed (Bloom strategy gates
    /// rehash on the opposite filter's arrival).
    rehashed: [bool; 2],
    /// Whether this node (as collector) already multicast each OR-ed
    /// filter — set by the early count-based flush or the timer.
    bloom_flushed: [bool; 2],
    /// How often the collector deadline has been extended while waiting
    /// for slow fragments.
    bloom_waits: [u8; 2],
    /// Semi-join pair assembly.
    pairs: HashMap<u64, PairFetch>,
    /// Local pre-aggregation (join-agg at NQ nodes, hierarchical agg).
    local_groups: HashMap<Vec<Value>, GroupAccs>,
}

struct PairFetch {
    left: Option<Vec<Tuple>>,
    right: Option<Vec<Tuple>>,
    pkey_left: Value,
    pkey_right: Value,
}

/// Why a namespace is interesting to a query at this node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NsRole {
    RehashNq,
    BaseLeft,
    BaseRight,
    /// Bloom collector for one side (true = right).
    BloomCollector(bool),
    /// Stage-k rehash namespace of a multi-way pipeline.
    MStage(u16),
    /// Base table `t` of a multi-way pipeline (0 = pipeline head;
    /// `t >= 1` is stage `t - 1`'s right input).
    MBase(u16),
}

/// A published item retained for renewal.
struct PubRecord {
    ns: Ns,
    rid: Rid,
    iid: u32,
    item: QpItem,
    lifetime: Dur,
}

/// One PIER node.
pub struct PierNode {
    pub dht: Dht<QpItem>,
    bootstrap: Option<NodeId>,
    queries: HashMap<u64, QueryInstance>,
    ns_routes: HashMap<Ns, Vec<(u64, NsRole)>>,
    /// Result log at the initiator: arrival time and tuple, per query.
    pub results: HashMap<u64, Vec<(Time, Tuple)>>,
    get_purpose: HashMap<u64, GetPurpose>,
    timer_actions: HashMap<u64, TimerAction>,
    next_token: u64,
    published: Vec<PubRecord>,
    renew_every: Option<Dur>,
    iid_seq: u32,
}

impl PierNode {
    /// A node that creates (`bootstrap = None`) or joins an overlay.
    pub fn new(cfg: DhtConfig, me: NodeId, bootstrap: Option<NodeId>) -> Self {
        Self::with_dht(Dht::new(cfg, me), bootstrap)
    }

    /// A node with a pre-built DHT stack (balanced bootstrap).
    pub fn with_dht(dht: Dht<QpItem>, bootstrap: Option<NodeId>) -> Self {
        PierNode {
            dht,
            bootstrap,
            queries: HashMap::new(),
            ns_routes: HashMap::new(),
            results: HashMap::new(),
            get_purpose: HashMap::new(),
            timer_actions: HashMap::new(),
            next_token: 1,
            published: Vec::new(),
            renew_every: None,
            iid_seq: 0,
        }
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Globally unique instanceID: publisher id in the high bits, local
    /// sequence in the low bits. Two publishers must never collide on
    /// (ns, rid, iid) or their puts would overwrite each other.
    fn fresh_iid(&mut self) -> u32 {
        self.iid_seq = (self.iid_seq + 1) & 0x3_FFFF;
        (self.dht.me() << 18) | self.iid_seq
    }

    /// Results received so far for a query this node initiated.
    pub fn query_results(&self, qid: u64) -> &[(Time, Tuple)] {
        self.results.get(&qid).map_or(&[], |v| v.as_slice())
    }

    // ------------------------------------------------------------------
    // Publishing (wrappers pushing data into the DHT, §2.2 / §3.3)
    // ------------------------------------------------------------------

    /// Publish rows of a table into the DHT, resourceID = primary key.
    /// Retains the rows so the renewal loop can republish them.
    pub fn publish_rows(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        table: &str,
        rows: Vec<Tuple>,
        pkey_col: usize,
        lifetime: Dur,
    ) {
        let ns = pier_dht::ns_of(table);
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for row in rows {
            let rid = row.get(pkey_col).hash64();
            let iid = self.fresh_iid();
            let item = QpItem::Row(row);
            self.dht
                .put(&mut env, ns, rid, iid, item.clone(), lifetime, &mut events);
            self.published.push(PubRecord {
                ns,
                rid,
                iid,
                item,
                lifetime,
            });
        }
        self.pump(ctx, events);
    }

    /// Start the renewal loop: republish everything every `every`.
    pub fn start_renewals(&mut self, ctx: &mut Ctx<PierMsg>, every: Dur) {
        self.renew_every = Some(every);
        let token = self.token();
        self.timer_actions.insert(token, TimerAction::Renew);
        ctx.set_timer(every, token);
    }

    fn renew_all(&mut self, ctx: &mut Ctx<PierMsg>) {
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for rec in &self.published {
            self.dht.renew(
                &mut env,
                rec.ns,
                rec.rid,
                rec.iid,
                rec.item.clone(),
                rec.lifetime,
                &mut events,
            );
        }
        if let Some(every) = self.renew_every {
            let token = self.token();
            self.timer_actions.insert(token, TimerAction::Renew);
            ctx.set_timer(every, token);
        }
        self.pump(ctx, events);
    }

    /// Number of rows this node has published (for harness assertions).
    pub fn published_count(&self) -> usize {
        self.published.len()
    }

    // ------------------------------------------------------------------
    // Query submission (initiator side)
    // ------------------------------------------------------------------

    /// Submit a query: multicast the descriptor to all nodes (§3.3).
    pub fn submit(&mut self, ctx: &mut Ctx<PierMsg>, desc: QueryDesc) {
        self.results.entry(desc.qid).or_default();
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht
            .multicast(&mut env, QpItem::Query(desc), &mut events);
        self.pump(ctx, events);
    }

    // ------------------------------------------------------------------
    // Event pump
    // ------------------------------------------------------------------

    fn pump(&mut self, ctx: &mut Ctx<PierMsg>, events: Vec<DhtEvent<QpItem>>) {
        for ev in events {
            match ev {
                DhtEvent::Multicast { origin: _, payload } => match payload {
                    QpItem::Query(desc) => self.install_query(ctx, desc),
                    QpItem::Bloom { qid, side, filter } => {
                        self.on_bloom_filter(ctx, qid, side, filter)
                    }
                    _ => {}
                },
                DhtEvent::NewData { entry } => self.on_new_data(ctx, entry),
                DhtEvent::GetResult { token, items } => self.on_get_result(ctx, token, items),
                DhtEvent::Joined | DhtEvent::LocationMapChanged => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Query installation
    // ------------------------------------------------------------------

    fn install_query(&mut self, ctx: &mut Ctx<PierMsg>, desc: QueryDesc) {
        let qid = desc.qid;
        if self.queries.contains_key(&qid) {
            return; // duplicate multicast delivery
        }
        let view = match &desc.op {
            QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => {
                Some(Arc::new(PipelineSchema::binary(j, desc.prune)))
            }
            QueryOp::MultiJoin(m) | QueryOp::MultiJoinAgg { join: m, .. } => {
                Some(Arc::new(PipelineSchema::build(m, desc.prune)))
            }
            _ => None,
        };
        let inst = QueryInstance {
            desc: desc.clone(),
            view,
            filters: [None, None],
            rehashed: [false, false],
            bloom_flushed: [false, false],
            bloom_waits: [0, 0],
            pairs: HashMap::new(),
            local_groups: HashMap::new(),
        };
        self.queries.insert(qid, inst);

        match &desc.op {
            QueryOp::Scan { scan, project } => {
                self.route_ns(scan.ns, qid, NsRole::BaseLeft);
                let rows = self.local_rows(scan);
                for row in rows {
                    let out = Tuple::new(project.iter().map(|e| e.eval(&row)).collect());
                    self.emit_result(ctx, qid, desc.initiator, out);
                }
            }
            QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => {
                let j = j.clone();
                self.route_ns(qns::rehash(qid), qid, NsRole::RehashNq);
                self.route_ns(j.left.ns, qid, NsRole::BaseLeft);
                self.route_ns(j.right.ns, qid, NsRole::BaseRight);
                // Snapshot rehash state that raced ahead of the query
                // multicast, *before* our own rehash adds to it.
                let pre_installed: Vec<Entry<QpItem>> =
                    self.dht.store.lscan(qns::rehash(qid)).cloned().collect();
                match j.strategy {
                    JoinStrategy::SymmetricHash => {
                        self.rehash_side(ctx, qid, Side::Left, None);
                        self.rehash_side(ctx, qid, Side::Right, None);
                    }
                    JoinStrategy::FetchMatches => self.fm_start(ctx, qid),
                    JoinStrategy::SymmetricSemiJoin => {
                        self.semi_rehash(ctx, qid, Side::Left);
                        self.semi_rehash(ctx, qid, Side::Right);
                    }
                    JoinStrategy::BloomFilter => self.bloom_start(ctx, qid, &j),
                }
                // Replay rehash state that arrived before installation.
                self.replay_rehash_ns(ctx, qid, pre_installed);
                if let QueryOp::JoinAgg { agg, .. } = &desc.op {
                    self.schedule_agg_timers(ctx, qid, agg.clone(), true);
                }
            }
            QueryOp::MultiJoin(m) | QueryOp::MultiJoinAgg { join: m, .. } => {
                let m = m.clone();
                for k in 0..m.stages.len() {
                    self.route_ns(qns::stage(qid, k), qid, NsRole::MStage(k as u16));
                }
                self.route_ns(m.base.ns, qid, NsRole::MBase(0));
                for (k, st) in m.stages.iter().enumerate() {
                    self.route_ns(st.right.ns, qid, NsRole::MBase(k as u16 + 1));
                }
                // Snapshot per-stage rehash state that raced ahead of the
                // query multicast, *before* our own rehash adds to it.
                let snapshots: Vec<Vec<Entry<QpItem>>> = (0..m.stages.len())
                    .map(|k| self.dht.store.lscan(qns::stage(qid, k)).cloned().collect())
                    .collect();
                for t in 0..m.n_tables() {
                    self.mj_rehash_table(ctx, qid, &m, t);
                }
                // Replay stage state that arrived before installation.
                for (k, snap) in snapshots.into_iter().enumerate() {
                    self.mj_replay(ctx, qid, &m, k, snap);
                }
                if let QueryOp::MultiJoinAgg { agg, .. } = &desc.op {
                    self.schedule_agg_timers(ctx, qid, agg.clone(), true);
                }
            }
            QueryOp::Agg { scan, agg } => {
                self.route_ns(scan.ns, qid, NsRole::BaseLeft);
                let rows = self.local_rows(scan);
                let agg = agg.clone();
                for row in rows {
                    self.accumulate(qid, &agg, &row);
                }
                if agg.hierarchical {
                    self.schedule_hier_flush(ctx, qid, &agg);
                } else {
                    self.flush_partials(ctx, qid, &agg);
                    self.schedule_agg_timers(ctx, qid, agg, false);
                }
            }
        }
    }

    fn route_ns(&mut self, ns: Ns, qid: u64, role: NsRole) {
        let routes = self.ns_routes.entry(ns).or_default();
        if !routes.contains(&(qid, role)) {
            routes.push((qid, role));
        }
    }

    /// Locally stored, selection-passing rows of a base table.
    fn local_rows(&self, scan: &ScanSpec) -> Vec<Tuple> {
        self.dht
            .lscan(scan.ns)
            .filter_map(|e| match &e.val {
                QpItem::Row(t) => Some(t.clone()),
                _ => None,
            })
            .filter(|t| scan.pred.as_ref().is_none_or(|p| p.matches(t)))
            .collect()
    }

    fn join_spec(&self, qid: u64) -> Option<JoinSpec> {
        match &self.queries.get(&qid)?.desc.op {
            QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => Some(j.clone()),
            _ => None,
        }
    }

    /// Rehash resourceID for a join value: either the value hash, or one
    /// of `m` buckets when the computation is confined to m nodes.
    fn rehash_rid(join: &Value, computation_nodes: Option<u32>) -> Rid {
        let h = join.hash64();
        match computation_nodes {
            Some(m) => h % m.max(1) as u64,
            None => h,
        }
    }

    // ------------------------------------------------------------------
    // Symmetric hash join (+ the rehash half of Bloom join)
    // ------------------------------------------------------------------

    /// Rehash the local fragment of one side into NQ, optionally gated
    /// by a Bloom filter over the opposite table's keys.
    fn rehash_side(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        side: Side,
        filter: Option<&BloomFilter>,
    ) {
        let Some(j) = self.join_spec(qid) else { return };
        let Some(inst) = self.queries.get_mut(&qid) else {
            return;
        };
        if inst.rehashed[side as usize] {
            return;
        }
        inst.rehashed[side as usize] = true;
        let view = inst.view.clone().expect("join view");
        let stage = &view.stages[0];
        let (scan, keep, join_idx) = match side {
            Side::Left => (&j.left, &view.keep_base, stage.join_idx_left),
            Side::Right => (&j.right, &stage.keep_right, stage.join_idx_right),
        };
        let window = self.queries[&qid].desc.window;
        let rows = self.local_rows(scan);
        let nq = qns::rehash(qid);
        let lifetime = window.unwrap_or(Dur::from_secs(600));
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for row in rows {
            let join = row.get(scan.join_col.unwrap()).clone();
            if let Some(f) = filter {
                if !f.contains(join.hash64()) {
                    continue;
                }
            }
            let projected = row.project(keep);
            debug_assert_eq!(projected.get(join_idx), &join);
            let rid = Self::rehash_rid(&join, j.computation_nodes);
            let iid = self.fresh_iid();
            let item = QpItem::Tagged {
                qid,
                side,
                join,
                row: projected,
            };
            self.dht
                .put(&mut env, nq, rid, iid, item, lifetime, &mut events);
        }
        self.pump(ctx, events);
    }

    /// Probe arriving NQ state against the opposite side (§4.1): "each
    /// node registers ... a newData callback; when a tuple arrives, a get
    /// is issued to find matches in the other table; this get is expected
    /// to stay local."
    fn probe_nq(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, entry: &Entry<QpItem>) {
        match &entry.val {
            QpItem::Tagged {
                side, join, row, ..
            } => {
                let (side, join, row) = (*side, join.clone(), row.clone());
                self.probe_tagged(ctx, qid, entry.ns, entry.rid, entry.iid, side, &join, &row);
            }
            QpItem::Mini {
                side, pkey, join, ..
            } => {
                let (side, pkey, join) = (*side, pkey.clone(), join.clone());
                self.probe_mini(ctx, qid, entry.ns, entry.rid, entry.iid, side, &pkey, &join);
            }
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn probe_tagged(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        ns: Ns,
        rid: Rid,
        my_iid: u32,
        side: Side,
        join: &Value,
        row: &Tuple,
    ) {
        let Some(inst) = self.queries.get(&qid) else {
            return;
        };
        let view = inst.view.clone().expect("join view");
        let initiator = inst.desc.initiator;
        let is_joinagg = matches!(inst.desc.op, QueryOp::JoinAgg { .. });
        let agg = match &inst.desc.op {
            QueryOp::JoinAgg { agg, .. } => Some(agg.clone()),
            _ => None,
        };
        // Local probe of the opposite hash-table partition.
        let matches: Vec<Tuple> = self
            .dht
            .store
            .get(ns, rid)
            .iter()
            .filter(|e| e.iid != my_iid)
            .filter_map(|e| match &e.val {
                QpItem::Tagged {
                    side: s,
                    join: jv,
                    row: r,
                    ..
                } if *s == side.opposite() && jv == join => Some(r.clone()),
                _ => None,
            })
            .collect();
        for other in matches {
            let joined = match side {
                Side::Left => row.concat(&other),
                Side::Right => other.concat(row),
            };
            let stage = &view.stages[0];
            if stage.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                // The initiator ship goes through the projected schema:
                // emit the surviving columns, then evaluate the output
                // expressions over that pruned basis.
                let shipped = joined.project(&stage.emit);
                let out = Tuple::new(view.project.iter().map(|e| e.eval(&shipped)).collect());
                if is_joinagg {
                    if let Some(a) = &agg {
                        self.accumulate(qid, a, &out);
                    }
                } else {
                    self.emit_result(ctx, qid, initiator, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Multi-way join pipelines (left-deep chains of §4.1 stages)
    // ------------------------------------------------------------------

    fn mj_spec(&self, qid: u64) -> Option<MultiJoinSpec> {
        match &self.queries.get(&qid)?.desc.op {
            QueryOp::MultiJoin(m) | QueryOp::MultiJoinAgg { join: m, .. } => Some(m.clone()),
            _ => None,
        }
    }

    /// Which stage namespace table `t` feeds, on which side, and via
    /// which of its own columns.
    fn mj_table_role(m: &MultiJoinSpec, t: usize) -> (&ScanSpec, usize, Side, usize) {
        if t == 0 {
            (&m.base, 0, Side::Left, m.stages[0].left_col)
        } else {
            let st = &m.stages[t - 1];
            let col = st.right.join_col.expect("stage join col");
            (&st.right, t - 1, Side::Right, col)
        }
    }

    /// Rehash this node's local fragment of pipeline table `t` into its
    /// stage namespace (the bulk, install-time analogue of
    /// [`Self::mj_rehash_one`]), projected onto the stage schema: only
    /// the columns some later stage or the final SELECT reads ship.
    fn mj_rehash_table(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, m: &MultiJoinSpec, t: usize) {
        let Some(view) = self.queries.get(&qid).and_then(|i| i.view.clone()) else {
            return;
        };
        let (scan, stage_k, side, join_col) = Self::mj_table_role(m, t);
        let keep = view.keep_for_table(t);
        let rows = self.local_rows(scan);
        let ns = qns::stage(qid, stage_k);
        let lifetime = self.mj_lifetime(qid);
        let puts: Vec<(Rid, u32, QpItem)> = rows
            .into_iter()
            .map(|row| {
                let join = row.get(join_col).clone();
                let iid = self.fresh_iid();
                (
                    join.hash64(),
                    iid,
                    QpItem::Tagged {
                        qid,
                        side,
                        join,
                        row: row.project(keep),
                    },
                )
            })
            .collect();
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (rid, iid, item) in puts {
            self.dht
                .put(&mut env, ns, rid, iid, item, lifetime, &mut events);
        }
        self.pump(ctx, events);
    }

    /// Continuous pipelines: one newly published base tuple of table `t`
    /// flows into its stage namespace.
    fn mj_rehash_one(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        m: &MultiJoinSpec,
        t: usize,
        row: Tuple,
    ) {
        let Some(view) = self.queries.get(&qid).and_then(|i| i.view.clone()) else {
            return;
        };
        let (scan, stage_k, side, join_col) = Self::mj_table_role(m, t);
        if !scan.pred.as_ref().is_none_or(|p| p.matches(&row)) {
            return;
        }
        let join = row.get(join_col).clone();
        let ns = qns::stage(qid, stage_k);
        let lifetime = self.mj_lifetime(qid);
        let iid = self.fresh_iid();
        let item = QpItem::Tagged {
            qid,
            side,
            join: join.clone(),
            row: row.project(view.keep_for_table(t)),
        };
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht.put(
            &mut env,
            ns,
            join.hash64(),
            iid,
            item,
            lifetime,
            &mut events,
        );
        self.pump(ctx, events);
    }

    /// Soft-state lifetime of rehashed/intermediate pipeline tuples: the
    /// query window when set (sliding-window semantics), else a renewal
    /// horizon.
    fn mj_lifetime(&self, qid: u64) -> Dur {
        self.queries
            .get(&qid)
            .and_then(|i| i.desc.window)
            .unwrap_or(Dur::from_secs(600))
    }

    /// Probe an arriving stage-k entry against the opposite side — the
    /// §4.1 newData callback, once per pipeline stage.
    fn mj_probe(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, k: usize, entry: &Entry<QpItem>) {
        let QpItem::Tagged {
            side, join, row, ..
        } = &entry.val
        else {
            return;
        };
        let (side, join, row) = (*side, join.clone(), row.clone());
        let Some(m) = self.mj_spec(qid) else { return };
        let Some(view) = self.queries.get(&qid).and_then(|i| i.view.clone()) else {
            return;
        };
        let matches: Vec<(Tuple, Time)> = self
            .dht
            .store
            .get(entry.ns, entry.rid)
            .iter()
            .filter(|e| e.iid != entry.iid)
            .filter_map(|e| match &e.val {
                QpItem::Tagged {
                    side: s,
                    join: jv,
                    row: r,
                    ..
                } if *s == side.opposite() && jv == &join => Some((r.clone(), e.expires)),
                _ => None,
            })
            .collect();
        for (other, other_expires) in matches {
            // The accumulated intermediate is always the left operand.
            // Both operands are already projected onto the stage schema.
            let joined = match side {
                Side::Left => row.concat(&other),
                Side::Right => other.concat(&row),
            };
            let stage = &view.stages[k];
            if stage.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                // A joined tuple lives only as long as its shortest-lived
                // constituent: restarting the window here would let late
                // arrivals join state that already aged out.
                let lifetime = entry.expires.min(other_expires).since(ctx.now);
                self.mj_advance(
                    ctx,
                    qid,
                    &m,
                    &view,
                    k,
                    joined.project(&stage.emit),
                    lifetime,
                );
            }
        }
    }

    /// A stage-k match (already projected onto the stage's outgoing
    /// schema): feed the next stage, or finalize. `lifetime` is the
    /// remaining life of the shortest-lived constituent, so windowed
    /// pipelines never resurrect aged-out state downstream.
    #[allow(clippy::too_many_arguments)]
    fn mj_advance(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        m: &MultiJoinSpec,
        view: &PipelineSchema,
        k: usize,
        row: Tuple,
        lifetime: Dur,
    ) {
        if k + 1 < m.stages.len() {
            if lifetime == Dur::ZERO {
                return; // a constituent already expired
            }
            // Publish the intermediate as soft state in the next stage's
            // namespace, keyed by its join value there.
            let join = row.get(view.stages[k + 1].join_idx_left).clone();
            let iid = self.fresh_iid();
            let item = QpItem::Tagged {
                qid,
                side: Side::Left,
                join: join.clone(),
                row,
            };
            let mut env = PierEnv { ctx };
            let mut events = Vec::new();
            self.dht.put(
                &mut env,
                qns::stage(qid, k + 1),
                join.hash64(),
                iid,
                item,
                lifetime,
                &mut events,
            );
            self.pump(ctx, events);
        } else {
            let Some(inst) = self.queries.get(&qid) else {
                return;
            };
            let initiator = inst.desc.initiator;
            let out = Tuple::new(view.project.iter().map(|e| e.eval(&row)).collect());
            match &inst.desc.op {
                QueryOp::MultiJoinAgg { agg, .. } => {
                    let agg = agg.clone();
                    self.accumulate(qid, &agg, &out);
                }
                _ => self.emit_result(ctx, qid, initiator, out),
            }
        }
    }

    /// Probe stage-k entries stored before this node learned about the
    /// query, pairwise against predecessors only (cf.
    /// [`Self::replay_rehash_ns`]).
    fn mj_replay(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        m: &MultiJoinSpec,
        k: usize,
        mut entries: Vec<Entry<QpItem>>,
    ) {
        if entries.is_empty() {
            return;
        }
        let Some(view) = self.queries.get(&qid).and_then(|i| i.view.clone()) else {
            return;
        };
        entries.sort_by_key(|e| (e.rid, e.iid));
        for i in 0..entries.len() {
            for j in 0..i {
                if entries[i].rid != entries[j].rid {
                    continue;
                }
                let (
                    QpItem::Tagged {
                        side: sa,
                        join: ja,
                        row: ra,
                        ..
                    },
                    QpItem::Tagged {
                        side: sb,
                        join: jb,
                        row: rb,
                        ..
                    },
                ) = (&entries[i].val, &entries[j].val)
                else {
                    continue;
                };
                if sa == sb || ja != jb {
                    continue;
                }
                let (l, r) = if *sa == Side::Left {
                    (ra, rb)
                } else {
                    (rb, ra)
                };
                let joined = l.concat(r);
                let stage = &view.stages[k];
                if stage.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    let lifetime = entries[i].expires.min(entries[j].expires).since(ctx.now);
                    self.mj_advance(ctx, qid, m, &view, k, joined.project(&stage.emit), lifetime);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch Matches (§4.1)
    // ------------------------------------------------------------------

    fn fm_start(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64) {
        let Some(j) = self.join_spec(qid) else { return };
        // The right table must already be hashed on the join attribute.
        debug_assert_eq!(
            j.right.join_col,
            Some(j.right.pkey_col),
            "Fetch Matches requires the fetched table hashed on the join key"
        );
        let rows = self.local_rows(&j.left);
        let mut work = Vec::new();
        for left_row in rows {
            let join = left_row.get(j.left.join_col.unwrap()).clone();
            let token = self.token();
            self.get_purpose
                .insert(token, GetPurpose::FmProbe { qid, left_row });
            work.push((j.right.ns, join.hash64(), token));
        }
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (ns, rid, token) in work {
            self.dht.get(&mut env, ns, rid, token, &mut events);
        }
        self.pump(ctx, events);
    }

    fn fm_complete(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        left_row: Tuple,
        items: Vec<Entry<QpItem>>,
    ) {
        let Some(j) = self.join_spec(qid) else { return };
        let Some(inst) = self.queries.get(&qid) else {
            return;
        };
        let initiator = inst.desc.initiator;
        let join = left_row.get(j.left.join_col.unwrap()).clone();
        for e in items {
            let QpItem::Row(right_row) = &e.val else {
                continue;
            };
            // "Selections on non-DHT attributes cannot be pushed into the
            // DHT": the right-side predicate is evaluated here, after the
            // fetch (§4.1).
            if right_row.get(j.right.join_col.unwrap()) != &join {
                continue; // resourceID hash collision
            }
            if !j.right.pred.as_ref().is_none_or(|p| p.matches(right_row)) {
                continue;
            }
            let joined = left_row.concat(right_row);
            if j.post_pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                let out = Tuple::new(j.project.iter().map(|e| e.eval(&joined)).collect());
                self.emit_result(ctx, qid, initiator, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Symmetric semi-join rewrite (§4.2)
    // ------------------------------------------------------------------

    fn semi_rehash(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, side: Side) {
        let Some(j) = self.join_spec(qid) else { return };
        let Some(inst) = self.queries.get_mut(&qid) else {
            return;
        };
        if inst.rehashed[side as usize] {
            return;
        }
        inst.rehashed[side as usize] = true;
        let scan = match side {
            Side::Left => &j.left,
            Side::Right => &j.right,
        };
        let rows = self.local_rows(scan);
        let nq = qns::rehash(qid);
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for row in rows {
            let join = row.get(scan.join_col.unwrap()).clone();
            let pkey = row.get(scan.pkey_col).clone();
            let rid = Self::rehash_rid(&join, j.computation_nodes);
            let iid = self.fresh_iid();
            let item = QpItem::Mini {
                qid,
                side,
                pkey,
                join,
            };
            self.dht.put(
                &mut env,
                nq,
                rid,
                iid,
                item,
                Dur::from_secs(600),
                &mut events,
            );
        }
        self.pump(ctx, events);
    }

    #[allow(clippy::too_many_arguments)]
    fn probe_mini(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        ns: Ns,
        rid: Rid,
        my_iid: u32,
        side: Side,
        pkey: &Value,
        join: &Value,
    ) {
        if self.join_spec(qid).is_none() {
            return;
        }
        // Find opposite-side minis with the same join value.
        let partners: Vec<Value> = self
            .dht
            .store
            .get(ns, rid)
            .iter()
            .filter(|e| e.iid != my_iid)
            .filter_map(|e| match &e.val {
                QpItem::Mini {
                    side: s,
                    pkey: pk,
                    join: jv,
                    ..
                } if *s == side.opposite() && jv == join => Some(pk.clone()),
                _ => None,
            })
            .collect();
        if partners.is_empty() {
            return;
        }
        for partner in partners {
            let (pk_l, pk_r) = match side {
                Side::Left => (pkey.clone(), partner),
                Side::Right => (partner, pkey.clone()),
            };
            self.semi_pair(ctx, qid, pk_l, pk_r);
        }
    }

    /// Issue the two parallel full-tuple fetches for a matched mini pair
    /// ("we issue the two joins' fetches in parallel since we know both
    /// fetches will succeed", §4.2).
    fn semi_pair(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, pk_l: Value, pk_r: Value) {
        let Some(j) = self.join_spec(qid) else { return };
        let pair = self.token();
        let Some(inst) = self.queries.get_mut(&qid) else {
            return;
        };
        inst.pairs.insert(
            pair,
            PairFetch {
                left: None,
                right: None,
                pkey_left: pk_l.clone(),
                pkey_right: pk_r.clone(),
            },
        );
        let tl = self.token();
        self.get_purpose.insert(
            tl,
            GetPurpose::SemiFetch {
                qid,
                pair,
                side: Side::Left,
            },
        );
        let tr = self.token();
        self.get_purpose.insert(
            tr,
            GetPurpose::SemiFetch {
                qid,
                pair,
                side: Side::Right,
            },
        );
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht
            .get(&mut env, j.left.ns, pk_l.hash64(), tl, &mut events);
        self.dht
            .get(&mut env, j.right.ns, pk_r.hash64(), tr, &mut events);
        self.pump(ctx, events);
    }

    fn semi_complete(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        pair: u64,
        side: Side,
        items: Vec<Entry<QpItem>>,
    ) {
        let Some(j) = self.join_spec(qid) else { return };
        let Some(inst) = self.queries.get_mut(&qid) else {
            return;
        };
        let Some(p) = inst.pairs.get_mut(&pair) else {
            return;
        };
        let rows: Vec<Tuple> = items
            .iter()
            .filter_map(|e| match &e.val {
                QpItem::Row(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        match side {
            Side::Left => p.left = Some(rows),
            Side::Right => p.right = Some(rows),
        }
        if p.left.is_none() || p.right.is_none() {
            return;
        }
        let p = inst.pairs.remove(&pair).unwrap();
        let initiator = inst.desc.initiator;
        let lefts: Vec<Tuple> = p
            .left
            .unwrap()
            .into_iter()
            .filter(|t| t.get(j.left.pkey_col) == &p.pkey_left)
            .collect();
        let rights: Vec<Tuple> = p
            .right
            .unwrap()
            .into_iter()
            .filter(|t| t.get(j.right.pkey_col) == &p.pkey_right)
            .collect();
        for l in &lefts {
            for r in &rights {
                let joined = l.concat(r);
                if j.post_pred.as_ref().is_none_or(|pp| pp.matches(&joined)) {
                    let out = Tuple::new(j.project.iter().map(|e| e.eval(&joined)).collect());
                    self.emit_result(ctx, qid, initiator, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Bloom-filter rewrite (§4.2)
    // ------------------------------------------------------------------

    fn bloom_start(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, j: &JoinSpec) {
        // Publish a filter fragment per local side.
        let mut work = Vec::new();
        for (side, scan) in [(Side::Left, &j.left), (Side::Right, &j.right)] {
            let mut filter = BloomFilter::new(j.bloom_bits, 4);
            for row in self.local_rows(scan) {
                filter.insert(row.get(scan.join_col.unwrap()).hash64());
            }
            work.push((side, filter));
        }
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (side, filter) in work {
            let ns = qns::bloom(qid, side == Side::Right);
            let me = env.me();
            self.dht.put(
                &mut env,
                ns,
                0,
                me,
                QpItem::Bloom { qid, side, filter },
                Dur::from_secs(600),
                &mut events,
            );
        }
        // If we own a collector key, schedule the OR-and-multicast: a
        // deadline as fallback, plus an early flush once fragments from
        // every node have arrived (see `on_new_data`).
        for side in [Side::Left, Side::Right] {
            let ns = qns::bloom(qid, side == Side::Right);
            if self.dht.owns_key(pier_dht::key_of(ns, 0)) {
                let token = self.token();
                self.timer_actions
                    .insert(token, TimerAction::BloomFlush { qid, side });
                env.timer(j.bloom_wait, token);
            }
        }
        for side in [false, true] {
            self.route_ns(qns::bloom(qid, side), qid, NsRole::BloomCollector(side));
        }
        self.pump(ctx, events);
    }

    fn bloom_flush(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, side: Side) {
        let Some(j) = self.join_spec(qid) else { return };
        {
            let Some(inst) = self.queries.get_mut(&qid) else {
                return;
            };
            if inst.bloom_flushed[side as usize] {
                return;
            }
            inst.bloom_flushed[side as usize] = true;
        }
        let ns = qns::bloom(qid, side == Side::Right);
        let mut merged = BloomFilter::new(j.bloom_bits, 4);
        for e in self.dht.store.lscan(ns) {
            if let QpItem::Bloom { filter, .. } = &e.val {
                merged.union(filter);
            }
        }
        // "The filters are OR-ed together and then multicast to all nodes
        // storing the opposite table" — our multicast reaches all nodes;
        // non-holders simply have nothing to rehash.
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht.multicast(
            &mut env,
            QpItem::Bloom {
                qid,
                side,
                filter: merged,
            },
            &mut events,
        );
        self.pump(ctx, events);
    }

    fn on_bloom_filter(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, side: Side, f: BloomFilter) {
        let Some(inst) = self.queries.get_mut(&qid) else {
            return;
        };
        if inst.filters[side as usize].is_some() {
            return;
        }
        inst.filters[side as usize] = Some(f.clone());
        // A filter over side X gates the rehash of the *opposite* table.
        self.rehash_side(ctx, qid, side.opposite(), Some(&f));
    }

    // ------------------------------------------------------------------
    // Aggregation (flat DHT grouping + hierarchical extension)
    // ------------------------------------------------------------------

    fn accumulate(&mut self, qid: u64, agg: &AggSpec, row: &Tuple) {
        let Some(inst) = self.queries.get_mut(&qid) else {
            return;
        };
        let group: Vec<Value> = agg.group_cols.iter().map(|&c| row.get(c).clone()).collect();
        let accs = inst
            .local_groups
            .entry(group)
            .or_insert_with(|| GroupAccs::new(&agg.aggs));
        accs.update(&agg.aggs, row);
    }

    /// Push local partials into the NA namespace (flat aggregation).
    fn flush_partials(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, agg: &AggSpec) {
        let Some(inst) = self.queries.get_mut(&qid) else {
            return;
        };
        let groups: Vec<(Vec<Value>, GroupAccs)> = inst.local_groups.drain().collect();
        let na = qns::agg(qid);
        let harvest = agg.harvest;
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (group, accs) in groups {
            let rid = group_rid(&group);
            let me = env.me();
            self.dht.put(
                &mut env,
                na,
                rid,
                me,
                QpItem::Partial { qid, group, accs },
                harvest.saturating_mul(4),
                &mut events,
            );
        }
        self.pump(ctx, events);
    }

    fn schedule_agg_timers(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        agg: AggSpec,
        joinagg: bool,
    ) {
        if joinagg {
            // NQ nodes accumulate join outputs, then flush halfway.
            let token = self.token();
            self.timer_actions
                .insert(token, TimerAction::JoinAggFlush { qid });
            ctx.set_timer(Dur::from_micros(agg.harvest.as_micros() / 2), token);
        }
        let token = self.token();
        self.timer_actions
            .insert(token, TimerAction::AggHarvest { qid });
        ctx.set_timer(agg.harvest, token);
    }

    /// Finalize every group whose partials landed here; apply HAVING;
    /// ship results to the initiator.
    fn agg_harvest(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64) {
        let Some(inst) = self.queries.get(&qid) else {
            return;
        };
        let agg = match &inst.desc.op {
            QueryOp::Agg { agg, .. }
            | QueryOp::JoinAgg { agg, .. }
            | QueryOp::MultiJoinAgg { agg, .. } => agg.clone(),
            _ => return,
        };
        let initiator = inst.desc.initiator;
        let na = qns::agg(qid);
        let mut merged: HashMap<Vec<Value>, GroupAccs> = HashMap::new();
        for e in self.dht.store.lscan(na) {
            if let QpItem::Partial {
                group,
                accs,
                qid: q,
            } = &e.val
            {
                if *q != qid {
                    continue;
                }
                merged
                    .entry(group.clone())
                    .and_modify(|m| m.merge(accs))
                    .or_insert_with(|| accs.clone());
            }
        }
        for (group, accs) in merged {
            let virt = accs.output_row(&group);
            if agg.having.as_ref().is_none_or(|h| h.matches(&virt)) {
                let out = Tuple::new(agg.output.iter().map(|e| e.eval(&virt)).collect());
                self.emit_result(ctx, qid, initiator, out);
            }
        }
    }

    /// Hierarchical aggregation: stagger flushes so deeper nodes send
    /// before their parents, merging along a binary tree over node ids.
    fn schedule_hier_flush(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, agg: &AggSpec) {
        let n = self.queries[&qid].desc.n_nodes.max(1);
        let max_depth = 64 - (n as u64).leading_zeros() as u64;
        let me = self.dht.me() as u64;
        let depth = 64 - (me + 1).leading_zeros() as u64;
        // Deeper levels flush earlier.
        let slot = max_depth.saturating_sub(depth) + 1;
        let delay = Dur::from_micros(agg.harvest.as_micros() * slot / (max_depth + 2));
        let token = self.token();
        self.timer_actions
            .insert(token, TimerAction::HierFlush { qid });
        ctx.set_timer(delay, token);
    }

    fn hier_flush(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64) {
        let Some(inst) = self.queries.get_mut(&qid) else {
            return;
        };
        let agg = match &inst.desc.op {
            QueryOp::Agg { agg, .. } => agg.clone(),
            _ => return,
        };
        let initiator = inst.desc.initiator;
        let groups: Vec<(Vec<Value>, GroupAccs)> = inst.local_groups.drain().collect();
        let me = self.dht.me();
        if me == 0 {
            // Root: finalize.
            for (group, accs) in groups {
                let virt = accs.output_row(&group);
                if agg.having.as_ref().is_none_or(|h| h.matches(&virt)) {
                    let out = Tuple::new(agg.output.iter().map(|e| e.eval(&virt)).collect());
                    self.emit_result(ctx, qid, initiator, out);
                }
            }
        } else {
            let parent = (me - 1) / 2;
            for (group, accs) in groups {
                ctx.send(parent, PierMsg::AggUp { qid, group, accs });
            }
        }
    }

    fn on_agg_up(&mut self, qid: u64, group: Vec<Value>, accs: GroupAccs) {
        let Some(inst) = self.queries.get_mut(&qid) else {
            return;
        };
        inst.local_groups
            .entry(group)
            .and_modify(|m| m.merge(&accs))
            .or_insert(accs);
    }

    // ------------------------------------------------------------------
    // Dispatch plumbing
    // ------------------------------------------------------------------

    fn on_new_data(&mut self, ctx: &mut Ctx<PierMsg>, entry: Entry<QpItem>) {
        let Some(routes) = self.ns_routes.get(&entry.ns) else {
            return;
        };
        let routes = routes.clone();
        for (qid, role) in routes {
            match role {
                NsRole::RehashNq => self.probe_nq(ctx, qid, &entry),
                NsRole::MStage(k) => self.mj_probe(ctx, qid, k as usize, &entry),
                NsRole::BaseLeft | NsRole::BaseRight | NsRole::MBase(_) => {
                    self.on_base_new_data(ctx, qid, role, &entry)
                }
                NsRole::BloomCollector(right) => {
                    // Early flush once every participant's fragment is in.
                    let n_expected = self
                        .queries
                        .get(&qid)
                        .map_or(0, |i| i.desc.n_nodes as usize);
                    if n_expected > 0 && self.dht.store.ns_len(entry.ns) >= n_expected {
                        let side = if right { Side::Right } else { Side::Left };
                        self.bloom_flush(ctx, qid, side);
                    }
                }
            }
        }
    }

    /// Continuous queries: a newly published base tuple flows through the
    /// installed pipeline incrementally.
    fn on_base_new_data(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        role: NsRole,
        entry: &Entry<QpItem>,
    ) {
        let Some(inst) = self.queries.get(&qid) else {
            return;
        };
        if !inst.desc.continuous {
            return;
        }
        let QpItem::Row(row) = &entry.val else { return };
        let row = row.clone();
        let initiator = inst.desc.initiator;
        match inst.desc.op.clone() {
            QueryOp::Scan { scan, project } => {
                if scan.pred.as_ref().is_none_or(|p| p.matches(&row)) {
                    let out = Tuple::new(project.iter().map(|e| e.eval(&row)).collect());
                    self.emit_result(ctx, qid, initiator, out);
                }
            }
            QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => {
                let side = if role == NsRole::BaseLeft {
                    Side::Left
                } else {
                    Side::Right
                };
                self.rehash_one(ctx, qid, &j, side, row);
            }
            QueryOp::MultiJoin(m) | QueryOp::MultiJoinAgg { join: m, .. } => {
                if let NsRole::MBase(t) = role {
                    self.mj_rehash_one(ctx, qid, &m, t as usize, row);
                }
            }
            QueryOp::Agg { .. } => {
                // One-shot aggregates only; continuous aggregation would
                // need retraction or periodic re-emission.
            }
        }
    }

    /// Rehash a single (newly arrived) tuple for a continuous join.
    fn rehash_one(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        j: &JoinSpec,
        side: Side,
        row: Tuple,
    ) {
        let Some(inst) = self.queries.get(&qid) else {
            return;
        };
        let view = inst.view.clone().expect("join view");
        let window = inst.desc.window;
        let (scan, keep) = match side {
            Side::Left => (&j.left, &view.keep_base),
            Side::Right => (&j.right, &view.stages[0].keep_right),
        };
        if !scan.pred.as_ref().is_none_or(|p| p.matches(&row)) {
            return;
        }
        let join = row.get(scan.join_col.unwrap()).clone();
        let rid = Self::rehash_rid(&join, j.computation_nodes);
        let lifetime = window.unwrap_or(Dur::from_secs(600));
        let iid = self.fresh_iid();
        let item = QpItem::Tagged {
            qid,
            side,
            join,
            row: row.project(keep),
        };
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht.put(
            &mut env,
            qns::rehash(qid),
            rid,
            iid,
            item,
            lifetime,
            &mut events,
        );
        self.pump(ctx, events);
    }

    /// Probe NQ entries that were stored before this node learned about
    /// the query (multicast races the first rehash puts). Entries are
    /// replayed in a fixed order, each probing only its predecessors, so
    /// no pair is produced twice.
    fn replay_rehash_ns(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        mut entries: Vec<Entry<QpItem>>,
    ) {
        if entries.is_empty() {
            return;
        }
        entries.sort_by_key(|e| (e.rid, e.iid));
        // Probe pairs directly: replaying the k-th entry against a store
        // containing all of them would double-count.
        for i in 0..entries.len() {
            for k in 0..i {
                if entries[i].rid == entries[k].rid {
                    self.probe_pairwise(ctx, qid, &entries[i], &entries[k]);
                }
            }
        }
    }

    fn probe_pairwise(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        a: &Entry<QpItem>,
        b: &Entry<QpItem>,
    ) {
        let Some(inst) = self.queries.get(&qid) else {
            return;
        };
        match (&a.val, &b.val) {
            (
                QpItem::Tagged {
                    side: sa,
                    join: ja,
                    row: ra,
                    ..
                },
                QpItem::Tagged {
                    side: sb,
                    join: jb,
                    row: rb,
                    ..
                },
            ) => {
                if sa == sb || ja != jb {
                    return;
                }
                let view = inst.view.clone().expect("join view");
                let initiator = inst.desc.initiator;
                let is_joinagg = matches!(inst.desc.op, QueryOp::JoinAgg { .. });
                let agg = match &inst.desc.op {
                    QueryOp::JoinAgg { agg, .. } => Some(agg.clone()),
                    _ => None,
                };
                let (l, r) = if *sa == Side::Left {
                    (ra, rb)
                } else {
                    (rb, ra)
                };
                let joined = l.concat(r);
                let stage = &view.stages[0];
                if stage.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    let shipped = joined.project(&stage.emit);
                    let out = Tuple::new(view.project.iter().map(|e| e.eval(&shipped)).collect());
                    if is_joinagg {
                        if let Some(ag) = &agg {
                            self.accumulate(qid, ag, &out);
                        }
                    } else {
                        self.emit_result(ctx, qid, initiator, out);
                    }
                }
            }
            (
                QpItem::Mini {
                    side: sa,
                    pkey: pa,
                    join: ja,
                    ..
                },
                QpItem::Mini {
                    side: sb,
                    pkey: pb,
                    join: jb,
                    ..
                },
            ) => {
                if sa == sb || ja != jb {
                    return;
                }
                let (pk_l, pk_r) = if *sa == Side::Left {
                    (pa.clone(), pb.clone())
                } else {
                    (pb.clone(), pa.clone())
                };
                self.semi_pair(ctx, qid, pk_l, pk_r);
            }
            _ => {}
        }
    }

    fn on_get_result(&mut self, ctx: &mut Ctx<PierMsg>, token: u64, items: Vec<Entry<QpItem>>) {
        match self.get_purpose.remove(&token) {
            Some(GetPurpose::FmProbe { qid, left_row }) => {
                self.fm_complete(ctx, qid, left_row, items)
            }
            Some(GetPurpose::SemiFetch { qid, pair, side }) => {
                self.semi_complete(ctx, qid, pair, side, items)
            }
            None => {}
        }
    }

    fn emit_result(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, initiator: NodeId, row: Tuple) {
        if initiator == ctx.me {
            self.results.entry(qid).or_default().push((ctx.now, row));
        } else {
            ctx.send(initiator, PierMsg::Result { qid, row });
        }
    }
}

/// resourceID of a group's partials: hash of the group values.
fn group_rid(group: &[Value]) -> Rid {
    let mut h: u64 = 0x67_72_6f_75_70;
    for v in group {
        h = pier_dht::geom::hash2(h, v.hash64());
    }
    h
}

impl App for PierNode {
    type Msg = PierMsg;

    fn on_start(&mut self, ctx: &mut Ctx<PierMsg>) {
        let bootstrap = self.bootstrap;
        if self.dht.is_joined() {
            ctx.set_timer(self.dht.cfg.tick, DHT_TICK_TOKEN);
        } else {
            let mut env = PierEnv { ctx };
            self.dht.start(&mut env, bootstrap);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<PierMsg>, from: NodeId, msg: PierMsg) {
        match msg {
            PierMsg::Dht(m) => {
                let mut env = PierEnv { ctx };
                let mut events = Vec::new();
                self.dht.handle_message(&mut env, from, m, &mut events);
                self.pump(ctx, events);
            }
            PierMsg::Result { qid, row } => {
                self.results.entry(qid).or_default().push((ctx.now, row));
            }
            PierMsg::AggUp { qid, group, accs } => self.on_agg_up(qid, group, accs),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<PierMsg>, token: u64) {
        if token == DHT_TICK_TOKEN {
            let mut env = PierEnv { ctx };
            let mut events = Vec::new();
            self.dht.handle_timer(&mut env, token, &mut events);
            self.pump(ctx, events);
            return;
        }
        match self.timer_actions.remove(&token) {
            Some(TimerAction::BloomFlush { qid, side }) => {
                // A collector's deadline: if we know how many fragments to
                // expect and they are still in flight (congestion), extend
                // the window instead of multicasting a truncated filter.
                let extend = if let Some(inst) = self.queries.get_mut(&qid) {
                    let expecting = inst.desc.n_nodes as usize;
                    let ns = qns::bloom(qid, side == Side::Right);
                    let have = self.dht.store.ns_len(ns);
                    if expecting > 0
                        && have < expecting
                        && inst.bloom_waits[side as usize] < 60
                        && !inst.bloom_flushed[side as usize]
                    {
                        inst.bloom_waits[side as usize] += 1;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                if extend {
                    let wait = match &self.queries[&qid].desc.op {
                        QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => j.bloom_wait,
                        _ => Dur::from_secs(10),
                    };
                    let t = self.token();
                    self.timer_actions
                        .insert(t, TimerAction::BloomFlush { qid, side });
                    ctx.set_timer(wait, t);
                } else {
                    self.bloom_flush(ctx, qid, side);
                }
            }
            Some(TimerAction::AggHarvest { qid }) => self.agg_harvest(ctx, qid),
            Some(TimerAction::JoinAggFlush { qid }) => {
                let agg = match self.queries.get(&qid).map(|i| &i.desc.op) {
                    Some(QueryOp::JoinAgg { agg, .. })
                    | Some(QueryOp::MultiJoinAgg { agg, .. }) => Some(agg.clone()),
                    _ => None,
                };
                if let Some(agg) = agg {
                    self.flush_partials(ctx, qid, &agg);
                }
            }
            Some(TimerAction::HierFlush { qid }) => self.hier_flush(ctx, qid),
            Some(TimerAction::Renew) => self.renew_all(ctx),
            None => {}
        }
    }
}

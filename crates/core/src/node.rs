//! The PIER node: DHT stack + query processor in one automaton (Fig. 1).
//!
//! The query processor is push-based (§3.3): there is no iterator loop,
//! only reactions to DHT upcalls — a query multicast installs operator
//! state, `newData` callbacks drive probing, `get` completions drive
//! fetching, timers drive Bloom collection and aggregate harvests, and
//! result tuples flow directly to the initiating node.

use std::collections::BTreeMap;
use std::sync::Arc;

use pier_dht::env::DhtEnv;
use pier_dht::event::DhtEvent;
use pier_dht::msg::Entry;
use pier_dht::{Dht, DhtConfig, Ns, Rid, DHT_TICK_TOKEN};
use pier_simnet::app::{App, Ctx};
use pier_simnet::time::{Dur, Time};
use pier_simnet::NodeId;
use rand::Rng;

use crate::agg::GroupAccs;
use crate::bloom::BloomFilter;
use crate::item::{PierMsg, QpItem, Side};
use crate::metrics::{MetricsRegistry, NodeMetrics};
use crate::plan::{
    qns, AggSpec, JoinSpec, JoinStrategy, MultiJoinSpec, PipelineSchema, QueryDesc, QueryOp,
    ScanSpec,
};
use crate::tenant::{AdmissionError, TenantGovernor};
use crate::tuple::{FlatRow, Tuple};
use crate::value::Value;
use pier_simnet::Wire;

/// Adapter: the DHT sublayer speaks `DhtMsg<QpItem>`, wrapped in
/// [`PierMsg::Dht`] on the wire.
struct PierEnv<'a, 'b> {
    ctx: &'a mut Ctx<'b, PierMsg>,
}

impl<'a, 'b> DhtEnv<QpItem> for PierEnv<'a, 'b> {
    fn now(&self) -> Time {
        self.ctx.now
    }
    fn me(&self) -> NodeId {
        self.ctx.me
    }
    fn send(&mut self, to: NodeId, msg: pier_dht::msg::DhtMsg<QpItem>) {
        self.ctx.send(to, PierMsg::Dht(msg));
    }
    fn timer(&mut self, after: Dur, token: u64) {
        self.ctx.set_timer(after, token);
    }
    fn rand64(&mut self) -> u64 {
        self.ctx.rng.gen()
    }
}

/// What an outstanding DHT `get` was issued for.
enum GetPurpose {
    /// Fetch Matches: probing the right table for one left tuple
    /// (`left_iid` is the probing tuple's instanceID, kept so the
    /// result identity can name both constituents).
    FmProbe {
        qid: u64,
        left_iid: u32,
        left_row: Tuple,
    },
    /// Symmetric semi-join: fetching one side of a matched pair.
    SemiFetch { qid: u64, pair: u64, side: Side },
}

impl GetPurpose {
    /// The query this fetch belongs to (uninstall drops its fetches).
    fn qid(&self) -> u64 {
        match self {
            GetPurpose::FmProbe { qid, .. } | GetPurpose::SemiFetch { qid, .. } => *qid,
        }
    }
}

/// Deferred work bound to a timer token.
enum TimerAction {
    /// Bloom collector: OR the collected fragments and multicast.
    BloomFlush { qid: u64, side: Side },
    /// Flat aggregation: finalize locally-owned groups, emit results.
    /// Re-armed every epoch for continuous aggregation.
    AggHarvest { qid: u64 },
    /// Push locally accumulated partials into `NA` (join-aggregation
    /// halfway flush; epoch-boundary flush for continuous aggregates).
    PartialFlush { qid: u64 },
    /// Hierarchical aggregation: send merged partials to the tree
    /// parent. Re-armed every epoch for continuous aggregation.
    HierFlush { qid: u64 },
    /// Republish all soft state (the renewal loop of §3.2.3 / Fig. 6).
    Renew,
    /// Per-query renewal loop: republish one standing query's rehash
    /// soft state every [`QueryDesc::renew_every`], independent of the
    /// node-global loop. Cancelled by uninstall, so renewal stops and
    /// the query's DHT state ages out within one horizon.
    RenewQuery { qid: u64 },
}

impl TimerAction {
    /// The query a timer action belongs to, if any — uninstall cancels
    /// exactly these.
    fn qid(&self) -> Option<u64> {
        match self {
            TimerAction::BloomFlush { qid, .. }
            | TimerAction::AggHarvest { qid }
            | TimerAction::PartialFlush { qid }
            | TimerAction::HierFlush { qid }
            | TimerAction::RenewQuery { qid } => Some(*qid),
            TimerAction::Renew => None,
        }
    }
}

/// Per-query operator state at one node.
struct QueryInstance {
    desc: QueryDesc,
    /// Schema-aware projection plan: what every rehash, stage republish,
    /// and initiator ship carries, with expressions remapped onto the
    /// pruned layouts (binary joins and pipelines alike).
    view: Option<Arc<PipelineSchema>>,
    /// OR-ed Bloom filters received per summarized side.
    filters: [Option<BloomFilter>; 2],
    /// Whether each local side has been rehashed (Bloom strategy gates
    /// rehash on the opposite filter's arrival).
    rehashed: [bool; 2],
    /// Whether this node (as collector) already multicast each OR-ed
    /// filter — set by the early count-based flush or the timer.
    bloom_flushed: [bool; 2],
    /// How often the collector deadline has been extended while waiting
    /// for slow fragments.
    bloom_waits: [u8; 2],
    /// Semi-join pair assembly.
    pairs: BTreeMap<u64, PairFetch>,
    /// Local pre-aggregation (join-agg at NQ nodes, hierarchical agg).
    local_groups: BTreeMap<Vec<Value>, GroupAccs>,
    /// Epoch-driven *windowed* aggregation: every input contribution (a
    /// base row or a join output) with the instant it ages out of the
    /// sliding window. The per-epoch flush re-aggregates the still-live
    /// contributions, so expired ones fall out of the window between
    /// epochs. Bounded by the window length.
    win_rows: Vec<(Time, Tuple)>,
    /// Epoch-driven *unwindowed* aggregation: persistent running
    /// accumulators, folded incrementally and snapshotted (not drained)
    /// at each epoch flush — O(groups) state, O(new rows) per epoch,
    /// where a contribution buffer would grow forever.
    run_groups: BTreeMap<Vec<Value>, GroupAccs>,
    /// Rehash / stage soft state this node published for the query and
    /// must renew ([`PierNode::record_rehash`]). Dropped at uninstall,
    /// so renewal stops and the state ages out within one horizon.
    rehash_pubs: Vec<SoftPub>,
    /// Contribution identities already folded into this query's
    /// aggregation state (`replication > 1` only): a probe re-run by a
    /// healed replica must not double-count a join output or base row
    /// the dead primary's probe already accumulated here.
    acc_seen: std::collections::BTreeSet<u64>,
    /// Outstanding timer tokens of this query. Uninstall cancels them
    /// all (removes their [`TimerAction`]s), so a torn-down query holds
    /// no entry in any node-level map.
    timers: Vec<u64>,
}

impl QueryInstance {
    fn new(desc: QueryDesc, view: Option<Arc<PipelineSchema>>) -> Self {
        QueryInstance {
            desc,
            view,
            filters: [None, None],
            rehashed: [false, false],
            bloom_flushed: [false, false],
            bloom_waits: [0, 0],
            pairs: BTreeMap::new(),
            local_groups: BTreeMap::new(),
            win_rows: Vec::new(),
            run_groups: BTreeMap::new(),
            rehash_pubs: Vec::new(),
            acc_seen: std::collections::BTreeSet::new(),
            timers: Vec::new(),
        }
    }
}

struct PairFetch {
    left: Option<Vec<Tuple>>,
    right: Option<Vec<Tuple>>,
    pkey_left: Value,
    pkey_right: Value,
    /// Identity of the mini pair that triggered the fetches — the
    /// emitted results inherit it for initiator-side dedup.
    ident: u64,
}

/// Why a namespace is interesting to a query at this node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NsRole {
    RehashNq,
    BaseLeft,
    BaseRight,
    /// Bloom collector for one side (true = right).
    BloomCollector(bool),
    /// Stage-k rehash namespace of a multi-way pipeline.
    MStage(u16),
    /// Base table `t` of a multi-way pipeline (0 = pipeline head;
    /// `t >= 1` is stage `t - 1`'s right input).
    MBase(u16),
}

/// A published item retained for renewal.
struct PubRecord {
    ns: Ns,
    rid: Rid,
    iid: u32,
    item: QpItem,
    lifetime: Dur,
}

/// Rehash / stage-namespace soft state this node published on behalf of
/// a continuous, unwindowed query — republished by the renewal loop so
/// a standing join outlives the fallback horizon (lifetime is derived
/// at renewal time from the renewal period).
struct SoftPub {
    ns: Ns,
    rid: Rid,
    iid: u32,
    item: QpItem,
}

/// The node's ledger of installed queries: every per-query structure —
/// operator state, rehash publications, timer tokens (inside each
/// [`QueryInstance`]) and the namespace routing table — lives here, so
/// install and uninstall are single entry points and a torn-down query
/// leaves nothing behind. Before this registry the same state was
/// scattered across per-qid maps on [`PierNode`] with no removal path
/// at all. Teardown is driven by [`PierNode::cancel`] (any shape) or by
/// one-shot aggregates retiring at their terminal harvest; a one-shot
/// *join* has no terminal event — its results trickle until the soft
/// state ages out — so it stays installed until explicitly cancelled.
#[derive(Default)]
struct QueryRegistry {
    queries: BTreeMap<u64, QueryInstance>,
    /// Why each namespace is interesting, and to which queries: drives
    /// `newData` dispatch; stripped per query at uninstall.
    ns_routes: BTreeMap<Ns, Vec<(u64, NsRole)>>,
}

impl QueryRegistry {
    fn install(&mut self, qid: u64, inst: QueryInstance) {
        self.queries.insert(qid, inst);
    }

    fn route(&mut self, ns: Ns, qid: u64, role: NsRole) {
        let routes = self.ns_routes.entry(ns).or_default();
        if !routes.contains(&(qid, role)) {
            routes.push((qid, role));
        }
    }

    /// Remove a query and every route pointing at it. Returns the
    /// instance so the caller can cancel its timers.
    fn uninstall(&mut self, qid: u64) -> Option<QueryInstance> {
        let inst = self.queries.remove(&qid)?;
        self.ns_routes.retain(|_, routes| {
            routes.retain(|&(q, _)| q != qid);
            !routes.is_empty()
        });
        Some(inst)
    }
}

/// One PIER node.
pub struct PierNode {
    pub dht: Dht<QpItem>,
    bootstrap: Option<NodeId>,
    /// Every installed query's state, owned in one place.
    reg: QueryRegistry,
    /// Result log at the initiator: arrival time and tuple, per query.
    /// Survives uninstall, so an initiator can tear a query down and
    /// still read what it produced.
    pub results: BTreeMap<u64, Vec<(Time, Tuple)>>,
    /// Result identities already logged, per query (`replication > 1`
    /// only — see [`PierMsg::Result`]). A healed replica re-running a
    /// probe the dead primary already answered re-sends the same
    /// logical result; the initiator drops the re-emission here.
    results_seen: BTreeMap<u64, std::collections::BTreeSet<u64>>,
    get_purpose: BTreeMap<u64, GetPurpose>,
    timer_actions: BTreeMap<u64, TimerAction>,
    /// Recently cancelled qids (bounded FIFO): a `Cancel` that overtakes
    /// its query's still-in-flight install multicast must not let the
    /// late-arriving descriptor resurrect the query and renew forever.
    cancelled: std::collections::VecDeque<u64>,
    next_token: u64,
    published: Vec<PubRecord>,
    renew_every: Option<Dur>,
    iid_seq: u32,
    /// Tenancy governance: admission control at install time and
    /// publish-side token buckets ([`crate::tenant`]). Harnesses
    /// configure quotas/rates directly (Sim) or via
    /// [`NodeRequest::SetQuota`] / [`NodeRequest::SetTableRate`].
    pub governor: TenantGovernor,
    /// Per-query counters and node-level admission/backpressure totals
    /// ([`crate::metrics`]); snapshot with [`Self::node_metrics`].
    pub metrics: MetricsRegistry,
}

/// How many cancelled qids the tombstone FIFO remembers.
const CANCEL_TOMBSTONES: usize = 512;

impl PierNode {
    /// A node that creates (`bootstrap = None`) or joins an overlay.
    pub fn new(cfg: DhtConfig, me: NodeId, bootstrap: Option<NodeId>) -> Self {
        Self::with_dht(Dht::new(cfg, me), bootstrap)
    }

    /// A node with a pre-built DHT stack (balanced bootstrap).
    pub fn with_dht(dht: Dht<QpItem>, bootstrap: Option<NodeId>) -> Self {
        PierNode {
            dht,
            bootstrap,
            reg: QueryRegistry::default(),
            results: BTreeMap::new(),
            results_seen: BTreeMap::new(),
            get_purpose: BTreeMap::new(),
            timer_actions: BTreeMap::new(),
            cancelled: std::collections::VecDeque::new(),
            next_token: 1,
            published: Vec::new(),
            renew_every: None,
            iid_seq: 0,
            governor: TenantGovernor::new(),
            metrics: MetricsRegistry::default(),
        }
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Globally unique instanceID: publisher id in the high bits, local
    /// sequence in the low bits. Two publishers must never collide on
    /// (ns, rid, iid) or their puts would overwrite each other.
    fn fresh_iid(&mut self) -> u32 {
        self.iid_seq = (self.iid_seq + 1) & 0x3_FFFF;
        (self.dht.me() << 18) | self.iid_seq
    }

    /// Is the exactly-once machinery for churn active? Under the paper's
    /// `replication = 1` every identity below stays a fresh instanceID
    /// and no dedup set is consulted, bit-for-bit the old behavior.
    fn replicated(&self) -> bool {
        self.dht.cfg.replication > 1
    }

    /// InstanceID of a derived publication (rehash, mini, stage tuple)
    /// under replication: a deterministic function of the *source*
    /// entry's globally-unique instanceID and a salt naming the role
    /// (side / pipeline table / stage). When anti-entropy heals a base
    /// row onto a new owner, its re-rehash then lands on the SAME
    /// (ns, rid, iid) as the dead owner's publication — a renewal, not
    /// new data — so downstream probes do not fire twice. The salt keeps
    /// a self-join's two sides from colliding on one instanceID.
    fn derived_iid(&mut self, source_iid: u32, salt: u64) -> u32 {
        if self.replicated() {
            pier_dht::geom::hash2(source_iid as u64, 0x5eed_0000 | salt) as u32
        } else {
            self.fresh_iid()
        }
    }

    /// Identity of a two-constituent result: the constituent instanceIDs
    /// packed order-independently (probe direction must not matter).
    /// Exact — two results collide only if built from the same pair.
    fn pair_ident(a: u32, b: u32) -> u64 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        ((lo as u64) << 32) | hi as u64
    }

    /// Results received so far for a query this node initiated.
    pub fn query_results(&self, qid: u64) -> &[(Time, Tuple)] {
        self.results.get(&qid).map_or(&[], |v| v.as_slice())
    }

    // ------------------------------------------------------------------
    // Publishing (wrappers pushing data into the DHT, §2.2 / §3.3)
    // ------------------------------------------------------------------

    /// Publish rows of a table into the DHT, resourceID = primary key.
    /// Retains the rows so the renewal loop can republish them.
    /// Unmetered (tenant 0 — backpressure never sheds the default
    /// tenant unless a quota is registered for it).
    pub fn publish_rows(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        table: &str,
        rows: Vec<Tuple>,
        pkey_col: usize,
        lifetime: Dur,
    ) {
        self.publish_rows_from(ctx, 0, table, rows, pkey_col, lifetime);
    }

    /// Tenant-attributed publish with token-bucket backpressure: each
    /// row's wire bytes are charged against `tenant`'s bucket
    /// ([`crate::tenant::TenantGovernor::try_publish`]); rows the
    /// bucket refuses are *shed* — they never enter the DHT, never
    /// join the renewal ledger, and are tallied in the node's
    /// [`MetricsRegistry`] (`shed_publishes` / `shed_bytes`). This is
    /// the slow-tenant isolation boundary: a hot tenant's flood is
    /// clipped here, at ingress, before it can occupy the overlay.
    pub fn publish_rows_from(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        tenant: u32,
        table: &str,
        rows: Vec<Tuple>,
        pkey_col: usize,
        lifetime: Dur,
    ) -> PublishReport {
        let ns = pier_dht::ns_of(table);
        let mut report = PublishReport::default();
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for row in rows {
            let rid = row.get(pkey_col).hash64();
            let item = QpItem::Row(FlatRow::from_tuple(&row));
            let bytes = item.wire_size();
            if !self.governor.try_publish(tenant, env.ctx.now, bytes as f64) {
                self.metrics.on_shed(bytes);
                report.shed += 1;
                continue;
            }
            let iid = self.fresh_iid();
            self.dht
                .put(&mut env, ns, rid, iid, item.clone(), lifetime, &mut events);
            self.published.push(PubRecord {
                ns,
                rid,
                iid,
                item,
                lifetime,
            });
            report.accepted += 1;
        }
        self.pump(ctx, events);
        report
    }

    /// Start the renewal loop: republish everything every `every`.
    pub fn start_renewals(&mut self, ctx: &mut Ctx<PierMsg>, every: Dur) {
        self.renew_every = Some(every);
        let token = self.token();
        self.timer_actions.insert(token, TimerAction::Renew);
        ctx.set_timer(every, token);
    }

    fn renew_all(&mut self, ctx: &mut Ctx<PierMsg>) {
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for rec in &self.published {
            self.dht.renew(
                &mut env,
                rec.ns,
                rec.rid,
                rec.iid,
                rec.item.clone(),
                rec.lifetime,
                &mut events,
            );
        }
        // Continuous unwindowed queries: rehash and stage-namespace soft
        // state is renewed alongside base publications, so standing
        // joins keep full recall past the fallback horizon. Renewal
        // replaces the same (ns, rid, iid) without re-firing `newData`,
        // so no probe runs twice. Queries carrying their own renewal
        // period ([`QueryDesc::renew_every`]) run a dedicated loop
        // instead ([`Self::renew_query`]) and are skipped here.
        let horizon = self.fallback_horizon();
        for (&qid, inst) in self.reg.queries.iter() {
            if inst.desc.renew_every.is_some() {
                continue;
            }
            for rec in &inst.rehash_pubs {
                self.dht.renew(
                    &mut env,
                    rec.ns,
                    rec.rid,
                    rec.iid,
                    rec.item.clone(),
                    horizon,
                    &mut events,
                );
            }
            self.metrics.on_renewal(qid, env.ctx.now);
        }
        if let Some(every) = self.renew_every {
            let token = self.token();
            self.timer_actions.insert(token, TimerAction::Renew);
            ctx.set_timer(every, token);
        }
        self.pump(ctx, events);
    }

    /// Number of rows this node has published (for harness assertions).
    pub fn published_count(&self) -> usize {
        self.published.len()
    }

    /// Soft-state horizon for rehashed tuples when no window applies:
    /// three renewal periods when the renewal loop runs (state must
    /// comfortably outlive the gap between renewals), else the legacy
    /// 600 s for nodes that never renew.
    fn fallback_horizon(&self) -> Dur {
        self.renew_every
            .map_or(Dur::from_secs(600), |every| every.saturating_mul(3))
    }

    /// Soft-state horizon of one query: three of its *own* renewal
    /// periods when the descriptor carries one ([`QueryDesc::renew_every`]
    /// — per-query renewal replaced the single node-global period), else
    /// the node-global fallback.
    fn query_horizon(&self, qid: u64) -> Dur {
        self.reg
            .queries
            .get(&qid)
            .and_then(|i| i.desc.renew_every)
            .map_or_else(|| self.fallback_horizon(), |every| every.saturating_mul(3))
    }

    /// Lifetime of rehash / stage / semi-join soft state for a query:
    /// the sliding window when set (windowed state must age out), else
    /// the renewal-derived per-query horizon.
    fn soft_lifetime(&self, qid: u64) -> Dur {
        self.reg
            .queries
            .get(&qid)
            .and_then(|i| i.desc.window)
            .unwrap_or_else(|| self.query_horizon(qid))
    }

    /// Does this query's rehash-layer state get renewed? Continuous and
    /// unwindowed only: windowed state must age out, and one-shot
    /// queries complete well inside the horizon.
    fn renews_rehash_state(&self, qid: u64) -> bool {
        self.reg
            .queries
            .get(&qid)
            .is_some_and(|i| i.desc.continuous && i.desc.window.is_none())
    }

    /// Retain a rehash-layer put for the renewal loop (see
    /// [`Self::renews_rehash_state`]).
    fn record_rehash(&mut self, qid: u64, ns: Ns, rid: Rid, iid: u32, item: &QpItem) {
        self.metrics.on_rehash(qid, item.wire_size());
        if self.renews_rehash_state(qid) {
            if let Some(inst) = self.reg.queries.get_mut(&qid) {
                inst.rehash_pubs.push(SoftPub {
                    ns,
                    rid,
                    iid,
                    item: item.clone(),
                });
            }
        }
    }

    /// Per-query renewal ([`TimerAction::RenewQuery`]): republish this
    /// standing query's rehash soft state with its own 3× horizon and
    /// re-arm. Runs even on nodes that never started the node-global
    /// loop — a descriptor's renewal period is self-contained.
    fn renew_query(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64) {
        let Some(inst) = self.reg.queries.get(&qid) else {
            return; // uninstalled between arm and fire
        };
        let Some(every) = inst.desc.renew_every else {
            return;
        };
        let horizon = every.saturating_mul(3);
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for rec in &inst.rehash_pubs {
            self.dht.renew(
                &mut env,
                rec.ns,
                rec.rid,
                rec.iid,
                rec.item.clone(),
                horizon,
                &mut events,
            );
        }
        self.metrics.on_renewal(qid, ctx.now);
        self.arm_timer(ctx, qid, every, TimerAction::RenewQuery { qid });
        self.pump(ctx, events);
    }

    // ------------------------------------------------------------------
    // Query submission (initiator side)
    // ------------------------------------------------------------------

    /// Submit a query: multicast the descriptor to all nodes (§3.3).
    pub fn submit(&mut self, ctx: &mut Ctx<PierMsg>, desc: QueryDesc) {
        self.results.entry(desc.qid).or_default();
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht
            .multicast(&mut env, QpItem::Query(desc), &mut events);
        self.pump(ctx, events);
    }

    /// Quota-governed submission: price the descriptor with the PR 3
    /// cost model and dry-run it against the owning tenant's
    /// [`crate::tenant::Quota`] *before* anything reaches the wire. An
    /// over-budget query is rejected with a typed
    /// [`AdmissionError`] — no multicast, no partial install — and
    /// counted in this node's `rejected_installs`. On admission the
    /// multicast proceeds; each receiving node (this one included, via
    /// its own multicast delivery) re-checks and commits the budget at
    /// install time, so the ledger converges overlay-wide.
    /// Returns the priced bytes/sec charged against the quota.
    pub fn try_submit(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        desc: QueryDesc,
    ) -> Result<f64, AdmissionError> {
        match self.governor.check(&desc) {
            Ok(priced) => {
                self.submit(ctx, desc);
                Ok(priced)
            }
            Err(e) => {
                self.metrics.rejected_installs += 1;
                Err(e)
            }
        }
    }

    /// Tear a query down: multicast a best-effort [`QpItem::Cancel`] so
    /// every node (this one included, via its own multicast delivery)
    /// uninstalls the query. There is no distributed delete — peers stop
    /// renewing and probing, and the query's DHT soft state ages out
    /// within one lifetime (§3.2.3 reclamation-by-expiry). Results
    /// already collected at the initiator stay readable.
    pub fn cancel(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64) {
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht
            .multicast(&mut env, QpItem::Cancel { qid }, &mut events);
        self.pump(ctx, events);
    }

    /// Local uninstall: remove the query from the registry (dropping its
    /// operator state and rehash-renewal ledger, so renewal stops),
    /// cancel its outstanding timers, forget its in-flight fetches, and
    /// purge the local store's share of the query's derived namespaces.
    /// Shares held by peers that missed the cancel still age out within
    /// one [`Self::soft_lifetime`] — expiry is the reclamation fallback,
    /// not the only path. A bounded tombstone guards against a `Cancel`
    /// overtaking its query's still-in-flight install multicast.
    fn uninstall_query(&mut self, qid: u64) {
        self.governor.release(qid);
        self.metrics.on_uninstall(qid);
        if self.cancelled.len() == CANCEL_TOMBSTONES {
            self.cancelled.pop_front();
        }
        if !self.cancelled.contains(&qid) {
            self.cancelled.push_back(qid);
        }
        let stages = match self.reg.queries.get(&qid).map(|i| &i.desc.op) {
            Some(QueryOp::MultiJoin(m)) | Some(QueryOp::MultiJoinAgg { join: m, .. }) => {
                m.stages.len()
            }
            _ => 0,
        };
        if let Some(inst) = self.reg.uninstall(qid) {
            for token in inst.timers {
                self.timer_actions.remove(&token);
            }
            let mut nss = vec![
                qns::rehash(qid),
                qns::agg(qid),
                qns::bloom(qid, false),
                qns::bloom(qid, true),
            ];
            nss.extend((0..stages).map(|k| qns::stage(qid, k)));
            for ns in nss {
                self.dht.store.remove_ns(ns);
            }
        }
        self.get_purpose.retain(|_, p| p.qid() != qid);
    }

    /// One-shot queries complete at their terminal harvest; retire them
    /// so `timer_actions`, the registry, and the routing table return to
    /// baseline instead of growing for the process lifetime.
    fn retire_if_one_shot(&mut self, qid: u64) {
        if self
            .reg
            .queries
            .get(&qid)
            .is_some_and(|i| !i.desc.continuous)
        {
            self.uninstall_query(qid);
        }
    }

    /// Arm a timer owned by one query: the token is recorded on the
    /// instance so uninstall can cancel it.
    fn arm_timer(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, after: Dur, action: TimerAction) {
        let token = self.token();
        self.timer_actions.insert(token, action);
        if let Some(inst) = self.reg.queries.get_mut(&qid) {
            inst.timers.push(token);
        }
        ctx.set_timer(after, token);
    }

    /// Forget a fired token on its owning query (the timer no longer
    /// needs cancelling at uninstall).
    fn release_timer(&mut self, qid: u64, token: u64) {
        if let Some(inst) = self.reg.queries.get_mut(&qid) {
            inst.timers.retain(|&t| t != token);
        }
    }

    // ------------------------------------------------------------------
    // Lifecycle introspection (tests, benches, storage audits)
    // ------------------------------------------------------------------

    /// Number of queries currently installed at this node.
    pub fn installed_query_count(&self) -> usize {
        self.reg.queries.len()
    }

    /// This node's [`NodeMetrics`] at `now`: registry counters plus the
    /// live gauges (installed queries, soft-state occupancy by
    /// namespace). `mailbox_depth` is a *transport* gauge the node
    /// cannot see from inside its own loop; it is reported as 0 here
    /// and overlaid by the harness where a real mailbox exists
    /// (`Cluster::mailbox_depth` — the simulators have a global event
    /// queue instead and legitimately report 0).
    pub fn node_metrics(&self, now: Time) -> NodeMetrics {
        NodeMetrics {
            node: self.dht.me(),
            installed_queries: self.reg.queries.len(),
            mailbox_depth: 0,
            occupancy: self.dht.store.occupancy(now),
            registry: self.metrics.clone(),
        }
    }

    /// Is a query currently installed here?
    pub fn has_query(&self, qid: u64) -> bool {
        self.reg.queries.contains_key(&qid)
    }

    /// Outstanding deferred-work timers (renewal loop included) — the
    /// map the one-shot-timer regression pins to baseline.
    pub fn timer_action_count(&self) -> usize {
        self.timer_actions.len()
    }

    /// Rehash publications this node would renew for a query.
    pub fn rehash_pub_count(&self, qid: u64) -> usize {
        self.reg
            .queries
            .get(&qid)
            .map_or(0, |i| i.rehash_pubs.len())
    }

    /// Storage audit: items still stored here under any of the query's
    /// derived namespaces ([`qns`]) that are live at `now` — rehash,
    /// per-stage, both Bloom collectors, and aggregation partials. Zero
    /// one lifetime after uninstall is the reclamation invariant.
    pub fn query_soft_state(&self, now: Time, qid: u64, max_stages: usize) -> usize {
        let mut nss = vec![
            qns::rehash(qid),
            qns::agg(qid),
            qns::bloom(qid, false),
            qns::bloom(qid, true),
        ];
        nss.extend((0..max_stages).map(|k| qns::stage(qid, k)));
        nss.iter()
            .map(|&ns| self.dht.store.ns_len_live(ns, now))
            .sum()
    }

    // ------------------------------------------------------------------
    // Event pump
    // ------------------------------------------------------------------

    fn pump(&mut self, ctx: &mut Ctx<PierMsg>, events: Vec<DhtEvent<QpItem>>) {
        for ev in events {
            match ev {
                DhtEvent::Multicast { origin: _, payload } => match payload {
                    QpItem::Query(desc) => self.install_query(ctx, desc),
                    QpItem::Cancel { qid } => self.uninstall_query(qid),
                    QpItem::Bloom { qid, side, filter } => {
                        self.on_bloom_filter(ctx, qid, side, filter)
                    }
                    _ => {}
                },
                DhtEvent::NewData { entry } => self.on_new_data(ctx, entry),
                DhtEvent::GetResult { token, items } => self.on_get_result(ctx, token, items),
                DhtEvent::Joined | DhtEvent::LocationMapChanged => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Query installation
    // ------------------------------------------------------------------

    fn install_query(&mut self, ctx: &mut Ctx<PierMsg>, desc: QueryDesc) {
        let qid = desc.qid;
        if self.reg.queries.contains_key(&qid) || self.cancelled.contains(&qid) {
            // Duplicate multicast delivery, or a descriptor whose Cancel
            // (or one-shot retirement) already happened here — a late
            // install must not resurrect a torn-down query.
            return;
        }
        // Admission control: commit the query's priced budget against
        // its tenant's quota, or refuse the install outright. Every node
        // runs the same check on the same descriptor against the same
        // quota table, so the overlay-wide verdict is uniform; the
        // initiator's `try_submit` dry-run means a rejection here is
        // only reachable when quotas changed mid-flight or the submitter
        // bypassed governance with a raw `submit`.
        let priced = match self.governor.admit(&desc) {
            Ok(priced) => priced,
            Err(_) => {
                self.metrics.rejected_installs += 1;
                return;
            }
        };
        self.metrics.on_install(qid, desc.tenant, priced, ctx.now);
        let view = match &desc.op {
            QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => {
                Some(Arc::new(PipelineSchema::binary(j, desc.prune)))
            }
            QueryOp::MultiJoin(m) | QueryOp::MultiJoinAgg { join: m, .. } => {
                Some(Arc::new(PipelineSchema::build(m, desc.prune)))
            }
            _ => None,
        };
        self.reg
            .install(qid, QueryInstance::new(desc.clone(), view));
        // A standing unwindowed query carrying its own renewal period
        // runs a per-query renewal loop from install on — no node-global
        // `start_renewals` required.
        if desc.continuous && desc.window.is_none() {
            if let Some(every) = desc.renew_every {
                self.arm_timer(ctx, qid, every, TimerAction::RenewQuery { qid });
            }
        }

        match &desc.op {
            QueryOp::Scan { scan, project } => {
                self.route_ns(scan.ns, qid, NsRole::BaseLeft);
                let rows = self.local_live(scan, ctx.now);
                for (iid, _, row) in rows {
                    let out = Tuple::new(project.iter().map(|e| e.eval(&row)).collect());
                    self.emit_result(ctx, qid, desc.initiator, iid as u64, out);
                }
            }
            QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => {
                let j = j.clone();
                self.route_ns(qns::rehash(qid), qid, NsRole::RehashNq);
                self.route_ns(j.left.ns, qid, NsRole::BaseLeft);
                self.route_ns(j.right.ns, qid, NsRole::BaseRight);
                // Snapshot rehash state that raced ahead of the query
                // multicast, *before* our own rehash adds to it.
                let pre_installed: Vec<Entry<QpItem>> =
                    self.dht.store.lscan(qns::rehash(qid)).cloned().collect();
                match j.strategy {
                    JoinStrategy::SymmetricHash => {
                        self.rehash_side(ctx, qid, Side::Left, None);
                        self.rehash_side(ctx, qid, Side::Right, None);
                    }
                    JoinStrategy::FetchMatches => self.fm_start(ctx, qid),
                    JoinStrategy::SymmetricSemiJoin => {
                        self.semi_rehash(ctx, qid, Side::Left);
                        self.semi_rehash(ctx, qid, Side::Right);
                    }
                    JoinStrategy::BloomFilter => self.bloom_start(ctx, qid, &j),
                }
                // Replay rehash state that arrived before installation.
                self.replay_rehash_ns(ctx, qid, pre_installed);
                if let QueryOp::JoinAgg { agg, .. } = &desc.op {
                    self.schedule_agg_timers(ctx, qid, agg.clone(), true);
                }
            }
            QueryOp::MultiJoin(m) | QueryOp::MultiJoinAgg { join: m, .. } => {
                let m = m.clone();
                for k in 0..m.stages.len() {
                    self.route_ns(qns::stage(qid, k), qid, NsRole::MStage(k as u16));
                }
                self.route_ns(m.base.ns, qid, NsRole::MBase(0));
                for (k, st) in m.stages.iter().enumerate() {
                    self.route_ns(st.right.ns, qid, NsRole::MBase(k as u16 + 1));
                }
                // Snapshot per-stage rehash state that raced ahead of the
                // query multicast, *before* our own rehash adds to it.
                let snapshots: Vec<Vec<Entry<QpItem>>> = (0..m.stages.len())
                    .map(|k| self.dht.store.lscan(qns::stage(qid, k)).cloned().collect())
                    .collect();
                for t in 0..m.n_tables() {
                    self.mj_rehash_table(ctx, qid, &m, t);
                }
                // Replay stage state that arrived before installation.
                for (k, snap) in snapshots.into_iter().enumerate() {
                    self.mj_replay(ctx, qid, &m, k, snap);
                }
                if let QueryOp::MultiJoinAgg { agg, .. } = &desc.op {
                    self.schedule_agg_timers(ctx, qid, agg.clone(), true);
                }
            }
            QueryOp::Agg { scan, agg } => {
                self.route_ns(scan.ns, qid, NsRole::BaseLeft);
                let now = ctx.now;
                let window = desc.window;
                let entries = self.local_live(scan, now);
                let agg = agg.clone();
                for (iid, expires, row) in entries {
                    // A windowed contribution ages out `window` after it
                    // is first seen, and never outlives its base row.
                    let valid = match window {
                        Some(w) => expires.min(now + w),
                        None => Time::MAX,
                    };
                    self.accumulate(qid, &agg, &row, valid, iid as u64);
                }
                if agg.hierarchical {
                    self.schedule_hier_flush(ctx, qid, &agg);
                } else {
                    if agg.epoch.is_none() {
                        // Epoch queries flush on their timer instead.
                        self.flush_partials(ctx, qid, &agg);
                    }
                    self.schedule_agg_timers(ctx, qid, agg, false);
                }
            }
        }
    }

    fn route_ns(&mut self, ns: Ns, qid: u64, role: NsRole) {
        self.reg.route(ns, qid, role);
    }

    /// Locally stored, live, selection-passing rows of a base table with
    /// their soft-state expiries. Expired-but-unswept rows (the sweep
    /// runs on the maintenance tick) never enter a dataflow.
    fn local_live(&self, scan: &ScanSpec, now: Time) -> Vec<(u32, Time, Tuple)> {
        self.dht
            .lscan(scan.ns)
            .filter(|e| e.expires > now)
            .filter_map(|e| match &e.val {
                QpItem::Row(t) => Some((e.iid, e.expires, t.decode())),
                _ => None,
            })
            .filter(|(_, _, t)| scan.pred.as_ref().is_none_or(|p| p.matches(t)))
            .collect()
    }

    /// [`Self::local_entries`] without the expiries.
    fn local_rows(&self, scan: &ScanSpec, now: Time) -> Vec<Tuple> {
        self.local_live(scan, now)
            .into_iter()
            .map(|(_, _, t)| t)
            .collect()
    }

    fn join_spec(&self, qid: u64) -> Option<JoinSpec> {
        match &self.reg.queries.get(&qid)?.desc.op {
            QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => Some(j.clone()),
            _ => None,
        }
    }

    /// Rehash resourceID for a join value: either the value hash, or one
    /// of `m` buckets when the computation is confined to m nodes.
    fn rehash_rid(join: &Value, computation_nodes: Option<u32>) -> Rid {
        let h = join.hash64();
        match computation_nodes {
            Some(m) => h % m.max(1) as u64,
            None => h,
        }
    }

    // ------------------------------------------------------------------
    // Symmetric hash join (+ the rehash half of Bloom join)
    // ------------------------------------------------------------------

    /// Rehash the local fragment of one side into NQ, optionally gated
    /// by a Bloom filter over the opposite table's keys.
    fn rehash_side(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        side: Side,
        filter: Option<&BloomFilter>,
    ) {
        let Some(j) = self.join_spec(qid) else { return };
        let Some(inst) = self.reg.queries.get_mut(&qid) else {
            return;
        };
        if inst.rehashed[side as usize] {
            return;
        }
        inst.rehashed[side as usize] = true;
        let view = inst.view.clone().expect("join view");
        let stage = &view.stages[0];
        let (scan, keep, join_idx) = match side {
            Side::Left => (&j.left, &view.keep_base, stage.join_idx_left),
            Side::Right => (&j.right, &stage.keep_right, stage.join_idx_right),
        };
        let rows = self.local_live(scan, ctx.now);
        let nq = qns::rehash(qid);
        let lifetime = self.soft_lifetime(qid);
        let join_col = scan.join_col.unwrap();
        let puts: Vec<(Rid, u32, QpItem)> = rows
            .into_iter()
            .filter_map(|(base_iid, _, row)| {
                let join = row.get(join_col).clone();
                if let Some(f) = filter {
                    if !f.contains(join.hash64()) {
                        return None;
                    }
                }
                let projected = row.project(keep);
                debug_assert_eq!(projected.get(join_idx), &join);
                let rid = Self::rehash_rid(&join, j.computation_nodes);
                let iid = self.derived_iid(base_iid, side as u64);
                let item = QpItem::Tagged {
                    qid,
                    side,
                    join,
                    row: FlatRow::from_tuple(&projected),
                };
                Some((rid, iid, item))
            })
            .collect();
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (rid, iid, item) in puts {
            self.record_rehash(qid, nq, rid, iid, &item);
            self.dht
                .put(&mut env, nq, rid, iid, item, lifetime, &mut events);
        }
        self.pump(ctx, events);
    }

    /// Probe arriving NQ state against the opposite side (§4.1): "each
    /// node registers ... a newData callback; when a tuple arrives, a get
    /// is issued to find matches in the other table; this get is expected
    /// to stay local."
    fn probe_nq(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, entry: &Entry<QpItem>) {
        match &entry.val {
            QpItem::Tagged {
                side, join, row, ..
            } => {
                let (side, join, row) = (*side, join.clone(), row.decode());
                self.probe_tagged(
                    ctx,
                    qid,
                    entry.ns,
                    entry.rid,
                    entry.iid,
                    entry.expires,
                    side,
                    &join,
                    &row,
                );
            }
            QpItem::Mini {
                side, pkey, join, ..
            } => {
                let (side, pkey, join) = (*side, pkey.clone(), join.clone());
                self.probe_mini(ctx, qid, entry.ns, entry.rid, entry.iid, side, &pkey, &join);
            }
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)] // one newData probe: storage coords + tagged payload
    fn probe_tagged(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        ns: Ns,
        rid: Rid,
        my_iid: u32,
        my_expires: Time,
        side: Side,
        join: &Value,
        row: &Tuple,
    ) {
        let Some(inst) = self.reg.queries.get(&qid) else {
            return;
        };
        let view = inst.view.clone().expect("join view");
        let initiator = inst.desc.initiator;
        let is_joinagg = matches!(inst.desc.op, QueryOp::JoinAgg { .. });
        let agg = match &inst.desc.op {
            QueryOp::JoinAgg { agg, .. } => Some(agg.clone()),
            _ => None,
        };
        let now = ctx.now;
        // Local probe of the opposite hash-table partition. The same
        // shortest-lived-constituent rule as `mj_probe` applies: a
        // partner whose window state already aged out (but is not yet
        // swept — the sweep runs on the maintenance tick) must not join.
        let matches: Vec<(u32, Tuple, Time)> = self
            .dht
            .store
            .get(ns, rid)
            .iter()
            .filter(|e| e.iid != my_iid && e.expires > now)
            .filter_map(|e| match &e.val {
                QpItem::Tagged {
                    side: s,
                    join: jv,
                    row: r,
                    ..
                } if *s == side.opposite() && jv == join => Some((e.iid, r.decode(), e.expires)),
                _ => None,
            })
            .collect();
        for (other_iid, other, other_expires) in matches {
            let joined = match side {
                Side::Left => row.concat(&other),
                Side::Right => other.concat(row),
            };
            let stage = &view.stages[0];
            if stage.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                // The initiator ship goes through the projected schema:
                // emit the surviving columns, then evaluate the output
                // expressions over that pruned basis.
                let shipped = joined.project(&stage.emit);
                let out = Tuple::new(view.project.iter().map(|e| e.eval(&shipped)).collect());
                let ident = Self::pair_ident(my_iid, other_iid);
                if is_joinagg {
                    if let Some(a) = &agg {
                        let valid = self.window_valid(qid, my_expires.min(other_expires));
                        self.accumulate(qid, a, &out, valid, ident);
                    }
                } else {
                    self.emit_result(ctx, qid, initiator, ident, out);
                }
            }
        }
    }

    /// Window validity of an aggregate contribution: joined tuples live
    /// only as long as their shortest-lived constituent when the query
    /// is windowed; unwindowed continuous aggregates are running totals.
    fn window_valid(&self, qid: u64, until: Time) -> Time {
        match self.reg.queries.get(&qid).and_then(|i| i.desc.window) {
            Some(_) => until,
            None => Time::MAX,
        }
    }

    // ------------------------------------------------------------------
    // Multi-way join pipelines (left-deep chains of §4.1 stages)
    // ------------------------------------------------------------------

    fn mj_spec(&self, qid: u64) -> Option<MultiJoinSpec> {
        match &self.reg.queries.get(&qid)?.desc.op {
            QueryOp::MultiJoin(m) | QueryOp::MultiJoinAgg { join: m, .. } => Some(m.clone()),
            _ => None,
        }
    }

    /// [`Self::derived_iid`] salt of pipeline table `t` — the bulk and
    /// the incremental rehash of the same base row must coincide.
    fn mj_salt(t: usize) -> u64 {
        0x100 + t as u64
    }

    /// Which stage namespace table `t` feeds, on which side, and via
    /// which of its own columns.
    fn mj_table_role(m: &MultiJoinSpec, t: usize) -> (&ScanSpec, usize, Side, usize) {
        if t == 0 {
            (&m.base, 0, Side::Left, m.stages[0].left_col)
        } else {
            let st = &m.stages[t - 1];
            let col = st.right.join_col.expect("stage join col");
            (&st.right, t - 1, Side::Right, col)
        }
    }

    /// Rehash this node's local fragment of pipeline table `t` into its
    /// stage namespace (the bulk, install-time analogue of
    /// [`Self::mj_rehash_one`]), projected onto the stage schema: only
    /// the columns some later stage or the final SELECT reads ship.
    fn mj_rehash_table(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, m: &MultiJoinSpec, t: usize) {
        let Some(view) = self.reg.queries.get(&qid).and_then(|i| i.view.clone()) else {
            return;
        };
        let (scan, stage_k, side, join_col) = Self::mj_table_role(m, t);
        let keep = view.keep_for_table(t);
        let rows = self.local_live(scan, ctx.now);
        let ns = qns::stage(qid, stage_k);
        let lifetime = self.soft_lifetime(qid);
        let puts: Vec<(Rid, u32, QpItem)> = rows
            .into_iter()
            .map(|(base_iid, _, row)| {
                let join = row.get(join_col).clone();
                let iid = self.derived_iid(base_iid, Self::mj_salt(t));
                (
                    join.hash64(),
                    iid,
                    QpItem::Tagged {
                        qid,
                        side,
                        join,
                        row: FlatRow::from_tuple(&row.project(keep)),
                    },
                )
            })
            .collect();
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (rid, iid, item) in puts {
            self.record_rehash(qid, ns, rid, iid, &item);
            self.dht
                .put(&mut env, ns, rid, iid, item, lifetime, &mut events);
        }
        self.pump(ctx, events);
    }

    /// Continuous pipelines: one newly published base tuple of table `t`
    /// flows into its stage namespace.
    fn mj_rehash_one(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        m: &MultiJoinSpec,
        t: usize,
        base_iid: u32,
        row: Tuple,
    ) {
        let Some(view) = self.reg.queries.get(&qid).and_then(|i| i.view.clone()) else {
            return;
        };
        let (scan, stage_k, side, join_col) = Self::mj_table_role(m, t);
        if !scan.pred.as_ref().is_none_or(|p| p.matches(&row)) {
            return;
        }
        let join = row.get(join_col).clone();
        let ns = qns::stage(qid, stage_k);
        let lifetime = self.soft_lifetime(qid);
        let iid = self.derived_iid(base_iid, Self::mj_salt(t));
        let item = QpItem::Tagged {
            qid,
            side,
            join: join.clone(),
            row: FlatRow::from_tuple(&row.project(view.keep_for_table(t))),
        };
        let rid = join.hash64();
        self.record_rehash(qid, ns, rid, iid, &item);
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht
            .put(&mut env, ns, rid, iid, item, lifetime, &mut events);
        self.pump(ctx, events);
    }

    /// Probe an arriving stage-k entry against the opposite side — the
    /// §4.1 newData callback, once per pipeline stage.
    fn mj_probe(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, k: usize, entry: &Entry<QpItem>) {
        let QpItem::Tagged {
            side, join, row, ..
        } = &entry.val
        else {
            return;
        };
        let (side, join, row) = (*side, join.clone(), row.decode());
        let Some(m) = self.mj_spec(qid) else { return };
        let Some(view) = self.reg.queries.get(&qid).and_then(|i| i.view.clone()) else {
            return;
        };
        let matches: Vec<(u32, Tuple, Time)> = self
            .dht
            .store
            .get(entry.ns, entry.rid)
            .iter()
            .filter(|e| e.iid != entry.iid)
            .filter_map(|e| match &e.val {
                QpItem::Tagged {
                    side: s,
                    join: jv,
                    row: r,
                    ..
                } if *s == side.opposite() && jv == &join => Some((e.iid, r.decode(), e.expires)),
                _ => None,
            })
            .collect();
        for (other_iid, other, other_expires) in matches {
            // The accumulated intermediate is always the left operand.
            // Both operands are already projected onto the stage schema.
            let joined = match side {
                Side::Left => row.concat(&other),
                Side::Right => other.concat(&row),
            };
            let stage = &view.stages[k];
            if stage.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                // A joined tuple lives only as long as its shortest-lived
                // constituent: restarting the window here would let late
                // arrivals join state that already aged out.
                let lifetime = entry.expires.min(other_expires).since(ctx.now);
                self.mj_advance(
                    ctx,
                    qid,
                    &m,
                    &view,
                    k,
                    joined.project(&stage.emit),
                    lifetime,
                    Self::pair_ident(entry.iid, other_iid),
                );
            }
        }
    }

    /// A stage-k match (already projected onto the stage's outgoing
    /// schema): feed the next stage, or finalize. `lifetime` is the
    /// remaining life of the shortest-lived constituent, so windowed
    /// pipelines never resurrect aged-out state downstream. `ident`
    /// names the match by its constituent instanceIDs: under
    /// replication the republished intermediate's iid and the final
    /// result's dedup identity both derive from it, so a probe re-run
    /// by a healed stage replica renews rather than duplicates.
    #[allow(clippy::too_many_arguments)]
    fn mj_advance(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        m: &MultiJoinSpec,
        view: &PipelineSchema,
        k: usize,
        row: Tuple,
        lifetime: Dur,
        ident: u64,
    ) {
        if lifetime == Dur::ZERO {
            // A constituent already aged out (expired-but-unswept soft
            // state): neither republish nor emit — a last-stage match
            // against expired state would be a phantom result.
            return;
        }
        if k + 1 < m.stages.len() {
            // Publish the intermediate as soft state in the next stage's
            // namespace, keyed by its join value there.
            let join = row.get(view.stages[k + 1].join_idx_left).clone();
            let iid = if self.replicated() {
                pier_dht::geom::hash2(ident, 0x6d6a_0000 | k as u64) as u32
            } else {
                self.fresh_iid()
            };
            let item = QpItem::Tagged {
                qid,
                side: Side::Left,
                join: join.clone(),
                row: FlatRow::from_tuple(&row),
            };
            let ns = qns::stage(qid, k + 1);
            let rid = join.hash64();
            self.record_rehash(qid, ns, rid, iid, &item);
            let mut env = PierEnv { ctx };
            let mut events = Vec::new();
            self.dht
                .put(&mut env, ns, rid, iid, item, lifetime, &mut events);
            self.pump(ctx, events);
        } else {
            let Some(inst) = self.reg.queries.get(&qid) else {
                return;
            };
            let initiator = inst.desc.initiator;
            let out = Tuple::new(view.project.iter().map(|e| e.eval(&row)).collect());
            match &inst.desc.op {
                QueryOp::MultiJoinAgg { agg, .. } => {
                    let agg = agg.clone();
                    let valid = self.window_valid(qid, ctx.now + lifetime);
                    self.accumulate(qid, &agg, &out, valid, ident);
                }
                _ => self.emit_result(ctx, qid, initiator, ident, out),
            }
        }
    }

    /// Probe stage-k entries stored before this node learned about the
    /// query, pairwise against predecessors only (cf.
    /// [`Self::replay_rehash_ns`]).
    fn mj_replay(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        m: &MultiJoinSpec,
        k: usize,
        mut entries: Vec<Entry<QpItem>>,
    ) {
        if entries.is_empty() {
            return;
        }
        let Some(view) = self.reg.queries.get(&qid).and_then(|i| i.view.clone()) else {
            return;
        };
        entries.sort_by_key(|e| (e.rid, e.iid));
        for i in 0..entries.len() {
            for j in 0..i {
                if entries[i].rid != entries[j].rid {
                    continue;
                }
                let (
                    QpItem::Tagged {
                        side: sa,
                        join: ja,
                        row: ra,
                        ..
                    },
                    QpItem::Tagged {
                        side: sb,
                        join: jb,
                        row: rb,
                        ..
                    },
                ) = (&entries[i].val, &entries[j].val)
                else {
                    continue;
                };
                if sa == sb || ja != jb {
                    continue;
                }
                let (l, r) = if *sa == Side::Left {
                    (ra, rb)
                } else {
                    (rb, ra)
                };
                let joined = l.decode().concat(&r.decode());
                let stage = &view.stages[k];
                if stage.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    let lifetime = entries[i].expires.min(entries[j].expires).since(ctx.now);
                    let ident = Self::pair_ident(entries[i].iid, entries[j].iid);
                    self.mj_advance(
                        ctx,
                        qid,
                        m,
                        &view,
                        k,
                        joined.project(&stage.emit),
                        lifetime,
                        ident,
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch Matches (§4.1)
    // ------------------------------------------------------------------

    fn fm_start(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64) {
        let Some(j) = self.join_spec(qid) else { return };
        // The right table must already be hashed on the join attribute.
        debug_assert_eq!(
            j.right.join_col,
            Some(j.right.pkey_col),
            "Fetch Matches requires the fetched table hashed on the join key"
        );
        let rows = self.local_live(&j.left, ctx.now);
        let mut work = Vec::new();
        for (left_iid, _, left_row) in rows {
            let join = left_row.get(j.left.join_col.unwrap()).clone();
            let token = self.token();
            self.get_purpose.insert(
                token,
                GetPurpose::FmProbe {
                    qid,
                    left_iid,
                    left_row,
                },
            );
            work.push((j.right.ns, join.hash64(), token));
        }
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (ns, rid, token) in work {
            self.dht.get(&mut env, ns, rid, token, &mut events);
        }
        self.pump(ctx, events);
    }

    fn fm_complete(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        left_iid: u32,
        left_row: Tuple,
        items: Vec<Entry<QpItem>>,
    ) {
        let Some(j) = self.join_spec(qid) else { return };
        let Some(inst) = self.reg.queries.get(&qid) else {
            return;
        };
        let initiator = inst.desc.initiator;
        let join = left_row.get(j.left.join_col.unwrap()).clone();
        for e in items {
            let QpItem::Row(right_flat) = &e.val else {
                continue;
            };
            let right_row = &right_flat.decode();
            // "Selections on non-DHT attributes cannot be pushed into the
            // DHT": the right-side predicate is evaluated here, after the
            // fetch (§4.1).
            if right_row.get(j.right.join_col.unwrap()) != &join {
                continue; // resourceID hash collision
            }
            if !j.right.pred.as_ref().is_none_or(|p| p.matches(right_row)) {
                continue;
            }
            let joined = left_row.concat(right_row);
            if j.post_pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                let out = Tuple::new(j.project.iter().map(|e| e.eval(&joined)).collect());
                let ident = Self::pair_ident(left_iid, e.iid);
                self.emit_result(ctx, qid, initiator, ident, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Symmetric semi-join rewrite (§4.2)
    // ------------------------------------------------------------------

    fn semi_rehash(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, side: Side) {
        let Some(j) = self.join_spec(qid) else { return };
        let Some(inst) = self.reg.queries.get_mut(&qid) else {
            return;
        };
        if inst.rehashed[side as usize] {
            return;
        }
        inst.rehashed[side as usize] = true;
        let scan = match side {
            Side::Left => &j.left,
            Side::Right => &j.right,
        };
        let rows = self.local_live(scan, ctx.now);
        let nq = qns::rehash(qid);
        let lifetime = self.soft_lifetime(qid);
        let join_col = scan.join_col.unwrap();
        let pkey_col = scan.pkey_col;
        let puts: Vec<(Rid, u32, QpItem)> = rows
            .into_iter()
            .map(|(base_iid, _, row)| {
                let join = row.get(join_col).clone();
                let pkey = row.get(pkey_col).clone();
                let rid = Self::rehash_rid(&join, j.computation_nodes);
                let iid = self.derived_iid(base_iid, side as u64);
                (
                    rid,
                    iid,
                    QpItem::Mini {
                        qid,
                        side,
                        pkey,
                        join,
                    },
                )
            })
            .collect();
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (rid, iid, item) in puts {
            self.record_rehash(qid, nq, rid, iid, &item);
            self.dht
                .put(&mut env, nq, rid, iid, item, lifetime, &mut events);
        }
        self.pump(ctx, events);
    }

    #[allow(clippy::too_many_arguments)]
    fn probe_mini(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        ns: Ns,
        rid: Rid,
        my_iid: u32,
        side: Side,
        pkey: &Value,
        join: &Value,
    ) {
        if self.join_spec(qid).is_none() {
            return;
        }
        // Find live opposite-side minis with the same join value
        // (expired-but-unswept projections must not pair, same as
        // `probe_tagged`).
        let now = ctx.now;
        let partners: Vec<(u32, Value)> = self
            .dht
            .store
            .get(ns, rid)
            .iter()
            .filter(|e| e.iid != my_iid && e.expires > now)
            .filter_map(|e| match &e.val {
                QpItem::Mini {
                    side: s,
                    pkey: pk,
                    join: jv,
                    ..
                } if *s == side.opposite() && jv == join => Some((e.iid, pk.clone())),
                _ => None,
            })
            .collect();
        if partners.is_empty() {
            return;
        }
        for (partner_iid, partner) in partners {
            let (pk_l, pk_r) = match side {
                Side::Left => (pkey.clone(), partner),
                Side::Right => (partner, pkey.clone()),
            };
            let ident = Self::pair_ident(my_iid, partner_iid);
            self.semi_pair(ctx, qid, pk_l, pk_r, ident);
        }
    }

    /// Issue the two parallel full-tuple fetches for a matched mini pair
    /// ("we issue the two joins' fetches in parallel since we know both
    /// fetches will succeed", §4.2).
    fn semi_pair(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        pk_l: Value,
        pk_r: Value,
        ident: u64,
    ) {
        let Some(j) = self.join_spec(qid) else { return };
        let pair = self.token();
        let Some(inst) = self.reg.queries.get_mut(&qid) else {
            return;
        };
        // A healed replica can re-run the mini probe a dead primary
        // already answered: the re-probed pair carries the same
        // identity, so skipping it here saves the two full-tuple
        // fetches, not just the duplicate emission.
        if self.dht.cfg.replication > 1 && !inst.acc_seen.insert(ident) {
            return;
        }
        inst.pairs.insert(
            pair,
            PairFetch {
                left: None,
                right: None,
                pkey_left: pk_l.clone(),
                pkey_right: pk_r.clone(),
                ident,
            },
        );
        let tl = self.token();
        self.get_purpose.insert(
            tl,
            GetPurpose::SemiFetch {
                qid,
                pair,
                side: Side::Left,
            },
        );
        let tr = self.token();
        self.get_purpose.insert(
            tr,
            GetPurpose::SemiFetch {
                qid,
                pair,
                side: Side::Right,
            },
        );
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht
            .get(&mut env, j.left.ns, pk_l.hash64(), tl, &mut events);
        self.dht
            .get(&mut env, j.right.ns, pk_r.hash64(), tr, &mut events);
        self.pump(ctx, events);
    }

    fn semi_complete(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        pair: u64,
        side: Side,
        items: Vec<Entry<QpItem>>,
    ) {
        let Some(j) = self.join_spec(qid) else { return };
        let Some(inst) = self.reg.queries.get_mut(&qid) else {
            return;
        };
        let Some(p) = inst.pairs.get_mut(&pair) else {
            return;
        };
        let rows: Vec<Tuple> = items
            .iter()
            .filter_map(|e| match &e.val {
                QpItem::Row(t) => Some(t.decode()),
                _ => None,
            })
            .collect();
        match side {
            Side::Left => p.left = Some(rows),
            Side::Right => p.right = Some(rows),
        }
        if p.left.is_none() || p.right.is_none() {
            return;
        }
        let p = inst.pairs.remove(&pair).unwrap();
        let initiator = inst.desc.initiator;
        let lefts: Vec<Tuple> = p
            .left
            .unwrap()
            .into_iter()
            .filter(|t| t.get(j.left.pkey_col) == &p.pkey_left)
            .collect();
        let rights: Vec<Tuple> = p
            .right
            .unwrap()
            .into_iter()
            .filter(|t| t.get(j.right.pkey_col) == &p.pkey_right)
            .collect();
        for (li, l) in lefts.iter().enumerate() {
            for (ri, r) in rights.iter().enumerate() {
                let joined = l.concat(r);
                if j.post_pred.as_ref().is_none_or(|pp| pp.matches(&joined)) {
                    let out = Tuple::new(j.project.iter().map(|e| e.eval(&joined)).collect());
                    // One mini pair normally yields one row per side
                    // (resourceID = primary key); the index mix only
                    // disambiguates pkey-collision multiplicities.
                    let ident = pier_dht::geom::hash2(p.ident, ((li as u64) << 32) | ri as u64);
                    self.emit_result(ctx, qid, initiator, ident, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Bloom-filter rewrite (§4.2)
    // ------------------------------------------------------------------

    fn bloom_start(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, j: &JoinSpec) {
        // Publish a filter fragment per local side. Fragments are
        // collector metadata, not window or renewal state: whatever the
        // query's horizon, they must outlive the collector's flush
        // deadline — including every congestion extension (≤ 60 ×
        // bloom_wait) — so a slow collector never ORs an
        // already-expired fragment set.
        let lifetime = self.query_horizon(qid).max(j.bloom_wait.saturating_mul(64));
        let mut work = Vec::new();
        for (side, scan) in [(Side::Left, &j.left), (Side::Right, &j.right)] {
            let mut filter = BloomFilter::new(j.bloom_bits, 4);
            for row in self.local_rows(scan, ctx.now) {
                filter.insert(row.get(scan.join_col.unwrap()).hash64());
            }
            work.push((side, filter));
        }
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (side, filter) in work {
            let ns = qns::bloom(qid, side == Side::Right);
            let me = env.me();
            self.dht.put(
                &mut env,
                ns,
                0,
                me,
                QpItem::Bloom { qid, side, filter },
                lifetime,
                &mut events,
            );
        }
        // If we own a collector key, schedule the OR-and-multicast: a
        // deadline as fallback, plus an early flush once fragments from
        // every node have arrived (see `on_new_data`).
        for side in [Side::Left, Side::Right] {
            let ns = qns::bloom(qid, side == Side::Right);
            if self.dht.owns_key(pier_dht::key_of(ns, 0)) {
                self.arm_timer(
                    ctx,
                    qid,
                    j.bloom_wait,
                    TimerAction::BloomFlush { qid, side },
                );
            }
        }
        for side in [false, true] {
            self.route_ns(qns::bloom(qid, side), qid, NsRole::BloomCollector(side));
        }
        self.pump(ctx, events);
    }

    fn bloom_flush(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, side: Side) {
        let Some(j) = self.join_spec(qid) else { return };
        {
            let Some(inst) = self.reg.queries.get_mut(&qid) else {
                return;
            };
            if inst.bloom_flushed[side as usize] {
                return;
            }
            inst.bloom_flushed[side as usize] = true;
        }
        let ns = qns::bloom(qid, side == Side::Right);
        let mut merged = BloomFilter::new(j.bloom_bits, 4);
        for e in self.dht.store.lscan(ns) {
            if let QpItem::Bloom { filter, .. } = &e.val {
                merged.union(filter);
            }
        }
        // "The filters are OR-ed together and then multicast to all nodes
        // storing the opposite table" — our multicast reaches all nodes;
        // non-holders simply have nothing to rehash.
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht.multicast(
            &mut env,
            QpItem::Bloom {
                qid,
                side,
                filter: merged,
            },
            &mut events,
        );
        self.pump(ctx, events);
    }

    fn on_bloom_filter(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, side: Side, f: BloomFilter) {
        let Some(inst) = self.reg.queries.get_mut(&qid) else {
            return;
        };
        if inst.filters[side as usize].is_some() {
            return;
        }
        inst.filters[side as usize] = Some(f.clone());
        // A filter over side X gates the rehash of the *opposite* table.
        self.rehash_side(ctx, qid, side.opposite(), Some(&f));
    }

    // ------------------------------------------------------------------
    // Aggregation (flat DHT grouping + hierarchical extension)
    // ------------------------------------------------------------------

    /// Fold one input row into the query's aggregation state. One-shot
    /// aggregates fold directly into the (drained-at-flush) group
    /// accumulators. Windowed epoch queries buffer `(valid_until, row)`
    /// so each epoch flush can re-aggregate exactly the contributions
    /// still inside the window; unwindowed epoch queries fold into
    /// persistent running accumulators snapshotted at each flush.
    fn accumulate(&mut self, qid: u64, agg: &AggSpec, row: &Tuple, valid_until: Time, ident: u64) {
        let replicated = self.replicated();
        let Some(inst) = self.reg.queries.get_mut(&qid) else {
            return;
        };
        // Under replication, anti-entropy can re-fire a probe whose
        // output this node already folded in (a healed copy re-stored
        // after a sweep): contributions are identity-deduplicated.
        // `ident == 0` (never issued) is exempt.
        if replicated && ident != 0 && !inst.acc_seen.insert(ident) {
            return;
        }
        let windowed = inst.desc.window.is_some();
        let groups = if agg.epoch.is_some() {
            if windowed {
                inst.win_rows.push((valid_until, row.clone()));
                return;
            }
            &mut inst.run_groups
        } else {
            &mut inst.local_groups
        };
        let group: Vec<Value> = agg.group_cols.iter().map(|&c| row.get(c).clone()).collect();
        groups
            .entry(group)
            .or_insert_with(|| GroupAccs::new(&agg.aggs))
            .update(&agg.aggs, row);
    }

    /// Groups to report at a flush instant: the transient accumulators
    /// drained (one-shot inputs; received hierarchical child partials),
    /// plus — for epoch queries — either a fresh aggregation of every
    /// window contribution still alive (expired contributions thereby
    /// age out of the window between epochs) or a snapshot of the
    /// running totals.
    fn harvest_groups(
        &mut self,
        qid: u64,
        agg: &AggSpec,
        now: Time,
    ) -> Vec<(Vec<Value>, GroupAccs)> {
        let Some(inst) = self.reg.queries.get_mut(&qid) else {
            return Vec::new();
        };
        let mut groups: BTreeMap<Vec<Value>, GroupAccs> = std::mem::take(&mut inst.local_groups);
        if agg.epoch.is_some() {
            inst.win_rows.retain(|(valid, _)| *valid > now);
            for (_, row) in &inst.win_rows {
                let group: Vec<Value> =
                    agg.group_cols.iter().map(|&c| row.get(c).clone()).collect();
                groups
                    .entry(group)
                    .or_insert_with(|| GroupAccs::new(&agg.aggs))
                    .update(&agg.aggs, row);
            }
            for (group, accs) in &inst.run_groups {
                groups
                    .entry(group.clone())
                    .and_modify(|g| g.merge(accs))
                    .or_insert_with(|| accs.clone());
            }
        }
        groups.into_iter().collect()
    }

    /// Push local partials into the NA namespace (flat aggregation).
    /// Epoch queries re-publish under the same instanceID every epoch —
    /// a renewal — with a one-epoch lifetime, so a group that ages out
    /// of this node's window stops contributing by the next harvest.
    fn flush_partials(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, agg: &AggSpec) {
        let groups = self.harvest_groups(qid, agg, ctx.now);
        let na = qns::agg(qid);
        let lifetime = agg.epoch.unwrap_or_else(|| agg.harvest.saturating_mul(4));
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        for (group, accs) in groups {
            let rid = group_rid(&group);
            let me = env.me();
            self.dht.put(
                &mut env,
                na,
                rid,
                me,
                QpItem::Partial { qid, group, accs },
                lifetime,
                &mut events,
            );
        }
        self.pump(ctx, events);
    }

    fn schedule_agg_timers(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        agg: AggSpec,
        joinagg: bool,
    ) {
        if let Some(epoch) = agg.epoch {
            // Epoch-driven continuous aggregation: partials flush just
            // after each epoch boundary (the short lag lets the join
            // outputs probed right after the query multicast — rehash
            // puts are still in flight at install — make epoch 0), and
            // every surviving group is harvested and re-emitted half an
            // epoch later. Both timers re-arm on fire, so the standing
            // query never tears down.
            let lag = Dur::from_micros((epoch.as_micros() / 4).min(5_000_000));
            self.arm_timer(ctx, qid, lag, TimerAction::PartialFlush { qid });
            let half = Dur::from_micros(epoch.as_micros() / 2);
            self.arm_timer(ctx, qid, half, TimerAction::AggHarvest { qid });
            return;
        }
        if joinagg {
            // NQ nodes accumulate join outputs, then flush halfway.
            let half = Dur::from_micros(agg.harvest.as_micros() / 2);
            self.arm_timer(ctx, qid, half, TimerAction::PartialFlush { qid });
        }
        self.arm_timer(ctx, qid, agg.harvest, TimerAction::AggHarvest { qid });
    }

    /// The query's aggregation spec, whatever the operator shape.
    fn agg_spec(&self, qid: u64) -> Option<AggSpec> {
        match self.reg.queries.get(&qid).map(|i| &i.desc.op) {
            Some(QueryOp::Agg { agg, .. })
            | Some(QueryOp::JoinAgg { agg, .. })
            | Some(QueryOp::MultiJoinAgg { agg, .. }) => Some(agg.clone()),
            _ => None,
        }
    }

    /// Continuous aggregation re-arms its timers every epoch instead of
    /// tearing the query down after one harvest. An epoch spec inside a
    /// non-continuous descriptor does not re-arm: the query emits one
    /// round and falls silent like any other one-shot.
    fn rearm_epoch(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, action: TimerAction) {
        if !self
            .reg
            .queries
            .get(&qid)
            .is_some_and(|i| i.desc.continuous)
        {
            return;
        }
        let epoch = self.agg_spec(qid).and_then(|a| a.epoch);
        if let Some(epoch) = epoch {
            self.arm_timer(ctx, qid, epoch, action);
        }
    }

    /// Finalize every group whose partials landed here; apply HAVING;
    /// ship results to the initiator.
    fn agg_harvest(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64) {
        let Some(inst) = self.reg.queries.get(&qid) else {
            return;
        };
        let agg = match &inst.desc.op {
            QueryOp::Agg { agg, .. }
            | QueryOp::JoinAgg { agg, .. }
            | QueryOp::MultiJoinAgg { agg, .. } => agg.clone(),
            _ => return,
        };
        let initiator = inst.desc.initiator;
        let na = qns::agg(qid);
        let now = ctx.now;
        let mut merged: BTreeMap<Vec<Value>, GroupAccs> = BTreeMap::new();
        // Expired partials (a publisher whose group aged out of its
        // window, or a dead node) are skipped even before the sweep
        // collects them.
        for e in self.dht.store.lscan(na).filter(|e| e.expires > now) {
            if let QpItem::Partial {
                group,
                accs,
                qid: q,
            } = &e.val
            {
                if *q != qid {
                    continue;
                }
                merged
                    .entry(group.clone())
                    .and_modify(|m| m.merge(accs))
                    .or_insert_with(|| accs.clone());
            }
        }
        for (group, accs) in merged {
            let virt = accs.output_row(&group);
            if agg.having.as_ref().is_none_or(|h| h.matches(&virt)) {
                let out = Tuple::new(agg.output.iter().map(|e| e.eval(&virt)).collect());
                // Aggregate emissions legitimately repeat every epoch:
                // ident 0 exempts them from initiator-side dedup.
                self.emit_result(ctx, qid, initiator, 0, out);
            }
        }
    }

    /// Hierarchical aggregation: stagger flushes so deeper nodes send
    /// before their parents, merging along a binary tree over node ids.
    /// Epoch queries stagger within each epoch and re-arm every epoch.
    fn schedule_hier_flush(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64, agg: &AggSpec) {
        let n = self.reg.queries[&qid].desc.n_nodes.max(1);
        let max_depth = 64 - (n as u64).leading_zeros() as u64;
        let me = self.dht.me() as u64;
        let depth = 64 - (me + 1).leading_zeros() as u64;
        // Deeper levels flush earlier.
        let slot = max_depth.saturating_sub(depth) + 1;
        let span = agg.epoch.unwrap_or(agg.harvest);
        let delay = Dur::from_micros(span.as_micros() * slot / (max_depth + 2));
        self.arm_timer(ctx, qid, delay, TimerAction::HierFlush { qid });
    }

    fn hier_flush(&mut self, ctx: &mut Ctx<PierMsg>, qid: u64) {
        let Some(inst) = self.reg.queries.get(&qid) else {
            return;
        };
        let agg = match &inst.desc.op {
            QueryOp::Agg { agg, .. } => agg.clone(),
            _ => return,
        };
        let initiator = inst.desc.initiator;
        let groups = self.harvest_groups(qid, &agg, ctx.now);
        let me = self.dht.me();
        if me == 0 {
            // Root: finalize.
            for (group, accs) in groups {
                let virt = accs.output_row(&group);
                if agg.having.as_ref().is_none_or(|h| h.matches(&virt)) {
                    let out = Tuple::new(agg.output.iter().map(|e| e.eval(&virt)).collect());
                    self.emit_result(ctx, qid, initiator, 0, out);
                }
            }
        } else {
            let parent = (me - 1) / 2;
            for (group, accs) in groups {
                ctx.send(parent, PierMsg::AggUp { qid, group, accs });
            }
        }
    }

    fn on_agg_up(&mut self, qid: u64, group: Vec<Value>, accs: GroupAccs) {
        let Some(inst) = self.reg.queries.get_mut(&qid) else {
            return;
        };
        inst.local_groups
            .entry(group)
            .and_modify(|m| m.merge(&accs))
            .or_insert(accs);
    }

    // ------------------------------------------------------------------
    // Dispatch plumbing
    // ------------------------------------------------------------------

    fn on_new_data(&mut self, ctx: &mut Ctx<PierMsg>, entry: Entry<QpItem>) {
        let Some(routes) = self.reg.ns_routes.get(&entry.ns) else {
            return;
        };
        let routes = routes.clone();
        for (qid, role) in routes {
            match role {
                NsRole::RehashNq => self.probe_nq(ctx, qid, &entry),
                NsRole::MStage(k) => self.mj_probe(ctx, qid, k as usize, &entry),
                NsRole::BaseLeft | NsRole::BaseRight | NsRole::MBase(_) => {
                    self.on_base_new_data(ctx, qid, role, &entry)
                }
                NsRole::BloomCollector(right) => {
                    // Early flush once every participant's fragment is in.
                    let n_expected = self
                        .reg
                        .queries
                        .get(&qid)
                        .map_or(0, |i| i.desc.n_nodes as usize);
                    if n_expected > 0 && self.dht.store.ns_len(entry.ns) >= n_expected {
                        let side = if right { Side::Right } else { Side::Left };
                        self.bloom_flush(ctx, qid, side);
                    }
                }
            }
        }
    }

    /// Continuous queries: a newly published base tuple flows through the
    /// installed pipeline incrementally.
    fn on_base_new_data(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        role: NsRole,
        entry: &Entry<QpItem>,
    ) {
        let Some(inst) = self.reg.queries.get(&qid) else {
            return;
        };
        if !inst.desc.continuous {
            return;
        }
        let QpItem::Row(row) = &entry.val else { return };
        let row = row.decode();
        let initiator = inst.desc.initiator;
        let window = inst.desc.window;
        match inst.desc.op.clone() {
            QueryOp::Scan { scan, project } => {
                if scan.pred.as_ref().is_none_or(|p| p.matches(&row)) {
                    let out = Tuple::new(project.iter().map(|e| e.eval(&row)).collect());
                    self.emit_result(ctx, qid, initiator, entry.iid as u64, out);
                }
            }
            QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => {
                let side = if role == NsRole::BaseLeft {
                    Side::Left
                } else {
                    Side::Right
                };
                self.rehash_one(ctx, qid, &j, side, entry.iid, row);
            }
            QueryOp::MultiJoin(m) | QueryOp::MultiJoinAgg { join: m, .. } => {
                if let NsRole::MBase(t) = role {
                    self.mj_rehash_one(ctx, qid, &m, t as usize, entry.iid, row);
                }
            }
            QueryOp::Agg { scan, agg } => {
                // Epoch-driven continuous aggregation: a newly published
                // base row joins the window and is (re-)reported at the
                // next epoch flush. Without an epoch the aggregate stays
                // one-shot — there is no re-emission to carry the update.
                if agg.epoch.is_none() {
                    return;
                }
                if !scan.pred.as_ref().is_none_or(|p| p.matches(&row)) {
                    return;
                }
                let valid = match window {
                    Some(w) => entry.expires.min(ctx.now + w),
                    None => Time::MAX,
                };
                self.accumulate(qid, &agg, &row, valid, entry.iid as u64);
            }
        }
    }

    /// Rehash a single (newly arrived) tuple for a continuous join.
    fn rehash_one(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        j: &JoinSpec,
        side: Side,
        base_iid: u32,
        row: Tuple,
    ) {
        let Some(inst) = self.reg.queries.get(&qid) else {
            return;
        };
        let view = inst.view.clone().expect("join view");
        let (scan, keep) = match side {
            Side::Left => (&j.left, &view.keep_base),
            Side::Right => (&j.right, &view.stages[0].keep_right),
        };
        if !scan.pred.as_ref().is_none_or(|p| p.matches(&row)) {
            return;
        }
        let join = row.get(scan.join_col.unwrap()).clone();
        let rid = Self::rehash_rid(&join, j.computation_nodes);
        let lifetime = self.soft_lifetime(qid);
        let iid = self.derived_iid(base_iid, side as u64);
        let item = QpItem::Tagged {
            qid,
            side,
            join,
            row: FlatRow::from_tuple(&row.project(keep)),
        };
        let ns = qns::rehash(qid);
        self.record_rehash(qid, ns, rid, iid, &item);
        let mut env = PierEnv { ctx };
        let mut events = Vec::new();
        self.dht
            .put(&mut env, ns, rid, iid, item, lifetime, &mut events);
        self.pump(ctx, events);
    }

    /// Probe NQ entries that were stored before this node learned about
    /// the query (multicast races the first rehash puts). Entries are
    /// replayed in a fixed order, each probing only its predecessors, so
    /// no pair is produced twice.
    fn replay_rehash_ns(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        mut entries: Vec<Entry<QpItem>>,
    ) {
        if entries.is_empty() {
            return;
        }
        entries.sort_by_key(|e| (e.rid, e.iid));
        // Probe pairs directly: replaying the k-th entry against a store
        // containing all of them would double-count.
        for i in 0..entries.len() {
            for k in 0..i {
                if entries[i].rid == entries[k].rid {
                    self.probe_pairwise(ctx, qid, &entries[i], &entries[k]);
                }
            }
        }
    }

    fn probe_pairwise(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        a: &Entry<QpItem>,
        b: &Entry<QpItem>,
    ) {
        let Some(inst) = self.reg.queries.get(&qid) else {
            return;
        };
        // Replay happens at install time: state stored before the query
        // arrived may have already aged out of its window.
        if a.expires <= ctx.now || b.expires <= ctx.now {
            return;
        }
        match (&a.val, &b.val) {
            (
                QpItem::Tagged {
                    side: sa,
                    join: ja,
                    row: ra,
                    ..
                },
                QpItem::Tagged {
                    side: sb,
                    join: jb,
                    row: rb,
                    ..
                },
            ) => {
                if sa == sb || ja != jb {
                    return;
                }
                let view = inst.view.clone().expect("join view");
                let initiator = inst.desc.initiator;
                let is_joinagg = matches!(inst.desc.op, QueryOp::JoinAgg { .. });
                let agg = match &inst.desc.op {
                    QueryOp::JoinAgg { agg, .. } => Some(agg.clone()),
                    _ => None,
                };
                let (l, r) = if *sa == Side::Left {
                    (ra, rb)
                } else {
                    (rb, ra)
                };
                let joined = l.decode().concat(&r.decode());
                let stage = &view.stages[0];
                if stage.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    let shipped = joined.project(&stage.emit);
                    let out = Tuple::new(view.project.iter().map(|e| e.eval(&shipped)).collect());
                    let ident = Self::pair_ident(a.iid, b.iid);
                    if is_joinagg {
                        if let Some(ag) = &agg {
                            let valid = self.window_valid(qid, a.expires.min(b.expires));
                            self.accumulate(qid, ag, &out, valid, ident);
                        }
                    } else {
                        self.emit_result(ctx, qid, initiator, ident, out);
                    }
                }
            }
            (
                QpItem::Mini {
                    side: sa,
                    pkey: pa,
                    join: ja,
                    ..
                },
                QpItem::Mini {
                    side: sb,
                    pkey: pb,
                    join: jb,
                    ..
                },
            ) => {
                if sa == sb || ja != jb {
                    return;
                }
                let (pk_l, pk_r) = if *sa == Side::Left {
                    (pa.clone(), pb.clone())
                } else {
                    (pb.clone(), pa.clone())
                };
                let ident = Self::pair_ident(a.iid, b.iid);
                self.semi_pair(ctx, qid, pk_l, pk_r, ident);
            }
            _ => {}
        }
    }

    fn on_get_result(&mut self, ctx: &mut Ctx<PierMsg>, token: u64, items: Vec<Entry<QpItem>>) {
        match self.get_purpose.remove(&token) {
            Some(GetPurpose::FmProbe {
                qid,
                left_iid,
                left_row,
            }) => self.fm_complete(ctx, qid, left_iid, left_row, items),
            Some(GetPurpose::SemiFetch { qid, pair, side }) => {
                self.semi_complete(ctx, qid, pair, side, items)
            }
            None => {}
        }
    }

    fn emit_result(
        &mut self,
        ctx: &mut Ctx<PierMsg>,
        qid: u64,
        initiator: NodeId,
        ident: u64,
        row: Tuple,
    ) {
        self.metrics.on_result(qid, row.wire_size());
        if initiator == ctx.me {
            if self.record_result(qid, ident) {
                self.results.entry(qid).or_default().push((ctx.now, row));
            }
        } else {
            let row = FlatRow::from_tuple(&row);
            ctx.send(initiator, PierMsg::Result { qid, ident, row });
        }
    }

    /// Initiator-side admission of one result: `false` when it is a
    /// replication-era duplicate (same logical identity already logged —
    /// a healed replica re-ran a probe the dead primary had answered).
    /// At `replication = 1` every result is admitted, unconditionally.
    fn record_result(&mut self, qid: u64, ident: u64) -> bool {
        if !self.replicated() || ident == 0 {
            return true;
        }
        self.results_seen.entry(qid).or_default().insert(ident)
    }
}

/// resourceID of a group's partials: hash of the group values.
fn group_rid(group: &[Value]) -> Rid {
    let mut h: u64 = 0x67_72_6f_75_70;
    for v in group {
        h = pier_dht::geom::hash2(h, v.hash64());
    }
    h
}

impl App for PierNode {
    type Msg = PierMsg;

    fn on_start(&mut self, ctx: &mut Ctx<PierMsg>) {
        let bootstrap = self.bootstrap;
        if self.dht.is_joined() {
            ctx.set_timer(self.dht.cfg.tick, DHT_TICK_TOKEN);
        } else {
            let mut env = PierEnv { ctx };
            self.dht.start(&mut env, bootstrap);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<PierMsg>, from: NodeId, msg: PierMsg) {
        match msg {
            PierMsg::Dht(m) => {
                let mut env = PierEnv { ctx };
                let mut events = Vec::new();
                self.dht.handle_message(&mut env, from, m, &mut events);
                self.pump(ctx, events);
            }
            PierMsg::Result { qid, ident, row } => {
                if self.record_result(qid, ident) {
                    self.results
                        .entry(qid)
                        .or_default()
                        .push((ctx.now, row.decode()));
                }
            }
            PierMsg::AggUp { qid, group, accs } => self.on_agg_up(qid, group, accs),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<PierMsg>, token: u64) {
        if token == DHT_TICK_TOKEN {
            let mut env = PierEnv { ctx };
            let mut events = Vec::new();
            self.dht.handle_timer(&mut env, token, &mut events);
            self.pump(ctx, events);
            return;
        }
        let fired = self.timer_actions.remove(&token);
        if let Some(qid) = fired.as_ref().and_then(TimerAction::qid) {
            self.release_timer(qid, token);
        }
        match fired {
            Some(TimerAction::BloomFlush { qid, side }) => {
                // A collector's deadline: if we know how many fragments to
                // expect and they are still in flight (congestion), extend
                // the window instead of multicasting a truncated filter.
                let extend = if let Some(inst) = self.reg.queries.get_mut(&qid) {
                    let expecting = inst.desc.n_nodes as usize;
                    let ns = qns::bloom(qid, side == Side::Right);
                    let have = self.dht.store.ns_len(ns);
                    if expecting > 0
                        && have < expecting
                        && inst.bloom_waits[side as usize] < 60
                        && !inst.bloom_flushed[side as usize]
                    {
                        inst.bloom_waits[side as usize] += 1;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                if extend {
                    let wait = match &self.reg.queries[&qid].desc.op {
                        QueryOp::Join(j) | QueryOp::JoinAgg { join: j, .. } => j.bloom_wait,
                        _ => Dur::from_secs(10),
                    };
                    self.arm_timer(ctx, qid, wait, TimerAction::BloomFlush { qid, side });
                } else {
                    self.bloom_flush(ctx, qid, side);
                }
            }
            Some(TimerAction::AggHarvest { qid }) => {
                self.agg_harvest(ctx, qid);
                self.rearm_epoch(ctx, qid, TimerAction::AggHarvest { qid });
                // The harvest is a one-shot aggregate's terminal event.
                self.retire_if_one_shot(qid);
            }
            Some(TimerAction::PartialFlush { qid }) => {
                if let Some(agg) = self.agg_spec(qid) {
                    self.flush_partials(ctx, qid, &agg);
                }
                self.rearm_epoch(ctx, qid, TimerAction::PartialFlush { qid });
            }
            Some(TimerAction::HierFlush { qid }) => {
                self.hier_flush(ctx, qid);
                self.rearm_epoch(ctx, qid, TimerAction::HierFlush { qid });
                // A one-shot tree flush is this node's terminal event
                // (parents flush after their children sent partials up).
                self.retire_if_one_shot(qid);
            }
            Some(TimerAction::Renew) => self.renew_all(ctx),
            Some(TimerAction::RenewQuery { qid }) => self.renew_query(ctx, qid),
            None => {}
        }
    }
}

// ---------------------------------------------------------------------
// The typed client surface (actor runtime)
// ---------------------------------------------------------------------

/// Typed requests a client handle may send to a running PIER node
/// actor — the replacement for the retired closure-injection API.
/// Every operation benches, tests, and co-resident apps perform on a
/// deployed node goes through one of these, executed on the actor
/// thread with a full `Ctx` (so submit/publish emit network traffic
/// exactly like any internal callback).
/// Outcome of a tenant-attributed publish: how many rows entered the
/// DHT and how many the tenant's token bucket shed at ingress.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PublishReport {
    /// Rows admitted into the overlay.
    pub accepted: usize,
    /// Rows refused by backpressure (never reached the wire).
    pub shed: usize,
}

#[derive(Clone, Debug)]
pub enum NodeRequest {
    /// Install and start a query at this node (§3.3 query multicast).
    /// Boxed: a descriptor is large relative to every other variant.
    Submit(Box<QueryDesc>),
    /// Quota-governed submission ([`PierNode::try_submit`]): priced by
    /// the cost model, rejected with a typed [`AdmissionError`] when
    /// the owning tenant is over budget.
    TrySubmit(Box<QueryDesc>),
    /// Publish rows of a table into the DHT, resourceID = `pkey_col`.
    PublishRows {
        table: String,
        rows: Vec<Tuple>,
        pkey_col: usize,
        lifetime: Dur,
    },
    /// Tenant-attributed publish with token-bucket backpressure
    /// ([`PierNode::publish_rows_from`]); answers with the
    /// accepted/shed split.
    PublishRowsFor {
        tenant: u32,
        table: String,
        rows: Vec<Tuple>,
        pkey_col: usize,
        lifetime: Dur,
    },
    /// Register (or replace) a tenant's quota on this node.
    SetQuota {
        tenant: u32,
        quota: crate::tenant::Quota,
    },
    /// Register a base table's arrival rate for admission pricing.
    SetTableRate {
        table: String,
        rate: crate::optimizer::TableRate,
    },
    /// This node's metrics snapshot ([`PierNode::node_metrics`]).
    Metrics,
    /// Uninstall a query and reclaim its distributed state.
    Cancel(u64),
    /// How many result tuples has this node collected for a query?
    ResultCount(u64),
    /// The collected result tuples with their arrival times.
    TimedResults(u64),
    /// Lifecycle audit: installed queries, outstanding timers, and the
    /// per-query soft-state residual over `max_stages` join stages.
    LifecycleAudit { qids: Vec<u64>, max_stages: usize },
}

/// Typed responses to [`NodeRequest`]s.
#[derive(Clone, Debug)]
pub enum NodeResponse {
    /// Acknowledgement of a fire-and-forget style mutation.
    Done,
    Count(usize),
    TimedResults(Vec<(Time, Tuple)>),
    Audit {
        installed: usize,
        timers: usize,
        residuals: Vec<usize>,
    },
    /// Admission verdict for a [`NodeRequest::TrySubmit`]: the priced
    /// bytes/sec on success, the typed rejection otherwise.
    Admission(Result<f64, AdmissionError>),
    /// Accepted/shed split of a [`NodeRequest::PublishRowsFor`].
    Publish(PublishReport),
    /// Snapshot for a [`NodeRequest::Metrics`]. Boxed: far larger than
    /// every other variant.
    Metrics(Box<NodeMetrics>),
}

impl NodeResponse {
    /// Unwrap a [`NodeResponse::Count`]; panics on a variant mismatch
    /// (harness misuse, not a runtime condition).
    pub fn into_count(self) -> usize {
        match self {
            NodeResponse::Count(c) => c,
            other => panic!("expected Count, got {other:?}"),
        }
    }

    /// Unwrap a [`NodeResponse::TimedResults`].
    pub fn into_timed_results(self) -> Vec<(Time, Tuple)> {
        match self {
            NodeResponse::TimedResults(r) => r,
            other => panic!("expected TimedResults, got {other:?}"),
        }
    }

    /// Unwrap a [`NodeResponse::Audit`] as `(installed, timers, residuals)`.
    pub fn into_audit(self) -> (usize, usize, Vec<usize>) {
        match self {
            NodeResponse::Audit {
                installed,
                timers,
                residuals,
            } => (installed, timers, residuals),
            other => panic!("expected Audit, got {other:?}"),
        }
    }

    /// Unwrap a [`NodeResponse::Admission`].
    pub fn into_admission(self) -> Result<f64, AdmissionError> {
        match self {
            NodeResponse::Admission(r) => r,
            other => panic!("expected Admission, got {other:?}"),
        }
    }

    /// Unwrap a [`NodeResponse::Publish`].
    pub fn into_publish_report(self) -> PublishReport {
        match self {
            NodeResponse::Publish(r) => r,
            other => panic!("expected Publish, got {other:?}"),
        }
    }

    /// Unwrap a [`NodeResponse::Metrics`].
    pub fn into_metrics(self) -> NodeMetrics {
        match self {
            NodeResponse::Metrics(m) => *m,
            other => panic!("expected Metrics, got {other:?}"),
        }
    }
}

impl pier_simnet::Service for PierNode {
    type Req = NodeRequest;
    type Resp = NodeResponse;

    fn on_request(&mut self, ctx: &mut Ctx<PierMsg>, req: NodeRequest) -> NodeResponse {
        match req {
            NodeRequest::Submit(desc) => {
                self.submit(ctx, *desc);
                NodeResponse::Done
            }
            NodeRequest::TrySubmit(desc) => NodeResponse::Admission(self.try_submit(ctx, *desc)),
            NodeRequest::PublishRows {
                table,
                rows,
                pkey_col,
                lifetime,
            } => {
                self.publish_rows(ctx, &table, rows, pkey_col, lifetime);
                NodeResponse::Done
            }
            NodeRequest::PublishRowsFor {
                tenant,
                table,
                rows,
                pkey_col,
                lifetime,
            } => NodeResponse::Publish(
                self.publish_rows_from(ctx, tenant, &table, rows, pkey_col, lifetime),
            ),
            NodeRequest::SetQuota { tenant, quota } => {
                self.governor.set_quota(tenant, quota);
                NodeResponse::Done
            }
            NodeRequest::SetTableRate { table, rate } => {
                self.governor.set_table_rate(pier_dht::ns_of(&table), rate);
                NodeResponse::Done
            }
            NodeRequest::Metrics => NodeResponse::Metrics(Box::new(self.node_metrics(ctx.now))),
            NodeRequest::Cancel(qid) => {
                self.cancel(ctx, qid);
                NodeResponse::Done
            }
            NodeRequest::ResultCount(qid) => NodeResponse::Count(self.query_results(qid).len()),
            NodeRequest::TimedResults(qid) => {
                NodeResponse::TimedResults(self.query_results(qid).to_vec())
            }
            NodeRequest::LifecycleAudit { qids, max_stages } => NodeResponse::Audit {
                installed: self.installed_query_count(),
                timers: self.timer_action_count(),
                residuals: qids
                    .iter()
                    .map(|&qid| self.query_soft_state(ctx.now, qid, max_stages))
                    .collect(),
            },
        }
    }
}

//! Tenancy governance: per-tenant quotas, admission control, and
//! publish backpressure.
//!
//! PIER is designed to run "with no DBA in the loop" (paper §1), which
//! cuts both ways: nobody provisions capacity per query, so the system
//! itself must refuse work it cannot afford. This module supplies the
//! three governance primitives the node core wires in:
//!
//! * a [`Quota`] — per-tenant limits on standing queries and on
//!   *priced* traffic, where pricing reuses the byte-accurate PR 3
//!   cost model via [`crate::optimizer::price_query`]. A query's
//!   admission cost is the bytes/sec the optimizer predicts it will
//!   put on the wire, not a guess;
//! * a [`TenantGovernor`] — the bookkeeping that turns quotas into
//!   decisions: [`TenantGovernor::check`] is a side-effect-free dry
//!   run (the typed-rejection surface for `try_submit`),
//!   [`TenantGovernor::admit`] commits budget at install time, and
//!   [`TenantGovernor::release`] returns it at uninstall;
//! * a deterministic [`TokenBucket`] per tenant — publish-side
//!   backpressure. A tenant whose publish rate outruns its
//!   `publish_bytes_per_sec` has the overflow *shed* at the
//!   `NodeHandle` boundary instead of admitted into the overlay,
//!   so one hot fingerprint cannot starve co-tenants.
//!
//! All container state is `BTreeMap`-backed and all arithmetic is
//! driven by engine [`Time`], so governance decisions are bit-identical
//! across Sim, ShardedSim, and Cluster runs of the same trace.

use std::collections::BTreeMap;
use std::fmt;

use pier_dht::Ns;
use pier_simnet::time::Time;

use crate::optimizer::{price_query, TableRate};
use crate::plan::QueryDesc;

/// Tenant identifier. Tenant 0 is the default tenant; quotas are
/// opt-in, and a tenant with no registered [`Quota`] is unlimited.
pub type TenantId = u32;

/// Per-tenant resource limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quota {
    /// Maximum simultaneously-installed standing queries.
    pub max_standing: usize,
    /// Budget for the sum of priced bytes/sec over the tenant's
    /// installed queries (the PR 3 cost model's prediction).
    pub max_priced_bytes_per_sec: f64,
    /// Sustained publish rate (bytes/sec) refilling the tenant's
    /// token bucket.
    pub publish_bytes_per_sec: f64,
    /// Bucket capacity: the largest burst (bytes) a tenant may
    /// publish instantaneously from a full bucket.
    pub publish_burst_bytes: f64,
}

impl Quota {
    /// No limits — the behaviour of a tenant with no quota registered.
    pub fn unlimited() -> Self {
        Quota {
            max_standing: usize::MAX,
            max_priced_bytes_per_sec: f64::INFINITY,
            publish_bytes_per_sec: f64::INFINITY,
            publish_burst_bytes: f64::INFINITY,
        }
    }
}

/// Typed admission rejection — what `try_submit` returns instead of
/// silently installing an over-budget query.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The tenant is at its standing-query limit.
    StandingQueries {
        tenant: TenantId,
        installed: usize,
        limit: usize,
    },
    /// Admitting the query would push the tenant's committed priced
    /// traffic over budget.
    PricedTraffic {
        tenant: TenantId,
        /// Priced cost of the rejected query (bytes/sec).
        priced: f64,
        /// Already-committed bytes/sec across the tenant's queries.
        committed: f64,
        /// The tenant's `max_priced_bytes_per_sec`.
        budget: f64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::StandingQueries {
                tenant,
                installed,
                limit,
            } => write!(
                f,
                "tenant {tenant}: standing-query quota exhausted ({installed}/{limit})"
            ),
            AdmissionError::PricedTraffic {
                tenant,
                priced,
                committed,
                budget,
            } => write!(
                f,
                "tenant {tenant}: priced traffic over budget \
                 ({priced:.1} B/s on top of {committed:.1} committed, budget {budget:.1})"
            ),
        }
    }
}

/// Deterministic token bucket: refills continuously at `rate`
/// bytes/sec up to `burst` capacity, driven entirely by engine time.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Time,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(rate: f64, burst: f64) -> Self {
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: Time(0),
        }
    }

    fn refill(&mut self, now: Time) {
        if now.0 > self.last.0 {
            let dt = (now.0 - self.last.0) as f64 / 1_000_000.0;
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last = now;
        }
    }

    /// Take `cost` tokens if available. Returns `true` on success;
    /// on refusal no tokens are consumed (shed, don't penalise).
    pub fn try_take(&mut self, now: Time, cost: f64) -> bool {
        self.refill(now);
        if self.tokens + 1e-9 >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after a refill to `now`).
    pub fn available(&mut self, now: Time) -> f64 {
        self.refill(now);
        self.tokens
    }
}

/// Per-node tenancy governor: prices queries, enforces quotas, and
/// meters publishes. Owned by each `PierNode`; decisions are local,
/// but because every node sees the same install multicast and the same
/// quota table, the whole overlay converges on the same verdict.
#[derive(Debug, Clone, Default)]
pub struct TenantGovernor {
    /// Base-table arrival rates used to price queries. Keyed by the
    /// table's publish namespace.
    rates: BTreeMap<Ns, TableRate>,
    /// Pricing fallback for tables with no registered rate.
    default_rate: TableRate,
    /// Registered quotas; absent tenants are unlimited.
    quotas: BTreeMap<TenantId, Quota>,
    /// qid -> (tenant, priced bytes/sec) for every admitted standing
    /// query — the committed ledger that `release` unwinds.
    committed: BTreeMap<u64, (TenantId, f64)>,
    /// Publish-side token buckets, created lazily per tenant.
    buckets: BTreeMap<TenantId, TokenBucket>,
}

impl TenantGovernor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a tenant's quota.
    pub fn set_quota(&mut self, tenant: TenantId, quota: Quota) {
        self.quotas.insert(tenant, quota);
        // The bucket's shape follows the quota; reset it full so a
        // re-quota'd tenant starts from a clean burst allowance.
        self.buckets.insert(
            tenant,
            TokenBucket::new(quota.publish_bytes_per_sec, quota.publish_burst_bytes),
        );
    }

    /// The tenant's quota, or unlimited if none is registered.
    pub fn quota(&self, tenant: TenantId) -> Quota {
        self.quotas
            .get(&tenant)
            .copied()
            .unwrap_or_else(Quota::unlimited)
    }

    /// Register the arrival rate of a base table for pricing.
    pub fn set_table_rate(&mut self, ns: Ns, rate: TableRate) {
        self.rates.insert(ns, rate);
    }

    /// Price a query with the PR 3 cost model: predicted bytes/sec.
    pub fn price(&self, desc: &QueryDesc) -> f64 {
        price_query(desc, &|ns| {
            self.rates.get(&ns).copied().unwrap_or(self.default_rate)
        })
    }

    /// Standing queries currently committed for `tenant`.
    pub fn standing_count(&self, tenant: TenantId) -> usize {
        self.committed
            .values()
            .filter(|(t, _)| *t == tenant)
            .count()
    }

    /// Priced bytes/sec currently committed for `tenant`.
    pub fn committed_bytes_per_sec(&self, tenant: TenantId) -> f64 {
        self.committed
            .values()
            .filter(|(t, _)| *t == tenant)
            .map(|(_, b)| b)
            .sum()
    }

    /// Dry-run admission: would `desc` be admitted right now? No state
    /// changes — this is the typed-rejection surface for `try_submit`.
    pub fn check(&self, desc: &QueryDesc) -> Result<f64, AdmissionError> {
        let tenant = desc.tenant;
        let quota = self.quota(tenant);
        let installed = self.standing_count(tenant);
        if installed >= quota.max_standing {
            return Err(AdmissionError::StandingQueries {
                tenant,
                installed,
                limit: quota.max_standing,
            });
        }
        let priced = self.price(desc);
        let committed = self.committed_bytes_per_sec(tenant);
        if committed + priced > quota.max_priced_bytes_per_sec {
            return Err(AdmissionError::PricedTraffic {
                tenant,
                priced,
                committed,
                budget: quota.max_priced_bytes_per_sec,
            });
        }
        Ok(priced)
    }

    /// Admission at install time: check, then commit the priced budget
    /// under `desc.qid`. Re-admitting an already-committed qid is a
    /// no-op success (installs arrive via multicast and may repeat).
    pub fn admit(&mut self, desc: &QueryDesc) -> Result<f64, AdmissionError> {
        if let Some((_, priced)) = self.committed.get(&desc.qid) {
            return Ok(*priced);
        }
        let priced = self.check(desc)?;
        self.committed.insert(desc.qid, (desc.tenant, priced));
        Ok(priced)
    }

    /// Return a query's budget at uninstall. Unknown qids are ignored.
    pub fn release(&mut self, qid: u64) {
        self.committed.remove(&qid);
    }

    /// Publish-side backpressure: may `tenant` publish `bytes` now?
    /// `true` admits the publish (consuming tokens); `false` means the
    /// caller must shed it. Tenants without quotas always pass.
    pub fn try_publish(&mut self, tenant: TenantId, now: Time, bytes: f64) -> bool {
        match self.buckets.get_mut(&tenant) {
            Some(bucket) => bucket.try_take(now, bytes),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{QueryDesc, QueryOp, ScanSpec};
    use pier_dht::ns_of;

    fn scan_desc(qid: u64, tenant: TenantId) -> QueryDesc {
        let scan = ScanSpec::new("t", 2, 0);
        QueryDesc::standing(
            qid,
            0,
            QueryOp::Scan {
                scan,
                project: vec![],
            },
            None,
        )
        .with_tenant(tenant)
    }

    #[test]
    fn token_bucket_refills_deterministically() {
        let mut b = TokenBucket::new(100.0, 200.0);
        // Full bucket: a 200-byte burst passes, the next byte doesn't.
        assert!(b.try_take(Time(0), 200.0));
        assert!(!b.try_take(Time(0), 1.0));
        // 1 s refills 100 tokens.
        assert!(b.try_take(Time(1_000_000), 100.0));
        assert!(!b.try_take(Time(1_000_000), 1.0));
        // Capacity clamps: 10 s later the bucket holds 200, not 1000.
        assert!((b.available(Time(11_000_000)) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn standing_query_quota_rejects_typed() {
        let mut g = TenantGovernor::new();
        g.set_quota(
            7,
            Quota {
                max_standing: 1,
                ..Quota::unlimited()
            },
        );
        g.admit(&scan_desc(1, 7)).expect("first query admitted");
        let err = g.admit(&scan_desc(2, 7)).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::StandingQueries {
                tenant: 7,
                installed: 1,
                limit: 1
            }
        );
        // Release frees the slot.
        g.release(1);
        g.admit(&scan_desc(2, 7)).expect("admitted after release");
    }

    #[test]
    fn priced_traffic_quota_rejects_typed() {
        let mut g = TenantGovernor::new();
        g.set_table_rate(
            ns_of("t"),
            TableRate {
                rows_per_sec: 10.0,
                avg_tuple_bytes: 100.0,
            },
        );
        let priced = g.price(&scan_desc(1, 3));
        assert!(priced > 0.0);
        g.set_quota(
            3,
            Quota {
                max_priced_bytes_per_sec: priced * 1.5,
                ..Quota::unlimited()
            },
        );
        g.admit(&scan_desc(1, 3)).expect("within budget");
        let err = g.admit(&scan_desc(2, 3)).unwrap_err();
        match err {
            AdmissionError::PricedTraffic {
                tenant,
                committed,
                budget,
                ..
            } => {
                assert_eq!(tenant, 3);
                assert!((committed - priced).abs() < 1e-9);
                assert!((budget - priced * 1.5).abs() < 1e-9);
            }
            other => panic!("wrong rejection: {other:?}"),
        }
        // Display is operator-readable.
        assert!(g
            .check(&scan_desc(2, 3))
            .unwrap_err()
            .to_string()
            .contains("over budget"));
    }

    #[test]
    fn readmitting_a_committed_qid_is_idempotent() {
        let mut g = TenantGovernor::new();
        g.set_quota(
            1,
            Quota {
                max_standing: 1,
                ..Quota::unlimited()
            },
        );
        g.admit(&scan_desc(9, 1)).unwrap();
        // The install multicast re-delivers: same qid must not double-count.
        g.admit(&scan_desc(9, 1)).expect("idempotent re-admit");
        assert_eq!(g.standing_count(1), 1);
    }

    #[test]
    fn unquotad_tenants_are_unlimited() {
        let mut g = TenantGovernor::new();
        for qid in 0..100 {
            g.admit(&scan_desc(qid, 42)).expect("no quota, no limit");
        }
        assert!(g.try_publish(42, Time(0), 1e12));
    }
}

//! Tuples and schemas.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// Wire bytes of the per-tuple header — shared by the actual accounting
/// ([`Tuple::wire_size`]) and the predictions
/// ([`crate::plan::StageSchema::wire_bytes`],
/// [`crate::catalog::TableDef::ship_bytes`]) so "predicted bytes ==
/// shipped bytes" holds by construction.
pub const TUPLE_HEADER_BYTES: usize = 4;

/// A relational tuple: a flat vector of values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Tuple {
    pub vals: Vec<Value>,
}

impl Tuple {
    pub fn new(vals: Vec<Value>) -> Self {
        Tuple { vals }
    }

    pub fn get(&self, i: usize) -> &Value {
        &self.vals[i]
    }

    pub fn arity(&self) -> usize {
        self.vals.len()
    }

    /// Projection: keep the listed columns, in order.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.vals[c].clone()).collect())
    }

    /// Concatenation (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut vals = Vec::with_capacity(self.vals.len() + other.vals.len());
        vals.extend_from_slice(&self.vals);
        vals.extend_from_slice(&other.vals);
        Tuple::new(vals)
    }

    /// Wire bytes: values plus a small per-tuple header.
    pub fn wire_size(&self) -> usize {
        TUPLE_HEADER_BYTES + self.vals.iter().map(Value::wire_size).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[macro_export]
/// Build a tuple from value-convertible literals: `tuple![1i64, 2.5, "x"]`.
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

/// Column types (documentation-level; evaluation is dynamically typed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColType {
    Bool,
    I64,
    F64,
    Str,
    Pad,
}

impl ColType {
    /// Wire bytes of one value of this type, when statically known
    /// (mirrors [`crate::value::Value::wire_size`]); `None` for
    /// variable-width types (`Str`, `Pad`), whose widths come from
    /// catalog statistics.
    pub fn wire_width(&self) -> Option<u32> {
        match self {
            ColType::Bool => Some(1),
            ColType::I64 | ColType::F64 => Some(8),
            ColType::Str | ColType::Pad => None,
        }
    }
}

/// A named, typed column.
#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    pub ty: ColType,
}

/// A relation schema: name plus ordered fields.
#[derive(Clone, Debug)]
pub struct Schema {
    pub name: String,
    pub fields: Vec<Field>,
}

pub type SchemaRef = Arc<Schema>;

impl Schema {
    pub fn new(name: &str, fields: &[(&str, ColType)]) -> SchemaRef {
        Arc::new(Schema {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(n, t)| Field {
                    name: n.to_string(),
                    ty: *t,
                })
                .collect(),
        })
    }

    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Resolve a column by bare name or `table.name` (joined schemas
    /// carry qualified field names like `R.pkey`).
    pub fn col(&self, name: &str) -> Option<usize> {
        // Exact (possibly qualified) field-name match.
        if let Some(i) = self
            .fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
        {
            return Some(i);
        }
        // `<schema>.<field>` qualification against our own name.
        if let Some((prefix, rest)) = name.split_once('.') {
            if prefix.eq_ignore_ascii_case(&self.name) {
                return self.col(rest);
            }
            return None;
        }
        // Bare name matching the suffix of a qualified field, if unique.
        let hits: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name
                    .rsplit('.')
                    .next()
                    .is_some_and(|b| b.eq_ignore_ascii_case(name))
            })
            .map(|(i, _)| i)
            .collect();
        match hits.as_slice() {
            [i] => Some(*i),
            _ => None,
        }
    }

    /// Schema of `self ⨝ other` (concatenated columns).
    pub fn join(&self, other: &Schema) -> SchemaRef {
        let mut fields = Vec::with_capacity(self.fields.len() + other.fields.len());
        for f in &self.fields {
            fields.push(Field {
                name: format!("{}.{}", self.name, f.name),
                ty: f.ty,
            });
        }
        for f in &other.fields {
            fields.push(Field {
                name: format!("{}.{}", other.name, f.name),
                ty: f.ty,
            });
        }
        Arc::new(Schema {
            name: format!("{}_{}", self.name, other.name),
            fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_and_concat() {
        let t = tuple![1i64, 2i64, 3i64];
        assert_eq!(t.project(&[2, 0]), tuple![3i64, 1i64]);
        let u = tuple!["x"];
        let c = t.concat(&u);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.get(3), &Value::str("x"));
    }

    #[test]
    fn schema_resolution_with_and_without_prefix() {
        let s = Schema::new("R", &[("pkey", ColType::I64), ("num1", ColType::I64)]);
        assert_eq!(s.col("num1"), Some(1));
        assert_eq!(s.col("R.num1"), Some(1));
        assert_eq!(s.col("r.PKEY"), Some(0));
        assert_eq!(s.col("S.num1"), None);
        assert_eq!(s.col("nope"), None);
    }

    #[test]
    fn join_schema_prefixes_columns() {
        let r = Schema::new("R", &[("pkey", ColType::I64)]);
        let s = Schema::new("S", &[("pkey", ColType::I64)]);
        let j = r.join(&s);
        assert_eq!(j.arity(), 2);
        assert_eq!(j.col("R.pkey"), Some(0));
        assert_eq!(j.col("S.pkey"), Some(1));
    }

    #[test]
    fn tuple_wire_size_sums_values() {
        let t = tuple![1i64, 2i64];
        assert_eq!(t.wire_size(), 4 + 16);
    }
}

//! Tuples, schemas, and the flat wire encoding.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// Wire bytes of the per-tuple header — shared by the actual accounting
/// ([`Tuple::wire_size`]) and the predictions
/// ([`crate::plan::StageSchema::wire_bytes`],
/// [`crate::catalog::TableDef::ship_bytes`]) so "predicted bytes ==
/// shipped bytes" holds by construction.
pub const TUPLE_HEADER_BYTES: usize = 4;

/// A relational tuple: a flat vector of values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Tuple {
    pub vals: Vec<Value>,
}

impl Tuple {
    pub fn new(vals: Vec<Value>) -> Self {
        Tuple { vals }
    }

    pub fn get(&self, i: usize) -> &Value {
        &self.vals[i]
    }

    pub fn arity(&self) -> usize {
        self.vals.len()
    }

    /// Projection: keep the listed columns, in order.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.vals[c].clone()).collect())
    }

    /// Concatenation (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut vals = Vec::with_capacity(self.vals.len() + other.vals.len());
        vals.extend_from_slice(&self.vals);
        vals.extend_from_slice(&other.vals);
        Tuple::new(vals)
    }

    /// Wire bytes: values plus a small per-tuple header.
    pub fn wire_size(&self) -> usize {
        TUPLE_HEADER_BYTES + self.vals.iter().map(Value::wire_size).sum::<usize>()
    }

    /// Append the flat encoding of this tuple to `buf` (see [`FlatRow`]
    /// for the layout). The buffer is reusable across calls; nothing
    /// before its current length is touched.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.vals.len() as u32).to_le_bytes());
        for v in &self.vals {
            match v {
                Value::Null => buf.push(TAG_NULL),
                Value::Bool(false) => buf.push(TAG_FALSE),
                Value::Bool(true) => buf.push(TAG_TRUE),
                Value::I64(i) => {
                    buf.push(TAG_I64);
                    buf.extend_from_slice(&i.to_le_bytes());
                }
                Value::F64(f) => {
                    buf.push(TAG_F64);
                    buf.extend_from_slice(&f.to_bits().to_le_bytes());
                }
                Value::Str(s) => {
                    buf.push(TAG_STR);
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s.as_bytes());
                }
                Value::Pad(n) => {
                    buf.push(TAG_PAD);
                    buf.extend_from_slice(&n.to_le_bytes());
                }
            }
        }
    }

    /// Decode one tuple from the front of `bytes`; returns the tuple and
    /// the number of bytes consumed. `None` on a malformed buffer.
    pub fn decode_from(bytes: &[u8]) -> Option<(Tuple, usize)> {
        let mut pos = 0usize;
        let arity = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?) as usize;
        pos += 4;
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = *bytes.get(pos)?;
            pos += 1;
            vals.push(match tag {
                TAG_NULL => Value::Null,
                TAG_FALSE => Value::Bool(false),
                TAG_TRUE => Value::Bool(true),
                TAG_I64 => {
                    let v = i64::from_le_bytes(bytes.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    Value::I64(v)
                }
                TAG_F64 => {
                    let v = u64::from_le_bytes(bytes.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    Value::F64(f64::from_bits(v))
                }
                TAG_STR => {
                    let len =
                        u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
                    pos += 4;
                    let s = std::str::from_utf8(bytes.get(pos..pos + len)?).ok()?;
                    pos += len;
                    Value::Str(Arc::from(s))
                }
                TAG_PAD => {
                    let n = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?);
                    pos += 4;
                    Value::Pad(n)
                }
                _ => return None,
            });
        }
        Some((Tuple::new(vals), pos))
    }
}

// Per-value tag bytes of the flat encoding.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_PAD: u8 = 6;

/// Wire bytes of one encoded tuple, derived by walking the *encoded*
/// layout with the same per-value model as [`Value::wire_size`] (Null
/// and Bool 1, I64/F64 8, Str 4+len, Pad n, plus the tuple header).
/// Deriving it from the bytes — rather than carrying a separate count —
/// is what keeps traffic accounting and the shipped representation from
/// ever drifting apart.
pub fn wire_of_encoded(bytes: &[u8]) -> Option<usize> {
    let mut pos = 4usize;
    let arity = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?) as usize;
    let mut wire = TUPLE_HEADER_BYTES;
    for _ in 0..arity {
        let tag = *bytes.get(pos)?;
        pos += 1;
        match tag {
            TAG_NULL | TAG_FALSE | TAG_TRUE => wire += 1,
            TAG_I64 | TAG_F64 => {
                pos += 8;
                wire += 8;
            }
            TAG_STR => {
                let len = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
                pos += 4 + len;
                wire += 4 + len;
            }
            TAG_PAD => {
                let n = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
                pos += 4;
                wire += n;
            }
            _ => return None,
        }
    }
    (pos <= bytes.len()).then_some(wire)
}

thread_local! {
    /// Reusable encode scratch: one heap buffer per thread serves every
    /// [`FlatRow::from_tuple`] on the publish/rehash/ship hot paths.
    static ENCODE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// A tuple in flat wire form: the shipped representation of every row
/// that enters the DHT (rehash, stage republish, initiator ship).
/// Cloning is a refcount bump — renewing, replicating, or re-homing a
/// published row never re-copies its values — and `wire` caches the
/// byte count [`wire_of_encoded`] derives from the same layout, so the
/// traffic model cannot disagree with what is actually shipped.
#[derive(Clone)]
pub struct FlatRow {
    bytes: Arc<[u8]>,
    wire: u32,
}

impl FlatRow {
    /// Encode a tuple through the thread-local scratch buffer.
    pub fn from_tuple(t: &Tuple) -> FlatRow {
        ENCODE_BUF.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            t.encode_into(&mut buf);
            let wire = wire_of_encoded(&buf).expect("self-produced encoding is well-formed");
            debug_assert_eq!(wire, t.wire_size());
            FlatRow {
                bytes: Arc::from(&buf[..]),
                wire: wire as u32,
            }
        })
    }

    /// Materialize the tuple (probe and match sites).
    pub fn decode(&self) -> Tuple {
        Tuple::decode_from(&self.bytes)
            .expect("FlatRow holds a well-formed encoding")
            .0
    }

    /// Wire bytes of the row, identical to `self.decode().wire_size()`.
    pub fn wire(&self) -> usize {
        self.wire as usize
    }

    /// The raw encoded bytes.
    pub fn encoded(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Debug for FlatRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlatRow({})", self.decode())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[macro_export]
/// Build a tuple from value-convertible literals: `tuple![1i64, 2.5, "x"]`.
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

/// Column types (documentation-level; evaluation is dynamically typed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColType {
    Bool,
    I64,
    F64,
    Str,
    Pad,
}

impl ColType {
    /// Wire bytes of one value of this type, when statically known
    /// (mirrors [`crate::value::Value::wire_size`]); `None` for
    /// variable-width types (`Str`, `Pad`), whose widths come from
    /// catalog statistics.
    pub fn wire_width(&self) -> Option<u32> {
        match self {
            ColType::Bool => Some(1),
            ColType::I64 | ColType::F64 => Some(8),
            ColType::Str | ColType::Pad => None,
        }
    }
}

/// A named, typed column.
#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    pub ty: ColType,
}

/// A relation schema: name plus ordered fields.
#[derive(Clone, Debug)]
pub struct Schema {
    pub name: String,
    pub fields: Vec<Field>,
}

pub type SchemaRef = Arc<Schema>;

impl Schema {
    pub fn new(name: &str, fields: &[(&str, ColType)]) -> SchemaRef {
        Arc::new(Schema {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(n, t)| Field {
                    name: n.to_string(),
                    ty: *t,
                })
                .collect(),
        })
    }

    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Resolve a column by bare name or `table.name` (joined schemas
    /// carry qualified field names like `R.pkey`).
    pub fn col(&self, name: &str) -> Option<usize> {
        // Exact (possibly qualified) field-name match.
        if let Some(i) = self
            .fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
        {
            return Some(i);
        }
        // `<schema>.<field>` qualification against our own name.
        if let Some((prefix, rest)) = name.split_once('.') {
            if prefix.eq_ignore_ascii_case(&self.name) {
                return self.col(rest);
            }
            return None;
        }
        // Bare name matching the suffix of a qualified field, if unique.
        let hits: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name
                    .rsplit('.')
                    .next()
                    .is_some_and(|b| b.eq_ignore_ascii_case(name))
            })
            .map(|(i, _)| i)
            .collect();
        match hits.as_slice() {
            [i] => Some(*i),
            _ => None,
        }
    }

    /// Schema of `self ⨝ other` (concatenated columns).
    pub fn join(&self, other: &Schema) -> SchemaRef {
        let mut fields = Vec::with_capacity(self.fields.len() + other.fields.len());
        for f in &self.fields {
            fields.push(Field {
                name: format!("{}.{}", self.name, f.name),
                ty: f.ty,
            });
        }
        for f in &other.fields {
            fields.push(Field {
                name: format!("{}.{}", other.name, f.name),
                ty: f.ty,
            });
        }
        Arc::new(Schema {
            name: format!("{}_{}", self.name, other.name),
            fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_and_concat() {
        let t = tuple![1i64, 2i64, 3i64];
        assert_eq!(t.project(&[2, 0]), tuple![3i64, 1i64]);
        let u = tuple!["x"];
        let c = t.concat(&u);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.get(3), &Value::str("x"));
    }

    #[test]
    fn schema_resolution_with_and_without_prefix() {
        let s = Schema::new("R", &[("pkey", ColType::I64), ("num1", ColType::I64)]);
        assert_eq!(s.col("num1"), Some(1));
        assert_eq!(s.col("R.num1"), Some(1));
        assert_eq!(s.col("r.PKEY"), Some(0));
        assert_eq!(s.col("S.num1"), None);
        assert_eq!(s.col("nope"), None);
    }

    #[test]
    fn join_schema_prefixes_columns() {
        let r = Schema::new("R", &[("pkey", ColType::I64)]);
        let s = Schema::new("S", &[("pkey", ColType::I64)]);
        let j = r.join(&s);
        assert_eq!(j.arity(), 2);
        assert_eq!(j.col("R.pkey"), Some(0));
        assert_eq!(j.col("S.pkey"), Some(1));
    }

    #[test]
    fn tuple_wire_size_sums_values() {
        let t = tuple![1i64, 2i64];
        assert_eq!(t.wire_size(), 4 + 16);
    }

    #[test]
    fn encode_decode_round_trip_all_value_shapes() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I64(-42),
            Value::F64(2.5),
            Value::str("héllo"),
            Value::Pad(1000),
        ]);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let (back, used) = Tuple::decode_from(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, t);
        assert_eq!(wire_of_encoded(&buf), Some(t.wire_size()));
    }

    #[test]
    fn flat_row_preserves_wire_size_and_values() {
        let t = tuple![7i64, "key", Value::Pad(512)];
        let flat = FlatRow::from_tuple(&t);
        assert_eq!(flat.wire(), t.wire_size());
        assert_eq!(flat.decode(), t);
        // Clone shares the buffer (refcount bump, no re-encode).
        let c = flat.clone();
        assert!(std::ptr::eq(flat.encoded(), c.encoded()));
    }

    #[test]
    fn decode_rejects_truncated_and_garbage_buffers() {
        let t = tuple![1i64, "abc"];
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(Tuple::decode_from(&buf[..cut]).is_none(), "cut at {cut}");
        }
        let mut bad = buf.clone();
        bad[4] = 0xEE; // unknown tag
        assert!(Tuple::decode_from(&bad).is_none());
        assert!(wire_of_encoded(&bad).is_none());
    }

    #[test]
    fn encode_into_appends_without_clobbering() {
        let a = tuple![1i64];
        let b = tuple!["x"];
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        let split = buf.len();
        b.encode_into(&mut buf);
        let (da, ua) = Tuple::decode_from(&buf).unwrap();
        assert_eq!((da, ua), (a, split));
        let (db, _) = Tuple::decode_from(&buf[split..]).unwrap();
        assert_eq!(db, b);
    }
}

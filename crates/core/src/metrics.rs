//! The metrics registry: PIER's self-reported health surface.
//!
//! The paper's deployment target — "querying the internet" with no DBA
//! in the loop (§1, §3.2) — makes self-monitoring part of the design:
//! an operator can only reason about a planetary-scale query processor
//! through what the nodes themselves export. This module is that
//! export, in three layers:
//!
//! * [`QueryMetrics`] — per-query counters and gauges kept by every
//!   node's [`MetricsRegistry`]: rehash bytes and puts, results
//!   shipped (the recall proxy), renewal counts and the renewal-lag
//!   gauge that predicts soft-state expiry before it costs recall.
//! * [`NodeMetrics`] — one node's snapshot: its registry plus
//!   point-in-time gauges (installed queries, soft-state occupancy by
//!   namespace from [`pier_dht`]'s storage manager, actor mailbox
//!   depth under the wall-clock runtime).
//! * [`MetricsSnapshot`] — the whole-deployment view: every node's
//!   [`NodeMetrics`] plus the engine's [`NetStats`], renderable as a
//!   typed struct or as JSON ([`MetricsSnapshot::to_json`]). The
//!   `net` section is rendered by [`net_stats_json`] — the *same*
//!   function a harness can apply to the engine's own counters, so
//!   "snapshot matches ground truth" is checkable byte-for-byte.
//!
//! The experiment binaries read this surface instead of keeping ad-hoc
//! tallies (`exp_multitenant`, `exp_continuous`), so the numbers CI
//! gates on and the numbers an operator sees cannot drift apart. The
//! operator-facing catalogue of every metric here lives in
//! `MONITORING.md` at the repository root.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use pier_dht::Ns;
use pier_simnet::time::{Dur, Time};
use pier_simnet::{NetStats, NodeId};

/// Per-query counters and gauges, maintained by the node executing the
/// query's share of the dataflow (every node keeps its own view; the
/// deployment-wide truth is the sum over a [`MetricsSnapshot`]).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryMetrics {
    /// Tenant that owns the query ([`crate::plan::QueryDesc::tenant`]).
    pub tenant: u32,
    /// Admission price charged against the tenant's quota, in modeled
    /// steady-state bytes/sec ([`crate::optimizer::price_query`]).
    pub priced_bytes_per_sec: f64,
    /// When this node installed the query.
    pub installed_at: Time,
    /// Bytes of rehash / stage / semi-join / aggregation soft state
    /// this node has put into the query's derived namespaces.
    pub rehash_bytes: u64,
    /// Number of those puts.
    pub rehash_puts: u64,
    /// Result tuples this node emitted toward the initiator — the
    /// *recall proxy*: a live standing query whose counter stalls
    /// while co-tenants keep shipping is being starved.
    pub results_shipped: u64,
    /// Wire bytes of those result tuples.
    pub result_bytes: u64,
    /// Completed renewal rounds for the query's soft state.
    pub renewals: u64,
    /// Instant of the last renewal round (install time before the
    /// first round) — the base of the renewal-lag gauge.
    pub last_renewal: Time,
    /// Still installed? Uninstalled queries keep their counters (the
    /// registry is an audit log, not just a live view).
    pub live: bool,
}

impl QueryMetrics {
    fn new(tenant: u32, priced_bytes_per_sec: f64, now: Time) -> Self {
        QueryMetrics {
            tenant,
            priced_bytes_per_sec,
            installed_at: now,
            rehash_bytes: 0,
            rehash_puts: 0,
            results_shipped: 0,
            result_bytes: 0,
            renewals: 0,
            last_renewal: now,
            live: true,
        }
    }

    /// Renewal-lag gauge: time since the last completed renewal round.
    /// A lag past 3× the query's renewal period means its soft state
    /// may already have aged out — recall loss follows.
    pub fn renewal_lag(&self, now: Time) -> Dur {
        now.since(self.last_renewal)
    }
}

/// One node's metric store: per-query counters plus the node-level
/// admission/backpressure totals. Owned by `PierNode`; hooks are called
/// from the query-processor paths, snapshots are read by harnesses and
/// the typed `NodeRequest::Metrics` client surface.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    queries: BTreeMap<u64, QueryMetrics>,
    /// Installs admitted by the tenant governor on this node.
    pub admitted_installs: u64,
    /// Installs rejected by quota (admission control) on this node.
    pub rejected_installs: u64,
    /// Publishes shed by per-tenant token-bucket backpressure.
    pub shed_publishes: u64,
    /// Wire bytes of those shed publishes (traffic that never entered
    /// the DHT — the backpressure savings gauge).
    pub shed_bytes: u64,
}

impl MetricsRegistry {
    /// Record an admitted install.
    pub fn on_install(&mut self, qid: u64, tenant: u32, priced_bytes_per_sec: f64, now: Time) {
        self.admitted_installs += 1;
        self.queries
            .insert(qid, QueryMetrics::new(tenant, priced_bytes_per_sec, now));
    }

    /// Record an uninstall — counters survive, `live` flips.
    pub fn on_uninstall(&mut self, qid: u64) {
        if let Some(q) = self.queries.get_mut(&qid) {
            q.live = false;
        }
    }

    /// Record one put of derived (rehash-layer) soft state.
    pub fn on_rehash(&mut self, qid: u64, bytes: usize) {
        if let Some(q) = self.queries.get_mut(&qid) {
            q.rehash_puts += 1;
            q.rehash_bytes += bytes as u64;
        }
    }

    /// Record one result tuple emitted toward the initiator.
    pub fn on_result(&mut self, qid: u64, bytes: usize) {
        if let Some(q) = self.queries.get_mut(&qid) {
            q.results_shipped += 1;
            q.result_bytes += bytes as u64;
        }
    }

    /// Record a completed renewal round.
    pub fn on_renewal(&mut self, qid: u64, now: Time) {
        if let Some(q) = self.queries.get_mut(&qid) {
            q.renewals += 1;
            q.last_renewal = now;
        }
    }

    /// Record a token-bucket shed of one publish.
    pub fn on_shed(&mut self, bytes: usize) {
        self.shed_publishes += 1;
        self.shed_bytes += bytes as u64;
    }

    /// One query's counters, if it was ever installed here.
    pub fn query(&self, qid: u64) -> Option<&QueryMetrics> {
        self.queries.get(&qid)
    }

    /// All per-query counters, ordered by qid.
    pub fn queries(&self) -> impl Iterator<Item = (&u64, &QueryMetrics)> {
        self.queries.iter()
    }
}

/// Point-in-time snapshot of one node: its registry plus the gauges
/// that only exist as live state (installed count, storage occupancy,
/// actor mailbox depth).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeMetrics {
    pub node: NodeId,
    /// Queries currently installed here.
    pub installed_queries: usize,
    /// Pending transport messages in this node's actor mailbox. Only
    /// meaningful under the wall-clock actor runtime (`Cluster`); the
    /// deterministic simulators have a global event queue instead of
    /// per-node mailboxes, and report 0.
    pub mailbox_depth: usize,
    /// Live soft-state items per namespace
    /// ([`pier_dht::storage::StorageManager::occupancy`]) — base
    /// tables and every query's derived `qns::*` namespaces.
    pub occupancy: Vec<(Ns, usize)>,
    /// The node's counter registry.
    pub registry: MetricsRegistry,
}

/// Whole-deployment snapshot: every node's [`NodeMetrics`] plus the
/// engine's traffic counters — the one struct an operator (or an
/// experiment binary) reads instead of keeping private tallies.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Engine time of the snapshot.
    pub at: Time,
    pub nodes: Vec<NodeMetrics>,
    /// Engine traffic ground truth ([`NetStats`]); by construction
    /// identical to what `Sim::stats` / `Cluster::stats` report at the
    /// snapshot instant.
    pub net: NetStats,
}

/// Canonical JSON rendering of [`NetStats`] — used for the snapshot's
/// `net` section *and* directly applicable to an engine's own counters,
/// so snapshot-vs-ground-truth comparisons are byte-for-byte.
pub fn net_stats_json(s: &NetStats) -> String {
    let inbound: Vec<String> = s.inbound_bytes.iter().map(|b| b.to_string()).collect();
    format!(
        "{{\"messages\": {}, \"bytes\": {}, \"dropped_to_failed\": {}, \
         \"dropped_in_window\": {}, \"max_inbound\": {}, \"inbound_bytes\": [{}]}}",
        s.messages,
        s.bytes,
        s.dropped_to_failed,
        s.dropped_in_window,
        s.max_inbound(),
        inbound.join(", ")
    )
}

impl MetricsSnapshot {
    /// Total per-query counter across every node's registry.
    pub fn total<F: Fn(&QueryMetrics) -> u64>(&self, f: F) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| n.registry.queries().map(|(_, q)| f(q)))
            .sum()
    }

    /// Deployment-wide shed publishes (backpressure activity).
    pub fn shed_publishes(&self) -> u64 {
        self.nodes.iter().map(|n| n.registry.shed_publishes).sum()
    }

    /// Deployment-wide quota rejections (admission activity).
    pub fn rejected_installs(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.registry.rejected_installs)
            .sum()
    }

    /// Render the snapshot as hand-formatted JSON (the container is
    /// offline — no serde). Keys are emitted in a fixed order and
    /// collections in deterministic (BTreeMap / node-id) order, so two
    /// snapshots of identical state render identically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(
            out,
            "  \"at_us\": {},",
            self.at.since(Time::ZERO).as_micros()
        );
        let _ = writeln!(out, "  \"net\": {},", net_stats_json(&self.net));
        let _ = writeln!(out, "  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            let occ: Vec<String> = n
                .occupancy
                .iter()
                .map(|(ns, live)| format!("{{\"ns\": \"{ns:#018x}\", \"live\": {live}}}"))
                .collect();
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"node\": {},", n.node);
            let _ = writeln!(out, "      \"installed_queries\": {},", n.installed_queries);
            let _ = writeln!(out, "      \"mailbox_depth\": {},", n.mailbox_depth);
            let r = &n.registry;
            let _ = writeln!(
                out,
                "      \"admitted_installs\": {}, \"rejected_installs\": {}, \
                 \"shed_publishes\": {}, \"shed_bytes\": {},",
                r.admitted_installs, r.rejected_installs, r.shed_publishes, r.shed_bytes
            );
            let _ = writeln!(out, "      \"occupancy\": [{}],", occ.join(", "));
            let _ = writeln!(out, "      \"queries\": [");
            let qn = r.queries.len();
            for (j, (qid, q)) in r.queries().enumerate() {
                let _ = writeln!(
                    out,
                    "        {{\"qid\": {qid}, \"tenant\": {}, \"live\": {}, \
                     \"priced_bytes_per_sec\": {:.4}, \"rehash_bytes\": {}, \
                     \"rehash_puts\": {}, \"results_shipped\": {}, \"result_bytes\": {}, \
                     \"renewals\": {}, \"renewal_lag_s\": {:.3}}}{}",
                    q.tenant,
                    q.live,
                    q.priced_bytes_per_sec,
                    q.rehash_bytes,
                    q.rehash_puts,
                    q.results_shipped,
                    q.result_bytes,
                    q.renewals,
                    q.renewal_lag(self.at).as_secs_f64(),
                    if j + 1 < qn { "," } else { "" }
                );
            }
            let _ = writeln!(out, "      ]");
            let _ = writeln!(
                out,
                "    }}{}",
                if i + 1 < self.nodes.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counts_per_query() {
        let mut r = MetricsRegistry::default();
        let t = Time::ZERO + Dur::from_secs(5);
        r.on_install(7, 3, 120.5, t);
        r.on_rehash(7, 100);
        r.on_rehash(7, 50);
        r.on_result(7, 64);
        r.on_renewal(7, t + Dur::from_secs(40));
        let q = r.query(7).unwrap();
        assert_eq!(q.tenant, 3);
        assert_eq!(q.rehash_bytes, 150);
        assert_eq!(q.rehash_puts, 2);
        assert_eq!(q.results_shipped, 1);
        assert_eq!(q.renewals, 1);
        assert_eq!(
            q.renewal_lag(t + Dur::from_secs(100)),
            Dur::from_secs(60),
            "lag measures from the last renewal"
        );
        assert!(q.live);
        r.on_uninstall(7);
        assert!(!r.query(7).unwrap().live, "counters survive uninstall");
        // Hooks for unknown qids are ignored, not panics (a late result
        // can race an uninstalled registry entry only if never
        // installed here).
        r.on_rehash(99, 10);
        assert!(r.query(99).is_none());
    }

    #[test]
    fn net_stats_json_is_canonical() {
        let s = NetStats {
            messages: 2,
            bytes: 100,
            inbound_bytes: vec![0, 100],
            ..Default::default()
        };
        let j = net_stats_json(&s);
        assert_eq!(
            j,
            "{\"messages\": 2, \"bytes\": 100, \"dropped_to_failed\": 0, \
             \"dropped_in_window\": 0, \"max_inbound\": 100, \"inbound_bytes\": [0, 100]}"
        );
        // Byte-for-byte: equal stats render to equal strings.
        assert_eq!(j, net_stats_json(&s.clone()));
    }

    #[test]
    fn snapshot_json_embeds_the_net_section_verbatim() {
        let net = NetStats {
            messages: 1,
            bytes: 10,
            inbound_bytes: vec![10],
            ..Default::default()
        };
        let snap = MetricsSnapshot {
            at: Time::ZERO,
            nodes: vec![NodeMetrics {
                node: 0,
                installed_queries: 0,
                mailbox_depth: 0,
                occupancy: vec![],
                registry: MetricsRegistry::default(),
            }],
            net: net.clone(),
        };
        assert!(
            snap.to_json().contains(&net_stats_json(&net)),
            "the snapshot's net section must be the canonical rendering"
        );
    }
}

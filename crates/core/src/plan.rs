//! Query descriptors: the "boxes and arrows" shipped to every node.
//!
//! A query is disseminated by DHT multicast (§3.3); each node receives the
//! same [`QueryDesc`] and plays its part — scanning local fragments,
//! rehashing, probing, fetching, aggregating — with results flowing
//! directly to the initiator. Expressions in a descriptor are indexed
//! over the *full* concatenation of the base schemas; the schema-aware
//! dataflow layer ([`PipelineSchema`] / [`StageSchema`]) computes, per
//! dataflow edge, the minimal column set any downstream operator still
//! reads, and remaps every expression onto that pruned layout. The
//! §4.2 lesson — on a DHT, *what bytes you rehash* dominates cost — is
//! thereby an architectural invariant: no operator ships a column
//! nobody downstream reads.

use pier_dht::{ns_of, Ns};
use pier_simnet::time::Dur;
use pier_simnet::NodeId;

use crate::expr::Expr;
use crate::tuple::ColType;

/// The four distributed equi-join strategies of §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinStrategy {
    /// DHT-based pipelining symmetric hash join (§4.1).
    SymmetricHash,
    /// Fetch Matches: right table already hashed on the join key (§4.1).
    FetchMatches,
    /// Symmetric semi-join rewrite (§4.2).
    SymmetricSemiJoin,
    /// Bloom-filter rewrite (§4.2).
    BloomFilter,
}

impl JoinStrategy {
    pub const ALL: [JoinStrategy; 4] = [
        JoinStrategy::SymmetricHash,
        JoinStrategy::FetchMatches,
        JoinStrategy::SymmetricSemiJoin,
        JoinStrategy::BloomFilter,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            JoinStrategy::SymmetricHash => "symmetric hash",
            JoinStrategy::FetchMatches => "fetch matches",
            JoinStrategy::SymmetricSemiJoin => "symmetric semi-join",
            JoinStrategy::BloomFilter => "bloom filter",
        }
    }
}

/// One base-table access within a query.
#[derive(Clone, Debug)]
pub struct ScanSpec {
    /// Application-level table (namespace) name.
    pub table: String,
    /// Hashed namespace.
    pub ns: Ns,
    /// Local selection predicate over the base schema (pushed to the
    /// data's home node where the strategy allows).
    pub pred: Option<Expr>,
    /// Primary-key column: the table's default resourceID (§3.2.3).
    pub pkey_col: usize,
    /// Join column (None for single-table scans).
    pub join_col: Option<usize>,
    /// Base-schema arity (needed to index the concatenated join schema).
    pub arity: usize,
}

impl ScanSpec {
    pub fn new(table: &str, arity: usize, pkey_col: usize) -> Self {
        ScanSpec {
            table: table.to_string(),
            ns: ns_of(table),
            pred: None,
            pkey_col,
            join_col: None,
            arity,
        }
    }

    pub fn with_pred(mut self, pred: Expr) -> Self {
        self.pred = Some(pred);
        self
    }

    pub fn with_join_col(mut self, col: usize) -> Self {
        self.join_col = Some(col);
        self
    }
}

/// A binary equi-join.
#[derive(Clone, Debug)]
pub struct JoinSpec {
    pub strategy: JoinStrategy,
    pub left: ScanSpec,
    pub right: ScanSpec,
    /// Predicate evaluated above the join, over `left ++ right` base
    /// columns — e.g. the workload's `f(R.num3, S.num3) > constant3`.
    pub post_pred: Option<Expr>,
    /// Output expressions over `left ++ right` base columns.
    pub project: Vec<Expr>,
    /// Restrict the rehash namespace to this many buckets, confining the
    /// join computation to ≤ m nodes (the Fig. 3 "computation nodes").
    pub computation_nodes: Option<u32>,
    /// Bloom strategy: how long collectors gather fragment filters
    /// before OR-ing and multicasting them.
    pub bloom_wait: Dur,
    /// Bloom strategy: filter shape (bits), sized for the table.
    pub bloom_bits: u32,
}

impl JoinSpec {
    pub fn new(strategy: JoinStrategy, left: ScanSpec, right: ScanSpec) -> Self {
        assert!(left.join_col.is_some() && right.join_col.is_some());
        JoinSpec {
            strategy,
            left,
            right,
            post_pred: None,
            project: Vec::new(),
            computation_nodes: None,
            // Fallback flush deadline; collectors flush early once every
            // node's fragment has arrived (count-based).
            bloom_wait: Dur::from_secs(10),
            bloom_bits: 1 << 16,
        }
    }

    /// Default projection: every column of both sides.
    pub fn all_columns(&self) -> Vec<Expr> {
        (0..self.left.arity + self.right.arity)
            .map(Expr::col)
            .collect()
    }
}

/// One stage of a left-deep multi-way join pipeline.
///
/// Stage `k` joins the accumulated intermediate relation (the
/// concatenation of every table joined so far) with one more base table:
/// intermediates arrive tagged [`crate::item::Side::Left`] in the stage's
/// namespace ([`qns::stage`]), the base table's fragments are rehashed
/// into the same namespace tagged `Right`, and matches are concatenated
/// and fed to stage `k + 1` — the §4.1 pipelining symmetric hash join,
/// chained.
#[derive(Clone, Debug)]
pub struct JoinStage {
    /// The base table joined in at this stage; `join_col` names the
    /// equi-join column within its own schema.
    pub right: ScanSpec,
    /// Equi-join column within the accumulated intermediate schema (the
    /// concatenation of all preceding tables) — any earlier table may
    /// supply it, so star as well as chain queries lower to a pipeline.
    pub left_col: usize,
    /// Predicate over `accumulated ++ right`, applied to each stage
    /// output: the conjuncts that first become evaluable here.
    pub stage_pred: Option<Expr>,
}

/// A left-deep multi-way equi-join pipeline over `1 + stages.len()`
/// base-table accesses (3 or more tables; binary joins use [`JoinSpec`]
/// and keep their four-strategy repertoire).
///
/// Expressions (`stage_pred`, `project`) are indexed over the *full*
/// concatenation of the constituent tuples; the executed dataflow ships
/// pruned tuples under [`PipelineSchema::build`], which keeps per stage
/// only the join keys still needed later, the columns of
/// not-yet-evaluable predicates, and the final SELECT columns — so wide
/// pass-through columns (e.g. the workload's `R.pad`) stop riding
/// stages that never read them.
#[derive(Clone, Debug)]
pub struct MultiJoinSpec {
    /// The pipeline head: the first table, scanned and rehashed into
    /// stage 0 on `stages[0].left_col`.
    pub base: ScanSpec,
    /// The remaining tables, joined in left-deep order.
    pub stages: Vec<JoinStage>,
    /// Output expressions over the full concatenation of all tables.
    pub project: Vec<Expr>,
}

impl MultiJoinSpec {
    pub fn new(base: ScanSpec, stages: Vec<JoinStage>) -> Self {
        assert!(!stages.is_empty(), "a pipeline needs at least two tables");
        assert!(stages[0].left_col < base.arity);
        MultiJoinSpec {
            base,
            stages,
            project: Vec::new(),
        }
    }

    /// Number of base tables in the pipeline.
    pub fn n_tables(&self) -> usize {
        1 + self.stages.len()
    }

    /// Arity of the accumulated schema after stage `k` completes (the
    /// concatenation of tables `0 ..= k + 1`).
    pub fn arity_after(&self, k: usize) -> usize {
        self.base.arity
            + self.stages[..=k]
                .iter()
                .map(|s| s.right.arity)
                .sum::<usize>()
    }

    /// Arity of the full concatenation of every table.
    pub fn arity(&self) -> usize {
        self.arity_after(self.stages.len() - 1)
    }

    /// Default projection: every column of every table.
    pub fn all_columns(&self) -> Vec<Expr> {
        (0..self.arity()).map(Expr::col).collect()
    }
}

/// Aggregate functions (§3.3 lists grouping and aggregation among the
/// initial operators; the intrusion queries of §2.1 use count and sum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// One aggregate call: `func(arg)`; `Count` may have no argument.
#[derive(Clone, Debug)]
pub struct AggCall {
    pub func: AggFunc,
    pub arg: Option<Expr>,
}

/// Grouped aggregation over the input rows (base scan or join output).
///
/// `output` and `having` are indexed over the virtual row
/// `[group values..., aggregate results...]`.
#[derive(Clone, Debug)]
pub struct AggSpec {
    pub group_cols: Vec<usize>,
    pub aggs: Vec<AggCall>,
    pub output: Vec<Expr>,
    pub having: Option<Expr>,
    /// In-network hierarchical aggregation (§7 future work, built as an
    /// extension): partials climb a binary tree over node ids instead of
    /// all landing on the group owner.
    pub hierarchical: bool,
    /// How long owners wait before finalizing groups (one-shot queries).
    pub harvest: Dur,
    /// Continuous aggregation (§3.2.3 soft state + §7 "continuous
    /// queries over streams"): when set, the flush/harvest timers re-arm
    /// every epoch and every surviving group is re-emitted, instead of
    /// the query tearing down after one harvest. Combined with
    /// [`QueryDesc::window`], contributions age out of the sliding
    /// window between epochs; without a window the aggregate is a
    /// running total over everything the standing query has seen.
    pub epoch: Option<Dur>,
}

impl AggSpec {
    pub fn new(group_cols: Vec<usize>, aggs: Vec<AggCall>) -> Self {
        let out: Vec<Expr> = (0..group_cols.len() + aggs.len()).map(Expr::col).collect();
        AggSpec {
            group_cols,
            aggs,
            output: out,
            having: None,
            hierarchical: false,
            harvest: Dur::from_secs(5),
            epoch: None,
        }
    }

    /// Turn this spec into an epoch-driven continuous aggregation.
    pub fn with_epoch(mut self, epoch: Dur) -> Self {
        self.epoch = Some(epoch);
        self
    }
}

/// The operator tree variants PIER ships.
#[derive(Clone, Debug)]
pub enum QueryOp {
    /// Scan-select-project: results flow straight to the initiator.
    Scan { scan: ScanSpec, project: Vec<Expr> },
    /// Distributed binary equi-join.
    Join(JoinSpec),
    /// Left-deep multi-way join pipeline (3+ tables).
    MultiJoin(MultiJoinSpec),
    /// Single-table grouped aggregation.
    Agg { scan: ScanSpec, agg: AggSpec },
    /// Join feeding a grouped aggregation (e.g. §2.1's weighted query).
    JoinAgg { join: JoinSpec, agg: AggSpec },
    /// Multi-way pipeline feeding a grouped aggregation.
    MultiJoinAgg { join: MultiJoinSpec, agg: AggSpec },
}

/// A complete query as multicast to all nodes.
#[derive(Clone, Debug)]
pub struct QueryDesc {
    pub qid: u64,
    pub initiator: NodeId,
    pub op: QueryOp,
    /// Continuous query: stays installed; newly published base tuples
    /// flow through incrementally (§7 "continuous queries over streams").
    pub continuous: bool,
    /// For continuous joins: rehashed state ages out of the DHT after
    /// this long, implementing a sliding time window via soft state.
    pub window: Option<Dur>,
    /// Per-query renewal period (SQL: `RENEW n SECONDS`): an unwindowed
    /// standing query republishes its rehash soft state this often, with
    /// the 3× fallback horizon derived from it — replacing the single
    /// node-global renewal period, so tenants with different liveness
    /// needs coexist. `None` falls back to the node-global loop.
    pub renew_every: Option<Dur>,
    /// How many nodes participate (used by hierarchical aggregation to
    /// shape its tree; harnesses set it when building the query).
    pub n_nodes: u32,
    /// Schema-aware column pruning: when set (the default), every
    /// rehash, stage republish, and initiator ship carries only the
    /// columns some downstream operator still reads
    /// ([`PipelineSchema::build`]). `false` reinstates full-width
    /// intermediates — kept as a measurable baseline (`exp_pruning`).
    pub prune: bool,
    /// Owning tenant, for admission control and per-tenant metrics
    /// ([`crate::tenant::TenantGovernor`]). Tenant 0 is the default;
    /// tenants without a registered quota are unlimited.
    pub tenant: u32,
}

impl QueryDesc {
    pub fn one_shot(qid: u64, initiator: NodeId, op: QueryOp) -> Self {
        QueryDesc {
            qid,
            initiator,
            op,
            continuous: false,
            window: None,
            renew_every: None,
            n_nodes: 0,
            prune: true,
            tenant: 0,
        }
    }

    /// A standing (continuous) query: stays installed after the initial
    /// dataflow; newly published base tuples flow through incrementally,
    /// and `window` bounds the lifetime of rehashed soft state (a
    /// sliding time window). Unwindowed continuous state is kept alive
    /// by the rehash-renewal loop ([`crate::node::PierNode`]).
    pub fn standing(qid: u64, initiator: NodeId, op: QueryOp, window: Option<Dur>) -> Self {
        QueryDesc {
            window,
            continuous: true,
            ..Self::one_shot(qid, initiator, op)
        }
    }

    /// Toggle schema-aware pruning (`true` is the default).
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Assign the query to a tenant (admission control and metrics
    /// attribute it there; tenant 0 is the default tenant).
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Give a standing unwindowed query its own renewal period (see
    /// [`QueryDesc::renew_every`]). Windowed state must age out, so the
    /// combination with a window is rejected at the SQL layer.
    pub fn with_renewal(mut self, every: Dur) -> Self {
        self.renew_every = Some(every);
        self
    }

    /// Rough wire size of the descriptor for the multicast payload.
    pub fn wire_size(&self) -> usize {
        fn scan_sz(s: &ScanSpec) -> usize {
            32 + s.table.len() + s.pred.as_ref().map_or(0, Expr::wire_size)
        }
        fn join_sz(j: &JoinSpec) -> usize {
            16 + scan_sz(&j.left)
                + scan_sz(&j.right)
                + j.post_pred.as_ref().map_or(0, Expr::wire_size)
                + j.project.iter().map(Expr::wire_size).sum::<usize>()
        }
        fn agg_sz(a: &AggSpec) -> usize {
            16 + a.group_cols.len() * 2
                + a.aggs
                    .iter()
                    .map(|c| 2 + c.arg.as_ref().map_or(0, Expr::wire_size))
                    .sum::<usize>()
                + a.output.iter().map(Expr::wire_size).sum::<usize>()
                + a.having.as_ref().map_or(0, Expr::wire_size)
                + if a.epoch.is_some() { 8 } else { 0 }
        }
        fn multi_sz(m: &MultiJoinSpec) -> usize {
            16 + scan_sz(&m.base)
                + m.stages
                    .iter()
                    .map(|s| {
                        8 + scan_sz(&s.right) + s.stage_pred.as_ref().map_or(0, Expr::wire_size)
                    })
                    .sum::<usize>()
                + m.project.iter().map(Expr::wire_size).sum::<usize>()
        }
        24 + if self.renew_every.is_some() { 8 } else { 0 }
            + match &self.op {
                QueryOp::Scan { scan, project } => {
                    scan_sz(scan) + project.iter().map(Expr::wire_size).sum::<usize>()
                }
                QueryOp::Join(j) => join_sz(j),
                QueryOp::MultiJoin(m) => multi_sz(m),
                QueryOp::Agg { scan, agg } => scan_sz(scan) + agg_sz(agg),
                QueryOp::JoinAgg { join, agg } => join_sz(join) + agg_sz(agg),
                QueryOp::MultiJoinAgg { join, agg } => multi_sz(join) + agg_sz(agg),
            }
    }
}

/// Derived namespaces for a query's intermediate state.
pub mod qns {
    use pier_dht::geom::hash2;
    use pier_dht::Ns;

    /// Rehash namespace `NQ` for a join (§4.1).
    pub fn rehash(qid: u64) -> Ns {
        hash2(0x4e51, qid) // "NQ"
    }

    /// Rehash namespace for stage `k` of a multi-way pipeline: each
    /// stage's intermediate state lives in its own namespace so probes
    /// never cross stages.
    pub fn stage(qid: u64, k: usize) -> Ns {
        hash2(0x4e53_0000 + k as u64, qid) // "NS" + stage index
    }

    /// Bloom collector namespace for one side.
    pub fn bloom(qid: u64, side_right: bool) -> Ns {
        hash2(0x4e42 + side_right as u64, qid)
    }

    /// Aggregation partials namespace `NA`.
    pub fn agg(qid: u64) -> Ns {
        hash2(0x4e41, qid)
    }
}

/// One typed column of a [`StageSchema`], with its wire width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageCol {
    /// Column index over the full concatenation of the pipeline tables.
    pub global: usize,
    pub ty: ColType,
    /// Estimated wire bytes of one value of this column.
    pub width: u32,
}

/// The schema of one dataflow edge: the ordered, typed column list a
/// tuple carries at that point, with per-column byte widths — the unit
/// the byte-accurate traffic model ([`crate::optimizer`]) and the wire
/// audits reason about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSchema {
    /// Columns in tuple order (ascending global index).
    pub cols: Vec<StageCol>,
}

impl StageSchema {
    /// Assemble from kept global columns and per-table `(type, width)`
    /// column info, where `tables[t]` describes pipeline table `t` and
    /// `offsets[t]` is its global offset.
    fn assemble(
        globals: &[usize],
        tables: &[Vec<(ColType, u32)>],
        offsets: &[usize],
    ) -> StageSchema {
        let cols = globals
            .iter()
            .map(|&g| {
                let t = offsets
                    .iter()
                    .rposition(|&o| o <= g)
                    .expect("global column offset");
                let (ty, width) = tables[t][g - offsets[t]];
                StageCol {
                    global: g,
                    ty,
                    width,
                }
            })
            .collect();
        StageSchema { cols }
    }

    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Predicted wire bytes of one tuple on this edge (values plus the
    /// per-tuple header of [`crate::tuple::Tuple::wire_size`]).
    pub fn wire_bytes(&self) -> usize {
        crate::tuple::TUPLE_HEADER_BYTES + self.cols.iter().map(|c| c.width as usize).sum::<usize>()
    }

    /// Position of a global column within this schema, if kept.
    pub fn position(&self, global: usize) -> Option<usize> {
        self.cols.iter().position(|c| c.global == global)
    }
}

/// One stage of a [`PipelineSchema`]: what the stage's right input
/// ships, where the join values sit in the pruned layouts, the stage
/// predicate over the pruned concatenation, and the projection applied
/// to matches before they are republished (or shipped to the initiator).
#[derive(Clone, Debug)]
pub struct StageView {
    /// Columns of the stage's right base table kept when rehashing
    /// (local indices, ascending).
    pub keep_right: Vec<usize>,
    /// Position of the join value within the pruned left intermediate.
    pub join_idx_left: usize,
    /// Position of the join value within the pruned right projection.
    pub join_idx_right: usize,
    /// Stage predicate remapped over `pruned_left ++ pruned_right`.
    pub pred: Option<Expr>,
    /// Positions of `pruned_left ++ pruned_right` that survive into the
    /// outgoing intermediate, ascending by global column.
    pub emit: Vec<usize>,
    /// Global columns of the outgoing intermediate (what `emit` keeps).
    pub out_globals: Vec<usize>,
}

/// Schema-aware projection plan for a join pipeline — the one pruning
/// mechanism behind every strategy and every pipeline stage. A binary
/// join is the one-stage case ([`PipelineSchema::binary`]); an N-way
/// pipeline gets one [`StageView`] per [`JoinStage`]
/// ([`PipelineSchema::build`]).
///
/// The minimal column set per edge is: join keys still needed by later
/// stages ∪ columns of not-yet-evaluable residual predicates ∪ final
/// SELECT (or GROUP BY / aggregate-argument) columns — computed by a
/// backward pass, then every expression is remapped onto the pruned
/// layouts by a forward pass. Built deterministically from the shipped
/// spec, so every node derives the same layouts without coordination.
#[derive(Clone, Debug)]
pub struct PipelineSchema {
    /// Columns of the pipeline head (the base / left table) kept when
    /// rehashing into stage 0 (local indices, ascending).
    pub keep_base: Vec<usize>,
    pub stages: Vec<StageView>,
    /// Output expressions remapped over the final pruned intermediate.
    pub project: Vec<Expr>,
}

/// Per-stage inputs to the shared required-columns analysis.
struct StageInput<'a> {
    arity: usize,
    /// Join column within the right table's own schema.
    join_col: usize,
    /// Join column within the accumulated schema (global index).
    left_col: usize,
    /// Predicate over `accumulated ++ right`, global basis.
    pred: Option<&'a Expr>,
}

impl PipelineSchema {
    /// The pruning plan of a multi-way pipeline; `prune = false` keeps
    /// every column on every edge (the measurable full-width baseline).
    pub fn build(m: &MultiJoinSpec, prune: bool) -> PipelineSchema {
        let mut off = m.base.arity;
        let stages: Vec<StageInput> = m
            .stages
            .iter()
            .map(|s| {
                let inp = StageInput {
                    arity: s.right.arity,
                    join_col: s.right.join_col.expect("stage join col"),
                    left_col: s.left_col,
                    pred: s.stage_pred.as_ref(),
                };
                off += s.right.arity;
                inp
            })
            .collect();
        Self::analyze(m.base.arity, &stages, &m.project, prune)
    }

    /// The pruning plan of a binary join: the one-stage pipeline whose
    /// base is the left table and whose single stage joins the right.
    pub fn binary(j: &JoinSpec, prune: bool) -> PipelineSchema {
        let stage = StageInput {
            arity: j.right.arity,
            join_col: j.right.join_col.expect("join col"),
            left_col: j.left.join_col.expect("join col"),
            pred: j.post_pred.as_ref(),
        };
        Self::analyze(j.left.arity, &[stage], &j.project, prune)
    }

    fn analyze(
        base_arity: usize,
        stages: &[StageInput],
        project: &[Expr],
        prune: bool,
    ) -> PipelineSchema {
        let n = stages.len();
        // Global offset of each stage's right table.
        let mut offsets = Vec::with_capacity(n);
        let mut o = base_arity;
        for s in stages {
            offsets.push(o);
            o += s.arity;
        }

        // Backward pass: `needed_after[k]` = global columns the
        // intermediate republished after stage k must carry.
        let mut needed_after: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut keep_right: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut keep_base: Vec<usize> = Vec::new();
        {
            let mut proj_cols = Vec::new();
            for e in project {
                e.columns(&mut proj_cols);
            }
            needed_after[n - 1] = proj_cols;
        }
        for k in (0..n).rev() {
            if prune {
                let mut in_play = needed_after[k].clone();
                if let Some(p) = stages[k].pred {
                    p.columns(&mut in_play);
                }
                in_play.push(stages[k].left_col);
                in_play.push(offsets[k] + stages[k].join_col);
                in_play.sort_unstable();
                in_play.dedup();
                keep_right[k] = in_play
                    .iter()
                    .copied()
                    .filter(|&c| c >= offsets[k])
                    .map(|c| c - offsets[k])
                    .collect();
                let need_left: Vec<usize> =
                    in_play.into_iter().filter(|&c| c < offsets[k]).collect();
                if k > 0 {
                    needed_after[k - 1] = need_left;
                } else {
                    keep_base = need_left;
                }
            } else {
                needed_after[k] = (0..offsets[k] + stages[k].arity).collect();
                keep_right[k] = (0..stages[k].arity).collect();
                if k == 0 {
                    keep_base = (0..base_arity).collect();
                }
            }
        }

        // Forward pass: remap every expression onto the pruned layouts.
        let mut in_left: Vec<usize> = keep_base.clone();
        let mut views = Vec::with_capacity(n);
        for k in 0..n {
            let basis: Vec<usize> = in_left
                .iter()
                .copied()
                .chain(keep_right[k].iter().map(|&c| c + offsets[k]))
                .collect();
            let pos = |g: usize| basis.iter().position(|&b| b == g);
            let mut out_globals = std::mem::take(&mut needed_after[k]);
            out_globals.sort_unstable();
            views.push(StageView {
                join_idx_left: in_left
                    .iter()
                    .position(|&c| c == stages[k].left_col)
                    .expect("left join column kept"),
                join_idx_right: keep_right[k]
                    .iter()
                    .position(|&c| c == stages[k].join_col)
                    .expect("right join column kept"),
                pred: stages[k]
                    .pred
                    .map(|p| p.remap_cols(&pos).expect("stage pred columns kept")),
                emit: out_globals
                    .iter()
                    .map(|&g| pos(g).expect("emitted column kept"))
                    .collect(),
                keep_right: std::mem::take(&mut keep_right[k]),
                out_globals: out_globals.clone(),
            });
            in_left = out_globals;
        }
        let pos = |g: usize| in_left.iter().position(|&b| b == g);
        PipelineSchema {
            keep_base,
            project: project
                .iter()
                .map(|e| e.remap_cols(&pos).expect("projected column kept"))
                .collect(),
            stages: views,
        }
    }

    /// Kept columns of pipeline table `t` (local indices): `t = 0` is
    /// the base; `t >= 1` is stage `t - 1`'s right input.
    pub fn keep_for_table(&self, t: usize) -> &[usize] {
        if t == 0 {
            &self.keep_base
        } else {
            &self.stages[t - 1].keep_right
        }
    }

    /// Global offset of each pipeline table within the concatenation.
    fn table_offsets(tables: &[Vec<(ColType, u32)>]) -> Vec<usize> {
        tables
            .iter()
            .scan(0, |o, cols| {
                let cur = *o;
                *o += cols.len();
                Some(cur)
            })
            .collect()
    }

    /// Typed, byte-width schema of what table `t`'s rehash ships, given
    /// per-table `(type, width)` column info in pipeline order.
    pub fn rehash_schema(&self, t: usize, tables: &[Vec<(ColType, u32)>]) -> StageSchema {
        let offsets = Self::table_offsets(tables);
        let globals: Vec<usize> = self
            .keep_for_table(t)
            .iter()
            .map(|&c| c + offsets[t])
            .collect();
        StageSchema::assemble(&globals, tables, &offsets)
    }

    /// Typed, byte-width schema of the intermediate republished after
    /// stage `k` (for the last stage: what the initiator ship carries,
    /// before output expressions are evaluated).
    pub fn intermediate_schema(&self, k: usize, tables: &[Vec<(ColType, u32)>]) -> StageSchema {
        let offsets = Self::table_offsets(tables);
        StageSchema::assemble(&self.stages[k].out_globals, tables, &offsets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Func;

    fn workload_join(strategy: JoinStrategy) -> JoinSpec {
        // R(pkey, num1, num2, num3, pad) ⨝ S(pkey, num2, num3) on
        // R.num1 = S.pkey, with preds on num2 and f(R.num3, S.num3).
        let left = ScanSpec::new("R", 5, 0)
            .with_pred(Expr::gt(Expr::col(2), Expr::lit(50i64)))
            .with_join_col(1);
        let right = ScanSpec::new("S", 3, 0)
            .with_pred(Expr::gt(Expr::col(1), Expr::lit(50i64)))
            .with_join_col(0);
        let mut j = JoinSpec::new(strategy, left, right);
        j.post_pred = Some(Expr::gt(
            Expr::Call(Func::WorkloadF, vec![Expr::col(3), Expr::col(7)]),
            Expr::lit(30i64),
        ));
        j.project = vec![Expr::col(0), Expr::col(5), Expr::col(4)];
        j
    }

    #[test]
    fn binary_schema_keeps_only_relevant_columns() {
        let j = workload_join(JoinStrategy::SymmetricHash);
        let v = PipelineSchema::binary(&j, true);
        // Left keeps pkey(0), num1(1, join), num3(3), pad(4).
        assert_eq!(v.keep_base, vec![0, 1, 3, 4]);
        // Right keeps pkey(0, join+projected), num3(2).
        assert_eq!(v.stages[0].keep_right, vec![0, 2]);
        assert_eq!(v.stages[0].join_idx_left, 1);
        assert_eq!(v.stages[0].join_idx_right, 0);
        // Unpruned baseline keeps everything in place.
        let full = PipelineSchema::binary(&j, false);
        assert_eq!(full.keep_base, vec![0, 1, 2, 3, 4]);
        assert_eq!(full.stages[0].keep_right, vec![0, 1, 2]);
        assert_eq!(full.project, j.project);
    }

    #[test]
    fn binary_schema_remaps_exprs_consistently() {
        let j = workload_join(JoinStrategy::SymmetricHash);
        let v = PipelineSchema::binary(&j, true);
        // Build a full joined row and its projected counterpart; both
        // evaluations must agree.
        let full = crate::tuple![1i64, 10i64, 60i64, 7i64, 1000i64, 10i64, 60i64, 8i64];
        let st = &v.stages[0];
        let narrow_vals: Vec<crate::value::Value> = v
            .keep_base
            .iter()
            .map(|&c| full.vals[c].clone())
            .chain(st.keep_right.iter().map(|&c| full.vals[c + 5].clone()))
            .collect();
        let narrow = crate::tuple::Tuple::new(narrow_vals);
        let full_pred = j.post_pred.as_ref().unwrap();
        let narrow_pred = st.pred.as_ref().unwrap();
        assert_eq!(full_pred.matches(&full), narrow_pred.matches(&narrow));
        // The initiator ship: emit the surviving columns, then project.
        let out = narrow.project(&st.emit);
        for (fe, ne) in j.project.iter().zip(&v.project) {
            assert_eq!(fe.eval(&full), ne.eval(&out));
        }
    }

    #[test]
    fn pipeline_schema_drops_pad_nobody_reads() {
        // workload_multi projects R.pkey, S.pkey, T.num2 — never R.pad.
        let m = workload_multi();
        let v = PipelineSchema::build(&m, true);
        // R ships only pkey (projected) and num1 (stage-0 join key).
        assert_eq!(v.keep_base, vec![0, 1]);
        // S ships pkey (join + projected) and num3 (stage-1 join key).
        assert_eq!(v.stages[0].keep_right, vec![0, 2]);
        // T ships pkey (join + projected) and num2 (stage predicate).
        assert_eq!(v.stages[1].keep_right, vec![0, 1]);
        // The stage-0 intermediate carries R.pkey, S.pkey, S.num3 only;
        // the stage-0 join key R.num1 is dropped once consumed.
        assert_eq!(v.stages[0].out_globals, vec![0, 5, 7]);
        // After stage 1 the predicate column T.num2 is dropped too.
        assert_eq!(v.stages[1].out_globals, vec![0, 5, 8]);
        assert_eq!(v.stages[1].join_idx_left, 2, "S.num3 within [0, 5, 7]");
    }

    #[test]
    fn pipeline_schema_matches_full_evaluation() {
        let m = workload_multi();
        let v = PipelineSchema::build(&m, true);
        // One full R ++ S ++ T row that survives the stage predicate.
        let full = crate::tuple![
            1i64, 10i64, 60i64, 7i64, 1000i64, // R
            10i64, 60i64, 8i64, // S
            8i64, 70i64, 3i64 // T
        ];
        // Walk the pruned dataflow by hand.
        let base = full.project(&v.keep_base);
        let s_row = crate::tuple::Tuple::new(
            v.stages[0]
                .keep_right
                .iter()
                .map(|&c| full.vals[c + 5].clone())
                .collect(),
        );
        let mid = base.concat(&s_row).project(&v.stages[0].emit);
        let t_row = crate::tuple::Tuple::new(
            v.stages[1]
                .keep_right
                .iter()
                .map(|&c| full.vals[c + 8].clone())
                .collect(),
        );
        let joined = mid.concat(&t_row);
        assert_eq!(
            v.stages[1].pred.as_ref().unwrap().matches(&joined),
            m.stages[1].stage_pred.as_ref().unwrap().matches(&full)
        );
        let out = joined.project(&v.stages[1].emit);
        for (fe, ne) in m.project.iter().zip(&v.project) {
            assert_eq!(fe.eval(&full), ne.eval(&out));
        }
    }

    #[test]
    fn stage_schema_predicts_wire_bytes() {
        use crate::tuple::ColType;
        let m = workload_multi();
        let v = PipelineSchema::build(&m, true);
        let i64w = (ColType::I64, 8u32);
        let tables = vec![
            vec![i64w, i64w, i64w, i64w, (ColType::Pad, 1000)], // R
            vec![i64w, i64w, i64w],                             // S
            vec![i64w, i64w, i64w],                             // T
        ];
        // R's rehash ships two i64 columns — the 1 KB pad is dropped.
        let r_ship = v.rehash_schema(0, &tables);
        assert_eq!(r_ship.arity(), 2);
        assert_eq!(r_ship.wire_bytes(), 4 + 16);
        assert_eq!(r_ship.cols[0].ty, ColType::I64);
        // And the prediction matches the actual projected tuple.
        let r_row = crate::tuple![3i64, 4i64, 5i64, 6i64, crate::value::Value::Pad(1000)];
        assert_eq!(r_row.project(&v.keep_base).wire_size(), r_ship.wire_bytes());
        // Stage intermediates stay three i64 columns wide.
        for k in 0..2 {
            let mid = v.intermediate_schema(k, &tables);
            assert_eq!(mid.wire_bytes(), 4 + 24, "stage {k}");
            assert!(mid.position(4).is_none(), "pad is on no edge");
        }
        // Unpruned, the same edges carry the pad.
        let full = PipelineSchema::build(&m, false);
        assert_eq!(full.rehash_schema(0, &tables).wire_bytes(), 4 + 32 + 1000);
        assert!(full.intermediate_schema(0, &tables).position(4).is_some());
    }

    #[test]
    fn query_namespaces_are_distinct_per_query() {
        assert_ne!(qns::rehash(1), qns::rehash(2));
        assert_ne!(qns::rehash(1), qns::agg(1));
        assert_ne!(qns::bloom(1, false), qns::bloom(1, true));
        assert_ne!(qns::stage(1, 0), qns::stage(1, 1));
        assert_ne!(qns::stage(1, 0), qns::stage(2, 0));
        assert_ne!(qns::stage(1, 0), qns::rehash(1));
    }

    fn workload_multi() -> MultiJoinSpec {
        // R ⨝ S on R.num1 = S.pkey, then (R ++ S) ⨝ T on S.num3 = T.pkey.
        let base = ScanSpec::new("R", 5, 0);
        let s1 = JoinStage {
            right: ScanSpec::new("S", 3, 0).with_join_col(0),
            left_col: 1, // R.num1
            stage_pred: None,
        };
        let s2 = JoinStage {
            right: ScanSpec::new("T", 3, 0).with_join_col(0),
            left_col: 7, // S.num3 within R ++ S
            stage_pred: Some(Expr::gt(Expr::col(9), Expr::lit(50i64))),
        };
        let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
        m.project = vec![Expr::col(0), Expr::col(5), Expr::col(8)];
        m
    }

    #[test]
    fn multi_join_arities_accumulate() {
        let m = workload_multi();
        assert_eq!(m.n_tables(), 3);
        assert_eq!(m.arity_after(0), 8);
        assert_eq!(m.arity_after(1), 11);
        assert_eq!(m.arity(), 11);
        assert_eq!(m.all_columns().len(), 11);
    }

    #[test]
    fn multi_join_descriptor_wire_size_is_modest() {
        let d = QueryDesc::one_shot(11, 0, QueryOp::MultiJoin(workload_multi()));
        let sz = d.wire_size();
        assert!(sz > 80 && sz < 1500, "desc size {sz}");
    }

    #[test]
    #[should_panic]
    fn multi_join_requires_at_least_one_stage() {
        let _ = MultiJoinSpec::new(ScanSpec::new("R", 5, 0), Vec::new());
    }

    #[test]
    fn descriptor_wire_size_is_modest() {
        let j = workload_join(JoinStrategy::BloomFilter);
        let d = QueryDesc::one_shot(9, 0, QueryOp::Join(j));
        let sz = d.wire_size();
        assert!(sz > 50 && sz < 1000, "desc size {sz}");
    }

    #[test]
    fn strategy_table() {
        assert_eq!(JoinStrategy::ALL.len(), 4);
        assert_eq!(JoinStrategy::SymmetricHash.name(), "symmetric hash");
    }

    #[test]
    fn default_agg_output_echoes_groups_and_aggs() {
        let spec = AggSpec::new(
            vec![1],
            vec![AggCall {
                func: AggFunc::Count,
                arg: None,
            }],
        );
        assert_eq!(spec.output.len(), 2);
        assert_eq!(spec.output[0], Expr::Col(0));
        assert_eq!(spec.output[1], Expr::Col(1));
    }

    #[test]
    #[should_panic]
    fn join_spec_requires_join_columns() {
        let left = ScanSpec::new("R", 2, 0);
        let right = ScanSpec::new("S", 2, 0);
        let _ = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    }
}

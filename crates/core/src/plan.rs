//! Query descriptors: the "boxes and arrows" shipped to every node.
//!
//! A query is disseminated by DHT multicast (§3.3); each node receives the
//! same [`QueryDesc`] and plays its part — scanning local fragments,
//! rehashing, probing, fetching, aggregating — with results flowing
//! directly to the initiator. Expressions in a descriptor are indexed
//! over the *full* `left ++ right` base schemas; strategies that rehash
//! projected tuples remap them via [`RehashView`].

use pier_dht::{ns_of, Ns};
use pier_simnet::time::Dur;
use pier_simnet::NodeId;

use crate::expr::Expr;

/// The four distributed equi-join strategies of §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinStrategy {
    /// DHT-based pipelining symmetric hash join (§4.1).
    SymmetricHash,
    /// Fetch Matches: right table already hashed on the join key (§4.1).
    FetchMatches,
    /// Symmetric semi-join rewrite (§4.2).
    SymmetricSemiJoin,
    /// Bloom-filter rewrite (§4.2).
    BloomFilter,
}

impl JoinStrategy {
    pub const ALL: [JoinStrategy; 4] = [
        JoinStrategy::SymmetricHash,
        JoinStrategy::FetchMatches,
        JoinStrategy::SymmetricSemiJoin,
        JoinStrategy::BloomFilter,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            JoinStrategy::SymmetricHash => "symmetric hash",
            JoinStrategy::FetchMatches => "fetch matches",
            JoinStrategy::SymmetricSemiJoin => "symmetric semi-join",
            JoinStrategy::BloomFilter => "bloom filter",
        }
    }
}

/// One base-table access within a query.
#[derive(Clone, Debug)]
pub struct ScanSpec {
    /// Application-level table (namespace) name.
    pub table: String,
    /// Hashed namespace.
    pub ns: Ns,
    /// Local selection predicate over the base schema (pushed to the
    /// data's home node where the strategy allows).
    pub pred: Option<Expr>,
    /// Primary-key column: the table's default resourceID (§3.2.3).
    pub pkey_col: usize,
    /// Join column (None for single-table scans).
    pub join_col: Option<usize>,
    /// Base-schema arity (needed to index the concatenated join schema).
    pub arity: usize,
}

impl ScanSpec {
    pub fn new(table: &str, arity: usize, pkey_col: usize) -> Self {
        ScanSpec {
            table: table.to_string(),
            ns: ns_of(table),
            pred: None,
            pkey_col,
            join_col: None,
            arity,
        }
    }

    pub fn with_pred(mut self, pred: Expr) -> Self {
        self.pred = Some(pred);
        self
    }

    pub fn with_join_col(mut self, col: usize) -> Self {
        self.join_col = Some(col);
        self
    }
}

/// A binary equi-join.
#[derive(Clone, Debug)]
pub struct JoinSpec {
    pub strategy: JoinStrategy,
    pub left: ScanSpec,
    pub right: ScanSpec,
    /// Predicate evaluated above the join, over `left ++ right` base
    /// columns — e.g. the workload's `f(R.num3, S.num3) > constant3`.
    pub post_pred: Option<Expr>,
    /// Output expressions over `left ++ right` base columns.
    pub project: Vec<Expr>,
    /// Restrict the rehash namespace to this many buckets, confining the
    /// join computation to ≤ m nodes (the Fig. 3 "computation nodes").
    pub computation_nodes: Option<u32>,
    /// Bloom strategy: how long collectors gather fragment filters
    /// before OR-ing and multicasting them.
    pub bloom_wait: Dur,
    /// Bloom strategy: filter shape (bits), sized for the table.
    pub bloom_bits: u32,
}

impl JoinSpec {
    pub fn new(strategy: JoinStrategy, left: ScanSpec, right: ScanSpec) -> Self {
        assert!(left.join_col.is_some() && right.join_col.is_some());
        JoinSpec {
            strategy,
            left,
            right,
            post_pred: None,
            project: Vec::new(),
            computation_nodes: None,
            // Fallback flush deadline; collectors flush early once every
            // node's fragment has arrived (count-based).
            bloom_wait: Dur::from_secs(10),
            bloom_bits: 1 << 16,
        }
    }

    /// Default projection: every column of both sides.
    pub fn all_columns(&self) -> Vec<Expr> {
        (0..self.left.arity + self.right.arity)
            .map(Expr::col)
            .collect()
    }
}

/// One stage of a left-deep multi-way join pipeline.
///
/// Stage `k` joins the accumulated intermediate relation (the
/// concatenation of every table joined so far) with one more base table:
/// intermediates arrive tagged [`crate::item::Side::Left`] in the stage's
/// namespace ([`qns::stage`]), the base table's fragments are rehashed
/// into the same namespace tagged `Right`, and matches are concatenated
/// and fed to stage `k + 1` — the §4.1 pipelining symmetric hash join,
/// chained.
#[derive(Clone, Debug)]
pub struct JoinStage {
    /// The base table joined in at this stage; `join_col` names the
    /// equi-join column within its own schema.
    pub right: ScanSpec,
    /// Equi-join column within the accumulated intermediate schema (the
    /// concatenation of all preceding tables) — any earlier table may
    /// supply it, so star as well as chain queries lower to a pipeline.
    pub left_col: usize,
    /// Predicate over `accumulated ++ right`, applied to each stage
    /// output: the conjuncts that first become evaluable here.
    pub stage_pred: Option<Expr>,
}

/// A left-deep multi-way equi-join pipeline over `1 + stages.len()`
/// base-table accesses (3 or more tables; binary joins use [`JoinSpec`]
/// and keep their four-strategy repertoire).
///
/// Intermediates are full concatenations of the constituent tuples —
/// unlike the binary path's [`RehashView`], no per-stage column pruning
/// is applied yet, so wide pass-through columns (e.g. the workload's
/// `R.pad`) ride through every stage. Generalizing the rehash-view
/// narrowing per stage is the known follow-up.
#[derive(Clone, Debug)]
pub struct MultiJoinSpec {
    /// The pipeline head: the first table, scanned and rehashed into
    /// stage 0 on `stages[0].left_col`.
    pub base: ScanSpec,
    /// The remaining tables, joined in left-deep order.
    pub stages: Vec<JoinStage>,
    /// Output expressions over the full concatenation of all tables.
    pub project: Vec<Expr>,
}

impl MultiJoinSpec {
    pub fn new(base: ScanSpec, stages: Vec<JoinStage>) -> Self {
        assert!(!stages.is_empty(), "a pipeline needs at least two tables");
        assert!(stages[0].left_col < base.arity);
        MultiJoinSpec {
            base,
            stages,
            project: Vec::new(),
        }
    }

    /// Number of base tables in the pipeline.
    pub fn n_tables(&self) -> usize {
        1 + self.stages.len()
    }

    /// Arity of the accumulated schema after stage `k` completes (the
    /// concatenation of tables `0 ..= k + 1`).
    pub fn arity_after(&self, k: usize) -> usize {
        self.base.arity
            + self.stages[..=k]
                .iter()
                .map(|s| s.right.arity)
                .sum::<usize>()
    }

    /// Arity of the full concatenation of every table.
    pub fn arity(&self) -> usize {
        self.arity_after(self.stages.len() - 1)
    }

    /// Default projection: every column of every table.
    pub fn all_columns(&self) -> Vec<Expr> {
        (0..self.arity()).map(Expr::col).collect()
    }
}

/// Aggregate functions (§3.3 lists grouping and aggregation among the
/// initial operators; the intrusion queries of §2.1 use count and sum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// One aggregate call: `func(arg)`; `Count` may have no argument.
#[derive(Clone, Debug)]
pub struct AggCall {
    pub func: AggFunc,
    pub arg: Option<Expr>,
}

/// Grouped aggregation over the input rows (base scan or join output).
///
/// `output` and `having` are indexed over the virtual row
/// `[group values..., aggregate results...]`.
#[derive(Clone, Debug)]
pub struct AggSpec {
    pub group_cols: Vec<usize>,
    pub aggs: Vec<AggCall>,
    pub output: Vec<Expr>,
    pub having: Option<Expr>,
    /// In-network hierarchical aggregation (§7 future work, built as an
    /// extension): partials climb a binary tree over node ids instead of
    /// all landing on the group owner.
    pub hierarchical: bool,
    /// How long owners wait before finalizing groups (one-shot queries).
    pub harvest: Dur,
}

impl AggSpec {
    pub fn new(group_cols: Vec<usize>, aggs: Vec<AggCall>) -> Self {
        let out: Vec<Expr> = (0..group_cols.len() + aggs.len()).map(Expr::col).collect();
        AggSpec {
            group_cols,
            aggs,
            output: out,
            having: None,
            hierarchical: false,
            harvest: Dur::from_secs(5),
        }
    }
}

/// The operator tree variants PIER ships.
#[derive(Clone, Debug)]
pub enum QueryOp {
    /// Scan-select-project: results flow straight to the initiator.
    Scan { scan: ScanSpec, project: Vec<Expr> },
    /// Distributed binary equi-join.
    Join(JoinSpec),
    /// Left-deep multi-way join pipeline (3+ tables).
    MultiJoin(MultiJoinSpec),
    /// Single-table grouped aggregation.
    Agg { scan: ScanSpec, agg: AggSpec },
    /// Join feeding a grouped aggregation (e.g. §2.1's weighted query).
    JoinAgg { join: JoinSpec, agg: AggSpec },
    /// Multi-way pipeline feeding a grouped aggregation.
    MultiJoinAgg { join: MultiJoinSpec, agg: AggSpec },
}

/// A complete query as multicast to all nodes.
#[derive(Clone, Debug)]
pub struct QueryDesc {
    pub qid: u64,
    pub initiator: NodeId,
    pub op: QueryOp,
    /// Continuous query: stays installed; newly published base tuples
    /// flow through incrementally (§7 "continuous queries over streams").
    pub continuous: bool,
    /// For continuous joins: rehashed state ages out of the DHT after
    /// this long, implementing a sliding time window via soft state.
    pub window: Option<Dur>,
    /// How many nodes participate (used by hierarchical aggregation to
    /// shape its tree; harnesses set it when building the query).
    pub n_nodes: u32,
}

impl QueryDesc {
    pub fn one_shot(qid: u64, initiator: NodeId, op: QueryOp) -> Self {
        QueryDesc {
            qid,
            initiator,
            op,
            continuous: false,
            window: None,
            n_nodes: 0,
        }
    }

    /// Rough wire size of the descriptor for the multicast payload.
    pub fn wire_size(&self) -> usize {
        fn scan_sz(s: &ScanSpec) -> usize {
            32 + s.table.len() + s.pred.as_ref().map_or(0, Expr::wire_size)
        }
        fn join_sz(j: &JoinSpec) -> usize {
            16 + scan_sz(&j.left)
                + scan_sz(&j.right)
                + j.post_pred.as_ref().map_or(0, Expr::wire_size)
                + j.project.iter().map(Expr::wire_size).sum::<usize>()
        }
        fn agg_sz(a: &AggSpec) -> usize {
            16 + a.group_cols.len() * 2
                + a.aggs
                    .iter()
                    .map(|c| 2 + c.arg.as_ref().map_or(0, Expr::wire_size))
                    .sum::<usize>()
                + a.output.iter().map(Expr::wire_size).sum::<usize>()
                + a.having.as_ref().map_or(0, Expr::wire_size)
        }
        fn multi_sz(m: &MultiJoinSpec) -> usize {
            16 + scan_sz(&m.base)
                + m.stages
                    .iter()
                    .map(|s| {
                        8 + scan_sz(&s.right) + s.stage_pred.as_ref().map_or(0, Expr::wire_size)
                    })
                    .sum::<usize>()
                + m.project.iter().map(Expr::wire_size).sum::<usize>()
        }
        24 + match &self.op {
            QueryOp::Scan { scan, project } => {
                scan_sz(scan) + project.iter().map(Expr::wire_size).sum::<usize>()
            }
            QueryOp::Join(j) => join_sz(j),
            QueryOp::MultiJoin(m) => multi_sz(m),
            QueryOp::Agg { scan, agg } => scan_sz(scan) + agg_sz(agg),
            QueryOp::JoinAgg { join, agg } => join_sz(join) + agg_sz(agg),
            QueryOp::MultiJoinAgg { join, agg } => multi_sz(join) + agg_sz(agg),
        }
    }
}

/// Derived namespaces for a query's intermediate state.
pub mod qns {
    use pier_dht::geom::hash2;
    use pier_dht::Ns;

    /// Rehash namespace `NQ` for a join (§4.1).
    pub fn rehash(qid: u64) -> Ns {
        hash2(0x4e51, qid) // "NQ"
    }

    /// Rehash namespace for stage `k` of a multi-way pipeline: each
    /// stage's intermediate state lives in its own namespace so probes
    /// never cross stages.
    pub fn stage(qid: u64, k: usize) -> Ns {
        hash2(0x4e53_0000 + k as u64, qid) // "NS" + stage index
    }

    /// Bloom collector namespace for one side.
    pub fn bloom(qid: u64, side_right: bool) -> Ns {
        hash2(0x4e42 + side_right as u64, qid)
    }

    /// Aggregation partials namespace `NA`.
    pub fn agg(qid: u64) -> Ns {
        hash2(0x4e41, qid)
    }
}

/// How a strategy that rehashes projected tuples views the join exprs.
///
/// The rehash copies "with only the relevant columns remaining" (§4.1):
/// we keep the join column plus every column mentioned by the post-join
/// predicate or the output projection, and remap those expressions onto
/// the narrower concatenated layout.
#[derive(Clone, Debug)]
pub struct RehashView {
    /// Base columns kept from the left / right tuples.
    pub keep_left: Vec<usize>,
    pub keep_right: Vec<usize>,
    /// Position of the join value within each kept projection.
    pub join_idx_left: usize,
    pub join_idx_right: usize,
    /// `post_pred` remapped over `keep_left ++ keep_right`.
    pub post_pred: Option<Expr>,
    /// `project` remapped over `keep_left ++ keep_right`.
    pub project: Vec<Expr>,
}

impl RehashView {
    pub fn build(spec: &JoinSpec) -> RehashView {
        let la = spec.left.arity;
        let mut used: Vec<usize> = Vec::new();
        if let Some(p) = &spec.post_pred {
            p.columns(&mut used);
        }
        for e in &spec.project {
            e.columns(&mut used);
        }
        let jl = spec.left.join_col.expect("join col");
        let jr = spec.right.join_col.expect("join col") + la;
        if !used.contains(&jl) {
            used.push(jl);
        }
        if !used.contains(&jr) {
            used.push(jr);
        }
        used.sort_unstable();
        let keep_left: Vec<usize> = used.iter().copied().filter(|&c| c < la).collect();
        let keep_right: Vec<usize> = used
            .iter()
            .copied()
            .filter(|&c| c >= la)
            .map(|c| c - la)
            .collect();
        let map = |c: usize| -> Option<usize> {
            if c < la {
                keep_left.iter().position(|&k| k == c)
            } else {
                keep_right
                    .iter()
                    .position(|&k| k == c - la)
                    .map(|p| p + keep_left.len())
            }
        };
        RehashView {
            join_idx_left: keep_left.iter().position(|&k| k == jl).unwrap(),
            join_idx_right: keep_right.iter().position(|&k| k == jr - la).unwrap(),
            post_pred: spec.post_pred.as_ref().map(|p| p.remap_cols(&map).unwrap()),
            project: spec
                .project
                .iter()
                .map(|e| e.remap_cols(&map).unwrap())
                .collect(),
            keep_left,
            keep_right,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Func;

    fn workload_join(strategy: JoinStrategy) -> JoinSpec {
        // R(pkey, num1, num2, num3, pad) ⨝ S(pkey, num2, num3) on
        // R.num1 = S.pkey, with preds on num2 and f(R.num3, S.num3).
        let left = ScanSpec::new("R", 5, 0)
            .with_pred(Expr::gt(Expr::col(2), Expr::lit(50i64)))
            .with_join_col(1);
        let right = ScanSpec::new("S", 3, 0)
            .with_pred(Expr::gt(Expr::col(1), Expr::lit(50i64)))
            .with_join_col(0);
        let mut j = JoinSpec::new(strategy, left, right);
        j.post_pred = Some(Expr::gt(
            Expr::Call(Func::WorkloadF, vec![Expr::col(3), Expr::col(7)]),
            Expr::lit(30i64),
        ));
        j.project = vec![Expr::col(0), Expr::col(5), Expr::col(4)];
        j
    }

    #[test]
    fn rehash_view_keeps_only_relevant_columns() {
        let j = workload_join(JoinStrategy::SymmetricHash);
        let v = RehashView::build(&j);
        // Left keeps pkey(0), num1(1, join), num3(3), pad(4).
        assert_eq!(v.keep_left, vec![0, 1, 3, 4]);
        // Right keeps pkey(0, join+projected), num3(2).
        assert_eq!(v.keep_right, vec![0, 2]);
        assert_eq!(v.join_idx_left, 1);
        assert_eq!(v.join_idx_right, 0);
    }

    #[test]
    fn rehash_view_remaps_exprs_consistently() {
        let j = workload_join(JoinStrategy::SymmetricHash);
        let v = RehashView::build(&j);
        // Build a full joined row and its projected counterpart; both
        // evaluations must agree.
        let full = crate::tuple![1i64, 10i64, 60i64, 7i64, 1000i64, 10i64, 60i64, 8i64];
        let narrow_vals: Vec<crate::value::Value> = v
            .keep_left
            .iter()
            .map(|&c| full.vals[c].clone())
            .chain(v.keep_right.iter().map(|&c| full.vals[c + 5].clone()))
            .collect();
        let narrow = crate::tuple::Tuple::new(narrow_vals);
        let full_pred = j.post_pred.as_ref().unwrap();
        let narrow_pred = v.post_pred.as_ref().unwrap();
        assert_eq!(full_pred.matches(&full), narrow_pred.matches(&narrow));
        for (fe, ne) in j.project.iter().zip(&v.project) {
            assert_eq!(fe.eval(&full), ne.eval(&narrow));
        }
    }

    #[test]
    fn query_namespaces_are_distinct_per_query() {
        assert_ne!(qns::rehash(1), qns::rehash(2));
        assert_ne!(qns::rehash(1), qns::agg(1));
        assert_ne!(qns::bloom(1, false), qns::bloom(1, true));
        assert_ne!(qns::stage(1, 0), qns::stage(1, 1));
        assert_ne!(qns::stage(1, 0), qns::stage(2, 0));
        assert_ne!(qns::stage(1, 0), qns::rehash(1));
    }

    fn workload_multi() -> MultiJoinSpec {
        // R ⨝ S on R.num1 = S.pkey, then (R ++ S) ⨝ T on S.num3 = T.pkey.
        let base = ScanSpec::new("R", 5, 0);
        let s1 = JoinStage {
            right: ScanSpec::new("S", 3, 0).with_join_col(0),
            left_col: 1, // R.num1
            stage_pred: None,
        };
        let s2 = JoinStage {
            right: ScanSpec::new("T", 3, 0).with_join_col(0),
            left_col: 7, // S.num3 within R ++ S
            stage_pred: Some(Expr::gt(Expr::col(9), Expr::lit(50i64))),
        };
        let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
        m.project = vec![Expr::col(0), Expr::col(5), Expr::col(8)];
        m
    }

    #[test]
    fn multi_join_arities_accumulate() {
        let m = workload_multi();
        assert_eq!(m.n_tables(), 3);
        assert_eq!(m.arity_after(0), 8);
        assert_eq!(m.arity_after(1), 11);
        assert_eq!(m.arity(), 11);
        assert_eq!(m.all_columns().len(), 11);
    }

    #[test]
    fn multi_join_descriptor_wire_size_is_modest() {
        let d = QueryDesc::one_shot(11, 0, QueryOp::MultiJoin(workload_multi()));
        let sz = d.wire_size();
        assert!(sz > 80 && sz < 1500, "desc size {sz}");
    }

    #[test]
    #[should_panic]
    fn multi_join_requires_at_least_one_stage() {
        let _ = MultiJoinSpec::new(ScanSpec::new("R", 5, 0), Vec::new());
    }

    #[test]
    fn descriptor_wire_size_is_modest() {
        let j = workload_join(JoinStrategy::BloomFilter);
        let d = QueryDesc::one_shot(9, 0, QueryOp::Join(j));
        let sz = d.wire_size();
        assert!(sz > 50 && sz < 1000, "desc size {sz}");
    }

    #[test]
    fn strategy_table() {
        assert_eq!(JoinStrategy::ALL.len(), 4);
        assert_eq!(JoinStrategy::SymmetricHash.name(), "symmetric hash");
    }

    #[test]
    fn default_agg_output_echoes_groups_and_aggs() {
        let spec = AggSpec::new(
            vec![1],
            vec![AggCall {
                func: AggFunc::Count,
                arg: None,
            }],
        );
        assert_eq!(spec.output.len(), 2);
        assert_eq!(spec.output[0], Expr::Col(0));
        assert_eq!(spec.output[1], Expr::Col(1));
    }

    #[test]
    #[should_panic]
    fn join_spec_requires_join_columns() {
        let left = ScanSpec::new("R", 2, 0);
        let right = ScanSpec::new("S", 2, 0);
        let _ = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    }
}

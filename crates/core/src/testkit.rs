//! Harness helpers shared by tests, examples, and the experiment bins:
//! building stabilized PIER networks, publishing partitioned tables, and
//! running queries to completion.

use pier_dht::can::balanced_overlay;
use pier_dht::chord::balanced_chord_overlay;
use pier_dht::{Dht, DhtConfig};
use pier_simnet::time::{Dur, Time};
use pier_simnet::{NetConfig, NodeId, Sim};

use crate::item::PierMsg;
use crate::node::PierNode;
use crate::plan::QueryDesc;
use crate::tuple::Tuple;

/// Build a simulator of `n` PIER nodes on a pre-stabilized CAN overlay.
pub fn stabilized_pier_sim(n: usize, cfg: DhtConfig, net: NetConfig) -> Sim<PierNode> {
    let mut sim = Sim::new(net);
    match cfg.overlay {
        pier_dht::OverlayKind::Can => {
            for (i, st) in balanced_overlay(n, cfg.dims, Time::ZERO)
                .into_iter()
                .enumerate()
            {
                let dht = Dht::with_can(cfg.clone(), i as NodeId, st);
                sim.add_node(PierNode::with_dht(dht, None));
            }
        }
        pier_dht::OverlayKind::Chord => {
            for (i, st) in balanced_chord_overlay(n, Time::ZERO)
                .into_iter()
                .enumerate()
            {
                let dht = Dht::with_chord(cfg.clone(), i as NodeId, st);
                sim.add_node(PierNode::with_dht(dht, None));
            }
        }
    }
    sim
}

/// Publish `rows` from their home nodes: row `i` is published by node
/// `i % n` (data in its "natural habitat", copied into the DHT).
/// Returns per-node publication counts.
pub fn publish_round_robin(
    sim: &mut Sim<PierNode>,
    table: &str,
    rows: &[Tuple],
    pkey_col: usize,
    lifetime: Dur,
) {
    let n = sim.node_count();
    let mut per_node: Vec<Vec<Tuple>> = vec![Vec::new(); n];
    for (i, row) in rows.iter().enumerate() {
        per_node[i % n].push(row.clone());
    }
    for (i, batch) in per_node.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        sim.with_app(i as NodeId, |node, ctx| {
            node.publish_rows(ctx, table, batch, pkey_col, lifetime);
        });
    }
}

/// Submit a query at `initiator` and run the simulation for `settle`.
/// Returns the timed results collected at the initiator (relative to the
/// submission instant).
pub fn run_query(
    sim: &mut Sim<PierNode>,
    initiator: NodeId,
    desc: QueryDesc,
    settle: Dur,
) -> Vec<(Dur, Tuple)> {
    let qid = desc.qid;
    let t0 = sim.now();
    sim.with_app(initiator, |node, ctx| node.submit(ctx, desc));
    sim.run_for(settle);
    sim.app(initiator)
        .map(|node| {
            node.query_results(qid)
                .iter()
                .map(|(t, row)| (t.since(t0), row.clone()))
                .collect()
        })
        .unwrap_or_default()
}

/// Time to the k-th result tuple, if at least k arrived (Fig. 3 metric).
pub fn time_to_kth(results: &[(Dur, Tuple)], k: usize) -> Option<Dur> {
    let mut times: Vec<Dur> = results.iter().map(|(t, _)| *t).collect();
    times.sort_unstable();
    times.get(k.saturating_sub(1)).copied()
}

/// Time to the last result tuple (Fig. 5 metric).
pub fn time_to_last(results: &[(Dur, Tuple)]) -> Option<Dur> {
    results.iter().map(|(t, _)| *t).max()
}

/// Bare result tuples, dropping arrival times.
pub fn rows_of(results: &[(Dur, Tuple)]) -> Vec<Tuple> {
    results.iter().map(|(_, r)| r.clone()).collect()
}

/// Let publications settle: run until puts have landed (a few seconds of
/// virtual time covers lookup + direct delivery at paper latencies).
pub fn settle_publish(sim: &mut Sim<PierNode>) {
    sim.run_for(Dur::from_secs(8));
}

/// Convenience for Msg type naming in closures.
pub type PierCtx<'a> = pier_simnet::app::Ctx<'a, PierMsg>;

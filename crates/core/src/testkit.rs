//! Harness helpers shared by tests, examples, and the experiment bins:
//! building stabilized PIER networks, publishing partitioned tables, and
//! running queries to completion.
//!
//! Helpers are generic over [`PierEngine`], so the same workload drives
//! the sequential [`Sim`] and the sharded
//! [`ShardedSim`] interchangeably — the
//! scale-up benchmarks rely on this to compare the two bit-for-bit.

use pier_dht::can::balanced_overlay;
use pier_dht::chord::balanced_chord_overlay;
use pier_dht::{Dht, DhtConfig};
use pier_simnet::time::{Dur, Time};
use pier_simnet::{Cluster, NetConfig, NetStats, NodeId, ShardMap, ShardedSim, Sim};

use crate::item::PierMsg;
use crate::metrics::MetricsSnapshot;
use crate::node::PierNode;
use crate::plan::QueryDesc;
use crate::tuple::Tuple;

/// Convenience for Msg type naming in closures.
pub type PierCtx<'a> = pier_simnet::app::Ctx<'a, PierMsg>;

/// The engine surface the harness helpers need, implemented by both
/// simulator variants. (The wall-clock actor-runtime `Cluster` is
/// driven differently — real sleeps, typed requests through handles —
/// and stays out of scope.)
pub trait PierEngine {
    fn node_count(&self) -> usize;
    fn now(&self) -> Time;
    fn run_for(&mut self, d: Dur);
    /// Inject a call into node `id`; `None` if it has failed.
    fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut PierNode, &mut PierCtx) -> R,
    ) -> Option<R>;
    /// Read-only access to a live node.
    fn node(&self, id: NodeId) -> Option<&PierNode>;
    /// Engine traffic counters (owned: the sharded engine merges its
    /// per-shard stats on demand).
    fn net_stats(&self) -> NetStats;
    fn events_processed(&self) -> u64;
}

impl PierEngine for Sim<PierNode> {
    fn node_count(&self) -> usize {
        Sim::node_count(self)
    }
    fn now(&self) -> Time {
        Sim::now(self)
    }
    fn run_for(&mut self, d: Dur) {
        Sim::run_for(self, d)
    }
    fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut PierNode, &mut PierCtx) -> R,
    ) -> Option<R> {
        self.with_app(id, f)
    }
    fn node(&self, id: NodeId) -> Option<&PierNode> {
        self.app(id)
    }
    fn net_stats(&self) -> NetStats {
        self.stats().clone()
    }
    fn events_processed(&self) -> u64 {
        Sim::events_processed(self)
    }
}

impl PierEngine for ShardedSim<PierNode> {
    fn node_count(&self) -> usize {
        ShardedSim::node_count(self)
    }
    fn now(&self) -> Time {
        ShardedSim::now(self)
    }
    fn run_for(&mut self, d: Dur) {
        ShardedSim::run_for(self, d)
    }
    fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut PierNode, &mut PierCtx) -> R,
    ) -> Option<R> {
        self.with_app(id, f)
    }
    fn node(&self, id: NodeId) -> Option<&PierNode> {
        self.app(id)
    }
    fn net_stats(&self) -> NetStats {
        self.stats()
    }
    fn events_processed(&self) -> u64 {
        ShardedSim::events_processed(self)
    }
}

/// Pre-stabilized PIER automata for ids `0..n` on the configured
/// overlay — the common substrate of every engine builder here.
pub fn stabilized_pier_nodes(n: usize, cfg: &DhtConfig) -> Vec<PierNode> {
    match cfg.overlay {
        pier_dht::OverlayKind::Can => balanced_overlay(n, cfg.dims, Time::ZERO)
            .into_iter()
            .enumerate()
            .map(|(i, st)| PierNode::with_dht(Dht::with_can(cfg.clone(), i as NodeId, st), None))
            .collect(),
        pier_dht::OverlayKind::Chord => balanced_chord_overlay(n, Time::ZERO)
            .into_iter()
            .enumerate()
            .map(|(i, st)| PierNode::with_dht(Dht::with_chord(cfg.clone(), i as NodeId, st), None))
            .collect(),
    }
}

/// Build a simulator of `n` PIER nodes on a pre-stabilized overlay.
pub fn stabilized_pier_sim(n: usize, cfg: DhtConfig, net: NetConfig) -> Sim<PierNode> {
    let mut sim = Sim::new(net);
    for node in stabilized_pier_nodes(n, &cfg) {
        sim.add_node(node);
    }
    sim
}

/// Build a sharded simulator of `n` PIER nodes on a pre-stabilized
/// overlay — same nodes, same seed derivation, same results as
/// [`stabilized_pier_sim`], executed across `map.shards()` workers.
pub fn stabilized_pier_sharded(
    n: usize,
    cfg: DhtConfig,
    net: NetConfig,
    map: ShardMap,
) -> ShardedSim<PierNode> {
    let mut sim = ShardedSim::new(net, map);
    for node in stabilized_pier_nodes(n, &cfg) {
        sim.add_node(node);
    }
    sim
}

/// Publish `rows` from their home nodes: row `i` is published by node
/// `i % n` (data in its "natural habitat", copied into the DHT).
pub fn publish_round_robin(
    sim: &mut impl PierEngine,
    table: &str,
    rows: &[Tuple],
    pkey_col: usize,
    lifetime: Dur,
) {
    let n = sim.node_count();
    let mut per_node: Vec<Vec<Tuple>> = vec![Vec::new(); n];
    for (i, row) in rows.iter().enumerate() {
        per_node[i % n].push(row.clone());
    }
    for (i, batch) in per_node.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        sim.with_node(i as NodeId, |node, ctx| {
            node.publish_rows(ctx, table, batch, pkey_col, lifetime);
        });
    }
}

/// Submit a query at `initiator` and run the simulation for `settle`.
/// Returns the timed results collected at the initiator (relative to the
/// submission instant).
pub fn run_query(
    sim: &mut impl PierEngine,
    initiator: NodeId,
    desc: QueryDesc,
    settle: Dur,
) -> Vec<(Dur, Tuple)> {
    let qid = desc.qid;
    let t0 = sim.now();
    sim.with_node(initiator, |node, ctx| node.submit(ctx, desc));
    sim.run_for(settle);
    sim.node(initiator)
        .map(|node| {
            node.query_results(qid)
                .iter()
                .map(|(t, row)| (t.since(t0), row.clone()))
                .collect()
        })
        .unwrap_or_default()
}

/// Time to the k-th result tuple, if at least k arrived (Fig. 3 metric).
pub fn time_to_kth(results: &[(Dur, Tuple)], k: usize) -> Option<Dur> {
    let mut times: Vec<Dur> = results.iter().map(|(t, _)| *t).collect();
    times.sort_unstable();
    times.get(k.saturating_sub(1)).copied()
}

/// Time to the last result tuple (Fig. 5 metric).
pub fn time_to_last(results: &[(Dur, Tuple)]) -> Option<Dur> {
    results.iter().map(|(t, _)| *t).max()
}

/// Bare result tuples, dropping arrival times.
pub fn rows_of(results: &[(Dur, Tuple)]) -> Vec<Tuple> {
    results.iter().map(|(_, r)| r.clone()).collect()
}

/// Let publications settle: run until puts have landed (a few seconds of
/// virtual time covers lookup + direct delivery at paper latencies).
pub fn settle_publish(sim: &mut impl PierEngine) {
    sim.run_for(Dur::from_secs(8));
}

/// Deployment-wide [`MetricsSnapshot`] of a simulator engine: every
/// live node's [`crate::metrics::NodeMetrics`] plus the engine's own
/// [`NetStats`] — so the snapshot's `net` section *is* the ground
/// truth, checkable byte-for-byte via
/// [`crate::metrics::net_stats_json`]. Failed nodes are skipped (their
/// state is frozen mid-failure, not observable health). Mailbox depth
/// is 0 under the simulators — they run a global event queue, not
/// per-node mailboxes.
pub fn metrics_snapshot(sim: &impl PierEngine) -> MetricsSnapshot {
    let now = sim.now();
    MetricsSnapshot {
        at: now,
        nodes: (0..sim.node_count() as NodeId)
            .filter_map(|id| sim.node(id))
            .map(|node| node.node_metrics(now))
            .collect(),
        net: sim.net_stats(),
    }
}

/// [`MetricsSnapshot`] of a wall-clock [`Cluster`]: per-node metrics
/// gathered through the typed request surface
/// ([`crate::node::NodeRequest::Metrics`]), with each node's
/// transport-side mailbox depth overlaid (the one gauge the actor
/// cannot see from inside its own loop). Killed nodes are skipped,
/// mirroring [`metrics_snapshot`].
pub fn cluster_metrics_snapshot(cluster: &Cluster<PierNode>) -> MetricsSnapshot {
    let mut nodes = Vec::new();
    for id in 0..cluster.node_count() as NodeId {
        let Some(handle) = cluster.handle(id) else {
            continue;
        };
        let Some(resp) = handle.request(crate::node::NodeRequest::Metrics) else {
            continue;
        };
        let mut m = resp.into_metrics();
        m.mailbox_depth = cluster.mailbox_depth(id);
        nodes.push(m);
    }
    MetricsSnapshot {
        at: cluster.now(),
        nodes,
        net: cluster.stats(),
    }
}

//! Bloom filters for the Bloom-join rewrite (§4.2).
//!
//! Each node builds a filter over the join keys of its local fragment,
//! publishes it to a collector namespace, and the collector ORs all
//! fragments together before multicasting the result to the nodes holding
//! the opposite table. Tuples whose keys miss the filter are never
//! rehashed, trading two extra multicast rounds for rehash bandwidth.

use pier_dht::geom::splitmix64;

/// A fixed-shape Bloom filter over 64-bit key hashes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u32,
    n_hashes: u32,
}

impl BloomFilter {
    /// `n_bits` is rounded up to a multiple of 64. Typical workload use:
    /// ~8 bits per expected key and 3–4 hashes for ≈2–3 % false positives.
    pub fn new(n_bits: u32, n_hashes: u32) -> Self {
        let words = n_bits.div_ceil(64).max(1);
        BloomFilter {
            bits: vec![0; words as usize],
            n_bits: words * 64,
            n_hashes: n_hashes.clamp(1, 16),
        }
    }

    /// Size a filter for an expected number of keys at ~8 bits/key.
    pub fn for_capacity(expected_keys: usize) -> Self {
        BloomFilter::new((expected_keys as u32).saturating_mul(8).max(64), 4)
    }

    fn positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let n = self.n_bits as u64;
        (0..self.n_hashes as u64)
            .map(move |i| (splitmix64(key ^ (i.wrapping_mul(0xA5A5_5A5A_0F0F_F0F0))) % n) as usize)
    }

    pub fn insert(&mut self, key: u64) {
        let pos: Vec<usize> = self.positions(key).collect();
        for p in pos {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
    }

    /// May return false positives; never false negatives.
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key)
            .collect::<Vec<_>>()
            .into_iter()
            .all(|p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// OR in another filter (must have the same shape).
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(self.n_bits, other.n_bits, "bloom shape mismatch");
        assert_eq!(self.n_hashes, other.n_hashes, "bloom shape mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Fraction of set bits (load factor).
    pub fn load(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.n_bits as f64
    }

    /// Wire bytes of the filter payload.
    pub fn wire_size(&self) -> usize {
        8 + self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_capacity(1000);
        for k in 0..1000u64 {
            f.insert(k * 31);
        }
        for k in 0..1000u64 {
            assert!(f.contains(k * 31));
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_8_bits_per_key() {
        let mut f = BloomFilter::for_capacity(2000);
        for k in 0..2000u64 {
            f.insert(splitmix64(k));
        }
        let fps = (0..20_000u64)
            .map(|k| splitmix64(k + 1_000_000))
            .filter(|&k| f.contains(k))
            .count();
        let rate = fps as f64 / 20_000.0;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn union_is_bitwise_or() {
        let mut a = BloomFilter::new(256, 3);
        let mut b = BloomFilter::new(256, 3);
        a.insert(1);
        b.insert(2);
        a.union(&b);
        assert!(a.contains(1) && a.contains(2));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn union_rejects_shape_mismatch() {
        let mut a = BloomFilter::new(128, 3);
        let b = BloomFilter::new(256, 3);
        a.union(&b);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(512, 4);
        assert!(f.is_empty());
        assert!((0..100u64).all(|k| !f.contains(splitmix64(k))));
    }

    proptest! {
        #[test]
        fn inserted_keys_always_found(keys in prop::collection::vec(any::<u64>(), 1..200)) {
            let mut f = BloomFilter::for_capacity(keys.len());
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                prop_assert!(f.contains(k));
            }
        }

        #[test]
        fn union_preserves_both_sides(
            xs in prop::collection::vec(any::<u64>(), 1..100),
            ys in prop::collection::vec(any::<u64>(), 1..100),
        ) {
            let mut a = BloomFilter::new(4096, 4);
            let mut b = BloomFilter::new(4096, 4);
            for &k in &xs { a.insert(k); }
            for &k in &ys { b.insert(k); }
            a.union(&b);
            for &k in xs.iter().chain(&ys) {
                prop_assert!(a.contains(k));
            }
        }
    }
}

//! Aggregate accumulators: partial states that merge associatively, the
//! basis of both flat DHT-based grouping and hierarchical (in-network)
//! aggregation.

use crate::plan::{AggCall, AggFunc};
use crate::tuple::Tuple;
use crate::value::Value;

/// Mergeable partial state of one aggregate.
#[derive(Clone, Debug, PartialEq)]
pub enum AggState {
    Count(i64),
    SumI(i64),
    SumF(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl AggState {
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::SumF(0.0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    /// Fold one input value in (None for `count(*)`).
    pub fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumI(s) => {
                if let Some(v) = v.and_then(Value::as_i64) {
                    *s += v;
                }
            }
            AggState::SumF(s) => {
                if let Some(v) = v.and_then(Value::as_f64) {
                    *s += v;
                }
            }
            // SQL semantics: MIN/MAX range over non-null inputs only.
            // `Value::Null` sorts below every value, so folding it in
            // would make every null-bearing MIN collapse to NULL.
            AggState::Min(m) => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    if m.as_ref().is_none_or(|cur| v < cur) {
                        *m = Some(v.clone());
                    }
                }
            }
            AggState::Max(m) => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    if m.as_ref().is_none_or(|cur| v > cur) {
                        *m = Some(v.clone());
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = v.and_then(Value::as_f64) {
                    *sum += v;
                    *n += 1;
                }
            }
        }
    }

    /// Merge another partial of the same shape (associative/commutative).
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumI(a), AggState::SumI(b)) => *a += b,
            (AggState::SumF(a), AggState::SumF(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b.as_ref().filter(|bv| !bv.is_null()) {
                    if a.as_ref().is_none_or(|av| bv < av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b.as_ref().filter(|bv| !bv.is_null()) {
                    if a.as_ref().is_none_or(|av| bv > av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Avg { sum: s1, n: n1 }, AggState::Avg { sum: s2, n: n2 }) => {
                *s1 += s2;
                *n1 += n2;
            }
            (a, b) => debug_assert!(false, "merging mismatched agg states {a:?} / {b:?}"),
        }
    }

    /// Final value of the aggregate.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(c) => Value::I64(*c),
            AggState::SumI(s) => Value::I64(*s),
            AggState::SumF(s) => {
                // Integral sums surface as integers so `count * sum`
                // expressions stay in integer arithmetic when possible.
                if s.fract() == 0.0 && s.abs() < 9e15 {
                    Value::I64(*s as i64)
                } else {
                    Value::F64(*s)
                }
            }
            AggState::Min(m) | AggState::Max(m) => m.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::F64(sum / *n as f64)
                }
            }
        }
    }

    pub fn wire_size(&self) -> usize {
        match self {
            AggState::Count(_) | AggState::SumI(_) | AggState::SumF(_) => 9,
            AggState::Min(m) | AggState::Max(m) => 1 + m.as_ref().map_or(0, Value::wire_size),
            AggState::Avg { .. } => 17,
        }
    }
}

/// A group's accumulators across all aggregate calls of a query.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupAccs {
    pub states: Vec<AggState>,
}

impl GroupAccs {
    pub fn new(calls: &[AggCall]) -> GroupAccs {
        GroupAccs {
            states: calls.iter().map(|c| AggState::new(c.func)).collect(),
        }
    }

    /// Fold an input row into every accumulator.
    pub fn update(&mut self, calls: &[AggCall], row: &Tuple) {
        for (state, call) in self.states.iter_mut().zip(calls) {
            let arg = call.arg.as_ref().map(|e| e.eval(row));
            state.update(arg.as_ref());
        }
    }

    pub fn merge(&mut self, other: &GroupAccs) {
        for (a, b) in self.states.iter_mut().zip(&other.states) {
            a.merge(b);
        }
    }

    /// The virtual output row `[group values..., finalized aggs...]`.
    pub fn output_row(&self, group: &[Value]) -> Tuple {
        let mut vals: Vec<Value> = group.to_vec();
        vals.extend(self.states.iter().map(AggState::finalize));
        Tuple::new(vals)
    }

    pub fn wire_size(&self) -> usize {
        self.states.iter().map(AggState::wire_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::tuple;

    fn calls() -> Vec<AggCall> {
        vec![
            AggCall {
                func: AggFunc::Count,
                arg: None,
            },
            AggCall {
                func: AggFunc::Sum,
                arg: Some(Expr::col(0)),
            },
            AggCall {
                func: AggFunc::Min,
                arg: Some(Expr::col(0)),
            },
            AggCall {
                func: AggFunc::Max,
                arg: Some(Expr::col(0)),
            },
            AggCall {
                func: AggFunc::Avg,
                arg: Some(Expr::col(0)),
            },
        ]
    }

    #[test]
    fn accumulate_then_finalize() {
        let calls = calls();
        let mut g = GroupAccs::new(&calls);
        for v in [3i64, 1, 4, 1, 5] {
            g.update(&calls, &tuple![v]);
        }
        let out = g.output_row(&[Value::str("k")]);
        assert_eq!(out.get(1), &Value::I64(5)); // count
        assert_eq!(out.get(2), &Value::I64(14)); // sum (integral)
        assert_eq!(out.get(3), &Value::I64(1)); // min
        assert_eq!(out.get(4), &Value::I64(5)); // max
        assert_eq!(out.get(5), &Value::F64(2.8)); // avg
    }

    #[test]
    fn merge_equals_sequential_update() {
        let calls = calls();
        let rows: Vec<Tuple> = (0..20i64).map(|v| tuple![v * 7 % 13]).collect();
        let mut whole = GroupAccs::new(&calls);
        for r in &rows {
            whole.update(&calls, r);
        }
        let mut a = GroupAccs::new(&calls);
        let mut b = GroupAccs::new(&calls);
        for (i, r) in rows.iter().enumerate() {
            if i % 2 == 0 {
                a.update(&calls, r);
            } else {
                b.update(&calls, r);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_group_finalizes_to_neutral_values() {
        let calls = calls();
        let g = GroupAccs::new(&calls);
        let out = g.output_row(&[]);
        assert_eq!(out.get(0), &Value::I64(0));
        assert_eq!(out.get(2), &Value::Null);
        assert_eq!(out.get(4), &Value::Null);
    }

    #[test]
    fn min_max_skip_nulls() {
        // Regression: Value::Null sorts below everything, so a single
        // NULL input used to turn MIN into NULL instead of the least
        // non-null value.
        let calls = calls();
        let mut g = GroupAccs::new(&calls);
        for v in [Value::Null, Value::I64(4), Value::Null, Value::I64(2)] {
            g.update(&calls, &Tuple::new(vec![v]));
        }
        let out = g.output_row(&[]);
        assert_eq!(out.get(0), &Value::I64(4), "count(*) still counts rows");
        assert_eq!(out.get(2), &Value::I64(2), "min skips nulls");
        assert_eq!(out.get(3), &Value::I64(4), "max skips nulls");
        // All-null input finalizes to NULL, like the empty group.
        let mut all_null = GroupAccs::new(&calls);
        all_null.update(&calls, &tuple![Value::Null]);
        assert_eq!(all_null.output_row(&[]).get(2), &Value::Null);
        assert_eq!(all_null.output_row(&[]).get(3), &Value::Null);
    }

    #[test]
    fn merge_skips_null_min_max_partials() {
        let calls = calls();
        let mut a = GroupAccs::new(&calls);
        a.update(&calls, &tuple![7i64]);
        // A partial whose MIN/MAX never saw a non-null value merges as a
        // no-op (and a hand-built Some(Null) partial must not win).
        let mut b = GroupAccs::new(&calls);
        b.states[2] = AggState::Min(Some(Value::Null));
        b.states[3] = AggState::Max(Some(Value::Null));
        a.merge(&b);
        let out = a.output_row(&[]);
        assert_eq!(out.get(2), &Value::I64(7));
        assert_eq!(out.get(3), &Value::I64(7));
    }

    #[test]
    fn count_ignores_argument() {
        let calls = vec![AggCall {
            func: AggFunc::Count,
            arg: None,
        }];
        let mut g = GroupAccs::new(&calls);
        g.update(&calls, &tuple![Value::Null]);
        g.update(&calls, &tuple![1i64]);
        assert_eq!(g.output_row(&[]).get(0), &Value::I64(2));
    }
}

//! The catalog manager (Figure 1): table schemas, resourceID columns and
//! coarse statistics. The paper defers catalogs to future work (§7); we
//! build the minimal version the SQL front-end and optimizer need. The
//! catalog is initiator-side state: shipped query descriptors carry fully
//! resolved column indices, so remote nodes never consult it.

use std::collections::BTreeMap;

use crate::tuple::{ColType, Schema, SchemaRef};

/// Coarse per-table statistics for the cost-based optimizer.
#[derive(Clone, Copy, Debug)]
pub struct TableStats {
    /// Total rows across all publishers.
    pub rows: u64,
    /// Average on-the-wire tuple size in bytes.
    pub avg_tuple_bytes: u64,
}

impl Default for TableStats {
    fn default() -> Self {
        TableStats {
            rows: 1000,
            avg_tuple_bytes: 100,
        }
    }
}

/// A registered relation.
#[derive(Clone, Debug)]
pub struct TableDef {
    pub schema: SchemaRef,
    /// Which column is the primary key (the default resourceID, §3.2.3).
    pub pkey_col: usize,
    pub stats: TableStats,
}

impl TableDef {
    /// Estimated wire bytes per column — the per-column resolution the
    /// byte-accurate cost model needs. Fixed-width types report their
    /// exact [`crate::tuple::ColType::wire_width`]; the residual of
    /// `avg_tuple_bytes` (minus the per-tuple header) is spread over
    /// the variable-width columns (`Str`, `Pad`), so a table whose
    /// stats say "1 KB tuples" attributes the bulk to its pad column.
    pub fn col_widths(&self) -> Vec<u32> {
        const MIN_VAR_WIDTH: u32 = 4;
        let fixed: u32 = self
            .schema
            .fields
            .iter()
            .filter_map(|f| f.ty.wire_width())
            .sum();
        let n_var = self
            .schema
            .fields
            .iter()
            .filter(|f| f.ty.wire_width().is_none())
            .count() as u32;
        let residual = (self.stats.avg_tuple_bytes as u32)
            .saturating_sub(crate::tuple::TUPLE_HEADER_BYTES as u32 + fixed)
            .checked_div(n_var)
            .unwrap_or(0)
            .max(MIN_VAR_WIDTH);
        self.schema
            .fields
            .iter()
            .map(|f| f.ty.wire_width().unwrap_or(residual))
            .collect()
    }

    /// Predicted wire bytes of a tuple pruned to `cols` (header
    /// included) — what a rehash of this table ships per row.
    pub fn ship_bytes(&self, cols: &[usize]) -> u64 {
        let widths = self.col_widths();
        crate::tuple::TUPLE_HEADER_BYTES as u64
            + cols.iter().map(|&c| widths[c] as u64).sum::<u64>()
    }
}

/// Name → table registry.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&mut self, schema: SchemaRef, pkey_col: usize, stats: TableStats) {
        assert!(pkey_col < schema.arity());
        self.tables.insert(
            schema.name.to_ascii_lowercase(),
            TableDef {
                schema,
                pkey_col,
                stats,
            },
        );
    }

    /// Register with default stats; convenient in tests and examples.
    pub fn register_simple(&mut self, name: &str, cols: &[(&str, ColType)], pkey_col: usize) {
        self.register(Schema::new(name, cols), pkey_col, TableStats::default());
    }

    pub fn get(&self, name: &str) -> Option<&TableDef> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    pub fn set_stats(&mut self, name: &str, stats: TableStats) {
        if let Some(t) = self.tables.get_mut(&name.to_ascii_lowercase()) {
            t.stats = stats;
        }
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.values().map(|t| t.schema.name.as_str())
    }

    /// The paper's §5.1 workload schemas:
    /// `R(pkey, num1, num2, num3, pad)` and `S(pkey, num2, num3)`.
    pub fn workload() -> Catalog {
        let mut c = Catalog::new();
        c.register_simple(
            "R",
            &[
                ("pkey", ColType::I64),
                ("num1", ColType::I64),
                ("num2", ColType::I64),
                ("num3", ColType::I64),
                ("pad", ColType::Pad),
            ],
            0,
        );
        c.register_simple(
            "S",
            &[
                ("pkey", ColType::I64),
                ("num2", ColType::I64),
                ("num3", ColType::I64),
            ],
            0,
        );
        c.register_simple(
            "T",
            &[
                ("pkey", ColType::I64),
                ("num2", ColType::I64),
                ("num3", ColType::I64),
            ],
            0,
        );
        c
    }

    /// Schemas for the §2.1 network-monitoring examples.
    pub fn intrusion() -> Catalog {
        let mut c = Catalog::new();
        c.register_simple(
            "intrusions",
            &[
                ("id", ColType::I64),
                ("fingerprint", ColType::Str),
                ("address", ColType::Str),
            ],
            0,
        );
        c.register_simple(
            "reputation",
            &[("address", ColType::Str), ("weight", ColType::I64)],
            0,
        );
        c.register_simple(
            "spamGateways",
            &[
                ("id", ColType::I64),
                ("source", ColType::Str),
                ("smtpGWDomain", ColType::Str),
            ],
            0,
        );
        c.register_simple(
            "robots",
            &[("id", ColType::I64), ("clientDomain", ColType::Str)],
            0,
        );
        c.register_simple(
            "advisories",
            &[("fingerprint", ColType::Str), ("severity", ColType::I64)],
            0,
        );
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup_case_insensitive() {
        let c = Catalog::workload();
        assert!(c.get("r").is_some());
        assert!(c.get("R").is_some());
        assert!(c.get("T").is_some(), "workload catalog covers T");
        assert!(c.get("U").is_none());
        assert_eq!(c.get("R").unwrap().schema.arity(), 5);
        assert_eq!(c.get("s").unwrap().pkey_col, 0);
    }

    #[test]
    fn stats_update() {
        let mut c = Catalog::workload();
        c.set_stats(
            "R",
            TableStats {
                rows: 5,
                avg_tuple_bytes: 7,
            },
        );
        assert_eq!(c.get("R").unwrap().stats.rows, 5);
    }

    #[test]
    #[should_panic]
    fn pkey_must_be_in_schema() {
        let mut c = Catalog::new();
        c.register_simple("T", &[("a", ColType::I64)], 3);
    }

    #[test]
    fn per_column_widths_attribute_pad_residual() {
        let mut c = Catalog::workload();
        c.set_stats(
            "R",
            TableStats {
                rows: 1000,
                avg_tuple_bytes: 1024,
            },
        );
        let def = c.get("R").unwrap();
        let w = def.col_widths();
        assert_eq!(&w[..4], &[8, 8, 8, 8], "fixed i64 columns");
        assert_eq!(w[4], 1024 - 4 - 32, "pad soaks up the residual");
        assert_eq!(def.ship_bytes(&[0, 1]), 4 + 16);
        assert_eq!(def.ship_bytes(&[0, 4]), 4 + 8 + (1024 - 4 - 32) as u64);
    }

    #[test]
    fn intrusion_catalog_has_five_tables() {
        let c = Catalog::intrusion();
        assert_eq!(c.names().count(), 5);
        assert!(c.get("spamgateways").is_some());
        assert!(c.get("advisories").is_some());
    }
}

//! Scalar values carried in PIER tuples.
//!
//! `Pad(n)` deserves a note: the paper's workload pads every result tuple
//! to 1 KB via `R.pad` (§5.1). Simulating 1 KB payloads per tuple with
//! real allocations would waste memory at 10,000-node scale, so `Pad`
//! contributes `n` bytes of *wire size* while occupying four bytes of RAM.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A scalar value.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    F64(f64),
    Str(Arc<str>),
    /// Opaque padding of the given wire length (see module docs).
    Pad(u32),
}

impl Value {
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness for predicate evaluation (SQL-ish: NULL is false).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::I64(i) => *i != 0,
            Value::F64(f) => *f != 0.0,
            Value::Null => false,
            Value::Str(s) => !s.is_empty(),
            Value::Pad(_) => true,
        }
    }

    /// Numeric view (for arithmetic and cross-type comparison).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(i) => Some(*i as f64),
            Value::F64(f) => Some(*f),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::F64(f) => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bytes this value occupies on the wire.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::I64(_) => 8,
            Value::F64(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Pad(n) => *n as usize,
        }
    }

    /// Stable 64-bit hash — the basis of DHT resourceIDs for tuples.
    pub fn hash64(&self) -> u64 {
        use pier_dht::geom::{hash2, hash_str};
        match self {
            Value::Null => 0x6e75_6c6c,
            Value::Bool(b) => hash2(1, *b as u64),
            Value::I64(i) => hash2(2, *i as u64),
            Value::F64(f) => hash2(3, f.to_bits()),
            Value::Str(s) => hash2(4, hash_str(s)),
            Value::Pad(n) => hash2(5, *n as u64),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Pad(a), Value::Pad(b)) => a == b,
            // Numeric cross-type equality.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash64());
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) | Value::I64(_) | Value::F64(_) => 1,
                Value::Str(_) => 2,
                Value::Pad(_) => 3,
            }
        }
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Pad(a), Value::Pad(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(i) => write!(f, "{i}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Pad(n) => write!(f, "<pad:{n}>"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_equality_and_order() {
        assert_eq!(Value::I64(3), Value::F64(3.0));
        assert!(Value::I64(2) < Value::F64(2.5));
        assert!(Value::F64(2.5) < Value::I64(3));
        assert_ne!(Value::I64(1), Value::str("1"));
    }

    #[test]
    fn nulls_sort_first_and_are_falsy() {
        assert!(Value::Null < Value::I64(i64::MIN));
        assert!(!Value::Null.truthy());
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn hash_matches_equality_for_same_type() {
        assert_eq!(Value::I64(7).hash64(), Value::I64(7).hash64());
        assert_ne!(Value::I64(7).hash64(), Value::I64(8).hash64());
        assert_eq!(Value::str("ab").hash64(), Value::str("ab").hash64());
    }

    #[test]
    fn pad_has_wire_size_but_small_memory() {
        let v = Value::Pad(1024);
        assert_eq!(v.wire_size(), 1024);
        assert!(std::mem::size_of::<Value>() <= 24);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::I64(0).wire_size(), 8);
        assert_eq!(Value::str("abc").wire_size(), 7);
        assert_eq!(Value::Null.wire_size(), 1);
    }
}

//! Reference (centralized) query evaluation and result-quality metrics.
//!
//! PIER gives best-effort answers under dilated-reachable-snapshot
//! semantics (§3.3.1) and the paper measures quality as *recall* against
//! the reachable snapshot (§5.6). This module computes the ground truth
//! by evaluating the same query descriptor centrally over the published
//! tables, plus multiset recall/precision between expected and actual.

use std::collections::HashMap;

use crate::plan::{AggSpec, JoinSpec, QueryOp};
use crate::tuple::Tuple;
use crate::value::Value;

/// Centralized nested-loop evaluation of a join spec over full tables.
pub fn reference_join(j: &JoinSpec, left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::new();
    let jl = j.left.join_col.expect("join col");
    let jr = j.right.join_col.expect("join col");
    for l in left {
        if !j.left.pred.as_ref().map_or(true, |p| p.matches(l)) {
            continue;
        }
        for r in right {
            if l.get(jl) != r.get(jr) {
                continue;
            }
            if !j.right.pred.as_ref().map_or(true, |p| p.matches(r)) {
                continue;
            }
            let joined = l.concat(r);
            if !j.post_pred.as_ref().map_or(true, |p| p.matches(&joined)) {
                continue;
            }
            out.push(Tuple::new(
                j.project.iter().map(|e| e.eval(&joined)).collect(),
            ));
        }
    }
    out
}

/// Centralized evaluation of grouped aggregation over input rows.
pub fn reference_agg(agg: &AggSpec, rows: &[Tuple]) -> Vec<Tuple> {
    let mut groups: HashMap<Vec<Value>, crate::agg::GroupAccs> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = agg.group_cols.iter().map(|&c| row.get(c).clone()).collect();
        groups
            .entry(key)
            .or_insert_with(|| crate::agg::GroupAccs::new(&agg.aggs))
            .update(&agg.aggs, row);
    }
    let mut out = Vec::new();
    for (key, accs) in groups {
        let virt = accs.output_row(&key);
        if agg.having.as_ref().map_or(true, |h| h.matches(&virt)) {
            out.push(Tuple::new(
                agg.output.iter().map(|e| e.eval(&virt)).collect(),
            ));
        }
    }
    out
}

/// Centralized evaluation of a whole query op over named base tables.
pub fn reference_eval(op: &QueryOp, tables: &HashMap<String, Vec<Tuple>>) -> Vec<Tuple> {
    let empty: Vec<Tuple> = Vec::new();
    let get = |name: &str| tables.get(name).unwrap_or(&empty);
    match op {
        QueryOp::Scan { scan, project } => get(&scan.table)
            .iter()
            .filter(|t| scan.pred.as_ref().map_or(true, |p| p.matches(t)))
            .map(|t| Tuple::new(project.iter().map(|e| e.eval(t)).collect()))
            .collect(),
        QueryOp::Join(j) => reference_join(j, get(&j.left.table), get(&j.right.table)),
        QueryOp::Agg { scan, agg } => {
            let rows: Vec<Tuple> = get(&scan.table)
                .iter()
                .filter(|t| scan.pred.as_ref().map_or(true, |p| p.matches(t)))
                .cloned()
                .collect();
            reference_agg(agg, &rows)
        }
        QueryOp::JoinAgg { join, agg } => {
            let joined = reference_join(join, get(&join.left.table), get(&join.right.table));
            reference_agg(agg, &joined)
        }
    }
}

/// Multiset counts of tuples (display form as key: Values are hashable
/// but a canonical string keeps diagnostics readable).
fn counts(rows: &[Tuple]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r.to_string()).or_insert(0) += 1;
    }
    m
}

/// Multiset recall: |expected ∩ actual| / |expected| (1.0 when both
/// empty). The paper's quality metric (§2.2a, §5.6).
pub fn recall(expected: &[Tuple], actual: &[Tuple]) -> f64 {
    if expected.is_empty() {
        return 1.0;
    }
    let exp = counts(expected);
    let act = counts(actual);
    let hit: usize = exp
        .iter()
        .map(|(k, &n)| n.min(act.get(k).copied().unwrap_or(0)))
        .sum();
    hit as f64 / expected.len() as f64
}

/// Multiset precision: |expected ∩ actual| / |actual|.
pub fn precision(expected: &[Tuple], actual: &[Tuple]) -> f64 {
    if actual.is_empty() {
        return 1.0;
    }
    let exp = counts(expected);
    let act = counts(actual);
    let hit: usize = act
        .iter()
        .map(|(k, &n)| n.min(exp.get(k).copied().unwrap_or(0)))
        .sum();
    hit as f64 / actual.len() as f64
}

/// Exact multiset equality of result sets (order-insensitive).
pub fn same_multiset(a: &[Tuple], b: &[Tuple]) -> bool {
    a.len() == b.len() && counts(a) == counts(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::{JoinStrategy, ScanSpec};
    use crate::tuple;

    #[test]
    fn reference_join_applies_all_predicates() {
        let left = ScanSpec::new("L", 2, 0)
            .with_pred(Expr::gt(Expr::col(1), Expr::lit(0i64)))
            .with_join_col(1);
        let right = ScanSpec::new("R", 2, 0).with_join_col(0);
        let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
        j.project = vec![Expr::col(0), Expr::col(3)];
        let l = vec![
            tuple![1i64, 10i64],
            tuple![2i64, -5i64],
            tuple![3i64, 10i64],
        ];
        let r = vec![tuple![10i64, 100i64], tuple![7i64, 200i64]];
        let out = reference_join(&j, &l, &r);
        assert!(same_multiset(
            &out,
            &[tuple![1i64, 100i64], tuple![3i64, 100i64]]
        ));
    }

    #[test]
    fn recall_and_precision_multiset_semantics() {
        let exp = vec![tuple![1i64], tuple![1i64], tuple![2i64]];
        let act = vec![tuple![1i64], tuple![2i64], tuple![9i64]];
        assert!((recall(&exp, &act) - 2.0 / 3.0).abs() < 1e-9);
        assert!((precision(&exp, &act) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(recall(&[], &act), 1.0);
        assert_eq!(precision(&exp, &[]), 1.0);
    }

    #[test]
    fn same_multiset_detects_duplicates() {
        let a = vec![tuple![1i64], tuple![1i64]];
        let b = vec![tuple![1i64]];
        assert!(!same_multiset(&a, &b));
        let c = vec![tuple![1i64], tuple![1i64]];
        assert!(same_multiset(&a, &c));
    }
}

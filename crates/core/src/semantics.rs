//! Reference (centralized) query evaluation and result-quality metrics.
//!
//! PIER gives best-effort answers under dilated-reachable-snapshot
//! semantics (§3.3.1) and the paper measures quality as *recall* against
//! the reachable snapshot (§5.6). This module computes the ground truth
//! by evaluating the same query descriptor centrally over the published
//! tables, plus multiset recall/precision between expected and actual.

use std::collections::HashMap;

use crate::plan::{AggSpec, JoinSpec, MultiJoinSpec, PipelineSchema, QueryOp};
use crate::tuple::Tuple;
use crate::value::Value;

/// Centralized nested-loop evaluation of a join spec over full tables.
pub fn reference_join(j: &JoinSpec, left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::new();
    let jl = j.left.join_col.expect("join col");
    let jr = j.right.join_col.expect("join col");
    for l in left {
        if !j.left.pred.as_ref().is_none_or(|p| p.matches(l)) {
            continue;
        }
        for r in right {
            if l.get(jl) != r.get(jr) {
                continue;
            }
            if !j.right.pred.as_ref().is_none_or(|p| p.matches(r)) {
                continue;
            }
            let joined = l.concat(r);
            if !j.post_pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                continue;
            }
            out.push(Tuple::new(
                j.project.iter().map(|e| e.eval(&joined)).collect(),
            ));
        }
    }
    out
}

/// Centralized left-deep evaluation of a multi-way join pipeline over
/// named base tables: stage by stage, exactly mirroring the distributed
/// dataflow's concatenation order, predicates, and final projection.
pub fn reference_multijoin(m: &MultiJoinSpec, tables: &HashMap<String, Vec<Tuple>>) -> Vec<Tuple> {
    let empty: Vec<Tuple> = Vec::new();
    let get = |name: &str| tables.get(name).unwrap_or(&empty);
    let mut acc: Vec<Tuple> = get(&m.base.table)
        .iter()
        .filter(|t| m.base.pred.as_ref().is_none_or(|p| p.matches(t)))
        .cloned()
        .collect();
    for st in &m.stages {
        let jr = st.right.join_col.expect("stage join col");
        let right: Vec<&Tuple> = get(&st.right.table)
            .iter()
            .filter(|t| st.right.pred.as_ref().is_none_or(|p| p.matches(t)))
            .collect();
        let mut next = Vec::new();
        for a in &acc {
            for r in &right {
                if a.get(st.left_col) != r.get(jr) {
                    continue;
                }
                let joined = a.concat(r);
                if st.stage_pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    next.push(joined);
                }
            }
        }
        acc = next;
    }
    acc.iter()
        .map(|t| Tuple::new(m.project.iter().map(|e| e.eval(t)).collect()))
        .collect()
}

/// Centralized evaluation of a multi-way pipeline *through the pruned
/// dataflow*: tuples are projected onto the same per-edge
/// [`PipelineSchema`] layouts the distributed executor ships, and every
/// predicate and output expression is evaluated in its remapped form.
/// Agreement with [`reference_multijoin`] (which works over full-width
/// concatenations) certifies that projection pushdown preserves the
/// result multiset — the invariant the proptests pin.
pub fn reference_pipeline(m: &MultiJoinSpec, tables: &HashMap<String, Vec<Tuple>>) -> Vec<Tuple> {
    let v = PipelineSchema::build(m, true);
    let empty: Vec<Tuple> = Vec::new();
    let get = |name: &str| tables.get(name).unwrap_or(&empty);
    // Base rehash: scan predicate on the full row, then project.
    let mut acc: Vec<Tuple> = get(&m.base.table)
        .iter()
        .filter(|t| m.base.pred.as_ref().is_none_or(|p| p.matches(t)))
        .map(|t| t.project(&v.keep_base))
        .collect();
    for (k, st) in m.stages.iter().enumerate() {
        let view = &v.stages[k];
        let jr = view.join_idx_right;
        let jl = view.join_idx_left;
        let right: Vec<Tuple> = get(&st.right.table)
            .iter()
            .filter(|t| st.right.pred.as_ref().is_none_or(|p| p.matches(t)))
            .map(|t| t.project(&view.keep_right))
            .collect();
        let mut next = Vec::new();
        for a in &acc {
            for r in &right {
                if a.get(jl) != r.get(jr) {
                    continue;
                }
                let joined = a.concat(r);
                if view.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    next.push(joined.project(&view.emit));
                }
            }
        }
        acc = next;
    }
    acc.iter()
        .map(|t| Tuple::new(v.project.iter().map(|e| e.eval(t)).collect()))
        .collect()
}

/// Centralized evaluation of grouped aggregation over input rows.
pub fn reference_agg(agg: &AggSpec, rows: &[Tuple]) -> Vec<Tuple> {
    let mut groups: HashMap<Vec<Value>, crate::agg::GroupAccs> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = agg.group_cols.iter().map(|&c| row.get(c).clone()).collect();
        groups
            .entry(key)
            .or_insert_with(|| crate::agg::GroupAccs::new(&agg.aggs))
            .update(&agg.aggs, row);
    }
    let mut out = Vec::new();
    for (key, accs) in groups {
        let virt = accs.output_row(&key);
        if agg.having.as_ref().is_none_or(|h| h.matches(&virt)) {
            out.push(Tuple::new(
                agg.output.iter().map(|e| e.eval(&virt)).collect(),
            ));
        }
    }
    out
}

/// Centralized evaluation of a whole query op over named base tables.
pub fn reference_eval(op: &QueryOp, tables: &HashMap<String, Vec<Tuple>>) -> Vec<Tuple> {
    let empty: Vec<Tuple> = Vec::new();
    let get = |name: &str| tables.get(name).unwrap_or(&empty);
    match op {
        QueryOp::Scan { scan, project } => get(&scan.table)
            .iter()
            .filter(|t| scan.pred.as_ref().is_none_or(|p| p.matches(t)))
            .map(|t| Tuple::new(project.iter().map(|e| e.eval(t)).collect()))
            .collect(),
        QueryOp::Join(j) => reference_join(j, get(&j.left.table), get(&j.right.table)),
        QueryOp::MultiJoin(m) => reference_multijoin(m, tables),
        QueryOp::MultiJoinAgg { join, agg } => {
            reference_agg(agg, &reference_multijoin(join, tables))
        }
        QueryOp::Agg { scan, agg } => {
            let rows: Vec<Tuple> = get(&scan.table)
                .iter()
                .filter(|t| scan.pred.as_ref().is_none_or(|p| p.matches(t)))
                .cloned()
                .collect();
            reference_agg(agg, &rows)
        }
        QueryOp::JoinAgg { join, agg } => {
            let joined = reference_join(join, get(&join.left.table), get(&join.right.table));
            reference_agg(agg, &joined)
        }
    }
}

/// Multiset counts of tuples (display form as key: Values are hashable
/// but a canonical string keeps diagnostics readable).
fn counts(rows: &[Tuple]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r.to_string()).or_insert(0) += 1;
    }
    m
}

/// Multiset recall: |expected ∩ actual| / |expected| (1.0 when both
/// empty). The paper's quality metric (§2.2a, §5.6).
pub fn recall(expected: &[Tuple], actual: &[Tuple]) -> f64 {
    if expected.is_empty() {
        return 1.0;
    }
    let exp = counts(expected);
    let act = counts(actual);
    let hit: usize = exp
        .iter()
        .map(|(k, &n)| n.min(act.get(k).copied().unwrap_or(0)))
        .sum();
    hit as f64 / expected.len() as f64
}

/// Multiset precision: |expected ∩ actual| / |actual|.
pub fn precision(expected: &[Tuple], actual: &[Tuple]) -> f64 {
    if actual.is_empty() {
        return 1.0;
    }
    let exp = counts(expected);
    let act = counts(actual);
    let hit: usize = act
        .iter()
        .map(|(k, &n)| n.min(exp.get(k).copied().unwrap_or(0)))
        .sum();
    hit as f64 / actual.len() as f64
}

/// Exact multiset equality of result sets (order-insensitive).
pub fn same_multiset(a: &[Tuple], b: &[Tuple]) -> bool {
    a.len() == b.len() && counts(a) == counts(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::{JoinStrategy, ScanSpec};
    use crate::tuple;
    use std::collections::HashMap;

    #[test]
    fn reference_join_applies_all_predicates() {
        let left = ScanSpec::new("L", 2, 0)
            .with_pred(Expr::gt(Expr::col(1), Expr::lit(0i64)))
            .with_join_col(1);
        let right = ScanSpec::new("R", 2, 0).with_join_col(0);
        let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
        j.project = vec![Expr::col(0), Expr::col(3)];
        let l = vec![
            tuple![1i64, 10i64],
            tuple![2i64, -5i64],
            tuple![3i64, 10i64],
        ];
        let r = vec![tuple![10i64, 100i64], tuple![7i64, 200i64]];
        let out = reference_join(&j, &l, &r);
        assert!(same_multiset(
            &out,
            &[tuple![1i64, 100i64], tuple![3i64, 100i64]]
        ));
    }

    #[test]
    fn reference_multijoin_chains_three_tables() {
        use crate::plan::{JoinStage, MultiJoinSpec};
        // A(k, x) ⨝ B(x, y) on A.x = B.x, then ⨝ C(y, v) on B.y = C.y,
        // with a stage predicate on C.v.
        let base = ScanSpec::new("A", 2, 0);
        let s1 = JoinStage {
            right: ScanSpec::new("B", 2, 0).with_join_col(0),
            left_col: 1,
            stage_pred: None,
        };
        let s2 = JoinStage {
            right: ScanSpec::new("C", 2, 0).with_join_col(0),
            left_col: 3, // B.y within A ++ B
            stage_pred: Some(Expr::gt(Expr::col(5), Expr::lit(10i64))),
        };
        let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
        m.project = vec![Expr::col(0), Expr::col(5)]; // A.k, C.v
        let mut tables = HashMap::new();
        tables.insert(
            "A".to_string(),
            vec![tuple![1i64, 7i64], tuple![2i64, 8i64], tuple![3i64, 7i64]],
        );
        tables.insert(
            "B".to_string(),
            vec![tuple![7i64, 70i64], tuple![8i64, 80i64]],
        );
        tables.insert(
            "C".to_string(),
            vec![tuple![70i64, 100i64], tuple![80i64, 5i64]],
        );
        let out = reference_multijoin(&m, &tables);
        // A(2) joins B(8) joins C(80) but v = 5 fails the stage pred.
        assert!(same_multiset(
            &out,
            &[tuple![1i64, 100i64], tuple![3i64, 100i64]]
        ));
        // And through the QueryOp wrapper.
        let via_op = reference_eval(&crate::plan::QueryOp::MultiJoin(m.clone()), &tables);
        assert!(same_multiset(&out, &via_op));
        // The pruned dataflow agrees with the full-width evaluation.
        let pruned = reference_pipeline(&m, &tables);
        assert!(same_multiset(&out, &pruned));
    }

    #[test]
    fn recall_and_precision_multiset_semantics() {
        let exp = vec![tuple![1i64], tuple![1i64], tuple![2i64]];
        let act = vec![tuple![1i64], tuple![2i64], tuple![9i64]];
        assert!((recall(&exp, &act) - 2.0 / 3.0).abs() < 1e-9);
        assert!((precision(&exp, &act) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(recall(&[], &act), 1.0);
        assert_eq!(precision(&exp, &[]), 1.0);
    }

    #[test]
    fn same_multiset_detects_duplicates() {
        let a = vec![tuple![1i64], tuple![1i64]];
        let b = vec![tuple![1i64]];
        assert!(!same_multiset(&a, &b));
        let c = vec![tuple![1i64], tuple![1i64]];
        assert!(same_multiset(&a, &c));
    }
}

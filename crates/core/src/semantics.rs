//! Reference (centralized) query evaluation and result-quality metrics.
//!
//! PIER gives best-effort answers under dilated-reachable-snapshot
//! semantics (§3.3.1) and the paper measures quality as *recall* against
//! the reachable snapshot (§5.6). This module computes the ground truth
//! by evaluating the same query descriptor centrally over the published
//! tables, plus multiset recall/precision between expected and actual.

use std::collections::HashMap;

use pier_simnet::time::{Dur, Time};

use crate::plan::{AggSpec, JoinSpec, MultiJoinSpec, PipelineSchema, QueryOp};
use crate::tuple::Tuple;
use crate::value::Value;

/// Rows of one table with their publication instants (relative to the
/// query's submission) — the input shape of the windowed and per-epoch
/// oracles.
pub type TimedRows = Vec<(Time, Tuple)>;

/// Centralized nested-loop evaluation of a join spec over full tables.
pub fn reference_join(j: &JoinSpec, left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::new();
    let jl = j.left.join_col.expect("join col");
    let jr = j.right.join_col.expect("join col");
    for l in left {
        if !j.left.pred.as_ref().is_none_or(|p| p.matches(l)) {
            continue;
        }
        for r in right {
            if l.get(jl) != r.get(jr) {
                continue;
            }
            if !j.right.pred.as_ref().is_none_or(|p| p.matches(r)) {
                continue;
            }
            let joined = l.concat(r);
            if !j.post_pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                continue;
            }
            out.push(Tuple::new(
                j.project.iter().map(|e| e.eval(&joined)).collect(),
            ));
        }
    }
    out
}

/// Centralized left-deep evaluation of a multi-way join pipeline over
/// named base tables: stage by stage, exactly mirroring the distributed
/// dataflow's concatenation order, predicates, and final projection.
pub fn reference_multijoin(m: &MultiJoinSpec, tables: &HashMap<String, Vec<Tuple>>) -> Vec<Tuple> {
    let empty: Vec<Tuple> = Vec::new();
    let get = |name: &str| tables.get(name).unwrap_or(&empty);
    let mut acc: Vec<Tuple> = get(&m.base.table)
        .iter()
        .filter(|t| m.base.pred.as_ref().is_none_or(|p| p.matches(t)))
        .cloned()
        .collect();
    for st in &m.stages {
        let jr = st.right.join_col.expect("stage join col");
        let right: Vec<&Tuple> = get(&st.right.table)
            .iter()
            .filter(|t| st.right.pred.as_ref().is_none_or(|p| p.matches(t)))
            .collect();
        let mut next = Vec::new();
        for a in &acc {
            for r in &right {
                if a.get(st.left_col) != r.get(jr) {
                    continue;
                }
                let joined = a.concat(r);
                if st.stage_pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    next.push(joined);
                }
            }
        }
        acc = next;
    }
    acc.iter()
        .map(|t| Tuple::new(m.project.iter().map(|e| e.eval(t)).collect()))
        .collect()
}

/// Centralized evaluation of a multi-way pipeline *through the pruned
/// dataflow*: tuples are projected onto the same per-edge
/// [`PipelineSchema`] layouts the distributed executor ships, and every
/// predicate and output expression is evaluated in its remapped form.
/// Agreement with [`reference_multijoin`] (which works over full-width
/// concatenations) certifies that projection pushdown preserves the
/// result multiset — the invariant the proptests pin.
pub fn reference_pipeline(m: &MultiJoinSpec, tables: &HashMap<String, Vec<Tuple>>) -> Vec<Tuple> {
    let v = PipelineSchema::build(m, true);
    let empty: Vec<Tuple> = Vec::new();
    let get = |name: &str| tables.get(name).unwrap_or(&empty);
    // Base rehash: scan predicate on the full row, then project.
    let mut acc: Vec<Tuple> = get(&m.base.table)
        .iter()
        .filter(|t| m.base.pred.as_ref().is_none_or(|p| p.matches(t)))
        .map(|t| t.project(&v.keep_base))
        .collect();
    for (k, st) in m.stages.iter().enumerate() {
        let view = &v.stages[k];
        let jr = view.join_idx_right;
        let jl = view.join_idx_left;
        let right: Vec<Tuple> = get(&st.right.table)
            .iter()
            .filter(|t| st.right.pred.as_ref().is_none_or(|p| p.matches(t)))
            .map(|t| t.project(&view.keep_right))
            .collect();
        let mut next = Vec::new();
        for a in &acc {
            for r in &right {
                if a.get(jl) != r.get(jr) {
                    continue;
                }
                let joined = a.concat(r);
                if view.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    next.push(joined.project(&view.emit));
                }
            }
        }
        acc = next;
    }
    acc.iter()
        .map(|t| Tuple::new(v.project.iter().map(|e| e.eval(t)).collect()))
        .collect()
}

/// Centralized evaluation of a continuous *windowed* binary equi-join:
/// a pair joins iff the two rows were ever simultaneously inside the
/// window — the later arrival probes while the earlier one's rehashed
/// soft state (lifetime = window) is still live, i.e.
/// `|t_left − t_right| < window`. This is the engine's expiry-correct
/// probe rule, stated declaratively.
pub fn reference_windowed_join(
    j: &JoinSpec,
    left: &TimedRows,
    right: &TimedRows,
    window: Dur,
) -> Vec<Tuple> {
    let mut out = Vec::new();
    let jl = j.left.join_col.expect("join col");
    let jr = j.right.join_col.expect("join col");
    for (tl, l) in left {
        if !j.left.pred.as_ref().is_none_or(|p| p.matches(l)) {
            continue;
        }
        for (tr, r) in right {
            if l.get(jl) != r.get(jr) {
                continue;
            }
            if !j.right.pred.as_ref().is_none_or(|p| p.matches(r)) {
                continue;
            }
            let (early, late) = if tl <= tr { (*tl, *tr) } else { (*tr, *tl) };
            if late.since(early) >= window {
                continue; // never co-live inside the window
            }
            let joined = l.concat(r);
            if !j.post_pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                continue;
            }
            out.push(Tuple::new(
                j.project.iter().map(|e| e.eval(&joined)).collect(),
            ));
        }
    }
    out
}

/// Centralized evaluation of a continuous *windowed* multi-way
/// pipeline. A result exists iff every constituent was simultaneously
/// inside the window, i.e. `max(t) − min(t) < window`: intermediates
/// inherit the shortest-lived constituent's remaining lifetime, so the
/// pairwise rule composes across stages into exactly this span check.
pub fn reference_windowed_multijoin(
    m: &MultiJoinSpec,
    tables: &HashMap<String, TimedRows>,
    window: Dur,
) -> Vec<Tuple> {
    let empty: TimedRows = Vec::new();
    let get = |name: &str| tables.get(name).unwrap_or(&empty);
    // Accumulated intermediates carry their constituents' time span.
    let mut acc: Vec<(Time, Time, Tuple)> = get(&m.base.table)
        .iter()
        .filter(|(_, t)| m.base.pred.as_ref().is_none_or(|p| p.matches(t)))
        .map(|(at, t)| (*at, *at, t.clone()))
        .collect();
    for st in &m.stages {
        let jr = st.right.join_col.expect("stage join col");
        let right: Vec<&(Time, Tuple)> = get(&st.right.table)
            .iter()
            .filter(|(_, t)| st.right.pred.as_ref().is_none_or(|p| p.matches(t)))
            .collect();
        let mut next = Vec::new();
        for (min_t, max_t, a) in &acc {
            for (rt, r) in &right {
                if a.get(st.left_col) != r.get(jr) {
                    continue;
                }
                let (lo, hi) = ((*min_t).min(*rt), (*max_t).max(*rt));
                if hi.since(lo) >= window {
                    continue;
                }
                let joined = a.concat(r);
                if st.stage_pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    next.push((lo, hi, joined));
                }
            }
        }
        acc = next;
    }
    acc.iter()
        .map(|(_, _, t)| Tuple::new(m.project.iter().map(|e| e.eval(t)).collect()))
        .collect()
}

/// Per-epoch oracle for epoch-driven continuous aggregation: epoch `k`
/// (k = 0, 1, …) reports the query evaluated over every row published
/// at or before `k * epoch` that has not yet aged out of the sliding
/// window (`publish + window > k * epoch`; no window means a running
/// aggregate over everything seen so far). The engine emits epoch `k`'s
/// groups about half an epoch after the boundary, so results bucketed
/// by `floor(arrival / epoch)` line up with this oracle's epochs.
pub fn reference_epochs(
    op: &QueryOp,
    tables: &HashMap<String, TimedRows>,
    window: Option<Dur>,
    epoch: Dur,
    n_epochs: usize,
) -> Vec<Vec<Tuple>> {
    let instants: Vec<Time> = (0..n_epochs)
        .map(|k| Time::ZERO + epoch.saturating_mul(k as u64))
        .collect();
    reference_epochs_at(op, tables, window, &instants)
}

/// [`reference_epochs`] at arbitrary evaluation instants — the oracle of
/// a query that is only *live* for part of a run: pass the epoch
/// boundaries of its own install→uninstall span (row times relative to
/// its install), and nothing past its teardown is ever expected. This
/// is what restricts a multi-tenant workload's ground truth to each
/// standing query's lifetime.
pub fn reference_epochs_at(
    op: &QueryOp,
    tables: &HashMap<String, TimedRows>,
    window: Option<Dur>,
    instants: &[Time],
) -> Vec<Vec<Tuple>> {
    instants
        .iter()
        .map(|&at| {
            let snap: HashMap<String, Vec<Tuple>> = tables
                .iter()
                .map(|(name, rows)| {
                    let live: Vec<Tuple> = rows
                        .iter()
                        .filter(|(t, _)| *t <= at && window.is_none_or(|w| *t + w > at))
                        .map(|(_, r)| r.clone())
                        .collect();
                    (name.clone(), live)
                })
                .collect();
            reference_eval(op, &snap)
        })
        .collect()
}

/// Centralized evaluation of grouped aggregation over input rows.
pub fn reference_agg(agg: &AggSpec, rows: &[Tuple]) -> Vec<Tuple> {
    let mut groups: HashMap<Vec<Value>, crate::agg::GroupAccs> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = agg.group_cols.iter().map(|&c| row.get(c).clone()).collect();
        groups
            .entry(key)
            .or_insert_with(|| crate::agg::GroupAccs::new(&agg.aggs))
            .update(&agg.aggs, row);
    }
    let mut out = Vec::new();
    for (key, accs) in groups {
        let virt = accs.output_row(&key);
        if agg.having.as_ref().is_none_or(|h| h.matches(&virt)) {
            out.push(Tuple::new(
                agg.output.iter().map(|e| e.eval(&virt)).collect(),
            ));
        }
    }
    out
}

/// Centralized evaluation of a whole query op over named base tables.
pub fn reference_eval(op: &QueryOp, tables: &HashMap<String, Vec<Tuple>>) -> Vec<Tuple> {
    let empty: Vec<Tuple> = Vec::new();
    let get = |name: &str| tables.get(name).unwrap_or(&empty);
    match op {
        QueryOp::Scan { scan, project } => get(&scan.table)
            .iter()
            .filter(|t| scan.pred.as_ref().is_none_or(|p| p.matches(t)))
            .map(|t| Tuple::new(project.iter().map(|e| e.eval(t)).collect()))
            .collect(),
        QueryOp::Join(j) => reference_join(j, get(&j.left.table), get(&j.right.table)),
        QueryOp::MultiJoin(m) => reference_multijoin(m, tables),
        QueryOp::MultiJoinAgg { join, agg } => {
            reference_agg(agg, &reference_multijoin(join, tables))
        }
        QueryOp::Agg { scan, agg } => {
            let rows: Vec<Tuple> = get(&scan.table)
                .iter()
                .filter(|t| scan.pred.as_ref().is_none_or(|p| p.matches(t)))
                .cloned()
                .collect();
            reference_agg(agg, &rows)
        }
        QueryOp::JoinAgg { join, agg } => {
            let joined = reference_join(join, get(&join.left.table), get(&join.right.table));
            reference_agg(agg, &joined)
        }
    }
}

/// Multiset counts of tuples (display form as key: Values are hashable
/// but a canonical string keeps diagnostics readable).
fn counts(rows: &[Tuple]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for r in rows {
        *m.entry(r.to_string()).or_insert(0) += 1;
    }
    m
}

/// Multiset recall: |expected ∩ actual| / |expected| (1.0 when both
/// empty). The paper's quality metric (§2.2a, §5.6).
pub fn recall(expected: &[Tuple], actual: &[Tuple]) -> f64 {
    if expected.is_empty() {
        return 1.0;
    }
    let exp = counts(expected);
    let act = counts(actual);
    let hit: usize = exp
        .iter()
        .map(|(k, &n)| n.min(act.get(k).copied().unwrap_or(0)))
        .sum();
    hit as f64 / expected.len() as f64
}

/// Multiset precision: |expected ∩ actual| / |actual|.
pub fn precision(expected: &[Tuple], actual: &[Tuple]) -> f64 {
    if actual.is_empty() {
        return 1.0;
    }
    let exp = counts(expected);
    let act = counts(actual);
    let hit: usize = act
        .iter()
        .map(|(k, &n)| n.min(exp.get(k).copied().unwrap_or(0)))
        .sum();
    hit as f64 / actual.len() as f64
}

/// Exact multiset equality of result sets (order-insensitive).
pub fn same_multiset(a: &[Tuple], b: &[Tuple]) -> bool {
    a.len() == b.len() && counts(a) == counts(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::{JoinStrategy, ScanSpec};
    use crate::tuple;
    use std::collections::HashMap;

    #[test]
    fn reference_join_applies_all_predicates() {
        let left = ScanSpec::new("L", 2, 0)
            .with_pred(Expr::gt(Expr::col(1), Expr::lit(0i64)))
            .with_join_col(1);
        let right = ScanSpec::new("R", 2, 0).with_join_col(0);
        let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
        j.project = vec![Expr::col(0), Expr::col(3)];
        let l = vec![
            tuple![1i64, 10i64],
            tuple![2i64, -5i64],
            tuple![3i64, 10i64],
        ];
        let r = vec![tuple![10i64, 100i64], tuple![7i64, 200i64]];
        let out = reference_join(&j, &l, &r);
        assert!(same_multiset(
            &out,
            &[tuple![1i64, 100i64], tuple![3i64, 100i64]]
        ));
    }

    #[test]
    fn reference_multijoin_chains_three_tables() {
        use crate::plan::{JoinStage, MultiJoinSpec};
        // A(k, x) ⨝ B(x, y) on A.x = B.x, then ⨝ C(y, v) on B.y = C.y,
        // with a stage predicate on C.v.
        let base = ScanSpec::new("A", 2, 0);
        let s1 = JoinStage {
            right: ScanSpec::new("B", 2, 0).with_join_col(0),
            left_col: 1,
            stage_pred: None,
        };
        let s2 = JoinStage {
            right: ScanSpec::new("C", 2, 0).with_join_col(0),
            left_col: 3, // B.y within A ++ B
            stage_pred: Some(Expr::gt(Expr::col(5), Expr::lit(10i64))),
        };
        let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
        m.project = vec![Expr::col(0), Expr::col(5)]; // A.k, C.v
        let mut tables = HashMap::new();
        tables.insert(
            "A".to_string(),
            vec![tuple![1i64, 7i64], tuple![2i64, 8i64], tuple![3i64, 7i64]],
        );
        tables.insert(
            "B".to_string(),
            vec![tuple![7i64, 70i64], tuple![8i64, 80i64]],
        );
        tables.insert(
            "C".to_string(),
            vec![tuple![70i64, 100i64], tuple![80i64, 5i64]],
        );
        let out = reference_multijoin(&m, &tables);
        // A(2) joins B(8) joins C(80) but v = 5 fails the stage pred.
        assert!(same_multiset(
            &out,
            &[tuple![1i64, 100i64], tuple![3i64, 100i64]]
        ));
        // And through the QueryOp wrapper.
        let via_op = reference_eval(&crate::plan::QueryOp::MultiJoin(m.clone()), &tables);
        assert!(same_multiset(&out, &via_op));
        // The pruned dataflow agrees with the full-width evaluation.
        let pruned = reference_pipeline(&m, &tables);
        assert!(same_multiset(&out, &pruned));
    }

    #[test]
    fn windowed_join_requires_co_live_state() {
        let left = ScanSpec::new("L", 2, 0).with_join_col(1);
        let right = ScanSpec::new("R", 2, 0).with_join_col(1);
        let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
        j.project = vec![Expr::col(0), Expr::col(2)];
        let at = |s: u64| pier_simnet::time::Time(s * 1_000_000);
        let l = vec![(at(0), tuple![1i64, 7i64]), (at(100), tuple![2i64, 7i64])];
        let r = vec![(at(20), tuple![3i64, 7i64]), (at(130), tuple![4i64, 7i64])];
        let w = pier_simnet::time::Dur::from_secs(40);
        let out = reference_windowed_join(&j, &l, &r, w);
        // (1,3): gap 20 < 40 ✓; (1,4): 130 ✗; (2,3): 80 ✗; (2,4): 30 ✓.
        assert!(same_multiset(
            &out,
            &[tuple![1i64, 3i64], tuple![2i64, 4i64]]
        ));
    }

    #[test]
    fn windowed_multijoin_bounds_the_constituent_span() {
        use crate::plan::{JoinStage, MultiJoinSpec};
        let base = ScanSpec::new("A", 2, 0);
        let s1 = JoinStage {
            right: ScanSpec::new("B", 2, 0).with_join_col(0),
            left_col: 1,
            stage_pred: None,
        };
        let s2 = JoinStage {
            right: ScanSpec::new("C", 2, 0).with_join_col(0),
            left_col: 3,
            stage_pred: None,
        };
        let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
        m.project = vec![Expr::col(0), Expr::col(5)];
        let at = |s: u64| pier_simnet::time::Time(s * 1_000_000);
        let mut tables = HashMap::new();
        tables.insert("A".to_string(), vec![(at(0), tuple![1i64, 7i64])]);
        tables.insert("B".to_string(), vec![(at(30), tuple![7i64, 9i64])]);
        tables.insert(
            "C".to_string(),
            vec![
                (at(50), tuple![9i64, 100i64]),
                (at(70), tuple![9i64, 200i64]),
            ],
        );
        let w = pier_simnet::time::Dur::from_secs(60);
        // A@0, B@30, C@50 span 50 < 60 ✓; with C@70 the span is 70 ✗ —
        // even though B@30 and C@70 pairwise miss co-living with A only.
        let out = reference_windowed_multijoin(&m, &tables, w);
        assert!(same_multiset(&out, &[tuple![1i64, 100i64]]));
    }

    #[test]
    fn epoch_oracle_slides_the_window() {
        use crate::plan::{AggCall, AggFunc};
        let scan = ScanSpec::new("F", 2, 0);
        let agg = AggSpec::new(
            vec![1],
            vec![AggCall {
                func: AggFunc::Count,
                arg: None,
            }],
        );
        let op = QueryOp::Agg { scan, agg };
        let at = |s: u64| pier_simnet::time::Time(s * 1_000_000);
        let mut tables = HashMap::new();
        tables.insert(
            "F".to_string(),
            vec![
                (at(0), tuple![1i64, 5i64]),
                (at(25), tuple![2i64, 5i64]),
                (at(45), tuple![3i64, 5i64]),
            ],
        );
        let e = pier_simnet::time::Dur::from_secs(20);
        let w = pier_simnet::time::Dur::from_secs(50);
        // Epochs at t = 0, 20, 40, 60, 80.
        let per_epoch = reference_epochs(&op, &tables, Some(w), e, 5);
        let counts: Vec<i64> = per_epoch
            .iter()
            .map(|rows| rows.first().map_or(0, |r| r.get(1).as_i64().unwrap()))
            .collect();
        // t=0: {0}; t=20: {0}; t=40: {0,25}; t=60: {25,45} (0 aged out);
        // t=80: {45}.
        assert_eq!(counts, vec![1, 1, 2, 2, 1]);
        // Unwindowed: a running total.
        let running = reference_epochs(&op, &tables, None, e, 5);
        let counts: Vec<i64> = running
            .iter()
            .map(|rows| rows.first().map_or(0, |r| r.get(1).as_i64().unwrap()))
            .collect();
        assert_eq!(counts, vec![1, 1, 2, 3, 3]);
    }

    #[test]
    fn recall_and_precision_multiset_semantics() {
        let exp = vec![tuple![1i64], tuple![1i64], tuple![2i64]];
        let act = vec![tuple![1i64], tuple![2i64], tuple![9i64]];
        assert!((recall(&exp, &act) - 2.0 / 3.0).abs() < 1e-9);
        assert!((precision(&exp, &act) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(recall(&[], &act), 1.0);
        assert_eq!(precision(&exp, &[]), 1.0);
    }

    #[test]
    fn same_multiset_detects_duplicates() {
        let a = vec![tuple![1i64], tuple![1i64]];
        let b = vec![tuple![1i64]];
        assert!(!same_multiset(&a, &b));
        let c = vec![tuple![1i64], tuple![1i64]];
        assert!(same_multiset(&a, &c));
    }
}

//! The declarative top of the stack: SQL in, cost-optimized distributed
//! plan out. Ties together the parser ([`crate::sql`]), the catalog's
//! statistics, and the §5.5.1-based cost model ([`crate::optimizer`]):
//! binary joins get the cheapest of the four §4 strategies for the
//! chosen objective; N-way joins additionally get a greedy cost-based
//! join order ([`crate::optimizer::greedy_join_order`]) before lowering
//! to a left-deep symmetric-hash pipeline. Costing is byte-accurate:
//! the required-columns analysis of the SQL layer combines with the
//! catalog's per-column widths ([`crate::catalog::TableDef::col_widths`])
//! so both the join order and the strategy choice react to *where wide
//! columns get dropped* by projection pushdown.

use crate::catalog::Catalog;
use crate::optimizer::{
    choose_strategy, greedy_join_order, CostParams, JoinStats, Objective, TableCard,
};
use crate::plan::{JoinStrategy, PipelineSchema, QueryOp};
use crate::sql::{lower_parsed, parse_sql, plan_info};

/// Parse `sql` and, for join queries, pick the cheapest strategy (and,
/// for 3+-table queries, the join order) for the objective using catalog
/// statistics and the network cost parameters.
pub fn plan_sql(
    sql: &str,
    catalog: &Catalog,
    net: &CostParams,
    objective: Objective,
) -> Result<QueryOp, String> {
    let parsed = parse_sql(sql, catalog)?;
    if parsed.window.is_some() || parsed.epoch.is_some() || parsed.renew.is_some() {
        // A bare QueryOp has nowhere to carry the window, and an epoch
        // or renewal period only makes sense on a standing descriptor;
        // see `sql::parse_continuous_query` for standing queries.
        return Err(
            "WINDOW/EPOCH/RENEW make a query continuous — use parse_continuous_query".into(),
        );
    }
    let from_order: Vec<usize> = (0..parsed.n_tables()).collect();
    if parsed.n_tables() >= 3 {
        // Greedy cost-based join-order search over catalog cardinalities
        // (pipelines chain symmetric-hash stages; the binary strategy
        // repertoire does not apply). Widths are per-column: a table
        // contributes only its *shipped* columns to intermediates.
        let info = plan_info(&parsed)?;
        let cards: Vec<TableCard> = info
            .table_names
            .iter()
            .zip(&info.has_pred)
            .zip(&info.ship_cols)
            .map(|((name, &has_pred), ship)| {
                let def = catalog
                    .get(name)
                    .ok_or_else(|| format!("no stats for {name}"))?;
                Ok(TableCard {
                    rows: def.stats.rows as f64,
                    bytes: def.stats.avg_tuple_bytes as f64,
                    ship_bytes: def.ship_bytes(ship) as f64,
                    // The classical 1/2 for predicates we cannot derive.
                    sel: if has_pred { 0.5 } else { 1.0 },
                })
            })
            .collect::<Result<_, String>>()?;
        let order = greedy_join_order(&cards, &info.edges);
        return lower_parsed(&parsed, &order, JoinStrategy::SymmetricHash);
    }
    let mut op = lower_parsed(&parsed, &from_order, JoinStrategy::SymmetricHash)?;
    let join = match &mut op {
        QueryOp::Join(j) => Some(j),
        QueryOp::JoinAgg { join, .. } => Some(join),
        _ => None,
    };
    if let Some(j) = join {
        let left = catalog
            .get(&j.left.table)
            .ok_or_else(|| format!("no stats for {}", j.left.table))?;
        let right = catalog
            .get(&j.right.table)
            .ok_or_else(|| format!("no stats for {}", j.right.table))?;
        // Default selectivity estimate for predicates we cannot derive:
        // the classical 1/2 for range predicates, 1 when absent.
        let sel = |has_pred: bool| if has_pred { 0.5 } else { 1.0 };
        // Byte-accurate widths: rehashes ship the pruned projection the
        // executor will actually use; fetches move full base tuples.
        let schema = PipelineSchema::binary(j, true);
        let result_cols = &schema.stages[0].out_globals;
        let la = j.left.arity;
        let (res_l, res_r): (Vec<usize>, Vec<usize>) =
            result_cols.iter().copied().partition(|&c| c < la);
        let res_r: Vec<usize> = res_r.into_iter().map(|c| c - la).collect();
        let stats = JoinStats {
            rows_r: left.stats.rows as f64,
            rows_s: right.stats.rows as f64,
            bytes_r: left.stats.avg_tuple_bytes as f64,
            bytes_s: right.stats.avg_tuple_bytes as f64,
            ship_r: left.ship_bytes(&schema.keep_base) as f64,
            ship_s: right.ship_bytes(&schema.stages[0].keep_right) as f64,
            sel_r: sel(j.left.pred.is_some()),
            sel_s: sel(j.right.pred.is_some()),
            match_r: 0.9,
            bytes_result: (left.ship_bytes(&res_l) + right.ship_bytes(&res_r)) as f64,
            bloom_bytes: (left.stats.rows as f64).max(2048.0),
        };
        j.strategy = choose_strategy(net, &stats, objective);
        // Fetch Matches is only valid when the fetched table is hashed on
        // the join key (resourceID = pkey, §4.1).
        if j.strategy == JoinStrategy::FetchMatches && j.right.join_col != Some(j.right.pkey_col) {
            j.strategy = JoinStrategy::SymmetricHash;
        }
    }
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableStats;

    const WORKLOAD_SQL: &str = "SELECT R.pkey, S.pkey, R.pad FROM R, S \
         WHERE R.num1 = S.pkey AND R.num2 > 50 AND S.num2 > 50";

    fn catalog() -> Catalog {
        let mut c = Catalog::workload();
        c.set_stats(
            "R",
            TableStats {
                rows: 100_000,
                avg_tuple_bytes: 1024,
            },
        );
        c.set_stats(
            "S",
            TableStats {
                rows: 10_000,
                avg_tuple_bytes: 100,
            },
        );
        c
    }

    #[test]
    fn latency_objective_picks_symmetric_hash() {
        let op = plan_sql(
            WORKLOAD_SQL,
            &catalog(),
            &CostParams::paper_baseline(1024.0),
            Objective::Latency,
        )
        .unwrap();
        let QueryOp::Join(j) = op else { panic!() };
        assert_eq!(j.strategy, JoinStrategy::SymmetricHash);
    }

    #[test]
    fn traffic_objective_avoids_full_rehash() {
        let op = plan_sql(
            WORKLOAD_SQL,
            &catalog(),
            &CostParams::paper_baseline(1024.0),
            Objective::Traffic,
        )
        .unwrap();
        let QueryOp::Join(j) = op else { panic!() };
        assert_ne!(j.strategy, JoinStrategy::SymmetricHash);
    }

    #[test]
    fn fetch_matches_demoted_when_join_key_is_not_pkey() {
        // Join on S.num2 (not S's pkey): FM would be incorrect, so the
        // planner must not choose it even if the model liked it.
        let sql = "SELECT R.pkey FROM R, S WHERE R.num1 = S.num2";
        for objective in [Objective::Latency, Objective::Traffic] {
            let op = plan_sql(
                sql,
                &catalog(),
                &CostParams::paper_baseline(64.0),
                objective,
            )
            .unwrap();
            let QueryOp::Join(j) = op else { panic!() };
            assert_ne!(j.strategy, JoinStrategy::FetchMatches);
        }
    }

    #[test]
    fn multiway_queries_get_a_cost_based_join_order() {
        // R is huge and wide, S medium, T small: the greedy search must
        // start the pipeline at T and join the expensive R last.
        let mut c = catalog();
        c.set_stats(
            "T",
            TableStats {
                rows: 1000,
                avg_tuple_bytes: 100,
            },
        );
        let op = plan_sql(
            "SELECT R.pkey, T.pkey FROM R, S, T \
             WHERE R.num1 = S.pkey AND S.num3 = T.pkey",
            &c,
            &CostParams::paper_baseline(1024.0),
            Objective::Traffic,
        )
        .unwrap();
        let QueryOp::MultiJoin(m) = op else { panic!() };
        assert_eq!(m.base.table, "T");
        assert_eq!(m.stages[0].right.table, "S");
        assert_eq!(m.stages[1].right.table, "R");
        // T.pkey sits at accumulated column 0; R joins S.pkey at
        // accumulated column 3 (T ++ S).
        assert_eq!(m.stages[0].left_col, 0);
        assert_eq!(m.stages[1].left_col, 3);
        // Output columns still follow the SELECT list, not the order.
        assert_eq!(m.project.len(), 2);
    }

    #[test]
    fn plan_sql_rejects_continuous_clauses() {
        // plan_sql returns a bare QueryOp, which cannot carry a window
        // and must not silently wrap an epoch in a one-shot.
        let net = CostParams::paper_baseline(64.0);
        for sql in [
            "SELECT pkey FROM S WINDOW 10 SECONDS",
            "SELECT num2, count(*) FROM S GROUP BY num2 EPOCH 15 SECONDS",
        ] {
            let err = plan_sql(sql, &catalog(), &net, Objective::Latency).unwrap_err();
            assert!(err.contains("parse_continuous_query"), "{err}");
        }
    }

    #[test]
    fn non_join_queries_pass_through() {
        let op = plan_sql(
            "SELECT pkey FROM S WHERE num2 > 10",
            &catalog(),
            &CostParams::paper_baseline(64.0),
            Objective::Latency,
        )
        .unwrap();
        assert!(matches!(op, QueryOp::Scan { .. }));
    }
}

//! # pier-core
//!
//! The PIER query processor (Figure 1's middle tier): a push-based
//! "boxes-and-arrows" dataflow engine executing relational queries over
//! the DHT. Implements the four distributed join strategies of §4
//! (symmetric hash, Fetch Matches, symmetric semi-join rewrite, Bloom
//! rewrite), left-deep multi-way join pipelines (chained symmetric-hash
//! stages with per-stage rehash namespaces), DHT-based grouped
//! aggregation, continuous/windowed queries, an N-table SQL front-end,
//! a catalog, and a cost-based optimizer covering both strategy choice
//! and greedy join-order search.

pub mod agg;
pub mod bloom;
pub mod catalog;
pub mod expr;
pub mod item;
pub mod metrics;
pub mod node;
pub mod optimizer;
pub mod plan;
pub mod planner;
pub mod semantics;
pub mod sql;
pub mod tenant;
pub mod testkit;
pub mod tuple;
pub mod value;

pub use bloom::BloomFilter;
pub use catalog::{Catalog, TableDef, TableStats};
pub use expr::{BinOp, Expr, Func};
pub use item::{PierMsg, QpItem, Side};
pub use metrics::{MetricsRegistry, MetricsSnapshot, NodeMetrics, QueryMetrics};
pub use node::{NodeRequest, NodeResponse, PierNode, PublishReport};
pub use optimizer::{
    choose_strategy, greedy_join_order, price_query, CostParams, JoinStats, Objective, TableCard,
    TableRate,
};
pub use plan::{
    AggCall, AggFunc, AggSpec, JoinSpec, JoinStage, JoinStrategy, MultiJoinSpec, PipelineSchema,
    QueryDesc, QueryOp, ScanSpec, StageCol, StageSchema, StageView,
};
pub use planner::plan_sql;
pub use sql::parse_query;
pub use tenant::{AdmissionError, Quota, TenantGovernor, TenantId, TokenBucket};
pub use tuple::{ColType, Field, Schema, SchemaRef, Tuple};
pub use value::Value;

//! Wire byte-size audit: the §4.2 argument is about *bytes rehashed*,
//! so the byte model must be exact. These tests pin the precise wire
//! size of what each strategy ships for the §5.1 workload join — with
//! `Value::Pad(n)` contributing its full `n` bytes and projected tuples
//! reflecting every dropped column — and check the [`StageSchema`]
//! predictions against the actual shipped items.

use pier_core::expr::{Expr, Func};
use pier_core::item::{QpItem, Side};
use pier_core::plan::{JoinSpec, JoinStage, JoinStrategy, MultiJoinSpec, PipelineSchema, ScanSpec};
use pier_core::tuple;
use pier_core::tuple::{ColType, FlatRow, Tuple};
use pier_core::value::Value;
use pier_simnet::Wire;

/// The §5.1 workload join: R(pkey,num1,num2,num3,pad) ⨝ S(pkey,num2,
/// num3) on R.num1 = S.pkey, SELECT R.pkey, S.pkey, R.pad.
fn workload_join(strategy: JoinStrategy) -> JoinSpec {
    let left = ScanSpec::new("R", 5, 0)
        .with_pred(Expr::gt(Expr::col(2), Expr::lit(49i64)))
        .with_join_col(1);
    let right = ScanSpec::new("S", 3, 0)
        .with_pred(Expr::gt(Expr::col(1), Expr::lit(49i64)))
        .with_join_col(0);
    let mut j = JoinSpec::new(strategy, left, right);
    j.post_pred = Some(Expr::gt(
        Expr::Call(Func::WorkloadF, vec![Expr::col(3), Expr::col(7)]),
        Expr::lit(49i64),
    ));
    j.project = vec![Expr::col(0), Expr::col(5), Expr::col(4)];
    j
}

fn r_row() -> Tuple {
    tuple![7i64, 3i64, 60i64, 12i64, Value::Pad(1000)]
}

fn s_row() -> Tuple {
    tuple![3i64, 70i64, 21i64]
}

#[test]
fn pad_value_contributes_exact_wire_bytes() {
    assert_eq!(Value::Pad(1000).wire_size(), 1000);
    assert_eq!(Value::I64(7).wire_size(), 8);
    // Full base tuples: header 4 + values.
    assert_eq!(r_row().wire_size(), 4 + 4 * 8 + 1000);
    assert_eq!(s_row().wire_size(), 4 + 3 * 8);
}

#[test]
fn symmetric_hash_rehash_bytes_reflect_dropped_columns() {
    let j = workload_join(JoinStrategy::SymmetricHash);
    let v = PipelineSchema::binary(&j, true);
    // R keeps pkey, num1, num3, pad (num2 was consumed by the pushed
    // scan predicate): 4 + 3·8 + 1000 bytes projected.
    let projected = r_row().project(&v.keep_base);
    assert_eq!(projected.wire_size(), 4 + 3 * 8 + 1000);
    // The rehashed DHT item: 11-byte Tagged header + 8-byte join value.
    let item = QpItem::Tagged {
        qid: 1,
        side: Side::Left,
        join: Value::I64(3),
        row: FlatRow::from_tuple(&projected),
    };
    assert_eq!(item.wire_size(), 11 + 8 + (4 + 3 * 8 + 1000));
    // S keeps pkey and num3: a 39-byte item instead of 47 unpruned.
    let s_proj = s_row().project(&v.stages[0].keep_right);
    let s_item = QpItem::Tagged {
        qid: 1,
        side: Side::Right,
        join: Value::I64(3),
        row: FlatRow::from_tuple(&s_proj),
    };
    assert_eq!(s_item.wire_size(), 11 + 8 + (4 + 2 * 8));
}

#[test]
fn semi_join_minis_are_constant_24_bytes_of_payload() {
    // The §4.2 rewrite ships (pkey, join) only, whatever the schema.
    let mini = QpItem::Mini {
        qid: 1,
        side: Side::Left,
        pkey: Value::I64(7),
        join: Value::I64(3),
    };
    assert_eq!(mini.wire_size(), 11 + 8 + 8);
    // >37× smaller than the padded Tagged rehash of the same row.
    assert!(mini.wire_size() * 37 < 11 + 8 + 4 + 3 * 8 + 1000);
}

#[test]
fn fetch_matches_moves_full_base_tuples() {
    // A get returns published rows; the query cannot prune those.
    let fetched = QpItem::Row(FlatRow::from_tuple(&s_row()));
    assert_eq!(fetched.wire_size(), 2 + (4 + 3 * 8));
}

/// The narrow 3-way pipeline: R ⨝ S ⨝ T with SELECT R.pkey, S.pkey,
/// T.pkey — pad read by nobody.
fn narrow_multi() -> MultiJoinSpec {
    let base = ScanSpec::new("R", 5, 0);
    let s1 = JoinStage {
        right: ScanSpec::new("S", 3, 0).with_join_col(0),
        left_col: 1,
        stage_pred: None,
    };
    let s2 = JoinStage {
        right: ScanSpec::new("T", 3, 0).with_join_col(0),
        left_col: 7,
        stage_pred: None,
    };
    let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
    m.project = vec![Expr::col(0), Expr::col(5), Expr::col(8)];
    m
}

#[test]
fn stage_republish_bytes_exclude_the_pad() {
    let m = narrow_multi();
    let v = PipelineSchema::build(&m, true);
    // R's rehash: pkey + num1 only — 1008 bytes lighter than unpruned.
    let projected = r_row().project(&v.keep_base);
    assert_eq!(projected.wire_size(), 4 + 2 * 8);
    let full = PipelineSchema::build(&m, false);
    assert_eq!(
        r_row().project(&full.keep_base).wire_size(),
        4 + 4 * 8 + 1000
    );
    // The stage-0 intermediate (R.pkey, S.pkey, S.num3): 28 bytes.
    let s_proj = s_row().project(&v.stages[0].keep_right);
    let mid = projected.concat(&s_proj).project(&v.stages[0].emit);
    assert_eq!(mid.wire_size(), 4 + 3 * 8);
    let republished = QpItem::Tagged {
        qid: 1,
        side: Side::Left,
        join: mid.get(2).clone(),
        row: FlatRow::from_tuple(&mid),
    };
    assert_eq!(republished.wire_size(), 11 + 8 + (4 + 3 * 8));
}

#[test]
fn stage_schema_predictions_match_shipped_bytes() {
    let m = narrow_multi();
    let v = PipelineSchema::build(&m, true);
    let i64w = (ColType::I64, 8u32);
    let tables = vec![
        vec![i64w, i64w, i64w, i64w, (ColType::Pad, 1000)],
        vec![i64w, i64w, i64w],
        vec![i64w, i64w, i64w],
    ];
    assert_eq!(
        v.rehash_schema(0, &tables).wire_bytes(),
        r_row().project(&v.keep_base).wire_size()
    );
    assert_eq!(
        v.rehash_schema(1, &tables).wire_bytes(),
        s_row().project(&v.stages[0].keep_right).wire_size()
    );
    let s_proj = s_row().project(&v.stages[0].keep_right);
    let mid = r_row()
        .project(&v.keep_base)
        .concat(&s_proj)
        .project(&v.stages[0].emit);
    assert_eq!(
        v.intermediate_schema(0, &tables).wire_bytes(),
        mid.wire_size()
    );
}

//! Soft-state lifecycle properties: for random windows × sweep lags ×
//! arrival orders, the engine's continuous windowed joins (binary and
//! multiway) produce exactly the co-live reference multiset — however
//! stale the expired-but-unswept state in the stores is — and NULL-
//! bearing aggregate columns match SQL semantics for every [`AggFunc`],
//! centrally and end-to-end.
//!
//! Publish instants sit on a 10 s grid while windows are ≡ 5 (mod 10),
//! so every gap is ≥ 5 s away from the window boundary — far above the
//! simulated routing skew — and the oracle is exact, not approximate.

use std::collections::HashMap;

use pier_core::expr::Expr;
use pier_core::plan::{
    AggCall, AggFunc, AggSpec, JoinSpec, JoinStage, JoinStrategy, MultiJoinSpec, QueryDesc,
    QueryOp, ScanSpec,
};
use pier_core::semantics::{
    reference_eval, reference_windowed_join, reference_windowed_multijoin, same_multiset, TimedRows,
};
use pier_core::testkit::*;
use pier_core::tuple::Tuple;
use pier_core::value::Value;
use pier_core::PierNode;
use pier_dht::DhtConfig;
use pier_simnet::time::{Dur, Time};
use pier_simnet::{NetConfig, NodeId, Sim};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random sweep cadence: from eager (1 s) to very lazy (61 s), so the
/// amount of expired-but-unswept state in the stores varies wildly.
fn random_cfg(rng: &mut SmallRng) -> DhtConfig {
    let mut cfg = DhtConfig::static_network();
    cfg.tick = Dur::from_secs([1, 7, 33, 61][rng.gen_range(0..4usize)]);
    cfg
}

/// A window that is never within 5 s of any grid-aligned gap.
fn random_window(rng: &mut SmallRng) -> Dur {
    Dur::from_secs([15, 25, 35, 45][rng.gen_range(0..4usize)])
}

/// Timed single-row publications for one table: (grid instant, row).
type Schedule = Vec<(Dur, String, Tuple)>;

/// Drive a schedule through a simulation: submit the standing query,
/// publish each row from a pseudo-random node at its instant, then let
/// the final window close. Returns the initiator's result rows.
fn run_schedule(
    sim: &mut Sim<PierNode>,
    desc: QueryDesc,
    schedule: &Schedule,
    rng: &mut SmallRng,
) -> Vec<Tuple> {
    let qid = desc.qid;
    let n = sim.node_count();
    sim.run_for(Dur::from_secs(2));
    let t0 = sim.now();
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    for (at, table, row) in schedule {
        sim.run_until(t0 + *at);
        let publisher = rng.gen_range(0..n) as NodeId;
        let (table, row) = (table.clone(), row.clone());
        sim.with_app(publisher, |node, ctx| {
            node.publish_rows(ctx, &table, vec![row], 0, Dur::from_secs(100_000));
        });
    }
    sim.run_for(Dur::from_secs(70));
    sim.app(0)
        .unwrap()
        .query_results(qid)
        .iter()
        .map(|(_, r)| r.clone())
        .collect()
}

fn timed_rows(schedule: &Schedule, table: &str) -> TimedRows {
    schedule
        .iter()
        .filter(|(_, t, _)| t == table)
        .map(|(at, _, r)| (Time::ZERO + *at, r.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Continuous windowed binary joins emit exactly the pairs that
    /// were co-live inside the window, independent of sweep lag and
    /// arrival order.
    #[test]
    fn windowed_binary_join_matches_co_live_reference(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB1AA);
        let left = ScanSpec::new("A", 2, 0).with_join_col(1);
        let right = ScanSpec::new("B", 2, 0).with_join_col(1);
        let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
        j.project = vec![Expr::col(0), Expr::col(2)];
        let window = random_window(&mut rng);
        let desc = QueryDesc::standing(70, 0, QueryOp::Join(j.clone()), Some(window));

        let n_events = rng.gen_range(5..10usize);
        let mut schedule: Schedule = (0..n_events)
            .map(|i| {
                let at = Dur::from_secs(10 * rng.gen_range(1..10u64));
                let table = if rng.gen_range(0..2) == 0 { "A" } else { "B" };
                let key = rng.gen_range(0..3i64);
                (at, table.to_string(), pier_core::tuple![i as i64, key])
            })
            .collect();
        schedule.sort_by_key(|(at, _, _)| *at);

        let mut sim = stabilized_pier_sim(8, random_cfg(&mut rng), NetConfig::latency_only(seed));
        let got = run_schedule(&mut sim, desc, &schedule, &mut rng);
        let expected = reference_windowed_join(
            &j,
            &timed_rows(&schedule, "A"),
            &timed_rows(&schedule, "B"),
            window,
        );
        prop_assert!(
            same_multiset(&expected, &got),
            "seed {seed}, window {window:?}: expected {expected:?} got {got:?}"
        );
    }

    /// The same co-live law holds across multiway pipelines: a result
    /// exists iff all constituents' span fits in the window.
    #[test]
    fn windowed_multiway_join_matches_co_live_reference(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x3A11);
        let base = ScanSpec::new("A", 2, 0);
        let s1 = JoinStage {
            right: ScanSpec::new("B", 2, 0).with_join_col(0),
            left_col: 1,
            stage_pred: None,
        };
        let s2 = JoinStage {
            right: ScanSpec::new("C", 2, 0).with_join_col(0),
            left_col: 3,
            stage_pred: None,
        };
        let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
        m.project = vec![Expr::col(0), Expr::col(5)];
        let window = random_window(&mut rng);
        let desc = QueryDesc::standing(71, 0, QueryOp::MultiJoin(m.clone()), Some(window));

        // Join values from tiny domains so chains actually form:
        // A(id, x), B(x, y) keyed on x, C(y, v) keyed on y.
        let n_events = rng.gen_range(6..12usize);
        let mut schedule: Schedule = (0..n_events)
            .map(|i| {
                let at = Dur::from_secs(10 * rng.gen_range(1..10u64));
                let id = 1000 + i as i64;
                match rng.gen_range(0..3u8) {
                    0 => (at, "A".to_string(), pier_core::tuple![id, rng.gen_range(0..2i64)]),
                    1 => (
                        at,
                        "B".to_string(),
                        pier_core::tuple![rng.gen_range(0..2i64), rng.gen_range(0..2i64)],
                    ),
                    _ => (at, "C".to_string(), pier_core::tuple![rng.gen_range(0..2i64), id]),
                }
            })
            .collect();
        schedule.sort_by_key(|(at, _, _)| *at);

        let mut sim = stabilized_pier_sim(8, random_cfg(&mut rng), NetConfig::latency_only(seed));
        let got = run_schedule(&mut sim, desc, &schedule, &mut rng);
        let mut tables: HashMap<String, TimedRows> = HashMap::new();
        for t in ["A", "B", "C"] {
            tables.insert(t.to_string(), timed_rows(&schedule, t));
        }
        let expected = reference_windowed_multijoin(&m, &tables, window);
        prop_assert!(
            same_multiset(&expected, &got),
            "seed {seed}, window {window:?}: expected {expected:?} got {got:?}"
        );
    }
}

/// Naively computed SQL aggregate over (group, value) pairs.
fn naive_agg(func: AggFunc, vals: &[Value]) -> Value {
    let non_null: Vec<&Value> = vals.iter().filter(|v| !v.is_null()).collect();
    match func {
        AggFunc::Count => Value::I64(vals.len() as i64),
        AggFunc::Sum => Value::I64(non_null.iter().filter_map(|v| v.as_i64()).sum()),
        AggFunc::Min => non_null.iter().min().map_or(Value::Null, |v| (*v).clone()),
        AggFunc::Max => non_null.iter().max().map_or(Value::Null, |v| (*v).clone()),
        AggFunc::Avg => {
            let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::F64(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
    }
}

fn all_calls() -> Vec<AggCall> {
    [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Avg,
    ]
    .into_iter()
    .map(|func| AggCall {
        func,
        arg: (func != AggFunc::Count).then(|| Expr::col(1)),
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Central: for random null densities and random partial splits,
    /// every aggregate matches the naive SQL fold — merging partials
    /// included (the distributed path is a merge tree).
    #[test]
    fn null_bearing_aggregates_match_naive_fold(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9011_u64 ^ 0xAB);
        let calls = all_calls();
        let n = rng.gen_range(1..30usize);
        let null_pct = rng.gen_range(0..=100u32);
        let rows: Vec<Tuple> = (0..n)
            .map(|i| {
                let v = if rng.gen_range(0..100u32) < null_pct {
                    Value::Null
                } else {
                    Value::I64(rng.gen_range(-50..50i64))
                };
                pier_core::tuple![i as i64, v]
            })
            .collect();
        // Split into random partials, update each, merge pairwise.
        let mut parts: Vec<pier_core::agg::GroupAccs> =
            (0..rng.gen_range(1..4usize)).map(|_| pier_core::agg::GroupAccs::new(&calls)).collect();
        for row in &rows {
            let k = rng.gen_range(0..parts.len());
            parts[k].update(&calls, row);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p);
        }
        let out = merged.output_row(&[]);
        let vals: Vec<Value> = rows.iter().map(|r| r.get(1).clone()).collect();
        for (i, call) in calls.iter().enumerate() {
            let expect = naive_agg(call.func, &vals);
            let gotv = out.get(i).clone();
            let close = match (&expect, &gotv) {
                (Value::F64(a), Value::F64(b)) => (a - b).abs() < 1e-9,
                (a, b) => a == b,
            };
            prop_assert!(close, "seed {seed} {:?}: got {gotv} expected {expect}", call.func);
        }
    }
}

// ---------------------------------------------------------------------
// Lifecycle: random install/uninstall interleavings reclaim everything
// ---------------------------------------------------------------------

/// The query shapes a tenant can take in the lifecycle interleavings.
#[derive(Clone, Copy)]
enum TenantKind {
    /// 2-way standing join (windowed or renewed).
    Binary,
    /// 3-way standing pipeline.
    MultiWay,
    /// Flat epoch-driven aggregate.
    Aggregate,
}

/// Build one standing tenant query over tables A(pk, x), B(x, y),
/// C(y, v). `scale` stretches every duration (1 = seconds for the Sim
/// engine; sub-second values drive the wall-clock Cluster engine).
fn tenant_desc(kind: TenantKind, qid: u64, rng: &mut SmallRng, scale_us: u64) -> QueryDesc {
    let d = |units: u64| Dur::from_micros(units * scale_us);
    let windowed = rng.gen_range(0..2) == 0;
    let window = windowed.then(|| d(rng.gen_range(10..30u64)));
    let renew = (!windowed).then(|| d(rng.gen_range(5..15u64)));
    let mut desc = match kind {
        TenantKind::Binary => {
            let l = ScanSpec::new("A", 2, 0).with_join_col(1);
            let r = ScanSpec::new("B", 2, 0).with_join_col(0);
            let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, l, r);
            j.project = vec![Expr::col(0), Expr::col(3)];
            QueryDesc::standing(qid, 0, QueryOp::Join(j), window)
        }
        TenantKind::MultiWay => {
            let base = ScanSpec::new("A", 2, 0);
            let s1 = JoinStage {
                right: ScanSpec::new("B", 2, 0).with_join_col(0),
                left_col: 1,
                stage_pred: None,
            };
            let s2 = JoinStage {
                right: ScanSpec::new("C", 2, 0).with_join_col(0),
                left_col: 3,
                stage_pred: None,
            };
            let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
            m.project = vec![Expr::col(0), Expr::col(5)];
            QueryDesc::standing(qid, 0, QueryOp::MultiJoin(m), window)
        }
        TenantKind::Aggregate => {
            let agg = AggSpec::new(
                vec![1],
                vec![AggCall {
                    func: AggFunc::Count,
                    arg: None,
                }],
            )
            .with_epoch(d(rng.gen_range(8..16u64)));
            QueryDesc::standing(
                qid,
                0,
                QueryOp::Agg {
                    scan: ScanSpec::new("A", 2, 0),
                    agg,
                },
                window,
            )
        }
    };
    desc.renew_every = renew;
    desc
}

/// The longest soft-state lifetime any tenant built by [`tenant_desc`]
/// can put into the DHT: window ≤ 30, 3 × renew ≤ 45, epoch ≤ 16 (agg
/// partials), in `scale_us` units. One sweep past this and every
/// uninstalled query's namespaces must read zero.
const TENANT_HORIZON_UNITS: u64 = 50;

#[derive(Clone, Copy)]
enum LifecycleEvent {
    Install(usize),
    Publish,
    Uninstall(usize),
}

/// A random interleaving: every tenant is installed, rows trickle in
/// between, and every tenant is eventually uninstalled.
fn interleaving(rng: &mut SmallRng, n_tenants: usize) -> Vec<LifecycleEvent> {
    let mut events = Vec::new();
    for t in 0..n_tenants {
        events.push(LifecycleEvent::Install(t));
        for _ in 0..rng.gen_range(1..3usize) {
            events.push(LifecycleEvent::Publish);
        }
    }
    // Uninstalls land in shuffled order, interleaved with more traffic.
    let mut order: Vec<usize> = (0..n_tenants).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for t in order {
        if rng.gen_range(0..2) == 0 {
            events.push(LifecycleEvent::Publish);
        }
        events.push(LifecycleEvent::Uninstall(t));
    }
    events
}

fn random_row(rng: &mut SmallRng, next_id: &mut i64) -> (String, Tuple) {
    let id = *next_id;
    *next_id += 1;
    match rng.gen_range(0..3u8) {
        0 => ("A".into(), pier_core::tuple![id, rng.gen_range(0..2i64)]),
        1 => (
            "B".into(),
            pier_core::tuple![rng.gen_range(0..2i64), rng.gen_range(0..2i64)],
        ),
        _ => ("C".into(), pier_core::tuple![rng.gen_range(0..2i64), id]),
    }
}

const KINDS: [TenantKind; 3] = [
    TenantKind::Binary,
    TenantKind::MultiWay,
    TenantKind::Aggregate,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Sim engine: after a random install/publish/uninstall
    /// interleaving of 2-way, N-way, and aggregate standing queries,
    /// one sweep horizon past the last uninstall every `qns::*`
    /// namespace of every tenant reads zero on every node, the
    /// registries are empty, and no deferred-work timer remains.
    #[test]
    fn lifecycle_interleaving_reclaims_all_soft_state(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x71FE);
        let n_tenants = rng.gen_range(3..6usize);
        let kinds: Vec<TenantKind> =
            (0..n_tenants).map(|t| KINDS[(t + rng.gen_range(0..3usize)) % 3]).collect();
        let scale_us = 1_000_000; // tenant units are seconds on the Sim
        let mut sim = stabilized_pier_sim(8, random_cfg(&mut rng), NetConfig::latency_only(seed));
        sim.run_for(Dur::from_secs(2));
        let mut next_id = 0i64;
        for ev in interleaving(&mut rng, n_tenants) {
            sim.run_for(Dur::from_secs(rng.gen_range(1..6u64)));
            match ev {
                LifecycleEvent::Install(t) => {
                    let desc = tenant_desc(kinds[t], 300 + t as u64, &mut rng, scale_us);
                    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
                }
                LifecycleEvent::Publish => {
                    let (table, row) = random_row(&mut rng, &mut next_id);
                    let publisher = rng.gen_range(0..8) as NodeId;
                    sim.with_app(publisher, |node, ctx| {
                        node.publish_rows(ctx, &table, vec![row], 0, Dur::from_secs(100_000));
                    });
                }
                LifecycleEvent::Uninstall(t) => {
                    sim.with_app(0, |node, ctx| node.cancel(ctx, 300 + t as u64));
                }
            }
        }
        // One horizon (50 units) plus the laziest sweep tick (61 s).
        sim.run_for(Dur::from_micros(TENANT_HORIZON_UNITS * scale_us) + Dur::from_secs(65));
        let now = sim.now();
        for i in 0..8 as NodeId {
            let node = sim.app(i).unwrap();
            prop_assert_eq!(node.installed_query_count(), 0, "node {} registry", i);
            prop_assert_eq!(node.timer_action_count(), 0, "node {} timers", i);
            for t in 0..n_tenants {
                let left = node.query_soft_state(now, 300 + t as u64, 2);
                prop_assert_eq!(left, 0, "node {} tenant {} residual {}", i, t, left);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Cluster engine: the same reclamation law holds on the wall-clock
    /// actor-runtime deployment (sub-second windows/epochs/renewals).
    #[test]
    fn lifecycle_interleaving_reclaims_on_cluster(seed in any::<u64>()) {
        use pier_core::NodeRequest;
        use pier_simnet::Cluster;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC1C5);
        let n = 3usize;
        let n_tenants = 3usize;
        let kinds: Vec<TenantKind> =
            (0..n_tenants).map(|t| KINDS[(t + rng.gen_range(0..3usize)) % 3]).collect();
        let scale_us = 20_000; // tenant units are 20 ms wall-clock
        let mut cfg = DhtConfig::static_network();
        cfg.tick = Dur::from_millis(100);
        let states = pier_dht::can::balanced_overlay(n, cfg.dims, Time::ZERO);
        let apps: Vec<PierNode> = states
            .into_iter()
            .enumerate()
            .map(|(i, st)| {
                PierNode::with_dht(pier_dht::Dht::with_can(cfg.clone(), i as NodeId, st), None)
            })
            .collect();
        let cluster = Cluster::spawn(apps, seed);
        let mut next_id = 0i64;
        for ev in interleaving(&mut rng, n_tenants) {
            std::thread::sleep(std::time::Duration::from_millis(rng.gen_range(20..60u64)));
            match ev {
                LifecycleEvent::Install(t) => {
                    let desc = tenant_desc(kinds[t], 400 + t as u64, &mut rng, scale_us);
                    cluster.cast(0, NodeRequest::Submit(Box::new(desc)));
                }
                LifecycleEvent::Publish => {
                    let (table, row) = random_row(&mut rng, &mut next_id);
                    let publisher = rng.gen_range(0..n) as NodeId;
                    cluster.cast(publisher, NodeRequest::PublishRows {
                        table,
                        rows: vec![row],
                        pkey_col: 0,
                        lifetime: Dur::from_secs(100_000),
                    });
                }
                LifecycleEvent::Uninstall(t) => {
                    cluster.cast(0, NodeRequest::Cancel(400 + t as u64));
                }
            }
        }
        // One horizon (50 × 20 ms = 1 s) plus sweep ticks and margin.
        std::thread::sleep(std::time::Duration::from_millis(
            TENANT_HORIZON_UNITS * 20 + 500,
        ));
        for i in 0..n as NodeId {
            let (installed, timers, residuals) = cluster
                .request(i, NodeRequest::LifecycleAudit {
                    qids: (0..n_tenants).map(|t| 400 + t as u64).collect(),
                    max_stages: 2,
                })
                .expect("node alive")
                .into_audit();
            prop_assert_eq!(installed, 0, "node {} registry", i);
            prop_assert_eq!(timers, 0, "node {} timers", i);
            for (t, left) in residuals.into_iter().enumerate() {
                prop_assert_eq!(left, 0, "node {} tenant {} residual {}", i, t, left);
            }
        }
        cluster.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// End-to-end: a grouped aggregate over a NULL-bearing column,
    /// executed on a simulated overlay with every AggFunc at once,
    /// equals the centralized reference.
    #[test]
    fn null_bearing_aggregates_end_to_end(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xE2E);
        let rows: Vec<Tuple> = (0..rng.gen_range(10..40i64))
            .map(|i| {
                let v = if rng.gen_range(0..3) == 0 {
                    Value::Null
                } else {
                    Value::I64(rng.gen_range(-20..20i64))
                };
                pier_core::tuple![i, i % 3, v]
            })
            .collect();
        let scan = ScanSpec::new("vals", 3, 0);
        let mut calls = all_calls();
        for c in &mut calls {
            if let Some(arg) = &mut c.arg {
                *arg = Expr::col(2);
            }
        }
        let agg = AggSpec::new(vec![1], calls);
        let op = QueryOp::Agg { scan, agg };
        let mut tables = HashMap::new();
        tables.insert("vals".to_string(), rows.clone());
        let expected = reference_eval(&op, &tables);

        let mut sim =
            stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(seed));
        publish_round_robin(&mut sim, "vals", &rows, 0, Dur::from_secs(100_000));
        settle_publish(&mut sim);
        let desc = QueryDesc::one_shot(72, 0, op);
        let results = rows_of(&run_query(&mut sim, 0, desc, Dur::from_secs(30)));
        prop_assert!(
            same_multiset(&expected, &results),
            "seed {seed}: expected {expected:?} got {results:?}"
        );
    }
}

//! Distributed aggregation (flat and hierarchical), the §2.1 SQL
//! examples end-to-end, and continuous/windowed queries.

use std::collections::HashMap;

use pier_core::catalog::Catalog;
use pier_core::expr::Expr;
use pier_core::plan::{AggCall, AggFunc, AggSpec, JoinStrategy, QueryDesc, QueryOp, ScanSpec};
use pier_core::semantics::{reference_eval, same_multiset};
use pier_core::sql::parse_query;
use pier_core::testkit::*;
use pier_core::tuple;
use pier_core::tuple::Tuple;
use pier_core::value::Value;
use pier_dht::DhtConfig;
use pier_simnet::time::Dur;
use pier_simnet::NetConfig;

/// Synthetic intrusion fingerprints: node-spread reports, some frequent.
fn intrusion_rows(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let fp = format!("fp{}", i % 7);
            let addr = format!("10.0.0.{}", i % 13);
            tuple![i as i64, fp.as_str(), addr.as_str()]
        })
        .collect()
}

fn run_agg(hierarchical: bool) {
    let rows = intrusion_rows(120);
    let scan = ScanSpec::new("intrusions", 3, 0);
    let mut agg = AggSpec::new(
        vec![1],
        vec![AggCall {
            func: AggFunc::Count,
            arg: None,
        }],
    );
    agg.having = Some(Expr::gt(Expr::col(1), Expr::lit(10i64)));
    agg.hierarchical = hierarchical;
    agg.harvest = Dur::from_secs(8);
    let op = QueryOp::Agg {
        scan: scan.clone(),
        agg: agg.clone(),
    };
    let mut tables = HashMap::new();
    tables.insert("intrusions".to_string(), rows.clone());
    let expected = reference_eval(&op, &tables);
    assert!(!expected.is_empty());

    let n = 16;
    let mut sim = stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(21));
    publish_round_robin(&mut sim, "intrusions", &rows, 0, Dur::from_secs(3600));
    settle_publish(&mut sim);
    let mut desc = QueryDesc::one_shot(31 + hierarchical as u64, 2, op);
    desc.n_nodes = n as u32;
    let results = run_query(&mut sim, 2, desc, Dur::from_secs(40));
    assert!(
        same_multiset(&expected, &rows_of(&results)),
        "hier={hierarchical} expected {:?} got {:?}",
        expected,
        rows_of(&results)
    );
}

#[test]
fn flat_dht_aggregation_matches_reference() {
    run_agg(false);
}

#[test]
fn hierarchical_aggregation_matches_reference() {
    run_agg(true);
}

#[test]
fn intrusion_count_query_via_sql() {
    // §2.1: SELECT I.fingerprint, count(*) AS cnt FROM intrusions I
    //       GROUP BY I.fingerprint HAVING cnt > 10
    let catalog = Catalog::intrusion();
    let op = parse_query(
        "SELECT I.fingerprint, count(*) AS cnt FROM intrusions I \
         GROUP BY I.fingerprint HAVING cnt > 10",
        &catalog,
        JoinStrategy::SymmetricHash,
    )
    .unwrap();
    let rows = intrusion_rows(100);
    let mut tables = HashMap::new();
    tables.insert("intrusions".to_string(), rows.clone());
    let expected = reference_eval(&op, &tables);

    let mut sim = stabilized_pier_sim(12, DhtConfig::static_network(), NetConfig::latency_only(5));
    publish_round_robin(&mut sim, "intrusions", &rows, 0, Dur::from_secs(3600));
    settle_publish(&mut sim);
    let desc = QueryDesc::one_shot(44, 0, op);
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(40));
    assert!(same_multiset(&expected, &rows_of(&results)));
}

#[test]
fn weighted_reputation_join_aggregate_via_sql() {
    // §2.1's third example: count(*) * sum(R.weight) with HAVING on the
    // alias, over a join of intrusions and reputation.
    let catalog = Catalog::intrusion();
    let op = parse_query(
        "SELECT I.fingerprint, count(*) * sum(R.weight) AS wcnt \
         FROM intrusions I, reputation R WHERE R.address = I.address \
         GROUP BY I.fingerprint HAVING wcnt > 10",
        &catalog,
        JoinStrategy::SymmetricHash,
    )
    .unwrap();
    let intrusions = intrusion_rows(60);
    let reputation: Vec<Tuple> = (0..13)
        .map(|i| tuple![format!("10.0.0.{i}").as_str(), (i % 3) as i64])
        .collect();
    let mut tables = HashMap::new();
    tables.insert("intrusions".to_string(), intrusions.clone());
    tables.insert("reputation".to_string(), reputation.clone());
    let expected = reference_eval(&op, &tables);
    assert!(!expected.is_empty());

    let mut sim = stabilized_pier_sim(10, DhtConfig::static_network(), NetConfig::latency_only(6));
    publish_round_robin(&mut sim, "intrusions", &intrusions, 0, Dur::from_secs(3600));
    publish_round_robin(&mut sim, "reputation", &reputation, 0, Dur::from_secs(3600));
    settle_publish(&mut sim);
    let desc = QueryDesc::one_shot(45, 1, op);
    let results = run_query(&mut sim, 1, desc, Dur::from_secs(60));
    assert!(
        same_multiset(&expected, &rows_of(&results)),
        "expected {expected:?} got {:?}",
        rows_of(&results)
    );
}

#[test]
fn continuous_selection_streams_new_rows() {
    let scan = ScanSpec::new("feed", 2, 0).with_pred(Expr::gt(Expr::col(1), Expr::lit(5i64)));
    let project = vec![Expr::col(0), Expr::col(1)];
    let mut desc = QueryDesc::one_shot(50, 0, QueryOp::Scan { scan, project });
    desc.continuous = true;

    let mut sim = stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(7));
    settle_publish(&mut sim);
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(10));
    assert!(sim.app(0).unwrap().query_results(50).is_empty());

    // Publish after the query is installed: matching rows stream out.
    let batch: Vec<Tuple> = (0..20i64).map(|k| tuple![k, k]).collect();
    publish_round_robin(&mut sim, "feed", &batch, 0, Dur::from_secs(600));
    sim.run_for(Dur::from_secs(15));
    let got = sim.app(0).unwrap().query_results(50).len();
    assert_eq!(got, 14, "rows 6..=19 pass the predicate");

    // More rows keep streaming.
    let batch2: Vec<Tuple> = (100..105i64).map(|k| tuple![k, k]).collect();
    publish_round_robin(&mut sim, "feed", &batch2, 0, Dur::from_secs(600));
    sim.run_for(Dur::from_secs(15));
    assert_eq!(sim.app(0).unwrap().query_results(50).len(), 19);
}

#[test]
fn continuous_windowed_join_evicts_old_state() {
    // A continuous SHJ with a 30 s window: tuples published more than a
    // window apart never join (their NQ state ages out — the soft-state
    // windowing of §7).
    let left = ScanSpec::new("A", 2, 0).with_join_col(1);
    let right = ScanSpec::new("B", 2, 0).with_join_col(1);
    let mut j = pier_core::plan::JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    j.project = vec![Expr::col(0), Expr::col(2)];
    let mut desc = QueryDesc::one_shot(60, 0, QueryOp::Join(j));
    desc.continuous = true;
    desc.window = Some(Dur::from_secs(30));

    let mut sim = stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(8));
    settle_publish(&mut sim);
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(5));

    // a1 joins b1 (inside the window).
    publish_round_robin(&mut sim, "A", &[tuple![1i64, 7i64]], 0, Dur::from_secs(600));
    sim.run_for(Dur::from_secs(10));
    publish_round_robin(&mut sim, "B", &[tuple![2i64, 7i64]], 0, Dur::from_secs(600));
    sim.run_for(Dur::from_secs(10));
    assert_eq!(sim.app(0).unwrap().query_results(60).len(), 1);

    // b2 arrives 60 s after a1: a1's window state has expired.
    sim.run_for(Dur::from_secs(60));
    publish_round_robin(&mut sim, "B", &[tuple![3i64, 7i64]], 0, Dur::from_secs(600));
    sim.run_for(Dur::from_secs(10));
    assert_eq!(
        sim.app(0).unwrap().query_results(60).len(),
        1,
        "expired window state must not join"
    );
}

#[test]
fn scan_query_with_strings_round_trips() {
    let rows: Vec<Tuple> = (0..10)
        .map(|i| tuple![i as i64, format!("host{i}").as_str()])
        .collect();
    let scan = ScanSpec::new("hosts", 2, 0);
    let project = vec![Expr::col(1)];
    let mut sim = stabilized_pier_sim(6, DhtConfig::static_network(), NetConfig::latency_only(9));
    publish_round_robin(&mut sim, "hosts", &rows, 0, Dur::from_secs(600));
    settle_publish(&mut sim);
    let desc = QueryDesc::one_shot(70, 3, QueryOp::Scan { scan, project });
    let results = run_query(&mut sim, 3, desc, Dur::from_secs(20));
    assert_eq!(results.len(), 10);
    assert!(rows_of(&results)
        .iter()
        .any(|t| t.get(0) == &Value::str("host7")));
}

//! End-to-end correctness of the four distributed join strategies (§4):
//! on a simulated network, every strategy must produce exactly the
//! multiset of results that a centralized evaluation produces.

use pier_core::expr::{Expr, Func};
use pier_core::plan::{JoinSpec, JoinStrategy, QueryDesc, QueryOp, ScanSpec};
use pier_core::semantics::{reference_join, same_multiset};
use pier_core::testkit::*;
use pier_core::tuple;
use pier_core::tuple::Tuple;
use pier_core::value::Value;
use pier_dht::DhtConfig;
use pier_simnet::time::Dur;
use pier_simnet::NetConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Small R/S tables in the shape of §5.1: R has 10× the tuples of S, 90%
/// of R tuples have a matching S tuple, uniform attributes.
fn tables(seed: u64, n_s: i64) -> (Vec<Tuple>, Vec<Tuple>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_r = n_s * 10;
    // S(pkey, num2, num3)
    let s: Vec<Tuple> = (0..n_s)
        .map(|k| tuple![k, rng.gen_range(0..100i64), rng.gen_range(0..100i64)])
        .collect();
    // R(pkey, num1, num2, num3, pad): num1 joins S.pkey for 90% of rows.
    let r: Vec<Tuple> = (0..n_r)
        .map(|k| {
            let num1 = if rng.gen_bool(0.9) {
                rng.gen_range(0..n_s)
            } else {
                n_s + rng.gen_range(0..n_s) // no match
            };
            Tuple::new(vec![
                Value::I64(k),
                Value::I64(num1),
                Value::I64(rng.gen_range(0..100)),
                Value::I64(rng.gen_range(0..100)),
                Value::Pad(64),
            ])
        })
        .collect();
    (r, s)
}

fn workload_join(strategy: JoinStrategy) -> JoinSpec {
    let left = ScanSpec::new("R", 5, 0)
        .with_pred(Expr::gt(Expr::col(2), Expr::lit(49i64)))
        .with_join_col(1);
    let right = ScanSpec::new("S", 3, 0)
        .with_pred(Expr::gt(Expr::col(1), Expr::lit(49i64)))
        .with_join_col(0);
    let mut j = JoinSpec::new(strategy, left, right);
    j.post_pred = Some(Expr::gt(
        Expr::Call(Func::WorkloadF, vec![Expr::col(3), Expr::col(7)]),
        Expr::lit(29i64),
    ));
    // SELECT R.pkey, S.pkey, R.pad
    j.project = vec![Expr::col(0), Expr::col(5), Expr::col(4)];
    j
}

fn run_strategy(strategy: JoinStrategy, n_nodes: usize, seed: u64) -> (Vec<Tuple>, Vec<Tuple>) {
    let (r, s) = tables(seed, 20);
    let j = workload_join(strategy);
    let expected = reference_join(&j, &r, &s);

    let mut sim = stabilized_pier_sim(
        n_nodes,
        DhtConfig::static_network(),
        NetConfig::latency_only(seed),
    );
    publish_round_robin(&mut sim, "R", &r, 0, Dur::from_secs(3600));
    publish_round_robin(&mut sim, "S", &s, 0, Dur::from_secs(3600));
    settle_publish(&mut sim);

    let desc = QueryDesc::one_shot(seed.wrapping_mul(31) + strategy as u64, 0, QueryOp::Join(j));
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
    (expected, rows_of(&results))
}

#[test]
fn symmetric_hash_join_matches_reference() {
    let (expected, actual) = run_strategy(JoinStrategy::SymmetricHash, 10, 1);
    assert!(!expected.is_empty(), "workload produced results");
    assert!(
        same_multiset(&expected, &actual),
        "expected {} got {}",
        expected.len(),
        actual.len()
    );
}

#[test]
fn fetch_matches_matches_reference() {
    let (expected, actual) = run_strategy(JoinStrategy::FetchMatches, 10, 2);
    assert!(!expected.is_empty());
    assert!(
        same_multiset(&expected, &actual),
        "expected {} got {}",
        expected.len(),
        actual.len()
    );
}

#[test]
fn symmetric_semi_join_matches_reference() {
    let (expected, actual) = run_strategy(JoinStrategy::SymmetricSemiJoin, 10, 3);
    assert!(!expected.is_empty());
    assert!(
        same_multiset(&expected, &actual),
        "expected {} got {}",
        expected.len(),
        actual.len()
    );
}

#[test]
fn bloom_filter_join_matches_reference() {
    let (expected, actual) = run_strategy(JoinStrategy::BloomFilter, 10, 4);
    assert!(!expected.is_empty());
    assert!(
        same_multiset(&expected, &actual),
        "expected {} got {}",
        expected.len(),
        actual.len()
    );
}

#[test]
fn all_strategies_agree_on_a_bigger_network() {
    let mut outputs = Vec::new();
    // One shared seed: every strategy answers the same workload, so the
    // result counts must agree across strategies.
    for strategy in JoinStrategy::ALL.iter() {
        let (expected, actual) = run_strategy(*strategy, 24, 100);
        assert!(
            same_multiset(&expected, &actual),
            "{}: expected {} got {}",
            strategy.name(),
            expected.len(),
            actual.len()
        );
        outputs.push(actual.len());
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn computation_nodes_constraint_preserves_results() {
    // Confining the rehash to 2 buckets must not change the answer.
    let (r, s) = tables(7, 15);
    let mut j = workload_join(JoinStrategy::SymmetricHash);
    j.computation_nodes = Some(2);
    let expected = reference_join(&j, &r, &s);
    let mut sim = stabilized_pier_sim(12, DhtConfig::static_network(), NetConfig::latency_only(7));
    publish_round_robin(&mut sim, "R", &r, 0, Dur::from_secs(3600));
    publish_round_robin(&mut sim, "S", &s, 0, Dur::from_secs(3600));
    settle_publish(&mut sim);
    let desc = QueryDesc::one_shot(777, 3, QueryOp::Join(j));
    let results = run_query(&mut sim, 3, desc, Dur::from_secs(60));
    assert!(
        same_multiset(&expected, &rows_of(&results)),
        "expected {} got {}",
        expected.len(),
        results.len()
    );
}

#[test]
fn empty_tables_produce_empty_results_without_hanging() {
    let j = workload_join(JoinStrategy::SymmetricHash);
    let mut sim = stabilized_pier_sim(6, DhtConfig::static_network(), NetConfig::latency_only(9));
    settle_publish(&mut sim);
    let desc = QueryDesc::one_shot(5, 0, QueryOp::Join(j));
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(30));
    assert!(results.is_empty());
}

#[test]
fn selection_query_returns_projected_rows() {
    let (r, _s) = tables(11, 10);
    let scan = ScanSpec::new("R", 5, 0).with_pred(Expr::gt(Expr::col(2), Expr::lit(79i64)));
    let project = vec![Expr::col(0), Expr::col(2)];
    let expected: Vec<Tuple> = r
        .iter()
        .filter(|t| t.get(2) > &Value::I64(79))
        .map(|t| t.project(&[0, 2]))
        .collect();
    let mut sim = stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(11));
    publish_round_robin(&mut sim, "R", &r, 0, Dur::from_secs(3600));
    settle_publish(&mut sim);
    let desc = QueryDesc::one_shot(6, 2, QueryOp::Scan { scan, project });
    let results = run_query(&mut sim, 2, desc, Dur::from_secs(30));
    assert!(same_multiset(&expected, &rows_of(&results)));
}

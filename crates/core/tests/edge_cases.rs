//! Edge cases of distributed execution: duplicate join values,
//! resourceID collisions (forced via tiny bucket counts), concurrent
//! queries, duplicate query delivery, string keys, and NULL handling.

use pier_core::expr::Expr;
use pier_core::plan::{JoinSpec, JoinStrategy, QueryDesc, QueryOp, ScanSpec};
use pier_core::semantics::{reference_join, same_multiset};
use pier_core::testkit::*;
use pier_core::tuple;
use pier_core::tuple::Tuple;
use pier_core::value::Value;
use pier_dht::DhtConfig;
use pier_simnet::time::Dur;
use pier_simnet::NetConfig;

fn setup(
    n: usize,
    seed: u64,
    tables: &[(&str, &[Tuple])],
) -> pier_simnet::Sim<pier_core::PierNode> {
    let mut sim = stabilized_pier_sim(
        n,
        DhtConfig::static_network(),
        NetConfig::latency_only(seed),
    );
    for (name, rows) in tables {
        publish_round_robin(&mut sim, name, rows, 0, Dur::from_secs(100_000));
    }
    settle_publish(&mut sim);
    sim
}

/// Many-to-many join values: duplicates must multiply correctly.
#[test]
fn many_to_many_join_produces_all_combinations() {
    // 4 left rows and 3 right rows share join value 7 -> 12 results.
    let left_rows: Vec<Tuple> = (0..6i64)
        .map(|k| tuple![k, if k < 4 { 7i64 } else { 8 }])
        .collect();
    let right_rows: Vec<Tuple> = (0..5i64)
        .map(|k| tuple![100 + k, if k < 3 { 7i64 } else { 9 }])
        .collect();
    for strategy in [JoinStrategy::SymmetricHash, JoinStrategy::SymmetricSemiJoin] {
        let left = ScanSpec::new("L", 2, 0).with_join_col(1);
        let right = ScanSpec::new("Rt", 2, 0).with_join_col(1);
        let mut j = JoinSpec::new(strategy, left, right);
        j.project = vec![Expr::col(0), Expr::col(2)];
        let expected = reference_join(&j, &left_rows, &right_rows);
        assert_eq!(expected.len(), 12);
        let mut sim = setup(8, 1, &[("L", &left_rows), ("Rt", &right_rows)]);
        let desc = QueryDesc::one_shot(1, 0, QueryOp::Join(j));
        let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
        assert!(
            same_multiset(&expected, &rows_of(&results)),
            "{}: got {}",
            strategy.name(),
            results.len()
        );
    }
}

/// Forcing every rehashed tuple into a single bucket (computation_nodes
/// = 1) maximizes resourceID collisions; the join-value equality guard
/// must still keep results exact.
#[test]
fn single_bucket_rehash_survives_rid_collisions() {
    let left_rows: Vec<Tuple> = (0..30i64).map(|k| tuple![k, k % 5]).collect();
    let right_rows: Vec<Tuple> = (0..10i64).map(|k| tuple![100 + k, k % 5]).collect();
    let left = ScanSpec::new("L", 2, 0).with_join_col(1);
    let right = ScanSpec::new("Rt", 2, 0).with_join_col(1);
    let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    j.project = vec![Expr::col(0), Expr::col(2)];
    j.computation_nodes = Some(1);
    let expected = reference_join(&j, &left_rows, &right_rows);
    assert_eq!(expected.len(), 60); // 30 × 2 partners each
    let mut sim = setup(6, 2, &[("L", &left_rows), ("Rt", &right_rows)]);
    let desc = QueryDesc::one_shot(2, 0, QueryOp::Join(j));
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
    assert!(same_multiset(&expected, &rows_of(&results)));
}

/// Two different queries over the same tables run concurrently without
/// crosstalk (distinct query namespaces).
#[test]
fn concurrent_queries_are_isolated() {
    let rows: Vec<Tuple> = (0..40i64).map(|k| tuple![k, k % 4, k % 10]).collect();
    let srows: Vec<Tuple> = (0..4i64).map(|k| tuple![k, k * 11]).collect();
    let mut sim = setup(10, 3, &[("T", &rows), ("U", &srows)]);

    let mk = |strategy, pred_cut: i64| {
        let left = ScanSpec::new("T", 3, 0)
            .with_pred(Expr::gt(Expr::col(2), Expr::lit(pred_cut)))
            .with_join_col(1);
        let right = ScanSpec::new("U", 2, 0).with_join_col(0);
        let mut j = JoinSpec::new(strategy, left, right);
        j.project = vec![Expr::col(0), Expr::col(4)];
        j
    };
    let j1 = mk(JoinStrategy::SymmetricHash, 4);
    let j2 = mk(JoinStrategy::FetchMatches, 7);
    let e1 = reference_join(&j1, &rows, &srows);
    let e2 = reference_join(&j2, &rows, &srows);
    assert_ne!(e1.len(), e2.len());

    // Submit both at once from different initiators.
    sim.with_app(0, |node, ctx| {
        node.submit(ctx, QueryDesc::one_shot(10, 0, QueryOp::Join(j1)))
    });
    sim.with_app(5, |node, ctx| {
        node.submit(ctx, QueryDesc::one_shot(11, 5, QueryOp::Join(j2)))
    });
    sim.run_for(Dur::from_secs(60));
    let r1: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(10)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    let r2: Vec<Tuple> = sim
        .app(5)
        .unwrap()
        .query_results(11)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    assert!(same_multiset(&e1, &r1), "q1: {} vs {}", e1.len(), r1.len());
    assert!(same_multiset(&e2, &r2), "q2: {} vs {}", e2.len(), r2.len());
}

/// The same query multicast arriving twice (dedupe or retry) must not
/// duplicate results.
#[test]
fn duplicate_query_submission_does_not_duplicate_results() {
    let rows: Vec<Tuple> = (0..20i64).map(|k| tuple![k, k % 3]).collect();
    let srows: Vec<Tuple> = (0..3i64).map(|k| tuple![k, k]).collect();
    let left = ScanSpec::new("T", 2, 0).with_join_col(1);
    let right = ScanSpec::new("U", 2, 0).with_join_col(0);
    let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    j.project = vec![Expr::col(0)];
    let expected = reference_join(&j, &rows, &srows);
    let mut sim = setup(8, 4, &[("T", &rows), ("U", &srows)]);
    let desc = QueryDesc::one_shot(20, 0, QueryOp::Join(j));
    let desc2 = desc.clone();
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(2));
    sim.with_app(0, |node, ctx| node.submit(ctx, desc2)); // re-multicast
    sim.run_for(Dur::from_secs(60));
    let got: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(20)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    assert!(
        same_multiset(&expected, &got),
        "expected {} got {}",
        expected.len(),
        got.len()
    );
}

/// String join keys flow through hashing, rehash and probing intact.
#[test]
fn string_keyed_join() {
    let gw: Vec<Tuple> = (0..12i64)
        .map(|k| tuple![k, format!("d{}", k % 4).as_str()])
        .collect();
    let rb: Vec<Tuple> = (0..6i64)
        .map(|k| tuple![100 + k, format!("d{}", k % 3).as_str()])
        .collect();
    let left = ScanSpec::new("G", 2, 0).with_join_col(1);
    let right = ScanSpec::new("B", 2, 0).with_join_col(1);
    let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    j.project = vec![Expr::col(0), Expr::col(1), Expr::col(2)];
    let expected = reference_join(&j, &gw, &rb);
    assert!(!expected.is_empty());
    let mut sim = setup(6, 5, &[("G", &gw), ("B", &rb)]);
    let desc = QueryDesc::one_shot(30, 1, QueryOp::Join(j));
    let results = run_query(&mut sim, 1, desc, Dur::from_secs(60));
    assert!(same_multiset(&expected, &rows_of(&results)));
}

/// NULL join values: SQL semantics say NULL = NULL is not true — but our
/// engine joins on value equality where Null == Null. Verify distributed
/// execution agrees exactly with the reference (the semantics are
/// consistent, which is what matters for the reproduction).
#[test]
fn null_join_values_behave_consistently() {
    let l: Vec<Tuple> = vec![
        tuple![1i64, Value::Null],
        tuple![2i64, 7i64],
        tuple![3i64, Value::Null],
    ];
    let r: Vec<Tuple> = vec![tuple![10i64, Value::Null], tuple![11i64, 7i64]];
    let left = ScanSpec::new("L", 2, 0).with_join_col(1);
    let right = ScanSpec::new("Rt", 2, 0).with_join_col(1);
    let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    j.project = vec![Expr::col(0), Expr::col(2)];
    let expected = reference_join(&j, &l, &r);
    let mut sim = setup(5, 6, &[("L", &l), ("Rt", &r)]);
    let desc = QueryDesc::one_shot(40, 0, QueryOp::Join(j));
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
    assert!(same_multiset(&expected, &rows_of(&results)));
}

/// A join whose predicate rejects everything yields nothing but
/// terminates cleanly on every strategy.
#[test]
fn fully_selective_predicates_yield_empty_results() {
    let rows: Vec<Tuple> = (0..20i64).map(|k| tuple![k, k % 3, k]).collect();
    let srows: Vec<Tuple> = (0..3i64).map(|k| tuple![k, k]).collect();
    for strategy in JoinStrategy::ALL {
        let left = ScanSpec::new("T", 3, 0)
            .with_pred(Expr::gt(Expr::col(2), Expr::lit(10_000i64)))
            .with_join_col(1);
        let right = ScanSpec::new("U", 2, 0).with_join_col(0);
        let mut j = JoinSpec::new(strategy, left, right);
        j.project = vec![Expr::col(0)];
        let mut sim = setup(6, 7, &[("T", &rows), ("U", &srows)]);
        let desc = QueryDesc::one_shot(50, 0, QueryOp::Join(j));
        let results = run_query(&mut sim, 0, desc, Dur::from_secs(40));
        assert!(results.is_empty(), "{}", strategy.name());
    }
}

//! The continuous-query soft-state lifecycle, end to end: expiry-correct
//! probes (regression tests for the expired-but-unswept bugs),
//! epoch-driven re-emission of aggregates against the
//! [`reference_epochs`] oracle, sliding-window aging, and the
//! rehash-renewal loop keeping a standing join-aggregate at recall 1.0
//! far past the fallback horizon.

use std::collections::HashMap;

use pier_core::catalog::Catalog;
use pier_core::expr::Expr;
use pier_core::node::PierNode;
use pier_core::plan::{
    AggSpec, JoinSpec, JoinStage, JoinStrategy, MultiJoinSpec, QueryDesc, QueryOp, ScanSpec,
};
use pier_core::semantics::{precision, recall, reference_epochs, same_multiset, TimedRows};
use pier_core::sql::parse_continuous_query;
use pier_core::testkit::*;
use pier_core::tuple;
use pier_core::tuple::Tuple;
use pier_core::value::Value;
use pier_dht::DhtConfig;
use pier_simnet::time::{Dur, Time};
use pier_simnet::{NetConfig, NodeId, Sim};

/// A config whose maintenance tick (and thus expiry sweep) is very
/// rare, so expired-but-unswept soft state lingers in the stores — the
/// regime the expiry-correct probe rules must handle.
fn lazy_sweep_cfg() -> DhtConfig {
    let mut cfg = DhtConfig::static_network();
    cfg.tick = Dur::from_secs(300);
    cfg
}

/// Bucket timed results into epochs of length `epoch` (emissions for
/// epoch k arrive about half an epoch after the k-th boundary).
fn per_epoch(results: &[(Dur, Tuple)], epoch: Dur, n_epochs: usize) -> Vec<Vec<Tuple>> {
    let mut out = vec![Vec::new(); n_epochs];
    for (at, row) in results {
        let k = (at.as_micros() / epoch.as_micros()) as usize;
        if k < n_epochs {
            out[k].push(row.clone());
        }
    }
    out
}

/// Assert every epoch's emissions equal the oracle's, with recall and
/// precision 1.0 (no lost groups, no phantom groups).
fn assert_epochs_match(got: &[Vec<Tuple>], expected: &[Vec<Tuple>]) {
    assert_eq!(got.len(), expected.len());
    for (k, (g, e)) in got.iter().zip(expected).enumerate() {
        assert!(
            same_multiset(g, e),
            "epoch {k}: got {g:?} expected {e:?} (recall {}, precision {})",
            recall(e, g),
            precision(e, g)
        );
    }
}

// ---------------------------------------------------------------------
// Regression: expired-but-unswept probes (binary and final stage)
// ---------------------------------------------------------------------

#[test]
fn binary_probe_skips_expired_unswept_partner() {
    // A continuous symmetric-hash join with a 20 s window on a network
    // that sweeps expired state only every 300 s: a tuple arriving 35 s
    // after its partner must NOT join the partner's expired (but still
    // stored) window state.
    let left = ScanSpec::new("A", 2, 0).with_join_col(1);
    let right = ScanSpec::new("B", 2, 0).with_join_col(1);
    let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    j.project = vec![Expr::col(0), Expr::col(2)];
    let desc = QueryDesc::standing(90, 0, QueryOp::Join(j), Some(Dur::from_secs(20)));

    let mut sim: Sim<PierNode> =
        stabilized_pier_sim(8, lazy_sweep_cfg(), NetConfig::latency_only(17));
    sim.run_for(Dur::from_secs(2));
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(3));

    // a1 published now; its rehashed window state expires 20 s later.
    publish_round_robin(&mut sim, "A", &[tuple![1i64, 7i64]], 0, Dur::from_secs(600));
    sim.run_for(Dur::from_secs(35));
    // b1 arrives with a1 expired but unswept (next sweep is at t=300).
    publish_round_robin(&mut sim, "B", &[tuple![2i64, 7i64]], 0, Dur::from_secs(600));
    sim.run_for(Dur::from_secs(10));
    assert_eq!(
        sim.app(0).unwrap().query_results(90).len(),
        0,
        "expired-but-unswept state must not join"
    );

    // Control: a co-live pair on a different join value still joins.
    publish_round_robin(&mut sim, "A", &[tuple![3i64, 8i64]], 0, Dur::from_secs(600));
    sim.run_for(Dur::from_secs(5));
    publish_round_robin(&mut sim, "B", &[tuple![4i64, 8i64]], 0, Dur::from_secs(600));
    sim.run_for(Dur::from_secs(10));
    let rows: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(90)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    assert!(same_multiset(&rows, &[tuple![3i64, 4i64]]));
}

#[test]
fn final_stage_match_against_expired_intermediate_is_dropped() {
    // 3-way pipeline A ⨝ B ⨝ C with a 25 s window, lazy sweep. A and B
    // join early; the intermediate republished into the last stage ages
    // out before C arrives — the last-stage match must not emit.
    let base = ScanSpec::new("A", 2, 0);
    let s1 = JoinStage {
        right: ScanSpec::new("B", 2, 0).with_join_col(0),
        left_col: 1,
        stage_pred: None,
    };
    let s2 = JoinStage {
        right: ScanSpec::new("C", 2, 0).with_join_col(0),
        left_col: 3,
        stage_pred: None,
    };
    let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
    m.project = vec![Expr::col(0), Expr::col(5)];
    let desc = QueryDesc::standing(91, 0, QueryOp::MultiJoin(m), Some(Dur::from_secs(25)));

    let mut sim: Sim<PierNode> =
        stabilized_pier_sim(8, lazy_sweep_cfg(), NetConfig::latency_only(19));
    sim.run_for(Dur::from_secs(2));
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(3));

    publish_round_robin(&mut sim, "A", &[tuple![1i64, 7i64]], 0, Dur::from_secs(600));
    publish_round_robin(&mut sim, "B", &[tuple![7i64, 9i64]], 0, Dur::from_secs(600));
    // 55 s later the A⋈B intermediate (lifetime ≤ 25 s) has expired but
    // not been swept; a fresh C must not resurrect it.
    sim.run_for(Dur::from_secs(55));
    publish_round_robin(
        &mut sim,
        "C",
        &[tuple![9i64, 100i64]],
        0,
        Dur::from_secs(600),
    );
    sim.run_for(Dur::from_secs(10));
    assert_eq!(
        sim.app(0).unwrap().query_results(91).len(),
        0,
        "a last-stage match against an aged-out constituent is a phantom"
    );

    // Control: a fully co-live chain emits exactly once.
    publish_round_robin(&mut sim, "A", &[tuple![2i64, 8i64]], 0, Dur::from_secs(600));
    publish_round_robin(
        &mut sim,
        "B",
        &[tuple![8i64, 11i64]],
        0,
        Dur::from_secs(600),
    );
    sim.run_for(Dur::from_secs(5));
    publish_round_robin(
        &mut sim,
        "C",
        &[tuple![11i64, 200i64]],
        0,
        Dur::from_secs(600),
    );
    sim.run_for(Dur::from_secs(10));
    let rows: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(91)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    assert!(same_multiset(&rows, &[tuple![2i64, 200i64]]));
}

#[test]
fn null_min_max_match_reference_end_to_end() {
    // MIN/MAX over a column with NULLs: the engine's distributed answer
    // equals the (null-skipping) reference. Fails pre-fix, where any
    // NULL made MIN collapse to NULL.
    let rows: Vec<Tuple> = (0..24i64)
        .map(|i| {
            let v = if i % 3 == 0 {
                Value::Null
            } else {
                Value::I64(i)
            };
            tuple![i, i % 2, v]
        })
        .collect();
    let scan = ScanSpec::new("vals", 3, 0);
    let agg = AggSpec::new(
        vec![1],
        vec![
            pier_core::plan::AggCall {
                func: pier_core::plan::AggFunc::Min,
                arg: Some(Expr::col(2)),
            },
            pier_core::plan::AggCall {
                func: pier_core::plan::AggFunc::Max,
                arg: Some(Expr::col(2)),
            },
        ],
    );
    let op = QueryOp::Agg { scan, agg };
    let mut tables = HashMap::new();
    tables.insert("vals".to_string(), rows.clone());
    let expected = pier_core::semantics::reference_eval(&op, &tables);
    // Sanity: the reference itself skips nulls.
    for row in &expected {
        assert_ne!(row.get(1), &Value::Null, "min must skip nulls: {row}");
    }

    let mut sim = stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(5));
    publish_round_robin(&mut sim, "vals", &rows, 0, Dur::from_secs(3600));
    settle_publish(&mut sim);
    let desc = QueryDesc::one_shot(92, 0, op);
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(30));
    assert!(same_multiset(&expected, &rows_of(&results)));
}

// ---------------------------------------------------------------------
// Epoch-driven continuous aggregation vs the reference_epochs oracle
// ---------------------------------------------------------------------

/// Deterministic intrusion reports: `id`, fingerprint, address.
fn reports(start: i64, n: usize) -> Vec<Tuple> {
    (start..start + n as i64)
        .map(|i| {
            tuple![
                i,
                format!("fp{}", i % 3).as_str(),
                format!("10.0.0.{}", i % 5).as_str()
            ]
        })
        .collect()
}

#[test]
fn flat_epoch_aggregate_reemits_and_matches_oracle() {
    let catalog = Catalog::intrusion();
    let epoch = Dur::from_secs(30);
    let desc = parse_continuous_query(
        "SELECT I.address, count(*) AS cnt FROM intrusions I \
         GROUP BY I.address EPOCH 30 SECONDS",
        &catalog,
        JoinStrategy::SymmetricHash,
        93,
        0,
    )
    .unwrap();
    let op = desc.op.clone();

    let mut sim = stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(29));
    let batch0 = reports(0, 24);
    publish_round_robin(&mut sim, "intrusions", &batch0, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);

    let t0 = sim.now();
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    // A second batch lands mid-epoch-1 (clear of the boundary flush),
    // visible from epoch 2 on.
    sim.run_for(Dur::from_secs(42));
    let batch1 = reports(100, 10);
    publish_round_robin(&mut sim, "intrusions", &batch1, 0, Dur::from_secs(100_000));
    let t_batch1 = sim.now().since(t0);
    sim.run_for(Dur::from_secs(65)); // through epoch 2's emission

    let mut timed: HashMap<String, TimedRows> = HashMap::new();
    timed.insert(
        "intrusions".to_string(),
        batch0
            .iter()
            .map(|r| (Time::ZERO, r.clone()))
            .chain(batch1.iter().map(|r| (Time::ZERO + t_batch1, r.clone())))
            .collect(),
    );
    let expected = reference_epochs(&op, &timed, None, epoch, 3);
    assert!(!expected[0].is_empty() && expected[2].len() >= expected[0].len());

    let results: Vec<(Dur, Tuple)> = sim
        .app(0)
        .unwrap()
        .query_results(93)
        .iter()
        .map(|(t, r)| (t.since(t0), r.clone()))
        .collect();
    let got = per_epoch(&results, epoch, 3);
    assert_epochs_match(&got, &expected);
}

#[test]
fn windowed_epoch_aggregate_ages_contributions_out() {
    // WINDOW 45 EPOCH 30: a batch published before the query counts in
    // epochs 0 and 1, then slides out; a mid-stream batch counts in
    // epoch 2 only. Emissions must match the oracle epoch by epoch —
    // including the *empty* later epochs (no lingering groups).
    let catalog = Catalog::intrusion();
    let epoch = Dur::from_secs(30);
    let desc = parse_continuous_query(
        "SELECT I.address, count(*) AS cnt FROM intrusions I \
         GROUP BY I.address WINDOW 45 SECONDS EPOCH 30 SECONDS",
        &catalog,
        JoinStrategy::SymmetricHash,
        94,
        0,
    )
    .unwrap();
    let op = desc.op.clone();

    let mut sim = stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(31));
    let batch0 = reports(0, 15);
    publish_round_robin(&mut sim, "intrusions", &batch0, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);

    let t0 = sim.now();
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(42));
    let batch1 = reports(100, 8);
    publish_round_robin(&mut sim, "intrusions", &batch1, 0, Dur::from_secs(100_000));
    let t_batch1 = sim.now().since(t0);
    sim.run_for(Dur::from_secs(95)); // through epoch 3's (empty) slot

    let mut timed: HashMap<String, TimedRows> = HashMap::new();
    timed.insert(
        "intrusions".to_string(),
        batch0
            .iter()
            .map(|r| (Time::ZERO, r.clone()))
            .chain(batch1.iter().map(|r| (Time::ZERO + t_batch1, r.clone())))
            .collect(),
    );
    let expected = reference_epochs(&op, &timed, Some(Dur::from_secs(45)), epoch, 4);
    assert!(!expected[0].is_empty());
    assert!(
        expected[3].is_empty(),
        "everything should have aged out by epoch 3"
    );

    let results: Vec<(Dur, Tuple)> = sim
        .app(0)
        .unwrap()
        .query_results(94)
        .iter()
        .map(|(t, r)| (t.since(t0), r.clone()))
        .collect();
    let got = per_epoch(&results, epoch, 4);
    assert_epochs_match(&got, &expected);
}

#[test]
fn hierarchical_epoch_aggregate_reemits_per_epoch() {
    // The in-network (tree) aggregation path also re-arms per epoch:
    // the root re-emits growing counts as new reports stream in.
    let mut agg = AggSpec::new(
        vec![1],
        vec![pier_core::plan::AggCall {
            func: pier_core::plan::AggFunc::Count,
            arg: None,
        }],
    )
    .with_epoch(Dur::from_secs(30));
    agg.hierarchical = true;
    let scan = ScanSpec::new("intrusions", 3, 0);
    let mut desc = QueryDesc::standing(95, 0, QueryOp::Agg { scan, agg }, None);
    desc.n_nodes = 8;

    let mut sim = stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(37));
    publish_round_robin(
        &mut sim,
        "intrusions",
        &reports(0, 16),
        0,
        Dur::from_secs(100_000),
    );
    settle_publish(&mut sim);
    let t0 = sim.now();
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(35));
    publish_round_robin(
        &mut sim,
        "intrusions",
        &reports(100, 16),
        0,
        Dur::from_secs(100_000),
    );
    sim.run_for(Dur::from_secs(60));

    let results: Vec<(Dur, Tuple)> = sim
        .app(0)
        .unwrap()
        .query_results(95)
        .iter()
        .map(|(t, r)| (t.since(t0), r.clone()))
        .collect();
    let got = per_epoch(&results, Dur::from_secs(30), 3);
    let count_sum =
        |rows: &[Tuple]| -> i64 { rows.iter().map(|r| r.get(1).as_i64().unwrap()).sum() };
    assert_eq!(count_sum(&got[0]), 16, "epoch 0 sees the first batch");
    assert_eq!(
        count_sum(&got[2]),
        32,
        "the standing tree re-emits with the second batch folded in"
    );
}

// ---------------------------------------------------------------------
// The renewal loop: standing queries outliving the horizon
// ---------------------------------------------------------------------

#[test]
fn standing_binary_join_renews_post_install_rehash_state() {
    // Regression: the continuous binary-join newData path (`rehash_one`)
    // must put with the renewal-derived lifetime AND enroll the state in
    // the renewal loop. A left row published after install joins a right
    // row arriving well past the fallback horizon (3 × 30 s = 90 s).
    let left = ScanSpec::new("A", 2, 0).with_join_col(1);
    let right = ScanSpec::new("B", 2, 0).with_join_col(1);
    let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
    j.project = vec![Expr::col(0), Expr::col(2)];
    let desc = QueryDesc::standing(97, 0, QueryOp::Join(j), None);

    let n = 8;
    let mut sim: Sim<PierNode> =
        stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(43));
    for i in 0..n {
        sim.with_app(i as NodeId, |node, ctx| {
            node.start_renewals(ctx, Dur::from_secs(30));
        });
    }
    sim.run_for(Dur::from_secs(2));
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(3));

    // Published AFTER install: flows through rehash_one, not rehash_side.
    publish_round_robin(
        &mut sim,
        "A",
        &[tuple![1i64, 7i64]],
        0,
        Dur::from_secs(100_000),
    );
    // Past the legacy 600 s lifetime and many renewal horizons later,
    // the partner arrives.
    sim.run_for(Dur::from_secs(650));
    publish_round_robin(
        &mut sim,
        "B",
        &[tuple![2i64, 7i64]],
        0,
        Dur::from_secs(100_000),
    );
    sim.run_for(Dur::from_secs(10));
    let rows: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(97)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    assert!(
        same_multiset(&rows, &[tuple![1i64, 2i64]]),
        "post-install rehash state must be renewed past the horizon: {rows:?}"
    );
}

#[test]
fn standing_triage_joinagg_outlives_fallback_horizon() {
    // The paper's intrusion triage as a standing 3-way join-aggregate
    // (scaled down: renewals every 30 s derive a 90 s fallback horizon;
    // the run covers 300 s ≈ 3.3 horizons). Recall and precision stay
    // 1.0 against the per-epoch oracle — pre-renewal, rehashed advisory
    // and reputation state aged out and late reports lost their joins.
    let n = 10usize;
    let epoch = Dur::from_secs(60);
    let n_epochs = 5usize;
    let catalog = Catalog::intrusion();
    let desc = parse_continuous_query(
        &pier_workload_sql(None, 60),
        &catalog,
        JoinStrategy::SymmetricHash,
        96,
        0,
    )
    .unwrap();
    let op = desc.op.clone();

    let mut sim = stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(41));
    for i in 0..n {
        sim.with_app(i as NodeId, |node, ctx| {
            node.start_renewals(ctx, Dur::from_secs(30));
        });
    }
    let advisories: Vec<Tuple> = (0..3i64)
        .map(|f| tuple![format!("fp{f}").as_str(), f + 5])
        .collect();
    let reputation: Vec<Tuple> = (0..5i64)
        .map(|a| tuple![format!("10.0.0.{a}").as_str(), a % 3])
        .collect();
    publish_round_robin(
        &mut sim,
        "advisories",
        &advisories,
        0,
        Dur::from_secs(100_000),
    );
    publish_round_robin(
        &mut sim,
        "reputation",
        &reputation,
        0,
        Dur::from_secs(100_000),
    );
    let batch0 = reports(0, 12);
    publish_round_robin(&mut sim, "intrusions", &batch0, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);

    let t0 = sim.now();
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    let mut timed_reports: TimedRows = batch0.iter().map(|r| (Time::ZERO, r.clone())).collect();
    // A fresh batch of reports early in every epoch: the late ones land
    // long after the unrenewed state would have expired.
    for k in 1..n_epochs {
        sim.run_until(t0 + epoch.saturating_mul(k as u64) + Dur::from_secs(10));
        let batch = reports(k as i64 * 100, 12);
        publish_round_robin(&mut sim, "intrusions", &batch, 0, Dur::from_secs(100_000));
        let at = sim.now().since(t0);
        timed_reports.extend(batch.iter().map(|r| (Time::ZERO + at, r.clone())));
    }
    sim.run_until(t0 + epoch.saturating_mul(n_epochs as u64));

    let mut timed: HashMap<String, TimedRows> = HashMap::new();
    timed.insert("intrusions".to_string(), timed_reports);
    timed.insert(
        "advisories".to_string(),
        advisories.iter().map(|r| (Time::ZERO, r.clone())).collect(),
    );
    timed.insert(
        "reputation".to_string(),
        reputation.iter().map(|r| (Time::ZERO, r.clone())).collect(),
    );
    let expected = reference_epochs(&op, &timed, None, epoch, n_epochs);
    assert!(expected.iter().all(|e| !e.is_empty()));

    let results: Vec<(Dur, Tuple)> = sim
        .app(0)
        .unwrap()
        .query_results(96)
        .iter()
        .map(|(t, r)| (t.since(t0), r.clone()))
        .collect();
    let got = per_epoch(&results, epoch, n_epochs);
    assert_epochs_match(&got, &expected);
}

// ---------------------------------------------------------------------
// Query lifecycle: uninstall, per-query renewal, one-shot retirement
// ---------------------------------------------------------------------

/// Total live soft state a query left across the whole network.
fn residual(sim: &Sim<PierNode>, qid: u64, stages: usize) -> usize {
    let now = sim.now();
    (0..sim.node_count() as NodeId)
        .filter_map(|i| sim.app(i))
        .map(|node| node.query_soft_state(now, qid, stages))
        .sum()
}

#[test]
fn uninstall_reclaims_state_and_leaves_other_tenants_running() {
    // Two standing unwindowed joins share an overlay with a 30 s
    // renewal loop (fallback horizon 3 × 30 = 90 s). Cancelling one
    // must (a) stop its dataflow, (b) cancel its timers and free its
    // renewal ledger everywhere, (c) leave zero residual soft state in
    // its qns::* namespaces one horizon later, and (d) leave the other
    // tenant at full recall — teardown is per-query, not per-node. The
    // cancelled tenant runs the Bloom strategy, so the reclamation also
    // covers the long-lived collector-fragment namespaces.
    let mk = |qid: u64, strategy: JoinStrategy, left: &str, right: &str| {
        let l = ScanSpec::new(left, 2, 0).with_join_col(1);
        let r = ScanSpec::new(right, 2, 0).with_join_col(1);
        let mut j = JoinSpec::new(strategy, l, r);
        j.project = vec![Expr::col(0), Expr::col(2)];
        QueryDesc::standing(qid, 0, QueryOp::Join(j), None)
    };
    let n = 8;
    let mut sim: Sim<PierNode> =
        stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(53));
    for i in 0..n {
        sim.with_app(i as NodeId, |node, ctx| {
            node.start_renewals(ctx, Dur::from_secs(30));
        });
    }
    sim.run_for(Dur::from_secs(2));
    sim.with_app(0, |node, ctx| {
        node.submit(ctx, mk(200, JoinStrategy::BloomFilter, "A", "B"))
    });
    sim.with_app(0, |node, ctx| {
        node.submit(ctx, mk(201, JoinStrategy::SymmetricHash, "C", "D"))
    });
    sim.run_for(Dur::from_secs(3));

    publish_round_robin(
        &mut sim,
        "A",
        &[tuple![1i64, 7i64]],
        0,
        Dur::from_secs(100_000),
    );
    publish_round_robin(
        &mut sim,
        "C",
        &[tuple![5i64, 9i64]],
        0,
        Dur::from_secs(100_000),
    );
    sim.run_for(Dur::from_secs(5));
    assert!(
        residual(&sim, 200, 0) > 0,
        "standing state exists pre-cancel"
    );

    // Tear query 200 down.
    sim.with_app(0, |node, ctx| node.cancel(ctx, 200));
    sim.run_for(Dur::from_secs(5));
    for i in 0..n as NodeId {
        let node = sim.app(i).unwrap();
        assert!(!node.has_query(200), "node {i} still has the query");
        assert_eq!(node.rehash_pub_count(200), 0, "renewal ledger freed");
        assert_eq!(
            node.timer_action_count(),
            1,
            "node {i}: only the node-global renewal timer remains"
        );
        assert!(node.has_query(201), "the other tenant survives");
    }

    // A partner arriving after the cancel must not join…
    publish_round_robin(
        &mut sim,
        "B",
        &[tuple![2i64, 7i64]],
        0,
        Dur::from_secs(100_000),
    );
    sim.run_for(Dur::from_secs(10));
    assert_eq!(
        sim.app(0).unwrap().query_results(200).len(),
        0,
        "a cancelled query must not produce results"
    );
    // …while the surviving tenant still joins far past the horizon.
    sim.run_for(Dur::from_secs(200));
    publish_round_robin(
        &mut sim,
        "D",
        &[tuple![6i64, 9i64]],
        0,
        Dur::from_secs(100_000),
    );
    sim.run_for(Dur::from_secs(10));
    let rows: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(201)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    assert!(same_multiset(&rows, &[tuple![5i64, 6i64]]));

    // One horizon (90 s) after the cancel, the cancelled query's soft
    // state has aged out of every store — reclamation by expiry.
    assert_eq!(residual(&sim, 200, 0), 0, "zero residual soft state");
}

#[test]
fn per_query_renewal_outlives_horizon_without_node_loop() {
    // A standing join carrying its own RENEW period must keep its
    // rehash state alive with *no* node-global renewal loop running —
    // while an identical query without one ages out at the legacy
    // 600 s horizon. Fails before per-query renewal existed.
    let mk = |qid: u64, left: &str, right: &str, renew: Option<Dur>| {
        let l = ScanSpec::new(left, 2, 0).with_join_col(1);
        let r = ScanSpec::new(right, 2, 0).with_join_col(1);
        let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, l, r);
        j.project = vec![Expr::col(0), Expr::col(2)];
        let mut d = QueryDesc::standing(qid, 0, QueryOp::Join(j), None);
        d.renew_every = renew;
        d
    };
    let mut sim: Sim<PierNode> =
        stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(59));
    sim.run_for(Dur::from_secs(2));
    let renewed = mk(210, "A", "B", Some(Dur::from_secs(60)));
    let unrenewed = mk(211, "C", "D", None);
    sim.with_app(0, |node, ctx| node.submit(ctx, renewed));
    sim.with_app(0, |node, ctx| node.submit(ctx, unrenewed));
    sim.run_for(Dur::from_secs(3));
    publish_round_robin(
        &mut sim,
        "A",
        &[tuple![1i64, 7i64]],
        0,
        Dur::from_secs(100_000),
    );
    publish_round_robin(
        &mut sim,
        "C",
        &[tuple![3i64, 8i64]],
        0,
        Dur::from_secs(100_000),
    );
    // Far past the legacy 600 s fallback, the partners arrive.
    sim.run_for(Dur::from_secs(700));
    publish_round_robin(
        &mut sim,
        "B",
        &[tuple![2i64, 7i64]],
        0,
        Dur::from_secs(100_000),
    );
    publish_round_robin(
        &mut sim,
        "D",
        &[tuple![4i64, 8i64]],
        0,
        Dur::from_secs(100_000),
    );
    sim.run_for(Dur::from_secs(10));
    let rows: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(210)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    assert!(
        same_multiset(&rows, &[tuple![1i64, 2i64]]),
        "per-query renewal must keep the standing join alive: {rows:?}"
    );
    assert_eq!(
        sim.app(0).unwrap().query_results(211).len(),
        0,
        "without any renewal the same join ages out at the fallback horizon"
    );
}

#[test]
fn one_shot_queries_release_timers_and_instances() {
    // Regression for unbounded map growth: one-shot aggregate queries
    // (flat, join-fed, and Bloom-strategy join-fed) must retire at
    // their terminal harvest — timer_actions AND the query registry
    // return to baseline at every node. Pre-fix, every instance,
    // ns-route, and any yet-unfired timer (e.g. a Bloom collector
    // deadline outlived by its early count-based flush) stayed for the
    // process lifetime.
    let n = 8;
    let mut sim: Sim<PierNode> =
        stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(61));
    let rows: Vec<Tuple> = (0..16i64).map(|i| tuple![i, i % 4, i % 3]).collect();
    publish_round_robin(&mut sim, "E", &rows, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "F", &rows, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);
    let baseline: Vec<usize> = (0..n as NodeId)
        .map(|i| sim.app(i).unwrap().timer_action_count())
        .collect();
    assert!(baseline.iter().all(|&c| c == 0));

    let agg = || {
        AggSpec::new(
            vec![1],
            vec![pier_core::plan::AggCall {
                func: pier_core::plan::AggFunc::Count,
                arg: None,
            }],
        )
    };
    // Flat one-shot aggregates.
    for qid in 220..226 {
        let desc = QueryDesc::one_shot(
            qid,
            0,
            QueryOp::Agg {
                scan: ScanSpec::new("E", 3, 0),
                agg: agg(),
            },
        );
        sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    }
    // A Bloom-strategy join aggregate: its collector deadline timers
    // (10 s) outlive the 5 s harvest unless retirement drains them.
    let left = ScanSpec::new("E", 3, 0).with_join_col(1);
    let right = ScanSpec::new("F", 3, 0).with_join_col(1);
    let mut j = JoinSpec::new(JoinStrategy::BloomFilter, left, right);
    j.project = vec![Expr::col(1), Expr::col(2)];
    let mut agg2 = agg();
    agg2.group_cols = vec![0];
    agg2.aggs[0].arg = None;
    let mut desc = QueryDesc::one_shot(226, 0, QueryOp::JoinAgg { join: j, agg: agg2 });
    desc.n_nodes = n as u32;
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));

    // Past every harvest (5 s default) but *before* the 10 s Bloom
    // deadline would fire on its own.
    sim.run_for(Dur::from_secs(8));
    for i in 0..n as NodeId {
        let node = sim.app(i).unwrap();
        assert_eq!(
            node.timer_action_count(),
            baseline[i as usize],
            "node {i}: timer_actions must return to baseline"
        );
        assert_eq!(
            node.installed_query_count(),
            0,
            "node {i}: one-shot instances must retire after their harvest"
        );
    }
    // The queries actually produced results before retiring.
    assert!(!sim.app(0).unwrap().query_results(220).is_empty());
    assert!(!sim.app(0).unwrap().query_results(226).is_empty());
}

/// The workload crate owns the canonical standing-triage SQL; tests in
/// `pier_core` re-state it here to avoid a dev-dependency cycle.
fn pier_workload_sql(window_secs: Option<u64>, epoch_secs: u64) -> String {
    let window = window_secs.map_or(String::new(), |w| format!(" WINDOW {w} SECONDS"));
    format!(
        "SELECT I.address, count(*) AS reports, max(A.severity) AS sev \
         FROM intrusions I, advisories A, reputation R \
         WHERE I.fingerprint = A.fingerprint AND I.address = R.address \
         GROUP BY I.address{window} EPOCH {epoch_secs} SECONDS"
    )
}

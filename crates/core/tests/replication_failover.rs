//! Query-layer failover under soft-state replication (k = 2): a node
//! holding rehash state is killed mid-standing-query, anti-entropy
//! heals its soft state at the takeover node, and the healed copies
//! re-fire `newData` → re-probe. These tests pin the *exact* result
//! multiset across that kill/heal cycle — full recall (the replicas
//! carried the state) and zero duplicates (re-probed pairs are dropped
//! by result identity at the initiator) — for both the symmetric-hash
//! probe path and the semi-join mini-probe path, plus the epoch-driven
//! standing aggregate (recall 1.0 at k = 2, measurably < 1.0 at k = 1).

use pier_core::expr::Expr;
use pier_core::plan::{
    AggCall, AggFunc, AggSpec, JoinSpec, JoinStrategy, QueryDesc, QueryOp, ScanSpec,
};
use pier_core::semantics::{reference_join, same_multiset};
use pier_core::testkit::*;
use pier_core::tuple;
use pier_core::tuple::Tuple;
use pier_dht::DhtConfig;
use pier_simnet::time::Dur;
use pier_simnet::{NetConfig, NodeId};

const N: usize = 8;

fn replicated_cfg(k: usize) -> DhtConfig {
    DhtConfig {
        keepalive: Dur::from_secs(1),
        fail_after: Dur::from_secs(5),
        ..DhtConfig::default()
    }
    .with_replication(k)
}

/// A(pkey, jk) ⋈ B(pkey, jk) on jk: 3 A-rows and 2 B-rows per join-key
/// value, so every result has multiplicity structure a duplicate or a
/// dropped re-probe would disturb.
fn tables() -> (Vec<Tuple>, Vec<Tuple>) {
    let a: Vec<Tuple> = (0..18i64).map(|i| tuple![i, i % 6]).collect();
    let b: Vec<Tuple> = (0..12i64).map(|i| tuple![100 + i, i % 6]).collect();
    (a, b)
}

fn join_spec(strategy: JoinStrategy) -> JoinSpec {
    let left = ScanSpec::new("A", 2, 0).with_join_col(1);
    let right = ScanSpec::new("B", 2, 0).with_join_col(1);
    let mut j = JoinSpec::new(strategy, left, right);
    j.project = vec![Expr::col(0), Expr::col(2)];
    j
}

/// Install a standing join at k = 2, kill the node holding the most
/// query soft state once the initial dataflow has completed, run well
/// past detection + takeover + anti-entropy, and require the initiator's
/// multiset to still be *exactly* the reference join.
fn kill_heal_exact(strategy: JoinStrategy, qid: u64, seed: u64) {
    let (a, b) = tables();
    let spec = join_spec(strategy);
    let expected = reference_join(&spec, &a, &b);
    assert_eq!(expected.len(), 36);

    let mut sim = stabilized_pier_sim(N, replicated_cfg(2), NetConfig::latency_only(seed));
    publish_round_robin(&mut sim, "A", &a, 0, Dur::from_secs(3600));
    publish_round_robin(&mut sim, "B", &b, 0, Dur::from_secs(3600));
    settle_publish(&mut sim);
    let desc = QueryDesc::standing(qid, 0, QueryOp::Join(spec), None);
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(30));
    let got: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(qid)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    assert!(
        same_multiset(&expected, &got),
        "pre-kill: expected {} rows, got {}",
        expected.len(),
        got.len()
    );

    // Kill the non-initiator node holding the most rehash/mini state so
    // the heal actually replays probes somewhere.
    let now = sim.now();
    let victim = (1..N as NodeId)
        .max_by_key(|&i| sim.app(i).unwrap().query_soft_state(now, qid, 0))
        .unwrap();
    assert!(
        sim.app(victim).unwrap().query_soft_state(now, qid, 0) > 0,
        "victim must hold query soft state"
    );
    sim.fail_node(victim);
    // Detection (5 s) + takeover + anti-entropy + healed-newData
    // re-probes, with margin.
    sim.run_for(Dur::from_secs(60));

    let got: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(qid)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    assert!(
        same_multiset(&expected, &got),
        "post-heal multiset must be exact: expected {} rows, got {} \
         (more = duplicate re-probe emissions, fewer = lost state)",
        expected.len(),
        got.len()
    );
}

#[test]
fn symmetric_hash_join_multiset_exact_across_kill_and_heal() {
    kill_heal_exact(JoinStrategy::SymmetricHash, 910, 31);
}

#[test]
fn semi_join_multiset_exact_across_kill_and_heal() {
    kill_heal_exact(JoinStrategy::SymmetricSemiJoin, 911, 32);
}

/// Standing epoch aggregate (the multitenant shape: COUNT per group,
/// EPOCH-driven re-emission) across a mid-query kill. Returns the rows
/// reported in the final epoch's emission window.
fn epoch_counts_after_kill(k: usize, seed: u64) -> (Vec<Tuple>, usize) {
    let qid = 920 + k as u64;
    let epoch = Dur::from_secs(20);
    let rows: Vec<Tuple> = (0..40i64).map(|i| tuple![i, i % 5]).collect();
    let scan = ScanSpec::new("events", 2, 0);
    let agg = AggSpec::new(
        vec![1],
        vec![AggCall {
            func: AggFunc::Count,
            arg: None,
        }],
    )
    .with_epoch(epoch);
    let op = QueryOp::Agg { scan, agg };

    let mut sim = stabilized_pier_sim(N, replicated_cfg(k), NetConfig::latency_only(seed));
    // Long lifetime, *no* renewals: replication is the only channel that
    // can carry a killed node's base items to the next epoch.
    publish_round_robin(&mut sim, "events", &rows, 0, Dur::from_secs(3600));
    settle_publish(&mut sim);
    let mut desc = QueryDesc::standing(qid, 0, op, None);
    desc.n_nodes = N as u32;
    let t0 = sim.now();
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(50)); // two full epochs reported

    let ns = pier_dht::ns_of("events");
    let victim = (1..N as NodeId)
        .max_by_key(|&i| sim.app(i).unwrap().dht.store.ns_len(ns))
        .unwrap();
    let lost = sim.app(victim).unwrap().dht.store.ns_len(ns);
    assert!(lost > 0, "victim must hold base items");
    sim.fail_node(victim);
    sim.run_for(Dur::from_secs(70)); // detection + heal + ≥ 2 more epochs

    // The reports that arrived in the final epoch-length window are one
    // complete steady-state emission.
    let cut = sim.now().since(t0).as_micros() - epoch.as_micros();
    let last: Vec<Tuple> = sim
        .app(0)
        .unwrap()
        .query_results(qid)
        .iter()
        .filter(|(t, _)| t.since(t0).as_micros() > cut)
        .map(|(_, r)| r.clone())
        .collect();
    (last, lost)
}

#[test]
fn epoch_aggregate_full_recall_at_k2_degraded_at_k1() {
    let expected: Vec<Tuple> = (0..5i64).map(|g| tuple![g, 8i64]).collect();

    // k = 2: the final epoch reports every group at its exact count —
    // healed replicas re-entered the running accumulators exactly once.
    let (at_k2, _) = epoch_counts_after_kill(2, 41);
    assert!(
        same_multiset(&expected, &at_k2),
        "k=2 final epoch must be exact: expected {expected:?} got {at_k2:?}"
    );

    // k = 1 (paper baseline): the killed node's items are gone and no
    // renewal loop re-publishes them, so the same epoch under-counts.
    let (at_k1, lost) = epoch_counts_after_kill(1, 41);
    let total: i64 = at_k1.iter().filter_map(|r| r.get(1).as_i64()).sum();
    assert!(
        total <= 40 - lost as i64,
        "k=1 must under-count by at least the victim's {lost} items, got total {total}"
    );
    assert!(!same_multiset(&expected, &at_k1), "k=1 recall must degrade");
}

//! SQL → distributed execution equivalence matrix: a battery of queries
//! parsed by the front-end, run on a simulated network, and compared to
//! the centralized reference evaluation of the same parsed plan.

use std::collections::HashMap;

use pier_core::catalog::Catalog;
use pier_core::plan::{JoinStrategy, QueryDesc};
use pier_core::semantics::{reference_eval, same_multiset};
use pier_core::sql::parse_query;
use pier_core::testkit::*;
use pier_core::tuple;
use pier_core::tuple::{ColType, Tuple};
use pier_dht::DhtConfig;
use pier_simnet::time::Dur;
use pier_simnet::NetConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_simple(
        "emp",
        &[
            ("id", ColType::I64),
            ("dept", ColType::I64),
            ("salary", ColType::I64),
            ("name", ColType::Str),
        ],
        0,
    );
    c.register_simple("dept", &[("id", ColType::I64), ("budget", ColType::I64)], 0);
    c
}

fn data(seed: u64) -> (Vec<Tuple>, Vec<Tuple>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let depts: Vec<Tuple> = (0..6i64)
        .map(|d| tuple![d, rng.gen_range(100..1000i64)])
        .collect();
    let emps: Vec<Tuple> = (0..80i64)
        .map(|i| {
            tuple![
                i,
                rng.gen_range(0..8i64), // some depts have no row
                rng.gen_range(30..200i64),
                format!("e{}", i % 10).as_str()
            ]
        })
        .collect();
    (emps, depts)
}

/// Parse, evaluate centrally, run distributed, compare.
fn check(sql: &str, qid: u64, strategy: JoinStrategy) {
    let cat = catalog();
    let op = parse_query(sql, &cat, strategy).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
    let (emps, depts) = data(qid);
    let mut tables = HashMap::new();
    tables.insert("emp".to_string(), emps.clone());
    tables.insert("dept".to_string(), depts.clone());
    let expected = reference_eval(&op, &tables);

    let mut sim = stabilized_pier_sim(9, DhtConfig::static_network(), NetConfig::latency_only(qid));
    publish_round_robin(&mut sim, "emp", &emps, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "dept", &depts, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);
    let mut desc = QueryDesc::one_shot(qid, 0, op);
    desc.n_nodes = 9;
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
    assert!(
        same_multiset(&expected, &rows_of(&results)),
        "{sql}\nexpected {} got {}",
        expected.len(),
        results.len()
    );
}

#[test]
fn projection_only() {
    check("SELECT id, salary FROM emp", 1, JoinStrategy::SymmetricHash);
}

#[test]
fn star_select_with_predicate() {
    check(
        "SELECT * FROM emp WHERE salary > 100",
        2,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn arithmetic_projection() {
    check(
        "SELECT id, salary * 2 + 1 FROM emp WHERE salary % 2 = 0",
        3,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn string_predicate() {
    check(
        "SELECT id FROM emp WHERE name = 'e3'",
        4,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn plain_join_each_strategy() {
    for (i, strategy) in JoinStrategy::ALL.iter().enumerate() {
        check(
            "SELECT e.id, d.budget FROM emp e, dept d WHERE e.dept = d.id",
            10 + i as u64,
            *strategy,
        );
    }
}

#[test]
fn join_with_local_and_post_predicates() {
    check(
        "SELECT e.id FROM emp e, dept d \
         WHERE e.dept = d.id AND e.salary > 80 AND d.budget > 300 \
         AND e.salary < d.budget",
        20,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn group_by_count_and_sum() {
    check(
        "SELECT dept, count(*), sum(salary) FROM emp GROUP BY dept",
        30,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn group_by_having_alias() {
    check(
        "SELECT dept, count(*) AS c FROM emp GROUP BY dept HAVING c > 10",
        31,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn min_max_avg() {
    check(
        "SELECT dept, min(salary), max(salary), avg(salary) FROM emp GROUP BY dept",
        32,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn global_aggregate_without_group_by() {
    check("SELECT count(*) FROM emp", 33, JoinStrategy::SymmetricHash);
}

#[test]
fn join_aggregate() {
    check(
        "SELECT d.id, count(*) FROM emp e, dept d WHERE e.dept = d.id GROUP BY d.id",
        40,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn aggregate_expression_over_two_aggs() {
    check(
        "SELECT dept, count(*) * sum(salary) AS blended FROM emp \
         GROUP BY dept HAVING blended > 1000",
        41,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn or_predicates() {
    check(
        "SELECT id FROM emp WHERE salary > 180 OR dept = 2",
        50,
        JoinStrategy::SymmetricHash,
    );
}

#[test]
fn not_predicate() {
    check(
        "SELECT id FROM emp WHERE NOT (salary > 100)",
        51,
        JoinStrategy::SymmetricHash,
    );
}

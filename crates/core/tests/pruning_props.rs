//! Projection-pushdown properties: for random SELECT / WHERE column
//! subsets over 2- and 3-way queries, the schema-aware (pruned)
//! dataflow must produce exactly the multiset the full-width reference
//! evaluation produces — centrally (many random cases through
//! [`reference_pipeline`]) and end-to-end on simulated overlays (a
//! smaller sample), and the no-churn recall bound of
//! `tests/strategy_churn.rs` (recall = precision = 1) must hold under
//! pruning.

use std::collections::HashMap;

use pier_core::expr::Expr;
use pier_core::plan::{
    JoinSpec, JoinStage, JoinStrategy, MultiJoinSpec, PipelineSchema, QueryDesc, QueryOp, ScanSpec,
};
use pier_core::semantics::{
    precision, recall, reference_eval, reference_multijoin, reference_pipeline, same_multiset,
};
use pier_core::testkit::*;
use pier_core::tuple::Tuple;
use pier_dht::DhtConfig;
use pier_simnet::time::Dur;
use pier_simnet::NetConfig;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Three small base tables A(0..3), B(3..6), C(6..9), integer-valued
/// with narrow domains so joins actually match.
fn tables(rng: &mut SmallRng) -> HashMap<String, Vec<Tuple>> {
    let mut out = HashMap::new();
    for name in ["A", "B", "C"] {
        let rows: Vec<Tuple> = (0..rng.gen_range(4..14i64))
            .map(|_| {
                Tuple::new(
                    (0..3)
                        .map(|_| pier_core::value::Value::I64(rng.gen_range(0..6)))
                        .collect(),
                )
            })
            .collect();
        out.insert(name.to_string(), rows);
    }
    out
}

/// A random 3-way spec over A ⨝ B ⨝ C: random join columns, a random
/// optional predicate at each stage, and a random SELECT subset.
fn random_spec(rng: &mut SmallRng) -> MultiJoinSpec {
    let mut base = ScanSpec::new("A", 3, 0);
    if rng.gen_range(0..2) == 1 {
        base = base.with_pred(Expr::gt(
            Expr::col(rng.gen_range(0..3)),
            Expr::lit(rng.gen_range(0..4i64)),
        ));
    }
    let s1 = JoinStage {
        right: ScanSpec::new("B", 3, 0).with_join_col(rng.gen_range(0..3)),
        left_col: rng.gen_range(0..3),
        stage_pred: (rng.gen_range(0..2) == 1).then(|| {
            Expr::gt(
                Expr::col(rng.gen_range(0..6)),
                Expr::lit(rng.gen_range(0..4i64)),
            )
        }),
    };
    let s2 = JoinStage {
        right: ScanSpec::new("C", 3, 0).with_join_col(rng.gen_range(0..3)),
        left_col: rng.gen_range(0..6),
        stage_pred: (rng.gen_range(0..2) == 1).then(|| {
            Expr::gt(
                Expr::col(rng.gen_range(0..9)),
                Expr::lit(rng.gen_range(0..4i64)),
            )
        }),
    };
    let mut m = MultiJoinSpec::new(base, vec![s1, s2]);
    // Random non-empty SELECT column subset (duplicates allowed).
    let n_sel = rng.gen_range(1..5usize);
    m.project = (0..n_sel).map(|_| Expr::col(rng.gen_range(0..9))).collect();
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pruned dataflow is result-equivalent to the full-width
    /// reference for arbitrary SELECT/WHERE subsets of a 3-way join.
    #[test]
    fn pruned_pipeline_matches_full_reference(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tabs = tables(&mut rng);
        let m = random_spec(&mut rng);
        let full = reference_multijoin(&m, &tabs);
        let pruned = reference_pipeline(&m, &tabs);
        prop_assert!(
            same_multiset(&full, &pruned),
            "seed {}: full {} vs pruned {}", seed, full.len(), pruned.len()
        );
    }

    /// Binary joins: the one-stage schema evaluates every expression
    /// identically on pruned and full layouts.
    #[test]
    fn pruned_binary_join_matches_full_reference(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tabs = tables(&mut rng);
        let left = ScanSpec::new("A", 3, 0).with_join_col(rng.gen_range(0..3));
        let right = ScanSpec::new("B", 3, 0).with_join_col(rng.gen_range(0..3));
        let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
        if rng.gen_range(0..2) == 1 {
            j.post_pred = Some(Expr::gt(
                Expr::col(rng.gen_range(0..6)),
                Expr::lit(rng.gen_range(0..4i64)),
            ));
        }
        j.project = (0..rng.gen_range(1..4usize))
            .map(|_| Expr::col(rng.gen_range(0..6)))
            .collect();
        let full = pier_core::semantics::reference_join(&j, &tabs["A"], &tabs["B"]);
        // Walk the pruned dataflow centrally.
        let v = PipelineSchema::binary(&j, true);
        let st = &v.stages[0];
        let mut pruned = Vec::new();
        for a in &tabs["A"] {
            let ap = a.project(&v.keep_base);
            for b in &tabs["B"] {
                if ap.get(st.join_idx_left) != b.get(j.right.join_col.unwrap()) {
                    continue;
                }
                let joined = ap.concat(&b.project(&st.keep_right));
                if st.pred.as_ref().is_none_or(|p| p.matches(&joined)) {
                    let out = joined.project(&st.emit);
                    pruned.push(Tuple::new(
                        v.project.iter().map(|e| e.eval(&out)).collect(),
                    ));
                }
            }
        }
        prop_assert!(same_multiset(&full, &pruned));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// End-to-end: random 2- and 3-way queries with random SELECT/WHERE
    /// subsets, executed on a simulated overlay with pruning on, are
    /// multiset-equal to the centralized reference, and the no-churn
    /// recall/precision bounds (cf. `tests/strategy_churn.rs`) hold.
    #[test]
    fn distributed_pruned_results_match_reference(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tabs = tables(&mut rng);
        let op = if rng.gen_range(0..2) == 1 {
            // 2-way: a random binary symmetric-hash join.
            let left = ScanSpec::new("A", 3, 0).with_join_col(rng.gen_range(0..3));
            let right = ScanSpec::new("B", 3, 0).with_join_col(rng.gen_range(0..3));
            let mut j = JoinSpec::new(JoinStrategy::SymmetricHash, left, right);
            j.project = (0..rng.gen_range(1..4usize))
                .map(|_| Expr::col(rng.gen_range(0..6)))
                .collect();
            QueryOp::Join(j)
        } else {
            QueryOp::MultiJoin(random_spec(&mut rng))
        };
        let expected = reference_eval(&op, &tabs);

        let mut sim = stabilized_pier_sim(
            8,
            DhtConfig::static_network(),
            NetConfig::latency_only(seed),
        );
        let life = Dur::from_secs(100_000);
        for name in ["A", "B", "C"] {
            publish_round_robin(&mut sim, name, &tabs[name], 0, life);
        }
        settle_publish(&mut sim);
        let desc = QueryDesc::one_shot(1, 0, op);
        let results = rows_of(&run_query(&mut sim, 0, desc, Dur::from_secs(90)));
        prop_assert!(
            same_multiset(&expected, &results),
            "seed {}: expected {} got {}", seed, expected.len(), results.len()
        );
        prop_assert!((recall(&expected, &results) - 1.0).abs() < 1e-9);
        prop_assert!((precision(&expected, &results) - 1.0).abs() < 1e-9);
    }
}

//! Property tests of the flat tuple wire encoding: encode/decode
//! identity and wire-size agreement across random stage schemas —
//! arbitrary column mixes, NULLs in any column, and strings at the
//! catalog's maximum width.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pier_core::tuple::{wire_of_encoded, FlatRow, Tuple};
use pier_core::{ColType, Value};

/// A random stage schema: per-column (type, catalog width). Width only
/// matters for Str (max byte length) and Pad (wire length).
fn random_schema(rng: &mut SmallRng) -> Vec<(ColType, u32)> {
    let arity = rng.gen_range(0..12usize);
    (0..arity)
        .map(|_| {
            let ty = match rng.gen_range(0..5u32) {
                0 => ColType::Bool,
                1 => ColType::I64,
                2 => ColType::F64,
                3 => ColType::Str,
                _ => ColType::Pad,
            };
            (ty, rng.gen_range(0..64u32))
        })
        .collect()
}

/// A random tuple matching `schema`, with NULLs substituted in any
/// column and strings drawn up to and *including* the max width.
fn random_tuple(rng: &mut SmallRng, schema: &[(ColType, u32)]) -> Tuple {
    let vals = schema
        .iter()
        .map(|&(ty, width)| {
            if rng.gen_range(0..5u32) == 0 {
                return Value::Null;
            }
            match ty {
                ColType::Bool => Value::Bool(rng.gen::<u64>() & 1 == 1),
                ColType::I64 => Value::I64(rng.gen::<u64>() as i64),
                // Finite floats only: Value equality is numeric, so a
                // NaN would fail the round-trip check spuriously.
                ColType::F64 => Value::F64(rng.gen_range(-1e12..1e12)),
                ColType::Str => {
                    // One in three strings is exactly max-width.
                    let len = if rng.gen_range(0..3u32) == 0 {
                        width as usize
                    } else {
                        rng.gen_range(0..width as usize + 1)
                    };
                    let s: String = (0..len)
                        .map(|_| char::from(rng.gen_range(b' '..b'~')))
                        .collect();
                    Value::str(&s)
                }
                ColType::Pad => Value::Pad(width),
            }
        })
        .collect();
    Tuple::new(vals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_is_the_identity(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let schema = random_schema(&mut rng);
        let t = random_tuple(&mut rng, &schema);

        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let (back, consumed) = Tuple::decode_from(&buf).expect("decode own encoding");
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(consumed, buf.len());

        // The wire model derived from the encoded bytes must agree with
        // the legacy per-value model — traffic accounting cannot drift.
        prop_assert_eq!(wire_of_encoded(&buf), Some(t.wire_size()));

        // FlatRow round-trips through the same layout.
        let flat = FlatRow::from_tuple(&t);
        prop_assert_eq!(&flat.decode(), &t);
        prop_assert_eq!(flat.wire(), t.wire_size());
    }

    #[test]
    fn concatenated_tuples_decode_sequentially(seed in any::<u64>()) {
        // `decode_from` reports consumed bytes, so back-to-back encoded
        // tuples (a shipped batch) must split exactly.
        let mut rng = SmallRng::seed_from_u64(seed);
        let tuples: Vec<Tuple> = (0..rng.gen_range(1..5usize))
            .map(|_| {
                let schema = random_schema(&mut rng);
                random_tuple(&mut rng, &schema)
            })
            .collect();
        let mut buf = Vec::new();
        for t in &tuples {
            t.encode_into(&mut buf);
        }
        let mut pos = 0;
        for t in &tuples {
            let (back, consumed) = Tuple::decode_from(&buf[pos..]).expect("decode batch element");
            prop_assert_eq!(&back, t);
            pos += consumed;
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncations_never_panic_and_never_lie(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let schema = random_schema(&mut rng);
        let t = random_tuple(&mut rng, &schema);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        // Every strict prefix either fails to decode or (when a whole
        // value boundary happens to align with a smaller arity claim —
        // impossible here, the header pins arity) is rejected.
        for cut in 0..buf.len() {
            prop_assert!(Tuple::decode_from(&buf[..cut]).is_none());
        }
    }
}

//! The deterministic discrete-event engine.
//!
//! Models exactly what §5.2 of the paper models and nothing more: message
//! propagation latency (from a [`Topology`]) plus queueing on the
//! receiver's inbound link at a configurable capacity. CPU and memory
//! costs of query processing are ignored, and cross-traffic does not
//! exist, matching the paper's two stated simplifications.
//!
//! # Shard-invariant event ordering
//!
//! Since the sharded engine landed ([`crate::sharded::ShardedSim`]), all
//! engine state lives in `EngineCore` — one core per shard, or a single
//! core for the sequential [`Sim`] — and events are ordered by a key that
//! is a pure function of event *content*, not of engine scheduling:
//!
//! ```text
//! (at, origin, oseq)
//! ```
//!
//! where `origin` is the node whose handler created the event and `oseq`
//! is that node's private monotone counter. Because each node's counter
//! advances only when the node itself runs, and each node runs the same
//! dispatch sequence under any partitioning (see the window invariant in
//! `sharded.rs`), this key is identical no matter how nodes are spread
//! across shards — which is what makes the sharded engine bit-identical
//! to this sequential one.
//!
//! The same reasoning forces *routing* (the flow-level bandwidth model,
//! which reserves the receiver's inbound link in send order) to happen in
//! key order rather than in handler-emission order: inter-node sends are
//! buffered as `SendRec`s and flushed key-sorted once the engine moves
//! past their send instant. Per-node RNG streams are seeded from the run
//! seed and the `NodeId` alone, so a node draws the same randomness under
//! any engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::app::{Action, App, Ctx};
use crate::stats::NetStats;
use crate::time::{Dur, Time};
use crate::topology::Topology;
use crate::{NodeId, Wire};

/// Network-level configuration of a simulation run.
#[derive(Clone)]
pub struct NetConfig {
    /// Pairwise propagation latency.
    pub topology: Arc<dyn Topology>,
    /// Inbound link capacity per node in bits/second; `None` = infinite
    /// bandwidth (the §5.5.1 latency-only scenario).
    pub inbound_bps: Option<f64>,
    /// Master seed; each node's RNG derives from it and the node id
    /// alone, so RNG streams are per-node and engine-independent.
    pub seed: u64,
}

impl NetConfig {
    /// The paper's baseline: full mesh, 100 ms latency, 10 Mbps inbound.
    pub fn paper_baseline(seed: u64) -> Self {
        NetConfig {
            topology: Arc::new(crate::topology::FullMesh::paper_default()),
            inbound_bps: Some(10e6),
            seed,
        }
    }

    /// Full mesh with infinite bandwidth (§5.5.1 "Infinite Bandwidth").
    pub fn latency_only(seed: u64) -> Self {
        NetConfig {
            inbound_bps: None,
            ..Self::paper_baseline(seed)
        }
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, token: u64 },
}

/// Log2 of the calendar-bucket width in µs: 2^14 µs ≈ 16.4 ms.
const BUCKET_BITS: u32 = 14;
/// Ring size: 4096 buckets ≈ 67 s of horizon, comfortably past the
/// dominant timer periods (soft-state renewal, heartbeats, epochs).
const N_BUCKETS: usize = 4096;

fn bucket_of(at: Time) -> u64 {
    at.as_micros() >> BUCKET_BITS
}

/// Total order on events that is invariant under sharding: time first,
/// then the node that *created* the event, then that node's private
/// event counter. `(origin, oseq)` is unique, so the order is total.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EvKey {
    at: Time,
    origin: NodeId,
    oseq: u64,
}

/// A queue entry: ordering key plus the index of the event payload in
/// the [`EventSlab`]. Ord derives on field order, so `key` decides and
/// `slot` never ties (the key is unique).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EvRef {
    key: EvKey,
    slot: u32,
}

/// Pooled event payloads: freed slots are recycled so the steady-state
/// hot path (timer fires, re-arms; message delivered, reply sent) does
/// not touch the allocator.
struct EventSlab<M> {
    slots: Vec<Option<EventKind<M>>>,
    free: Vec<u32>,
}

impl<M> EventSlab<M> {
    fn new() -> Self {
        EventSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, kind: EventKind<M>) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(kind);
            i
        } else {
            self.slots.push(Some(kind));
            (self.slots.len() - 1) as u32
        }
    }

    fn take(&mut self, i: u32) -> EventKind<M> {
        let kind = self.slots[i as usize].take().expect("slab slot live");
        self.free.push(i);
        kind
    }

    fn get(&self, i: u32) -> &EventKind<M> {
        self.slots[i as usize].as_ref().expect("slab slot live")
    }
}

/// Two-level calendar queue: a ring of 16.4 ms buckets covering the
/// next ~67 s, plus an overflow heap for events beyond the horizon.
/// Only the *current* bucket is kept sorted (descending, popped from
/// the back); other ring buckets are unsorted append targets, so the
/// common enqueue is O(1) instead of the binary heap's O(log n).
///
/// Invariants: every ring event's absolute bucket lies in
/// `[cursor, cursor + N_BUCKETS)`; every `far` event's bucket lies at
/// or beyond `cursor + N_BUCKETS`; all buckets below `cursor` are
/// empty. `peek` is read-only — the cursor commits forward only in
/// `pop`, so pushes racing a raised wall clock (e.g. after `run_until`
/// advanced `now` past the last event) still land correctly.
struct CalendarQueue {
    ring: Vec<Vec<EvRef>>,
    far: BinaryHeap<Reverse<EvRef>>,
    /// Absolute bucket index of the current (sorted) bucket.
    cursor: u64,
    /// Events resident in the ring (excludes `far`).
    ring_len: usize,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            ring: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            far: BinaryHeap::new(),
            cursor: 0,
            ring_len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.ring_len == 0 && self.far.is_empty()
    }

    fn push(&mut self, ev: EvRef) {
        let b = bucket_of(ev.key.at);
        debug_assert!(b >= self.cursor, "push into the past");
        if b >= self.cursor + N_BUCKETS as u64 {
            self.far.push(Reverse(ev));
            return;
        }
        let slot = (b % N_BUCKETS as u64) as usize;
        if b == self.cursor {
            // Keep the current bucket sorted descending (pop from back).
            let v = &mut self.ring[slot];
            let idx = v.partition_point(|e| *e > ev);
            v.insert(idx, ev);
        } else {
            self.ring[slot].push(ev);
        }
        self.ring_len += 1;
    }

    /// Earliest pending event, without moving the cursor.
    fn peek(&self) -> Option<EvRef> {
        if self.ring_len == 0 {
            return self.far.peek().map(|r| r.0);
        }
        let mut b = self.cursor;
        loop {
            let v = &self.ring[(b % N_BUCKETS as u64) as usize];
            if !v.is_empty() {
                return if b == self.cursor {
                    v.last().copied()
                } else {
                    v.iter().min().copied()
                };
            }
            b += 1;
        }
    }

    fn pop(&mut self) -> Option<EvRef> {
        if self.ring_len == 0 {
            // Far-jump: the ring is empty, so the earliest overflow
            // event defines the new current bucket.
            let Reverse(min) = *self.far.peek()?;
            self.advance_to(bucket_of(min.key.at));
        } else if self.ring[(self.cursor % N_BUCKETS as u64) as usize].is_empty() {
            let mut b = self.cursor + 1;
            while self.ring[(b % N_BUCKETS as u64) as usize].is_empty() {
                b += 1;
            }
            self.advance_to(b);
        }
        let slot = (self.cursor % N_BUCKETS as u64) as usize;
        let ev = self.ring[slot].pop()?;
        self.ring_len -= 1;
        Some(ev)
    }

    /// Commit the cursor to bucket `b`: refill the ring from the
    /// overflow heap up to the new horizon, then sort the new current
    /// bucket. Refilled events land only in slots whose previous
    /// absolute buckets (all `< b`) are already empty, so no slot ever
    /// mixes two absolute buckets.
    fn advance_to(&mut self, b: u64) {
        debug_assert!(b >= self.cursor);
        self.cursor = b;
        let horizon = self.cursor + N_BUCKETS as u64;
        while self
            .far
            .peek()
            .is_some_and(|Reverse(ev)| bucket_of(ev.key.at) < horizon)
        {
            let Reverse(ev) = self.far.pop().expect("peeked above");
            let slot = (bucket_of(ev.key.at) % N_BUCKETS as u64) as usize;
            self.ring[slot].push(ev);
            self.ring_len += 1;
        }
        let slot = (self.cursor % N_BUCKETS as u64) as usize;
        self.ring[slot].sort_unstable_by(|a, b| b.cmp(a));
    }
}

struct Slot<A> {
    app: Option<A>,
    rng: SmallRng,
    /// Monotone counter of events created by this node; never reset
    /// (not even on revive), so `(origin, oseq)` stays unique for the
    /// lifetime of the run and stale queued events cannot collide with
    /// fresh ones.
    oseq: u64,
    /// Instant at which this node's inbound link becomes free.
    inbound_free: Time,
    /// Inside an injected message-drop window: everything addressed to
    /// this node is discarded at send time (the node itself stays alive
    /// and its timers keep firing). See [`crate::fault`].
    inbound_drop: bool,
}

/// A buffered inter-node send, not yet run through the flow-level
/// network model. `(sent_at, from, oseq)` is the routing key: both
/// engines route sends in this order, so the receiver's inbound-link
/// reservations — and therefore delivery times — are identical no
/// matter which shard (or flush batch) a send travelled through.
pub(crate) struct SendRec<M> {
    pub(crate) sent_at: Time,
    pub(crate) from: NodeId,
    pub(crate) oseq: u64,
    pub(crate) to: NodeId,
    pub(crate) msg: M,
}

impl<M> SendRec<M> {
    fn key(&self) -> (Time, NodeId, u64) {
        (self.sent_at, self.from, self.oseq)
    }
}

/// The shard-runnable heart of the engine: event queue, slab, node
/// slots, traffic stats, and the flow-level network model for the
/// nodes it owns. The sequential [`Sim`] wraps exactly one core that
/// owns every node; [`crate::sharded::ShardedSim`] runs one core per
/// worker thread, each owning a partition of the nodes, and drains the
/// cores' `outbound` buffers across shards at its window barrier.
pub(crate) struct EngineCore<A: App> {
    cfg: NetConfig,
    now: Time,
    queue: CalendarQueue,
    slab: EventSlab<A::Msg>,
    /// Indexed by *global* node id; `None` = not owned by this core
    /// (a foreign shard's node). A failed-but-owned node keeps its
    /// slot with `app: None`.
    nodes: Vec<Option<Box<Slot<A>>>>,
    stats: NetStats,
    events_processed: u64,
    /// Inter-node sends awaiting key-sorted routing; in the sequential
    /// engine they flush as soon as the clock moves past their send
    /// instant, in the sharded engine at the next window barrier.
    outbound: Vec<SendRec<A::Msg>>,
    scratch: Vec<Action<A::Msg>>,
    batch: Vec<(NodeId, A::Msg)>,
}

impl<A: App> EngineCore<A> {
    pub(crate) fn new(cfg: NetConfig) -> Self {
        EngineCore {
            cfg,
            now: Time::ZERO,
            queue: CalendarQueue::new(),
            slab: EventSlab::new(),
            nodes: Vec::new(),
            stats: NetStats::new(0),
            events_processed: 0,
            outbound: Vec::new(),
            scratch: Vec::new(),
            batch: Vec::new(),
        }
    }

    fn seed_rng(&self, id: NodeId) -> SmallRng {
        SmallRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    /// Make the slot vector cover global ids `0..n` (foreign slots stay
    /// `None`).
    pub(crate) fn ensure_len(&mut self, n: usize) {
        if self.nodes.len() < n {
            self.nodes.resize_with(n, || None);
        }
    }

    /// Seat `app` at global id `id` (owned by this core) and run its
    /// `on_start` at the current time.
    pub(crate) fn add_local(&mut self, id: NodeId, app: A) {
        self.ensure_len(id as usize + 1);
        let rng = self.seed_rng(id);
        self.nodes[id as usize] = Some(Box::new(Slot {
            app: Some(app),
            rng,
            oseq: 0,
            inbound_free: Time::ZERO,
            inbound_drop: false,
        }));
        self.stats.ensure_nodes(id as usize + 1);
        self.dispatch(id, |app, ctx| app.on_start(ctx));
    }

    pub(crate) fn fail(&mut self, id: NodeId) {
        if let Some(Some(slot)) = self.nodes.get_mut(id as usize) {
            slot.app = None;
        }
    }

    pub(crate) fn alive(&self, id: NodeId) -> bool {
        self.nodes
            .get(id as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|s| s.app.is_some())
    }

    /// Number of owned, live nodes.
    pub(crate) fn alive_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|s| s.as_ref().is_some_and(|s| s.app.is_some()))
            .count()
    }

    pub(crate) fn revive(&mut self, id: NodeId, app: A) -> bool {
        let now = self.now;
        let rng = self.seed_rng(id);
        let Some(Some(slot)) = self.nodes.get_mut(id as usize) else {
            return false;
        };
        if slot.app.is_some() {
            return false;
        }
        slot.app = Some(app);
        slot.rng = rng;
        slot.inbound_free = now;
        self.dispatch(id, |app, ctx| app.on_start(ctx));
        true
    }

    pub(crate) fn set_inbound_drop(&mut self, id: NodeId, dropping: bool) {
        if let Some(Some(slot)) = self.nodes.get_mut(id as usize) {
            slot.inbound_drop = dropping;
        }
    }

    pub(crate) fn now(&self) -> Time {
        self.now
    }

    /// Raise the clock to `to` (used at the end of a bounded run and by
    /// the sharded barrier to align cores between runs).
    pub(crate) fn raise_now(&mut self, to: Time) {
        if self.now < to {
            self.now = to;
        }
    }

    pub(crate) fn stats(&self) -> &NetStats {
        &self.stats
    }

    pub(crate) fn events_processed(&self) -> u64 {
        self.events_processed
    }

    pub(crate) fn app(&self, id: NodeId) -> Option<&A> {
        self.nodes
            .get(id as usize)
            .and_then(|s| s.as_ref())
            .and_then(|s| s.app.as_ref())
    }

    pub(crate) fn with_app<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>) -> R,
    ) -> Option<R> {
        let slot = self.nodes.get_mut(id as usize)?.as_mut()?;
        let app = slot.app.as_mut()?;
        let mut actions = std::mem::take(&mut self.scratch);
        let r = {
            let mut ctx = Ctx::new(self.now, id, &mut slot.rng, &mut actions);
            f(app, &mut ctx)
        };
        self.apply_actions(id, &mut actions);
        self.scratch = actions;
        Some(r)
    }

    fn dispatch(&mut self, id: NodeId, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>)) {
        let Some(Some(slot)) = self.nodes.get_mut(id as usize) else {
            return;
        };
        let Some(app) = slot.app.as_mut() else {
            return;
        };
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx::new(self.now, id, &mut slot.rng, &mut actions);
            f(app, &mut ctx);
        }
        self.apply_actions(id, &mut actions);
        self.scratch = actions;
    }

    /// Allocate the next event-ordering sequence number of node `id`.
    fn next_oseq(&mut self, id: NodeId) -> u64 {
        let slot = self.nodes[id as usize]
            .as_mut()
            .expect("oseq of an owned node");
        slot.oseq += 1;
        slot.oseq
    }

    fn apply_actions(&mut self, from: NodeId, actions: &mut Vec<Action<A::Msg>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    let oseq = self.next_oseq(from);
                    if to == from {
                        // Local hand-off: no latency, no bandwidth, not
                        // network traffic — deliverable this instant, so
                        // it goes straight into the queue.
                        let now = self.now;
                        self.push_event(now, from, oseq, EventKind::Deliver { from, to, msg });
                    } else {
                        // Inter-node sends wait for key-sorted routing:
                        // the flow model must reserve the receiver's
                        // link in (sent_at, from, oseq) order, which is
                        // not emission order when several nodes send at
                        // the same instant.
                        self.outbound.push(SendRec {
                            sent_at: self.now,
                            from,
                            oseq,
                            to,
                            msg,
                        });
                    }
                }
                Action::Timer { after, token } => {
                    let oseq = self.next_oseq(from);
                    let at = self.now + after;
                    self.push_event(at, from, oseq, EventKind::Timer { node: from, token });
                }
            }
        }
    }

    /// Apply the flow-level network model to one buffered send and
    /// enqueue the delivery. The receiver must be owned by this core.
    fn route_rec(&mut self, rec: SendRec<A::Msg>) {
        let SendRec {
            sent_at,
            from,
            oseq,
            to,
            msg,
        } = rec;
        if self
            .nodes
            .get(to as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|s| s.inbound_drop)
        {
            self.stats.dropped_in_window += 1;
            return;
        }
        let latency = self.cfg.topology.latency(from, to);
        let link_arrival = sent_at + latency;
        let deliver_at = match self.cfg.inbound_bps {
            None => link_arrival,
            // A dead destination's link must not stay "busy": the drop
            // is classified at propagation arrival and no bandwidth is
            // reserved, so a later revival at this id starts clean.
            Some(_) if !self.alive(to) => link_arrival,
            Some(bps) => {
                let bytes = msg.wire_size();
                let transmit = Dur::from_secs_f64(bytes as f64 * 8.0 / bps);
                let slot = self.nodes[to as usize]
                    .as_mut()
                    .expect("alive receiver has a slot");
                let start = slot.inbound_free.max(link_arrival);
                let done = start + transmit;
                slot.inbound_free = done;
                done
            }
        };
        self.push_event(deliver_at, from, oseq, EventKind::Deliver { from, to, msg });
    }

    /// Route a batch of buffered sends in key order. Receivers must all
    /// be owned by this core (the sharded barrier partitions by
    /// destination shard before calling this).
    pub(crate) fn route_batch(&mut self, mut batch: Vec<SendRec<A::Msg>>) {
        batch.sort_unstable_by_key(SendRec::key);
        for rec in batch {
            self.route_rec(rec);
        }
    }

    /// Hand the accumulated inter-node sends to the caller (the sharded
    /// barrier), leaving the buffer empty.
    pub(crate) fn take_outbound(&mut self) -> Vec<SendRec<A::Msg>> {
        std::mem::take(&mut self.outbound)
    }

    /// Sequential-mode flush: once every event at the send instant has
    /// run (so no earlier-keyed send can still appear), route the
    /// buffer key-sorted. All buffered sends share one send instant —
    /// the clock cannot advance past it without flushing here first.
    fn flush_due(&mut self) {
        if self.outbound.is_empty() {
            return;
        }
        let t = self.outbound[0].sent_at;
        debug_assert!(self.outbound.iter().all(|r| r.sent_at == t));
        if self.queue.peek().is_some_and(|ev| ev.key.at <= t) {
            return;
        }
        let batch = std::mem::take(&mut self.outbound);
        self.route_batch(batch);
    }

    fn push_event(&mut self, at: Time, origin: NodeId, oseq: u64, kind: EventKind<A::Msg>) {
        let slot = self.slab.alloc(kind);
        self.queue.push(EvRef {
            key: EvKey { at, origin, oseq },
            slot,
        });
    }

    /// Time of the earliest queued event (buffered sends excluded —
    /// their delivery time is not known until they are routed).
    pub(crate) fn next_at(&self) -> Option<Time> {
        self.queue.peek().map(|e| e.key.at)
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.outbound.is_empty()
    }

    /// Process the next queued event — and, for a delivery, the run of
    /// immediately following same-instant deliveries to the same node
    /// **from origins at or below it**, dispatched through one borrow
    /// of the receiver. The origin bound keeps batching invisible to
    /// the event order: a handler in the batch may enqueue same-instant
    /// events, but those carry `origin = to` and a higher oseq than
    /// anything the node has queued, so they cannot sort before any
    /// admitted member. (A member from `origin > to` *could* be
    /// preceded by such a self-send in key order, and batch extents
    /// differ between the sequential queue and a shard's — so admitting
    /// one would break cross-engine bit-identity.) Returns `false` when
    /// the queue is empty.
    fn step_inner(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.key.at >= self.now, "time went backwards");
        self.now = ev.key.at;
        self.events_processed += 1;
        match self.slab.take(ev.slot) {
            EventKind::Deliver { from, to, msg } => {
                // Aliveness is constant across the batch: handlers
                // cannot fail nodes, and nothing else runs in between.
                let alive = self.alive(to);
                let mut batch = std::mem::take(&mut self.batch);
                if from != to {
                    if alive {
                        self.stats.record_delivery(to, msg.wire_size());
                    } else {
                        self.stats.dropped_to_failed += 1;
                    }
                }
                batch.push((from, msg));
                while self.queue.peek().is_some_and(|next| {
                    next.key.at == ev.key.at
                        && next.key.origin <= to
                        && matches!(
                            self.slab.get(next.slot),
                            EventKind::Deliver { to: t, .. } if *t == to
                        )
                }) {
                    let next = self.queue.pop().expect("peeked above");
                    let EventKind::Deliver { from, msg, .. } = self.slab.take(next.slot) else {
                        unreachable!("peek matched a delivery");
                    };
                    self.events_processed += 1;
                    if from != to {
                        if alive {
                            self.stats.record_delivery(to, msg.wire_size());
                        } else {
                            self.stats.dropped_to_failed += 1;
                        }
                    }
                    batch.push((from, msg));
                }
                if alive {
                    self.dispatch_batch(to, &mut batch);
                } else {
                    batch.clear();
                }
                self.batch = batch;
            }
            EventKind::Timer { node, token } => {
                self.dispatch(node, |app, ctx| app.on_timer(ctx, token));
            }
        }
        true
    }

    /// Deliver a batch of same-instant messages through a single `Ctx`,
    /// applying the accumulated actions once, in handler order.
    fn dispatch_batch(&mut self, to: NodeId, batch: &mut Vec<(NodeId, A::Msg)>) {
        let Some(Some(slot)) = self.nodes.get_mut(to as usize) else {
            batch.clear();
            return;
        };
        let Some(app) = slot.app.as_mut() else {
            batch.clear();
            return;
        };
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx::new(self.now, to, &mut slot.rng, &mut actions);
            for (from, msg) in batch.drain(..) {
                app.on_message(&mut ctx, from, msg);
            }
        }
        self.apply_actions(to, &mut actions);
        self.scratch = actions;
    }

    /// Flush-aware single step for the sequential engine.
    pub(crate) fn step(&mut self) -> bool {
        self.flush_due();
        self.step_inner()
    }

    /// Execute every queued event with `at < end` (window-exclusive),
    /// leaving inter-node sends buffered for the barrier. Returns the
    /// number of events processed.
    pub(crate) fn execute_window(&mut self, end: Time) -> u64 {
        let before = self.events_processed;
        while self.queue.peek().is_some_and(|ev| ev.key.at < end) {
            self.step_inner();
        }
        self.events_processed - before
    }
}

/// The discrete-event simulator hosting many [`App`] automata.
pub struct Sim<A: App> {
    core: EngineCore<A>,
    node_count: usize,
}

impl<A: App> Sim<A> {
    pub fn new(cfg: NetConfig) -> Self {
        Sim {
            core: EngineCore::new(cfg),
            node_count: 0,
        }
    }

    /// Add a node and run its `on_start` handler at the current time.
    pub fn add_node(&mut self, app: A) -> NodeId {
        let id = self.node_count as NodeId;
        self.node_count += 1;
        self.core.add_local(id, app);
        id
    }

    /// Abruptly fail a node: its state is gone, and all in-flight or
    /// future traffic addressed to it is dropped (§5.6).
    pub fn fail_node(&mut self, id: NodeId) {
        self.core.fail(id);
    }

    pub fn alive(&self, id: NodeId) -> bool {
        self.core.alive(id)
    }

    /// Re-seat a previously failed node with a fresh automaton — a new
    /// process joining at the same address. The RNG is reseeded exactly
    /// as in [`Self::add_node`] (revival is deterministic) and the
    /// inbound link starts idle. Returns `false` if `id` never existed
    /// or is still alive.
    pub fn revive(&mut self, id: NodeId, app: A) -> bool {
        self.core.revive(id, app)
    }

    /// Open (`true`) or close (`false`) a message-drop window on a
    /// node's inbound side: while open, every message addressed to it
    /// is discarded at send time — the node keeps its state and its
    /// timers keep firing, unlike [`Self::fail_node`].
    pub fn set_inbound_drop(&mut self, id: NodeId, dropping: bool) {
        self.core.set_inbound_drop(id, dropping);
    }

    pub fn node_count(&self) -> usize {
        self.node_count
    }

    pub fn alive_count(&self) -> usize {
        self.core.alive_count()
    }

    pub fn now(&self) -> Time {
        self.core.now()
    }

    pub fn stats(&self) -> &NetStats {
        self.core.stats()
    }

    pub fn events_processed(&self) -> u64 {
        self.core.events_processed()
    }

    /// Read-only access to a live node's automaton.
    pub fn app(&self, id: NodeId) -> Option<&A> {
        self.core.app(id)
    }

    /// Inject an external call into a node (e.g. "submit this query"),
    /// exactly as if a local application invoked the PIER API. Returns
    /// `None` if the node has failed.
    pub fn with_app<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>) -> R,
    ) -> Option<R> {
        self.core.with_app(id, f)
    }

    /// Process the next event (routing any due buffered sends first).
    /// Returns `false` when nothing is pending.
    pub fn step(&mut self) -> bool {
        self.core.step()
    }

    /// Run until the clock reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue drains.
    pub fn run_until(&mut self, deadline: Time) {
        loop {
            self.core.flush_due();
            match self.core.next_at() {
                Some(at) if at <= deadline => {
                    self.core.step_inner();
                }
                _ => break,
            }
        }
        self.core.raise_now(deadline);
    }

    pub fn run_for(&mut self, d: Dur) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Run until no events remain or `max_events` more steps have run.
    pub fn run_idle(&mut self, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step() {
                return true;
            }
        }
        self.core.is_idle()
    }

    /// Time of the next *queued* event, if any. Sends buffered by a
    /// handler or [`Self::with_app`] injection that have not yet been
    /// routed are not reflected here (their delivery instant is not
    /// known until the flow model runs at the next step).
    pub fn peek_next_time(&self) -> Option<Time> {
        self.core.next_at()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FullMesh;

    /// Ping automaton: node 0 sends to 1 on start; 1 echoes; 0 records RTT.
    struct Ping {
        peer: Option<NodeId>,
        echo_at: Option<Time>,
        got: Vec<(Time, u32)>,
    }

    #[derive(Clone, Debug)]
    struct Num(u32, usize); // value, wire size

    impl Wire for Num {
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    impl App for Ping {
        type Msg = Num;
        fn on_start(&mut self, ctx: &mut Ctx<Num>) {
            if let Some(p) = self.peer {
                ctx.send(p, Num(1, 100));
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<Num>, from: NodeId, msg: Num) {
            self.got.push((ctx.now, msg.0));
            if self.peer.is_none() {
                self.echo_at = Some(ctx.now);
                ctx.send(from, Num(msg.0 + 1, 100));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<Num>, _token: u64) {}
    }

    fn mesh_cfg(bps: Option<f64>) -> NetConfig {
        NetConfig {
            topology: Arc::new(FullMesh {
                latency: Dur::from_millis(100),
            }),
            inbound_bps: bps,
            seed: 1,
        }
    }

    #[test]
    fn round_trip_takes_two_latencies() {
        let mut sim = Sim::new(mesh_cfg(None));
        let b = Ping {
            peer: None,
            echo_at: None,
            got: vec![],
        };
        // Node 1 must exist before node 0 pings it, so add the responder
        // first and then the initiator pointing at it.
        let responder = sim.add_node(b);
        let a = Ping {
            peer: Some(responder),
            echo_at: None,
            got: vec![],
        };
        let initiator = sim.add_node(a);
        sim.run_idle(1000);
        let app = sim.app(initiator).unwrap();
        assert_eq!(app.got.len(), 1);
        assert_eq!(app.got[0].0, Time::from_secs_f64(0.2));
        assert_eq!(app.got[0].1, 2);
    }

    #[test]
    fn bandwidth_queues_on_receiver_inbound_link() {
        // Two 1,250,000-byte messages at 10 Mbps = 1 s transmission each.
        // Sent back-to-back from different sources, they serialize on the
        // receiver's inbound link: deliveries at 1.1 s and 2.1 s.
        struct Blast {
            target: Option<NodeId>,
            got: Vec<Time>,
        }
        impl App for Blast {
            type Msg = Num;
            fn on_start(&mut self, ctx: &mut Ctx<Num>) {
                if let Some(t) = self.target {
                    ctx.send(t, Num(0, 1_250_000));
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<Num>, _from: NodeId, _msg: Num) {
                self.got.push(ctx.now);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<Num>, _token: u64) {}
        }
        let mut sim: Sim<Blast> = Sim::new(NetConfig {
            topology: Arc::new(FullMesh {
                latency: Dur::from_millis(100),
            }),
            inbound_bps: Some(10e6),
            seed: 3,
        });
        let sink = sim.add_node(Blast {
            target: None,
            got: vec![],
        });
        sim.add_node(Blast {
            target: Some(sink),
            got: vec![],
        });
        sim.add_node(Blast {
            target: Some(sink),
            got: vec![],
        });
        sim.run_idle(100);
        let got = &sim.app(sink).unwrap().got;
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], Time::from_secs_f64(1.1));
        assert_eq!(got[1], Time::from_secs_f64(2.1));
        assert_eq!(sim.stats().bytes, 2_500_000);
        assert_eq!(sim.stats().max_inbound(), 2_500_000);
    }

    #[test]
    fn failed_node_drops_traffic_and_state() {
        let mut sim = Sim::new(mesh_cfg(None));
        let responder = sim.add_node(Ping {
            peer: None,
            echo_at: None,
            got: vec![],
        });
        sim.fail_node(responder);
        let initiator = sim.add_node(Ping {
            peer: Some(responder),
            echo_at: None,
            got: vec![],
        });
        sim.run_idle(100);
        assert!(sim.app(responder).is_none());
        assert!(sim.app(initiator).unwrap().got.is_empty());
        assert_eq!(sim.stats().dropped_to_failed, 1);
    }

    #[test]
    fn drop_window_discards_then_heals() {
        let mut sim = Sim::new(mesh_cfg(None));
        let responder = sim.add_node(Ping {
            peer: None,
            echo_at: None,
            got: vec![],
        });
        sim.set_inbound_drop(responder, true);
        let initiator = sim.add_node(Ping {
            peer: Some(responder),
            echo_at: None,
            got: vec![],
        });
        sim.run_idle(100);
        // The ping was discarded in the window; the responder is alive
        // but heard nothing.
        assert!(sim.app(responder).unwrap().got.is_empty());
        assert_eq!(sim.stats().dropped_in_window, 1);
        // Heal the link and ping again: traffic flows.
        sim.set_inbound_drop(responder, false);
        sim.with_app(initiator, |app, ctx| {
            let peer = app.peer.unwrap();
            ctx.send(peer, Num(1, 100));
        });
        sim.run_idle(100);
        assert_eq!(sim.app(responder).unwrap().got.len(), 1);
        assert_eq!(sim.app(initiator).unwrap().got.len(), 1);
    }

    #[test]
    fn timers_fire_in_order_and_run_until_advances_clock() {
        struct Timers {
            fired: Vec<(Time, u64)>,
        }
        impl App for Timers {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.set_timer(Dur::from_secs(3), 3);
                ctx.set_timer(Dur::from_secs(1), 1);
                ctx.set_timer(Dur::from_secs(2), 2);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<()>, _from: NodeId, _msg: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<()>, token: u64) {
                self.fired.push((ctx.now, token));
            }
        }
        let mut sim: Sim<Timers> = Sim::new(mesh_cfg(None));
        let n = sim.add_node(Timers { fired: vec![] });
        sim.run_until(Time::from_secs_f64(1.5));
        assert_eq!(sim.app(n).unwrap().fired, vec![(Time(1_000_000), 1)]);
        assert_eq!(sim.now(), Time::from_secs_f64(1.5));
        sim.run_idle(10);
        assert_eq!(sim.app(n).unwrap().fired.len(), 3);
        assert_eq!(sim.now(), Time(3_000_000));
    }

    #[test]
    fn dead_destination_skips_the_flow_model() {
        // Two 1.25 MB blasts at a dead sink. Pre-fix, each reserved a
        // second of the dead node's inbound link, so the drops landed
        // at 1.1 s and 2.1 s and the link stayed "busy"; post-fix both
        // are classified at propagation arrival (0.1 s).
        struct Blast {
            target: Option<NodeId>,
        }
        impl App for Blast {
            type Msg = Num;
            fn on_start(&mut self, ctx: &mut Ctx<Num>) {
                if let Some(t) = self.target {
                    ctx.send(t, Num(0, 1_250_000));
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<Num>, _from: NodeId, _msg: Num) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<Num>, _token: u64) {}
        }
        let mut sim: Sim<Blast> = Sim::new(mesh_cfg(Some(10e6)));
        let sink = sim.add_node(Blast { target: None });
        sim.fail_node(sink);
        sim.add_node(Blast { target: Some(sink) });
        sim.add_node(Blast { target: Some(sink) });
        sim.run_idle(100);
        assert_eq!(sim.stats().dropped_to_failed, 2);
        assert_eq!(sim.now(), Time::from_secs_f64(0.1));
    }

    #[test]
    fn revive_reseats_a_failed_node() {
        let mut sim = Sim::new(mesh_cfg(Some(10e6)));
        let responder = sim.add_node(Ping {
            peer: None,
            echo_at: None,
            got: vec![],
        });
        let initiator = sim.add_node(Ping {
            peer: Some(responder),
            echo_at: None,
            got: vec![],
        });
        assert!(!sim.revive(
            responder,
            Ping {
                peer: None,
                echo_at: None,
                got: vec![],
            }
        )); // still alive
        sim.fail_node(responder);
        sim.run_idle(100);
        assert_eq!(sim.stats().dropped_to_failed, 1);
        assert!(sim.revive(
            responder,
            Ping {
                peer: None,
                echo_at: None,
                got: vec![],
            }
        ));
        assert!(sim.alive(responder));
        // A fresh ping now round-trips against the revived state.
        sim.with_app(initiator, |app, ctx| {
            let peer = app.peer.unwrap();
            ctx.send(peer, Num(1, 100));
        });
        sim.run_idle(100);
        assert_eq!(sim.app(responder).unwrap().got.len(), 1);
        assert_eq!(sim.app(initiator).unwrap().got.len(), 1);
        assert!(!sim.revive(
            999,
            Ping {
                peer: None,
                echo_at: None,
                got: vec![],
            }
        )); // never existed
    }

    #[test]
    fn far_horizon_timers_survive_the_ring() {
        // 120 s and 200 s are beyond the ~67 s calendar horizon, so
        // these park in the overflow heap and must refill correctly.
        struct Timers {
            fired: Vec<(Time, u64)>,
        }
        impl App for Timers {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.set_timer(Dur::from_secs(200), 200);
                ctx.set_timer(Dur::from_secs(1), 1);
                ctx.set_timer(Dur::from_secs(120), 120);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<()>, _from: NodeId, _msg: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<()>, token: u64) {
                self.fired.push((ctx.now, token));
            }
        }
        let mut sim: Sim<Timers> = Sim::new(mesh_cfg(None));
        let n = sim.add_node(Timers { fired: vec![] });
        sim.run_idle(10);
        assert_eq!(
            sim.app(n).unwrap().fired,
            vec![
                (Time(1_000_000), 1),
                (Time(120_000_000), 120),
                (Time(200_000_000), 200),
            ]
        );
    }

    #[test]
    fn same_instant_deliveries_batch_in_origin_order() {
        struct Tell {
            target: Option<NodeId>,
            got: Vec<(Time, NodeId)>,
        }
        impl App for Tell {
            type Msg = Num;
            fn on_start(&mut self, ctx: &mut Ctx<Num>) {
                if let Some(t) = self.target {
                    ctx.send(t, Num(0, 100));
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<Num>, from: NodeId, _msg: Num) {
                self.got.push((ctx.now, from));
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<Num>, _token: u64) {}
        }
        let mut sim: Sim<Tell> = Sim::new(mesh_cfg(None));
        let sink = sim.add_node(Tell {
            target: None,
            got: vec![],
        });
        for _ in 0..3 {
            sim.add_node(Tell {
                target: Some(sink),
                got: vec![],
            });
        }
        sim.run_idle(100);
        // All three arrive at the same instant and must be handled in
        // origin (sender id) order even though they form one dispatch
        // batch — the shard-invariant ordering key decides.
        let got = &sim.app(sink).unwrap().got;
        let t = Time::from_secs_f64(0.1);
        assert_eq!(got, &vec![(t, 1), (t, 2), (t, 3)]);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Sim::new(mesh_cfg(Some(10e6)));
            let responder = sim.add_node(Ping {
                peer: None,
                echo_at: None,
                got: vec![],
            });
            let initiator = sim.add_node(Ping {
                peer: Some(responder),
                echo_at: None,
                got: vec![],
            });
            sim.run_idle(100);
            (
                sim.app(initiator).unwrap().got.clone(),
                sim.stats().bytes,
                sim.now(),
            )
        };
        assert_eq!(run(), run());
    }
}

//! The deterministic discrete-event engine.
//!
//! Models exactly what §5.2 of the paper models and nothing more: message
//! propagation latency (from a [`Topology`]) plus queueing on the
//! receiver's inbound link at a configurable capacity. CPU and memory
//! costs of query processing are ignored, and cross-traffic does not
//! exist, matching the paper's two stated simplifications.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::app::{Action, App, Ctx};
use crate::stats::NetStats;
use crate::time::{Dur, Time};
use crate::topology::Topology;
use crate::{NodeId, Wire};

/// Network-level configuration of a simulation run.
#[derive(Clone)]
pub struct NetConfig {
    /// Pairwise propagation latency.
    pub topology: Arc<dyn Topology>,
    /// Inbound link capacity per node in bits/second; `None` = infinite
    /// bandwidth (the §5.5.1 latency-only scenario).
    pub inbound_bps: Option<f64>,
    /// Master seed; each node's RNG derives from it.
    pub seed: u64,
}

impl NetConfig {
    /// The paper's baseline: full mesh, 100 ms latency, 10 Mbps inbound.
    pub fn paper_baseline(seed: u64) -> Self {
        NetConfig {
            topology: Arc::new(crate::topology::FullMesh::paper_default()),
            inbound_bps: Some(10e6),
            seed,
        }
    }

    /// Full mesh with infinite bandwidth (§5.5.1 "Infinite Bandwidth").
    pub fn latency_only(seed: u64) -> Self {
        NetConfig {
            inbound_bps: None,
            ..Self::paper_baseline(seed)
        }
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, token: u64 },
}

struct Event<M> {
    at: Time,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Slot<A> {
    app: Option<A>,
    rng: SmallRng,
    /// Instant at which this node's inbound link becomes free.
    inbound_free: Time,
    /// Inside an injected message-drop window: everything addressed to
    /// this node is discarded at send time (the node itself stays alive
    /// and its timers keep firing). See [`crate::fault`].
    inbound_drop: bool,
}

/// The discrete-event simulator hosting many [`App`] automata.
pub struct Sim<A: App> {
    cfg: NetConfig,
    now: Time,
    seq: u64,
    queue: BinaryHeap<Event<A::Msg>>,
    nodes: Vec<Slot<A>>,
    stats: NetStats,
    events_processed: u64,
    scratch: Vec<Action<A::Msg>>,
}

impl<A: App> Sim<A> {
    pub fn new(cfg: NetConfig) -> Self {
        Sim {
            cfg,
            now: Time::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            stats: NetStats::new(0),
            events_processed: 0,
            scratch: Vec::new(),
        }
    }

    /// Add a node and run its `on_start` handler at the current time.
    pub fn add_node(&mut self, app: A) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let rng = SmallRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        self.nodes.push(Slot {
            app: Some(app),
            rng,
            inbound_free: Time::ZERO,
            inbound_drop: false,
        });
        self.stats.ensure_nodes(self.nodes.len());
        self.dispatch(id, |app, ctx| app.on_start(ctx));
        id
    }

    /// Abruptly fail a node: its state is gone, and all in-flight or
    /// future traffic addressed to it is dropped (§5.6).
    pub fn fail_node(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(id as usize) {
            slot.app = None;
        }
    }

    pub fn alive(&self, id: NodeId) -> bool {
        self.nodes.get(id as usize).is_some_and(|s| s.app.is_some())
    }

    /// Open (`true`) or close (`false`) a message-drop window on a
    /// node's inbound side: while open, every message addressed to it
    /// is discarded at send time — the node keeps its state and its
    /// timers keep firing, unlike [`Self::fail_node`].
    pub fn set_inbound_drop(&mut self, id: NodeId, dropping: bool) {
        if let Some(slot) = self.nodes.get_mut(id as usize) {
            slot.inbound_drop = dropping;
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|s| s.app.is_some()).count()
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Read-only access to a live node's automaton.
    pub fn app(&self, id: NodeId) -> Option<&A> {
        self.nodes.get(id as usize).and_then(|s| s.app.as_ref())
    }

    /// Inject an external call into a node (e.g. "submit this query"),
    /// exactly as if a local application invoked the PIER API. Returns
    /// `None` if the node has failed.
    pub fn with_app<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>) -> R,
    ) -> Option<R> {
        let slot = self.nodes.get_mut(id as usize)?;
        let app = slot.app.as_mut()?;
        let mut actions = std::mem::take(&mut self.scratch);
        let r = {
            let mut ctx = Ctx::new(self.now, id, &mut slot.rng, &mut actions);
            f(app, &mut ctx)
        };
        self.apply_actions(id, &mut actions);
        self.scratch = actions;
        Some(r)
    }

    fn dispatch(&mut self, id: NodeId, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>)) {
        let Some(slot) = self.nodes.get_mut(id as usize) else {
            return;
        };
        let Some(app) = slot.app.as_mut() else {
            return;
        };
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx::new(self.now, id, &mut slot.rng, &mut actions);
            f(app, &mut ctx);
        }
        self.apply_actions(id, &mut actions);
        self.scratch = actions;
    }

    fn apply_actions(&mut self, from: NodeId, actions: &mut Vec<Action<A::Msg>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.route(from, to, msg),
                Action::Timer { after, token } => {
                    self.push_event(self.now + after, EventKind::Timer { node: from, token });
                }
            }
        }
    }

    /// Apply the flow-level network model and enqueue the delivery.
    fn route(&mut self, from: NodeId, to: NodeId, msg: A::Msg) {
        if from == to {
            // Local hand-off: no latency, no bandwidth, not network traffic.
            self.push_event(self.now, EventKind::Deliver { from, to, msg });
            return;
        }
        if self.nodes.get(to as usize).is_some_and(|s| s.inbound_drop) {
            self.stats.dropped_in_window += 1;
            return;
        }
        let latency = self.cfg.topology.latency(from, to);
        let link_arrival = self.now + latency;
        let deliver_at = match self.cfg.inbound_bps {
            None => link_arrival,
            Some(bps) => {
                let bytes = msg.wire_size();
                let transmit = Dur::from_secs_f64(bytes as f64 * 8.0 / bps);
                let slot = &mut self.nodes[to as usize];
                let start = slot.inbound_free.max(link_arrival);
                let done = start + transmit;
                slot.inbound_free = done;
                done
            }
        };
        self.push_event(deliver_at, EventKind::Deliver { from, to, msg });
    }

    fn push_event(&mut self, at: Time, kind: EventKind<A::Msg>) {
        self.seq += 1;
        self.queue.push(Event {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { from, to, msg } => {
                let alive = self.alive(to);
                if from != to {
                    if alive {
                        self.stats.record_delivery(to, msg.wire_size());
                    } else {
                        self.stats.dropped_to_failed += 1;
                    }
                }
                if alive {
                    self.dispatch(to, |app, ctx| app.on_message(ctx, from, msg));
                }
            }
            EventKind::Timer { node, token } => {
                self.dispatch(node, |app, ctx| app.on_timer(ctx, token));
            }
        }
        true
    }

    /// Run until the clock reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue drains.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    pub fn run_for(&mut self, d: Dur) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Run until no events remain or `max_events` more have been handled.
    pub fn run_idle(&mut self, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step() {
                return true;
            }
        }
        self.queue.is_empty()
    }

    /// Time of the next pending event, if any.
    pub fn peek_next_time(&self) -> Option<Time> {
        self.queue.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FullMesh;

    /// Ping automaton: node 0 sends to 1 on start; 1 echoes; 0 records RTT.
    struct Ping {
        peer: Option<NodeId>,
        echo_at: Option<Time>,
        got: Vec<(Time, u32)>,
    }

    #[derive(Clone, Debug)]
    struct Num(u32, usize); // value, wire size

    impl Wire for Num {
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    impl App for Ping {
        type Msg = Num;
        fn on_start(&mut self, ctx: &mut Ctx<Num>) {
            if let Some(p) = self.peer {
                ctx.send(p, Num(1, 100));
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<Num>, from: NodeId, msg: Num) {
            self.got.push((ctx.now, msg.0));
            if self.peer.is_none() {
                self.echo_at = Some(ctx.now);
                ctx.send(from, Num(msg.0 + 1, 100));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<Num>, _token: u64) {}
    }

    fn mesh_cfg(bps: Option<f64>) -> NetConfig {
        NetConfig {
            topology: Arc::new(FullMesh {
                latency: Dur::from_millis(100),
            }),
            inbound_bps: bps,
            seed: 1,
        }
    }

    #[test]
    fn round_trip_takes_two_latencies() {
        let mut sim = Sim::new(mesh_cfg(None));
        let b = Ping {
            peer: None,
            echo_at: None,
            got: vec![],
        };
        // Node 1 must exist before node 0 pings it, so add the responder
        // first and then the initiator pointing at it.
        let responder = sim.add_node(b);
        let a = Ping {
            peer: Some(responder),
            echo_at: None,
            got: vec![],
        };
        let initiator = sim.add_node(a);
        sim.run_idle(1000);
        let app = sim.app(initiator).unwrap();
        assert_eq!(app.got.len(), 1);
        assert_eq!(app.got[0].0, Time::from_secs_f64(0.2));
        assert_eq!(app.got[0].1, 2);
    }

    #[test]
    fn bandwidth_queues_on_receiver_inbound_link() {
        // Two 1,250,000-byte messages at 10 Mbps = 1 s transmission each.
        // Sent back-to-back from different sources, they serialize on the
        // receiver's inbound link: deliveries at 1.1 s and 2.1 s.
        struct Blast {
            target: Option<NodeId>,
            got: Vec<Time>,
        }
        impl App for Blast {
            type Msg = Num;
            fn on_start(&mut self, ctx: &mut Ctx<Num>) {
                if let Some(t) = self.target {
                    ctx.send(t, Num(0, 1_250_000));
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<Num>, _from: NodeId, _msg: Num) {
                self.got.push(ctx.now);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<Num>, _token: u64) {}
        }
        let mut sim: Sim<Blast> = Sim::new(NetConfig {
            topology: Arc::new(FullMesh {
                latency: Dur::from_millis(100),
            }),
            inbound_bps: Some(10e6),
            seed: 3,
        });
        let sink = sim.add_node(Blast {
            target: None,
            got: vec![],
        });
        sim.add_node(Blast {
            target: Some(sink),
            got: vec![],
        });
        sim.add_node(Blast {
            target: Some(sink),
            got: vec![],
        });
        sim.run_idle(100);
        let got = &sim.app(sink).unwrap().got;
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], Time::from_secs_f64(1.1));
        assert_eq!(got[1], Time::from_secs_f64(2.1));
        assert_eq!(sim.stats().bytes, 2_500_000);
        assert_eq!(sim.stats().max_inbound(), 2_500_000);
    }

    #[test]
    fn failed_node_drops_traffic_and_state() {
        let mut sim = Sim::new(mesh_cfg(None));
        let responder = sim.add_node(Ping {
            peer: None,
            echo_at: None,
            got: vec![],
        });
        sim.fail_node(responder);
        let initiator = sim.add_node(Ping {
            peer: Some(responder),
            echo_at: None,
            got: vec![],
        });
        sim.run_idle(100);
        assert!(sim.app(responder).is_none());
        assert!(sim.app(initiator).unwrap().got.is_empty());
        assert_eq!(sim.stats().dropped_to_failed, 1);
    }

    #[test]
    fn drop_window_discards_then_heals() {
        let mut sim = Sim::new(mesh_cfg(None));
        let responder = sim.add_node(Ping {
            peer: None,
            echo_at: None,
            got: vec![],
        });
        sim.set_inbound_drop(responder, true);
        let initiator = sim.add_node(Ping {
            peer: Some(responder),
            echo_at: None,
            got: vec![],
        });
        sim.run_idle(100);
        // The ping was discarded in the window; the responder is alive
        // but heard nothing.
        assert!(sim.app(responder).unwrap().got.is_empty());
        assert_eq!(sim.stats().dropped_in_window, 1);
        // Heal the link and ping again: traffic flows.
        sim.set_inbound_drop(responder, false);
        sim.with_app(initiator, |app, ctx| {
            let peer = app.peer.unwrap();
            ctx.send(peer, Num(1, 100));
        });
        sim.run_idle(100);
        assert_eq!(sim.app(responder).unwrap().got.len(), 1);
        assert_eq!(sim.app(initiator).unwrap().got.len(), 1);
    }

    #[test]
    fn timers_fire_in_order_and_run_until_advances_clock() {
        struct Timers {
            fired: Vec<(Time, u64)>,
        }
        impl App for Timers {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.set_timer(Dur::from_secs(3), 3);
                ctx.set_timer(Dur::from_secs(1), 1);
                ctx.set_timer(Dur::from_secs(2), 2);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<()>, _from: NodeId, _msg: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<()>, token: u64) {
                self.fired.push((ctx.now, token));
            }
        }
        let mut sim: Sim<Timers> = Sim::new(mesh_cfg(None));
        let n = sim.add_node(Timers { fired: vec![] });
        sim.run_until(Time::from_secs_f64(1.5));
        assert_eq!(sim.app(n).unwrap().fired, vec![(Time(1_000_000), 1)]);
        assert_eq!(sim.now(), Time::from_secs_f64(1.5));
        sim.run_idle(10);
        assert_eq!(sim.app(n).unwrap().fired.len(), 3);
        assert_eq!(sim.now(), Time(3_000_000));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Sim::new(mesh_cfg(Some(10e6)));
            let responder = sim.add_node(Ping {
                peer: None,
                echo_at: None,
                got: vec![],
            });
            let initiator = sim.add_node(Ping {
                peer: Some(responder),
                echo_at: None,
                got: vec![],
            });
            sim.run_idle(100);
            (
                sim.app(initiator).unwrap().got.clone(),
                sim.stats().bytes,
                sim.now(),
            )
        };
        assert_eq!(run(), run());
    }
}

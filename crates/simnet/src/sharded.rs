//! Parallel conservative time-window execution of the [`Sim`](crate::Sim) engine.
//!
//! [`ShardedSim`] partitions nodes across `W` worker threads via a
//! [`ShardMap`]; each shard owns an `EngineCore` — its own event slab,
//! calendar queue, node slots, and traffic stats. Execution proceeds in
//! *windows* separated by a deterministic barrier:
//!
//! ```text
//! round:
//!   1. every shard routes the cross-shard sends addressed to it
//!      (sorted by the shard-invariant key (sent_at, origin, oseq))
//!      and reports the time of its earliest queued event
//!   2. the coordinator computes T = min over shards ("gmin");
//!      if no shard has an event ≤ deadline, the run is over
//!   3. every shard executes its events in [T, H) in parallel, where
//!      H = min(T + lookahead, deadline+1µs) and lookahead is
//!      Topology::min_latency(); inter-node sends are buffered
//!   4. buffered sends are partitioned by destination shard → step 1
//! ```
//!
//! # Why this is bit-identical to the sequential engine
//!
//! *Window invariant.* Lookahead is the minimum link latency over
//! distinct pairs, so a message sent at `t ≥ T` is delivered no earlier
//! than `t + lookahead ≥ T + lookahead ≥ H`: nothing sent inside a
//! window can be heard inside that same window, on any shard. Events
//! within a window therefore depend only on state established before
//! the window — which the barrier made identical to the sequential
//! engine's — so each shard may run its slice independently.
//!
//! *Merge order.* Events are totally ordered by the content-derived key
//! `(at, origin, oseq)` ([`crate::engine`]), which does not mention the
//! shard map; and the flow-level bandwidth model routes all inter-node
//! sends in that same key order in both engines (the sequential engine
//! buffers and key-sorts sends too). Hence every node sees the same
//! dispatch sequence, draws from the same per-node RNG stream (seeded
//! from the run seed and NodeId only), and produces the same actions —
//! under any `W` and any shard map.
//!
//! *Stats.* [`NetStats`] counters are plain sums, so the merged
//! per-shard stats equal the sequential engine's.
//!
//! Progress requires `lookahead > 0` (otherwise a same-instant
//! cross-shard delivery could interleave with an already-executed
//! window and the bit-identity argument collapses); construction
//! asserts it. Both modeled topologies satisfy this: a full mesh by its
//! constant latency, transit-stub by the 2 ms intra-stub link.

use std::thread;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::app::{App, Ctx};
use crate::engine::{EngineCore, NetConfig, SendRec};
use crate::stats::NetStats;
use crate::time::{Dur, Time};
use crate::NodeId;

/// Assignment of node ids to shards.
#[derive(Debug, Clone)]
pub enum ShardMap {
    /// `id % shards` — the default; keeps shard loads balanced for the
    /// dense ids both engines assign and works for nodes added at any
    /// time.
    RoundRobin { shards: usize },
    /// Explicit per-id assignment (e.g. contiguous ranges); ids at or
    /// past the table fall back to round-robin.
    Explicit { shards: usize, assign: Vec<u32> },
}

impl ShardMap {
    pub fn round_robin(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        ShardMap::RoundRobin { shards }
    }

    /// Explicit table mapping node id → shard index.
    pub fn explicit(shards: usize, assign: Vec<u32>) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(
            assign.iter().all(|&s| (s as usize) < shards),
            "assignment out of range"
        );
        ShardMap::Explicit { shards, assign }
    }

    pub fn shards(&self) -> usize {
        match self {
            ShardMap::RoundRobin { shards } => *shards,
            ShardMap::Explicit { shards, .. } => *shards,
        }
    }

    pub fn shard_of(&self, id: NodeId) -> usize {
        match self {
            ShardMap::RoundRobin { shards } => id as usize % shards,
            ShardMap::Explicit { shards, assign } => match assign.get(id as usize) {
                Some(&s) => s as usize,
                None => id as usize % shards,
            },
        }
    }
}

/// Coordinator → worker commands for one barrier round.
enum Cmd<M> {
    /// Route these sends (addressed to this shard's nodes), then report
    /// the earliest queued event time.
    Route(Vec<SendRec<M>>),
    /// Execute the window `[now, H)`, then hand back the outbound sends
    /// partitioned by destination shard.
    Execute(Time),
    /// Run is over: return the core through the join handle.
    Exit,
}

enum Reply<M> {
    NextAt(Option<Time>),
    Outbound(Vec<Vec<SendRec<M>>>),
}

/// The sharded discrete-event engine: same API surface and — by
/// construction — same results as [`Sim`], W-way parallel between
/// barriers.
///
/// [`Sim`]: crate::Sim
pub struct ShardedSim<A: App> {
    cores: Vec<EngineCore<A>>,
    map: ShardMap,
    lookahead: Dur,
    now: Time,
    node_count: usize,
}

impl<A: App> ShardedSim<A> {
    /// Engine over `map.shards()` worker shards. Panics if the
    /// topology's `min_latency` is zero (no conservative lookahead).
    pub fn new(cfg: NetConfig, map: ShardMap) -> Self {
        let lookahead = cfg.topology.min_latency();
        assert!(
            lookahead > Dur::ZERO,
            "sharded execution needs a positive minimum link latency"
        );
        let cores = (0..map.shards())
            .map(|_| EngineCore::new(cfg.clone()))
            .collect();
        ShardedSim {
            cores,
            map,
            lookahead,
            now: Time::ZERO,
            node_count: 0,
        }
    }

    /// Number of worker shards (`W`).
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    fn core_of(&self, id: NodeId) -> &EngineCore<A> {
        &self.cores[self.map.shard_of(id)]
    }

    fn core_of_mut(&mut self, id: NodeId) -> &mut EngineCore<A> {
        let s = self.map.shard_of(id);
        &mut self.cores[s]
    }

    /// Add a node and run its `on_start` handler at the current time.
    pub fn add_node(&mut self, app: A) -> NodeId {
        let id = self.node_count as NodeId;
        self.node_count += 1;
        self.core_of_mut(id).add_local(id, app);
        id
    }

    /// Abruptly fail a node (see [`Sim::fail_node`]).
    ///
    /// [`Sim::fail_node`]: crate::Sim::fail_node
    pub fn fail_node(&mut self, id: NodeId) {
        self.core_of_mut(id).fail(id);
    }

    pub fn alive(&self, id: NodeId) -> bool {
        self.core_of(id).alive(id)
    }

    /// Re-seat a previously failed node (see [`Sim::revive`]).
    ///
    /// [`Sim::revive`]: crate::Sim::revive
    pub fn revive(&mut self, id: NodeId, app: A) -> bool {
        self.core_of_mut(id).revive(id, app)
    }

    /// Open or close an inbound message-drop window on a node.
    pub fn set_inbound_drop(&mut self, id: NodeId, dropping: bool) {
        self.core_of_mut(id).set_inbound_drop(id, dropping);
    }

    pub fn node_count(&self) -> usize {
        self.node_count
    }

    pub fn alive_count(&self) -> usize {
        self.cores.iter().map(|c| c.alive_count()).sum()
    }

    pub fn now(&self) -> Time {
        self.now
    }

    /// Merged traffic statistics across all shards — field-for-field
    /// equal to what the sequential engine would report.
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats::new(self.node_count);
        for core in &self.cores {
            total.merge(core.stats());
        }
        total
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.cores.iter().map(|c| c.events_processed()).sum()
    }

    /// Read-only access to a live node's automaton.
    pub fn app(&self, id: NodeId) -> Option<&A> {
        self.core_of(id).app(id)
    }

    /// Inject an external call into a node, exactly as on [`Sim`].
    ///
    /// [`Sim`]: crate::Sim
    pub fn with_app<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>) -> R,
    ) -> Option<R> {
        self.core_of_mut(id).with_app(id, f)
    }

    /// Run until the clock reaches `deadline` (events at exactly
    /// `deadline` are processed) or every shard's queue drains.
    pub fn run_until(&mut self, deadline: Time) {
        let w = self.cores.len();
        // Sends injected since the last run (add_node / with_app /
        // revive on_start actions) sit in the cores' outbound buffers;
        // partition them by destination shard so the first Route phase
        // sees them — otherwise the gmin scan could miss pending work.
        let mut inbound: Vec<Vec<SendRec<A::Msg>>> = (0..w).map(|_| Vec::new()).collect();
        for s in 0..w {
            for rec in self.cores[s].take_outbound() {
                inbound[self.map.shard_of(rec.to)].push(rec);
            }
        }

        let cores = std::mem::take(&mut self.cores);
        let map = &self.map;
        let lookahead = self.lookahead;
        let exclusive = deadline.next();

        self.cores = thread::scope(|scope| {
            let mut cmd_txs: Vec<Sender<Cmd<A::Msg>>> = Vec::with_capacity(w);
            let mut reply_rxs: Vec<Receiver<Reply<A::Msg>>> = Vec::with_capacity(w);
            let mut handles = Vec::with_capacity(w);
            for mut core in cores {
                let (cmd_tx, cmd_rx) = unbounded::<Cmd<A::Msg>>();
                let (reply_tx, reply_rx) = unbounded::<Reply<A::Msg>>();
                cmd_txs.push(cmd_tx);
                reply_rxs.push(reply_rx);
                handles.push(scope.spawn(move || {
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::Route(batch) => {
                                core.route_batch(batch);
                                let _ = reply_tx.send(Reply::NextAt(core.next_at()));
                            }
                            Cmd::Execute(h) => {
                                core.execute_window(h);
                                let mut parts: Vec<Vec<SendRec<A::Msg>>> =
                                    (0..w).map(|_| Vec::new()).collect();
                                for rec in core.take_outbound() {
                                    parts[map.shard_of(rec.to)].push(rec);
                                }
                                let _ = reply_tx.send(Reply::Outbound(parts));
                            }
                            Cmd::Exit => break,
                        }
                    }
                    core
                }));
            }

            loop {
                // Phase R: route the previous window's cross-shard
                // sends, collect each shard's earliest event time.
                for (s, tx) in cmd_txs.iter().enumerate() {
                    let batch = std::mem::take(&mut inbound[s]);
                    tx.send(Cmd::Route(batch)).expect("worker alive");
                }
                let mut gmin: Option<Time> = None;
                for rx in &reply_rxs {
                    let Ok(Reply::NextAt(t)) = rx.recv() else {
                        unreachable!("worker died mid-run");
                    };
                    gmin = match (gmin, t) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
                // All sends are routed by now, so stopping here leaves
                // no buffered work — only events beyond the deadline.
                let Some(t) = gmin else { break };
                if t > deadline {
                    break;
                }
                // Phase W: the conservative window. `t ≤ deadline` and
                // `lookahead > 0` guarantee `h > t`: progress.
                let h = exclusive.min(t + lookahead);
                for tx in &cmd_txs {
                    tx.send(Cmd::Execute(h)).expect("worker alive");
                }
                for rx in &reply_rxs {
                    let Ok(Reply::Outbound(parts)) = rx.recv() else {
                        unreachable!("worker died mid-run");
                    };
                    for (d, part) in parts.into_iter().enumerate() {
                        inbound[d].extend(part);
                    }
                }
            }

            for tx in &cmd_txs {
                tx.send(Cmd::Exit).expect("worker alive");
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        for core in &mut self.cores {
            core.raise_now(deadline);
        }
        self.now = deadline.max(self.now);
    }

    pub fn run_for(&mut self, d: Dur) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FullMesh;
    use crate::Wire;
    use std::sync::Arc;

    /// Gossip automaton: every node pings a pseudo-random peer each
    /// second, replies echo, and everything is recorded — enough
    /// cross-shard chatter to exercise the barrier.
    #[derive(Clone, Debug)]
    struct Note(u64);
    impl Wire for Note {
        fn wire_size(&self) -> usize {
            64
        }
    }

    struct Gossip {
        n: u32,
        log: Vec<(Time, NodeId, u64)>,
    }
    impl App for Gossip {
        type Msg = Note;
        fn on_start(&mut self, ctx: &mut Ctx<Note>) {
            ctx.set_timer(Dur::from_secs(1), 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<Note>, from: NodeId, msg: Note) {
            self.log.push((ctx.now, from, msg.0));
            if msg.0.is_multiple_of(2) {
                ctx.send(from, Note(msg.0 + 1));
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<Note>, token: u64) {
            use rand::Rng;
            let peer = ctx.rng.gen_range(0..self.n);
            ctx.send(peer, Note(token * 2));
            if token < 5 {
                ctx.set_timer(Dur::from_secs(1), token + 1);
            }
        }
    }

    fn cfg(seed: u64) -> NetConfig {
        NetConfig {
            topology: Arc::new(FullMesh {
                latency: Dur::from_millis(100),
            }),
            inbound_bps: Some(10e6),
            seed,
        }
    }

    type Fp = (Vec<Vec<(Time, NodeId, u64)>>, u64, NetStats);

    fn run_seq(n: u32, seed: u64) -> Fp {
        let mut sim = crate::Sim::new(cfg(seed));
        for _ in 0..n {
            sim.add_node(Gossip { n, log: vec![] });
        }
        sim.run_until(Time::from_secs_f64(8.0));
        let logs = (0..n).map(|i| sim.app(i).unwrap().log.clone()).collect();
        (logs, sim.events_processed(), sim.stats().clone())
    }

    fn run_sharded(n: u32, seed: u64, map: ShardMap) -> Fp {
        let mut sim = ShardedSim::new(cfg(seed), map);
        for _ in 0..n {
            sim.add_node(Gossip { n, log: vec![] });
        }
        sim.run_until(Time::from_secs_f64(8.0));
        let logs = (0..n).map(|i| sim.app(i).unwrap().log.clone()).collect();
        (logs, sim.events_processed(), sim.stats())
    }

    fn assert_same(a: &Fp, b: &Fp) {
        assert_eq!(a.0, b.0, "per-node logs diverge");
        assert_eq!(a.1, b.1, "event counts diverge");
        assert_eq!(a.2.messages, b.2.messages);
        assert_eq!(a.2.bytes, b.2.bytes);
        assert_eq!(a.2.inbound_bytes, b.2.inbound_bytes);
        assert_eq!(a.2.dropped_to_failed, b.2.dropped_to_failed);
        assert_eq!(a.2.dropped_in_window, b.2.dropped_in_window);
    }

    #[test]
    fn matches_sequential_at_every_width() {
        let seq = run_seq(24, 42);
        for w in [1, 2, 3, 4, 8] {
            let sharded = run_sharded(24, 42, ShardMap::round_robin(w));
            assert_same(&seq, &sharded);
        }
    }

    #[test]
    fn explicit_contiguous_ranges_match_too() {
        let seq = run_seq(24, 7);
        // Contiguous split: nodes 0..8 → shard 0, 8..16 → 1, 16..24 → 2.
        let assign = (0..24u32).map(|i| i / 8).collect();
        let sharded = run_sharded(24, 7, ShardMap::explicit(3, assign));
        assert_same(&seq, &sharded);
    }

    #[test]
    fn faults_between_runs_match_sequential() {
        let drive_seq = || {
            let mut sim = crate::Sim::new(cfg(5));
            for _ in 0..12 {
                sim.add_node(Gossip { n: 12, log: vec![] });
            }
            sim.run_until(Time::from_secs_f64(2.5));
            sim.fail_node(3);
            sim.set_inbound_drop(7, true);
            sim.run_until(Time::from_secs_f64(4.5));
            sim.revive(3, Gossip { n: 12, log: vec![] });
            sim.set_inbound_drop(7, false);
            sim.run_until(Time::from_secs_f64(8.0));
            let logs: Vec<_> = (0..12).map(|i| sim.app(i).unwrap().log.clone()).collect();
            (logs, sim.events_processed(), sim.stats().clone())
        };
        let drive_sharded = |w: usize| {
            let mut sim = ShardedSim::new(cfg(5), ShardMap::round_robin(w));
            for _ in 0..12 {
                sim.add_node(Gossip { n: 12, log: vec![] });
            }
            sim.run_until(Time::from_secs_f64(2.5));
            sim.fail_node(3);
            sim.set_inbound_drop(7, true);
            sim.run_until(Time::from_secs_f64(4.5));
            assert!(sim.revive(3, Gossip { n: 12, log: vec![] }));
            sim.set_inbound_drop(7, false);
            sim.run_until(Time::from_secs_f64(8.0));
            let logs: Vec<_> = (0..12).map(|i| sim.app(i).unwrap().log.clone()).collect();
            (logs, sim.events_processed(), sim.stats())
        };
        let seq = drive_seq();
        for w in [1, 2, 4] {
            assert_same(&seq, &drive_sharded(w));
        }
    }

    #[test]
    fn injection_between_runs_matches_sequential() {
        let mut seq = crate::Sim::new(cfg(9));
        let mut shd = ShardedSim::new(cfg(9), ShardMap::round_robin(4));
        for _ in 0..10 {
            seq.add_node(Gossip { n: 10, log: vec![] });
            shd.add_node(Gossip { n: 10, log: vec![] });
        }
        seq.run_for(Dur::from_secs(2));
        shd.run_for(Dur::from_secs(2));
        for sim_inject in [0u32, 9] {
            seq.with_app(sim_inject, |_, ctx| {
                ctx.send((sim_inject + 1) % 10, Note(100))
            });
            shd.with_app(sim_inject, |_, ctx| {
                ctx.send((sim_inject + 1) % 10, Note(100))
            });
        }
        seq.run_for(Dur::from_secs(2));
        shd.run_for(Dur::from_secs(2));
        assert_eq!(seq.events_processed(), shd.events_processed());
        assert_eq!(seq.now(), shd.now());
        for i in 0..10 {
            assert_eq!(seq.app(i).unwrap().log, shd.app(i).unwrap().log);
        }
    }

    #[test]
    #[should_panic(expected = "positive minimum link latency")]
    fn zero_lookahead_is_rejected() {
        let cfg = NetConfig {
            topology: Arc::new(FullMesh { latency: Dur::ZERO }),
            inbound_bps: None,
            seed: 0,
        };
        let _ = ShardedSim::<Gossip>::new(cfg, ShardMap::round_robin(2));
    }

    #[test]
    fn shard_map_assignments() {
        let rr = ShardMap::round_robin(4);
        assert_eq!(rr.shards(), 4);
        assert_eq!(rr.shard_of(0), 0);
        assert_eq!(rr.shard_of(7), 3);
        let ex = ShardMap::explicit(2, vec![1, 1, 0]);
        assert_eq!(ex.shard_of(0), 1);
        assert_eq!(ex.shard_of(2), 0);
        assert_eq!(ex.shard_of(5), 1); // past the table: round-robin
    }
}

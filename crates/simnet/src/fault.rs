//! Deterministic fault injection, engine-agnostic.
//!
//! The paper's churn experiments (§5.6, Fig. 6) fail nodes on a schedule
//! and measure what the query layer still delivers. This module is that
//! schedule as a first-class object: a [`FaultScript`] is a seeded,
//! time-ordered list of kill and message-drop-window events, and a
//! [`FaultDriver`] replays it against *any* engine — the discrete-event
//! [`crate::Sim`] (virtual clock) or the actor-runtime
//! [`crate::cluster::Cluster`] (wall clock) — through a caller-supplied
//! apply closure. The driver's trace records each fault at its *script*
//! time, not the engine instant it was applied at, so the same seed and
//! script produce byte-identical traces on both engines: the
//! cross-engine determinism the test harness pins.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::Dur;
use crate::NodeId;

/// One fault, ready to apply to an engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Abrupt node failure: state gone, traffic to it dropped (§5.6's
    /// "ungraceful" departure — no goodbye messages).
    Kill { node: NodeId },
    /// Start of a message-drop window: everything addressed to `node`
    /// is silently discarded until the matching [`Fault::DropEnd`].
    /// Models a transient partition / lossy link, distinct from death:
    /// the node keeps its state and its timers keep firing.
    DropStart { node: NodeId },
    /// End of a message-drop window: the link heals.
    DropEnd { node: NodeId },
    /// A replacement node joins at a previously killed id — a fresh
    /// process at the same address, with none of the old state. The
    /// apply closure is expected to construct the newcomer and hand it
    /// to `Sim::revive` / `ShardedSim::revive` / `Cluster::revive`.
    Join { node: NodeId },
}

impl Fault {
    /// The node the fault acts on.
    pub fn node(&self) -> NodeId {
        match self {
            Fault::Kill { node }
            | Fault::DropStart { node }
            | Fault::DropEnd { node }
            | Fault::Join { node } => *node,
        }
    }
}

/// A fault with its script-time offset (since script start).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scheduled {
    pub at: Dur,
    pub fault: Fault,
}

/// A time-ordered fault schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultScript {
    events: Vec<Scheduled>,
}

impl FaultScript {
    /// Build from an arbitrary event list; events are sorted by time
    /// (stable, so same-instant events keep their listed order).
    pub fn new(mut events: Vec<Scheduled>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultScript { events }
    }

    /// Seeded churn: `kills` node failures over `span`, victims drawn
    /// without replacement from `candidates`. Kill instants are evenly
    /// staggered with ±20% jitter — evenly enough that each repair can
    /// finish before the next failure, jittered enough that failures
    /// never align with a maintenance-tick boundary by construction.
    /// Same seed, same candidates → same script, on any engine.
    pub fn churn(seed: u64, span: Dur, kills: usize, candidates: &[NodeId]) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pool: Vec<NodeId> = candidates.to_vec();
        let kills = kills.min(pool.len());
        let slot = span.as_micros() / (kills as u64 + 1).max(1);
        let mut events = Vec::with_capacity(kills);
        for i in 0..kills {
            let victim = pool.swap_remove(rng.gen_range(0..pool.len()));
            let center = slot * (i as u64 + 1);
            let jitter = rng.gen_range(0..=(slot / 5).max(1) * 2);
            let at = Dur::from_micros(center - slot / 5 + jitter);
            events.push(Scheduled {
                at,
                fault: Fault::Kill { node: victim },
            });
        }
        Self::new(events)
    }

    /// Seeded churn with replacement: like [`Self::churn`], but each
    /// kill is followed `rejoin_after` later by a [`Fault::Join`] of a
    /// fresh node at the same id — the paper's steady-state churn,
    /// where departures and arrivals balance and the overlay never
    /// shrinks for long.
    pub fn churn_with_rejoin(
        seed: u64,
        span: Dur,
        kills: usize,
        candidates: &[NodeId],
        rejoin_after: Dur,
    ) -> Self {
        let mut script = Self::churn(seed, span, kills, candidates);
        let joins: Vec<Scheduled> = script
            .events
            .iter()
            .filter_map(|e| match e.fault {
                Fault::Kill { node } => Some(Scheduled {
                    at: e.at + rejoin_after,
                    fault: Fault::Join { node },
                }),
                _ => None,
            })
            .collect();
        script.events.extend(joins);
        Self::new(script.events)
    }

    /// Add a message-drop window `[from, from + len)` on one node.
    pub fn with_drop_window(mut self, node: NodeId, from: Dur, len: Dur) -> Self {
        self.events.push(Scheduled {
            at: from,
            fault: Fault::DropStart { node },
        });
        self.events.push(Scheduled {
            at: from + len,
            fault: Fault::DropEnd { node },
        });
        Self::new(self.events)
    }

    /// Add a scheduled join of a replacement node at `node`.
    pub fn with_join(mut self, node: NodeId, at: Dur) -> Self {
        self.events.push(Scheduled {
            at,
            fault: Fault::Join { node },
        });
        Self::new(self.events)
    }

    pub fn events(&self) -> &[Scheduled] {
        &self.events
    }

    /// Nodes killed anywhere in the script.
    pub fn killed(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|e| match e.fault {
                Fault::Kill { node } => Some(node),
                _ => None,
            })
            .collect()
    }

    /// Ids rejoined by a replacement anywhere in the script.
    pub fn joined(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|e| match e.fault {
                Fault::Join { node } => Some(node),
                _ => None,
            })
            .collect()
    }
}

/// Replays a [`FaultScript`] against an engine and records the trace.
///
/// The driver is clocked by the *caller*: call [`FaultDriver::advance`]
/// with the time elapsed since the experiment started (virtual for Sim,
/// wall for Cluster) and an apply closure that executes each due fault.
/// Polling cadence does not change the trace — only which faults have
/// fired by the end, and they fire in script order regardless.
#[derive(Debug)]
pub struct FaultDriver {
    script: FaultScript,
    next: usize,
    trace: Vec<Scheduled>,
}

impl FaultDriver {
    pub fn new(script: FaultScript) -> Self {
        FaultDriver {
            script,
            next: 0,
            trace: Vec::new(),
        }
    }

    /// Apply every not-yet-applied fault scheduled at or before
    /// `elapsed`. Returns how many fired.
    pub fn advance(&mut self, elapsed: Dur, mut apply: impl FnMut(&Fault)) -> usize {
        let mut fired = 0;
        while let Some(ev) = self.script.events.get(self.next) {
            if ev.at > elapsed {
                break;
            }
            apply(&ev.fault);
            self.trace.push(*ev);
            self.next += 1;
            fired += 1;
        }
        fired
    }

    /// Script time of the next pending fault, if any — callers can run
    /// the engine exactly up to it instead of polling blindly.
    pub fn next_at(&self) -> Option<Dur> {
        self.script.events.get(self.next).map(|e| e.at)
    }

    pub fn finished(&self) -> bool {
        self.next == self.script.events.len()
    }

    /// Everything applied so far, in script time: the cross-engine
    /// determinism artifact (same seed + script → identical traces on
    /// Sim and Cluster).
    pub fn trace(&self) -> &[Scheduled] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_is_deterministic_and_spaced() {
        let nodes: Vec<NodeId> = (1..40).collect();
        let a = FaultScript::churn(42, Dur::from_secs(60), 5, &nodes);
        let b = FaultScript::churn(42, Dur::from_secs(60), 5, &nodes);
        assert_eq!(a, b);
        let c = FaultScript::churn(43, Dur::from_secs(60), 5, &nodes);
        assert_ne!(a, c);
        // Victims are distinct and all drawn from the candidate set.
        let mut killed = a.killed();
        assert_eq!(killed.len(), 5);
        killed.sort_unstable();
        killed.dedup();
        assert_eq!(killed.len(), 5);
        assert!(killed.iter().all(|n| nodes.contains(n)));
        // Kills are staggered: consecutive events at least 3/5 of a
        // slot apart (slot = span/6, jitter ±1/5 slot).
        let ats: Vec<u64> = a.events().iter().map(|e| e.at.as_micros()).collect();
        for w in ats.windows(2) {
            assert!(
                w[1] - w[0] >= 60_000_000 / 6 * 3 / 5,
                "kills too close: {ats:?}"
            );
        }
    }

    #[test]
    fn rejoin_schedules_a_join_per_kill() {
        let nodes: Vec<NodeId> = (0..20).collect();
        let s = FaultScript::churn_with_rejoin(9, Dur::from_secs(60), 4, &nodes, Dur::from_secs(5));
        let (killed, joined) = (s.killed(), s.joined());
        assert_eq!(killed.len(), 4);
        let mut k = killed.clone();
        let mut j = joined.clone();
        k.sort_unstable();
        j.sort_unstable();
        assert_eq!(k, j, "every kill gets a matching rejoin");
        // Each join comes exactly rejoin_after behind its kill, and the
        // merged list stays time-sorted.
        for ev in s.events() {
            if let Fault::Join { node } = ev.fault {
                let kill_at = s
                    .events()
                    .iter()
                    .find(|e| e.fault == (Fault::Kill { node }))
                    .unwrap()
                    .at;
                assert_eq!(ev.at, kill_at + Dur::from_secs(5));
            }
        }
        assert!(s.events().windows(2).all(|w| w[0].at <= w[1].at));
        // The kill-only prefix of the same seed is preserved.
        let kills_only = FaultScript::churn(9, Dur::from_secs(60), 4, &nodes);
        assert_eq!(s.killed(), kills_only.killed());
    }

    #[test]
    fn with_join_sorts_into_place() {
        let s = FaultScript::new(vec![Scheduled {
            at: Dur::from_secs(4),
            fault: Fault::Kill { node: 1 },
        }])
        .with_join(1, Dur::from_secs(6));
        assert_eq!(s.joined(), vec![1]);
        assert_eq!(s.events()[1].at, Dur::from_secs(6));
        assert_eq!(Fault::Join { node: 1 }.node(), 1);
    }

    #[test]
    fn churn_never_kills_more_than_the_pool() {
        let s = FaultScript::churn(7, Dur::from_secs(10), 99, &[3, 4]);
        assert_eq!(s.killed().len(), 2);
    }

    #[test]
    fn driver_fires_in_order_and_traces_script_time() {
        let script = FaultScript::new(vec![
            Scheduled {
                at: Dur::from_secs(5),
                fault: Fault::Kill { node: 2 },
            },
            Scheduled {
                at: Dur::from_secs(1),
                fault: Fault::Kill { node: 1 },
            },
        ])
        .with_drop_window(3, Dur::from_secs(2), Dur::from_secs(2));
        let mut drv = FaultDriver::new(script);
        assert_eq!(drv.next_at(), Some(Dur::from_secs(1)));

        let mut applied = Vec::new();
        // Coarse polling: everything due by t=3 fires in script order.
        let n = drv.advance(Dur::from_secs(3), |f| applied.push(*f));
        assert_eq!(n, 2);
        assert_eq!(
            applied,
            vec![Fault::Kill { node: 1 }, Fault::DropStart { node: 3 }]
        );
        assert!(!drv.finished());

        drv.advance(Dur::from_secs(60), |f| applied.push(*f));
        assert!(drv.finished());
        assert_eq!(drv.advance(Dur::from_secs(99), |_| panic!("replayed")), 0);
        // The trace is in script time, independent of polling cadence.
        let ats: Vec<Dur> = drv.trace().iter().map(|e| e.at).collect();
        assert_eq!(
            ats,
            vec![
                Dur::from_secs(1),
                Dur::from_secs(2),
                Dur::from_secs(4),
                Dur::from_secs(5)
            ]
        );
    }
}

//! Wall-clock threaded engine: the cluster-deployment substitute.
//!
//! The paper validates PIER "deployed (not simulated!) on the largest set
//! of machines we had available" — a 64-PC / 1 Gbps shared cluster (§5.8).
//! We do not have 64 PCs, so this engine runs one OS thread per PIER node
//! inside one process, connected by crossbeam channels, with real time and
//! real scheduling jitter. The same [`App`] automata run unchanged.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, RecvTimeoutError, Sender};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::app::{Action, App, Ctx};
use crate::time::Time;
use crate::{NodeId, Wire};

/// A closure shipped to a node thread for execution against its app.
type NodeCall<A> = Box<dyn FnOnce(&mut A, &mut Ctx<<A as App>::Msg>) + Send>;

enum Envelope<A: App> {
    Msg {
        from: NodeId,
        msg: A::Msg,
    },
    Call(NodeCall<A>),
    /// Re-seat a fresh automaton at this id (see [`Cluster::revive`]).
    Revive(A),
    /// Wake the thread so it notices a freshly raised kill flag; no
    /// other effect.
    Nudge,
    /// Shut the thread down for good (cluster teardown).
    Stop,
}

/// Shared wall-clock traffic counters (atomics; exact per-message
/// accounting, approximate snapshot consistency).
#[derive(Debug, Default)]
pub struct ClusterStats {
    pub messages: AtomicU64,
    pub bytes: AtomicU64,
    /// Messages discarded by an injected message-drop window
    /// ([`Cluster::set_inbound_drop`]).
    pub dropped_in_window: AtomicU64,
    /// Messages addressed to a killed node, classified at send time —
    /// the same bucket the simulator uses, and *not* counted as
    /// `messages`/`bytes`, so traffic headlines agree across engines.
    pub dropped_to_failed: AtomicU64,
}

/// A running set of node threads.
pub struct Cluster<A: App + Send + 'static>
where
    A::Msg: Send + 'static,
{
    senders: Vec<Sender<Envelope<A>>>,
    handles: Vec<JoinHandle<A>>,
    start: Instant,
    stats: Arc<ClusterStats>,
    /// Per-node message-drop flags, shared with every sender thread and
    /// checked at send time — the threaded twin of the simulator's
    /// [`crate::Sim::set_inbound_drop`].
    drop_inbound: Arc<Vec<AtomicBool>>,
    /// Per-node kill flags, checked before every dispatch so death is
    /// abrupt (the threaded twin of [`crate::Sim::fail_node`]) and by
    /// senders to classify traffic to dead nodes.
    killed: Arc<Vec<AtomicBool>>,
}

impl<A: App + Send + 'static> Cluster<A>
where
    A::Msg: Send + 'static,
{
    /// Spawn one thread per app. Node ids are assigned by vector index,
    /// so automata can be pre-wired with the ids of their peers.
    pub fn spawn(apps: Vec<A>, seed: u64) -> Self {
        let n = apps.len();
        let start = Instant::now();
        let stats = Arc::new(ClusterStats::default());
        let drop_inbound: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        let killed: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope<A>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (i, (mut app, rx)) in apps.into_iter().zip(receivers).enumerate() {
            let me = i as NodeId;
            let peers = senders.clone();
            let stats = Arc::clone(&stats);
            let drop_flags = Arc::clone(&drop_inbound);
            let kill_flags = Arc::clone(&killed);
            let handle = std::thread::Builder::new()
                .name(format!("pier-node-{i}"))
                .spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(
                        seed.wrapping_add((me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    let mut timers: BinaryHeap<std::cmp::Reverse<(Instant, u64)>> =
                        BinaryHeap::new();
                    let mut actions: Vec<Action<A::Msg>> = Vec::new();

                    let flush = |app: &mut A,
                                     actions: &mut Vec<Action<A::Msg>>,
                                     timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u64)>>| {
                        let _ = app;
                        for action in actions.drain(..) {
                            match action {
                                Action::Send { to, msg } => {
                                    if to != me && drop_flags[to as usize].load(Ordering::Relaxed) {
                                        stats.dropped_in_window.fetch_add(1, Ordering::Relaxed);
                                        continue;
                                    }
                                    // Liveness first: traffic to a dead node
                                    // is not traffic, it is a drop — exactly
                                    // how the simulator classifies it.
                                    if kill_flags[to as usize].load(Ordering::Relaxed) {
                                        stats.dropped_to_failed.fetch_add(1, Ordering::Relaxed);
                                        continue;
                                    }
                                    stats.messages.fetch_add(1, Ordering::Relaxed);
                                    stats.bytes.fetch_add(msg.wire_size() as u64, Ordering::Relaxed);
                                    let _ = peers[to as usize].send(Envelope::Msg { from: me, msg });
                                }
                                Action::Timer { after, token } => {
                                    let deadline =
                                        Instant::now() + Duration::from_micros(after.as_micros());
                                    timers.push(std::cmp::Reverse((deadline, token)));
                                }
                            }
                        }
                    };

                    let now_of = |start: Instant| Time(start.elapsed().as_micros() as u64);

                    {
                        let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                        app.on_start(&mut ctx);
                    }
                    flush(&mut app, &mut actions, &mut timers);

                    // Death must be abrupt: the kill flag is checked
                    // before *every* dispatch, so a killed node never
                    // drains its backlog the way a queued `Stop` would
                    // — matching `Sim::fail_node`, which freezes state
                    // instantly. A killed thread *parks* rather than
                    // exiting: it keeps discarding traffic until a
                    // `Revive` re-seats it (the threaded twin of
                    // `Sim::revive`) or the cluster shuts down.
                    let dead = || kill_flags[me as usize].load(Ordering::Relaxed);
                    // Timers that came due while the node was dead would
                    // have dispatched into a corpse; drop them so a
                    // revived successor only sees timers still in the
                    // future — the simulator's exact behaviour, where
                    // due-while-dead timer events dissolve against the
                    // empty slot.
                    let prune_due = |timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u64)>>| {
                        let now = Instant::now();
                        while timers
                            .peek()
                            .is_some_and(|std::cmp::Reverse((d, _))| *d <= now)
                        {
                            timers.pop();
                        }
                    };
                    'life: loop {
                        // Live: dispatch messages, calls, and timers.
                        loop {
                            if dead() {
                                break;
                            }
                            let timeout = timers
                                .peek()
                                .map(|std::cmp::Reverse((deadline, _))| {
                                    deadline.saturating_duration_since(Instant::now())
                                })
                                .unwrap_or(Duration::from_millis(200));
                            match rx.recv_timeout(timeout) {
                                Ok(Envelope::Msg { from, msg }) => {
                                    if dead() {
                                        break;
                                    }
                                    let mut ctx =
                                        Ctx::new(now_of(start), me, &mut rng, &mut actions);
                                    app.on_message(&mut ctx, from, msg);
                                }
                                Ok(Envelope::Call(f)) => {
                                    if dead() {
                                        break;
                                    }
                                    let mut ctx =
                                        Ctx::new(now_of(start), me, &mut rng, &mut actions);
                                    f(&mut app, &mut ctx);
                                }
                                // A kill can race a revive: if the flag
                                // flipped back before we ever parked,
                                // the re-seat still must happen.
                                Ok(Envelope::Revive(new_app)) => {
                                    app = new_app;
                                    rng = SmallRng::seed_from_u64(
                                        seed.wrapping_add(
                                            (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                                        ),
                                    );
                                    prune_due(&mut timers);
                                    let mut ctx =
                                        Ctx::new(now_of(start), me, &mut rng, &mut actions);
                                    app.on_start(&mut ctx);
                                }
                                Ok(Envelope::Nudge) => {}
                                Ok(Envelope::Stop) => break 'life,
                                Err(RecvTimeoutError::Timeout) => {}
                                Err(RecvTimeoutError::Disconnected) => break 'life,
                            }
                            flush(&mut app, &mut actions, &mut timers);
                            // Fire all due timers.
                            while let Some(std::cmp::Reverse((deadline, token))) =
                                timers.peek().copied()
                            {
                                if deadline > Instant::now() || dead() {
                                    break;
                                }
                                timers.pop();
                                let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                                app.on_timer(&mut ctx, token);
                                flush(&mut app, &mut actions, &mut timers);
                            }
                        }
                        // Parked dead: discard everything except a
                        // revival or teardown. State stays frozen at
                        // the kill instant for post-mortem inspection.
                        loop {
                            match rx.recv_timeout(Duration::from_millis(200)) {
                                Ok(Envelope::Revive(new_app)) => {
                                    app = new_app;
                                    rng = SmallRng::seed_from_u64(
                                        seed.wrapping_add(
                                            (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                                        ),
                                    );
                                    prune_due(&mut timers);
                                    kill_flags[me as usize].store(false, Ordering::Relaxed);
                                    let mut ctx =
                                        Ctx::new(now_of(start), me, &mut rng, &mut actions);
                                    app.on_start(&mut ctx);
                                    flush(&mut app, &mut actions, &mut timers);
                                    continue 'life;
                                }
                                Ok(Envelope::Stop) => break 'life,
                                Ok(_) => {}
                                Err(RecvTimeoutError::Timeout) => prune_due(&mut timers),
                                Err(RecvTimeoutError::Disconnected) => break 'life,
                            }
                        }
                    }
                    app
                })
                .expect("spawn node thread");
            handles.push(handle);
        }
        Cluster {
            senders,
            handles,
            start,
            stats,
            drop_inbound,
            killed,
        }
    }

    /// Abruptly kill one node — the cluster analogue of
    /// [`crate::Sim::fail_node`]. The kill flag makes death immediate
    /// (any backlogged inbox messages are never dispatched); the
    /// `Nudge` envelope just wakes the thread if it is blocked on its
    /// channel. Peers observe silence, exactly the ungraceful §5.6
    /// failure. The thread parks rather than exiting, so the id can
    /// later host a replacement via [`Self::revive`]; its frozen app is
    /// still collected at [`Self::shutdown`] if never revived.
    pub fn kill(&self, id: NodeId) {
        if let (Some(flag), Some(tx)) =
            (self.killed.get(id as usize), self.senders.get(id as usize))
        {
            flag.store(true, Ordering::Relaxed);
            let _ = tx.send(Envelope::Nudge);
        }
    }

    /// Re-seat a fresh automaton at a killed id — the cluster analogue
    /// of [`crate::Sim::revive`] and the executor of
    /// [`crate::fault::Fault::Join`]. The replacement gets a reseeded
    /// RNG (same derivation as at spawn) and runs `on_start` on the
    /// node's thread; timers that came due while the node was dead are
    /// discarded, while still-future ones survive, matching the
    /// simulator's handling of a dead node's queued timer events.
    /// Returns `false` if `id` is out of range or still alive.
    pub fn revive(&self, id: NodeId, app: A) -> bool {
        let (Some(flag), Some(tx)) = (self.killed.get(id as usize), self.senders.get(id as usize))
        else {
            return false;
        };
        if !flag.load(Ordering::Relaxed) {
            return false;
        }
        if tx.send(Envelope::Revive(app)).is_err() {
            return false;
        }
        // Flip liveness immediately so peers route traffic to the
        // newcomer; anything arriving before the thread processes the
        // `Revive` queues behind it and is dispatched afterwards.
        flag.store(false, Ordering::Relaxed);
        true
    }

    /// Has `id` not been killed? The threaded twin of [`crate::Sim::alive`].
    pub fn alive(&self, id: NodeId) -> bool {
        self.killed
            .get(id as usize)
            .is_some_and(|f| !f.load(Ordering::Relaxed))
    }

    /// Open or close a message-drop window on a node's inbound side
    /// (checked by every sender at send time; the node stays alive).
    pub fn set_inbound_drop(&self, id: NodeId, dropping: bool) {
        if let Some(flag) = self.drop_inbound.get(id as usize) {
            flag.store(dropping, Ordering::Relaxed);
        }
    }

    pub fn node_count(&self) -> usize {
        self.senders.len()
    }

    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Wall-clock time since cluster start, in engine [`Time`] units.
    pub fn now(&self) -> Time {
        Time(self.start.elapsed().as_micros() as u64)
    }

    /// Run `f` on node `id`'s thread and wait for its result. Returns
    /// `None` if the node has been killed (before or while the call was
    /// in flight), matching [`crate::Sim::with_app`] on a failed node.
    pub fn call<R: Send + 'static>(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>) -> R + Send + 'static,
    ) -> Option<R> {
        if !self.alive(id) {
            return None;
        }
        let (tx, rx) = bounded(1);
        self.senders
            .get(id as usize)?
            .send(Envelope::Call(Box::new(move |app, ctx| {
                let _ = tx.send(f(app, ctx));
            })))
            .ok()?;
        // A kill can land after the send but before the closure runs;
        // in that case the envelope is never executed, so poll the kill
        // flag instead of blocking on a reply that will not come.
        loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(r) => return Some(r),
                Err(RecvTimeoutError::Timeout) => {
                    if !self.alive(id) {
                        return None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    /// Fire-and-forget injection.
    pub fn cast(&self, id: NodeId, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>) + Send + 'static) {
        let _ = self.senders[id as usize].send(Envelope::Call(Box::new(f)));
    }

    /// Stop every node thread and return the automata for inspection.
    pub fn shutdown(self) -> Vec<A> {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[derive(Clone, Debug)]
    struct Byte(#[allow(dead_code)] u8);
    impl Wire for Byte {
        fn wire_size(&self) -> usize {
            64
        }
    }

    /// Each node forwards a token to the next node; the last returns it to
    /// node 0, which counts laps.
    struct Ring {
        n: u32,
        laps: u32,
        timer_fired: bool,
    }
    impl App for Ring {
        type Msg = Byte;
        fn on_start(&mut self, ctx: &mut Ctx<Byte>) {
            if ctx.me == 0 {
                ctx.send(1 % self.n, Byte(0));
            }
            ctx.set_timer(Dur::from_millis(5), 77);
        }
        fn on_message(&mut self, ctx: &mut Ctx<Byte>, _from: NodeId, msg: Byte) {
            if ctx.me == 0 {
                self.laps += 1;
                if self.laps < 3 {
                    ctx.send(1 % self.n, msg);
                }
            } else {
                ctx.send((ctx.me + 1) % self.n, msg);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<Byte>, token: u64) {
            if token == 77 {
                self.timer_fired = true;
            }
        }
    }

    #[test]
    fn token_ring_completes_three_laps() {
        let n = 8u32;
        let apps = (0..n)
            .map(|_| Ring {
                n,
                laps: 0,
                timer_fired: false,
            })
            .collect();
        let cluster = Cluster::spawn(apps, 11);
        // Wait until node 0 reports 3 laps (bounded busy-wait).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let laps = cluster.call(0, |app, _| app.laps).unwrap();
            if laps >= 3 || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(20)); // let timers fire
        let apps = cluster.shutdown();
        assert_eq!(apps[0].laps, 3);
        assert!(apps.iter().all(|a| a.timer_fired));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let apps = (0..2)
            .map(|_| Ring {
                n: 2,
                laps: 0,
                timer_fired: false,
            })
            .collect();
        let cluster = Cluster::spawn(apps, 5);
        let deadline = Instant::now() + Duration::from_secs(5);
        while cluster.call(0, |a, _| a.laps).unwrap() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let msgs = cluster.stats().messages.load(Ordering::Relaxed);
        let bytes = cluster.stats().bytes.load(Ordering::Relaxed);
        assert!(msgs >= 6, "messages {msgs}");
        assert_eq!(bytes, msgs * 64);
        cluster.shutdown();
    }

    /// Counts delivered messages; sends nothing on its own.
    struct Count {
        seen: u32,
    }
    impl App for Count {
        type Msg = Byte;
        fn on_start(&mut self, _ctx: &mut Ctx<Byte>) {}
        fn on_message(&mut self, _ctx: &mut Ctx<Byte>, _from: NodeId, _msg: Byte) {
            self.seen += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<Byte>, _token: u64) {}
    }

    #[test]
    fn kill_is_abrupt_even_with_a_loaded_inbox() {
        // Pre-fix, `Envelope::Stop` queued *behind* the backlog, so a
        // "killed" node processed all 500 pending messages before
        // dying. The kill flag must make it process none of them.
        let cluster = Cluster::spawn(vec![Count { seen: 0 }, Count { seen: 0 }], 7);
        let parked = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&parked);
        // Park the victim's thread so the backlog builds up behind a
        // dispatch in progress.
        cluster.cast(1, move |_, _| {
            flag.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(150));
        });
        while !parked.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        cluster
            .call(0, |_, ctx| {
                for _ in 0..500 {
                    ctx.send(1, Byte(0));
                }
            })
            .unwrap();
        // Let node 0's flush actually enqueue the sends, then kill.
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.stats().messages.load(Ordering::Relaxed) < 500 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        cluster.kill(1);
        let apps = cluster.shutdown();
        assert_eq!(apps[1].seen, 0, "killed node drained its inbox");
    }

    #[test]
    fn sends_to_killed_nodes_classify_as_dropped_to_failed() {
        // Pre-fix, `flush` counted messages/bytes before the channel
        // send, so traffic to dead nodes inflated the headline stats
        // that the simulator excludes.
        let cluster = Cluster::spawn(vec![Count { seen: 0 }, Count { seen: 0 }], 9);
        cluster.kill(1);
        assert!(!cluster.alive(1));
        cluster
            .call(0, |_, ctx| {
                for _ in 0..10 {
                    ctx.send(1, Byte(0));
                }
            })
            .unwrap();
        // The sends flush on node 0's thread after the call returns.
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.stats().dropped_to_failed.load(Ordering::Relaxed) < 10
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            cluster.stats().dropped_to_failed.load(Ordering::Relaxed),
            10
        );
        assert_eq!(cluster.stats().messages.load(Ordering::Relaxed), 0);
        assert_eq!(cluster.stats().bytes.load(Ordering::Relaxed), 0);
        cluster.shutdown();
    }

    #[test]
    fn revive_reseats_a_killed_node() {
        let cluster = Cluster::spawn(vec![Count { seen: 0 }, Count { seen: 99 }], 21);
        assert!(!cluster.revive(1, Count { seen: 0 }), "still alive");
        assert!(!cluster.revive(7, Count { seen: 0 }), "no such node");
        cluster.kill(1);
        assert!(!cluster.alive(1));
        // Traffic sent while dead is dropped, not queued for the heir.
        cluster
            .call(0, |_, ctx| {
                for _ in 0..5 {
                    ctx.send(1, Byte(0));
                }
            })
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.stats().dropped_to_failed.load(Ordering::Relaxed) < 5
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(cluster.revive(1, Count { seen: 0 }));
        assert!(cluster.alive(1));
        // The heir is a fresh automaton (seen=0, not the old 99) and
        // receives traffic again.
        cluster.call(0, |_, ctx| ctx.send(1, Byte(0))).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let seen = cluster.call(1, |a, _| a.seen).unwrap();
            if seen >= 1 || Instant::now() > deadline {
                assert_eq!(seen, 1, "heir state wrong or message lost");
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cluster.shutdown();
    }

    #[test]
    fn call_on_a_killed_node_returns_none() {
        let cluster = Cluster::spawn(vec![Count { seen: 0 }, Count { seen: 0 }], 13);
        cluster.kill(1);
        assert_eq!(cluster.call(1, |_, _| 42), None);
        assert_eq!(cluster.call(0, |_, _| 42), Some(42));
        cluster.shutdown();
    }
}

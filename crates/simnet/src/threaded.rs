//! Wall-clock threaded engine: the cluster-deployment substitute.
//!
//! The paper validates PIER "deployed (not simulated!) on the largest set
//! of machines we had available" — a 64-PC / 1 Gbps shared cluster (§5.8).
//! We do not have 64 PCs, so this engine runs one OS thread per PIER node
//! inside one process, connected by crossbeam channels, with real time and
//! real scheduling jitter. The same [`App`] automata run unchanged.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, RecvTimeoutError, Sender};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::app::{Action, App, Ctx};
use crate::time::Time;
use crate::{NodeId, Wire};

/// A closure shipped to a node thread for execution against its app.
type NodeCall<A> = Box<dyn FnOnce(&mut A, &mut Ctx<<A as App>::Msg>) + Send>;

enum Envelope<A: App> {
    Msg { from: NodeId, msg: A::Msg },
    Call(NodeCall<A>),
    Stop,
}

/// Shared wall-clock traffic counters (atomics; exact per-message
/// accounting, approximate snapshot consistency).
#[derive(Debug, Default)]
pub struct ClusterStats {
    pub messages: AtomicU64,
    pub bytes: AtomicU64,
    /// Messages discarded by an injected message-drop window
    /// ([`Cluster::set_inbound_drop`]).
    pub dropped_in_window: AtomicU64,
}

/// A running set of node threads.
pub struct Cluster<A: App + Send + 'static>
where
    A::Msg: Send + 'static,
{
    senders: Vec<Sender<Envelope<A>>>,
    handles: Vec<JoinHandle<A>>,
    start: Instant,
    stats: Arc<ClusterStats>,
    /// Per-node message-drop flags, shared with every sender thread and
    /// checked at send time — the threaded twin of the simulator's
    /// [`crate::Sim::set_inbound_drop`].
    drop_inbound: Arc<Vec<AtomicBool>>,
}

impl<A: App + Send + 'static> Cluster<A>
where
    A::Msg: Send + 'static,
{
    /// Spawn one thread per app. Node ids are assigned by vector index,
    /// so automata can be pre-wired with the ids of their peers.
    pub fn spawn(apps: Vec<A>, seed: u64) -> Self {
        let n = apps.len();
        let start = Instant::now();
        let stats = Arc::new(ClusterStats::default());
        let drop_inbound: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope<A>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (i, (mut app, rx)) in apps.into_iter().zip(receivers).enumerate() {
            let me = i as NodeId;
            let peers = senders.clone();
            let stats = Arc::clone(&stats);
            let drop_flags = Arc::clone(&drop_inbound);
            let handle = std::thread::Builder::new()
                .name(format!("pier-node-{i}"))
                .spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(
                        seed.wrapping_add((me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    let mut timers: BinaryHeap<std::cmp::Reverse<(Instant, u64)>> =
                        BinaryHeap::new();
                    let mut actions: Vec<Action<A::Msg>> = Vec::new();

                    let flush = |app: &mut A,
                                     actions: &mut Vec<Action<A::Msg>>,
                                     timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u64)>>| {
                        let _ = app;
                        for action in actions.drain(..) {
                            match action {
                                Action::Send { to, msg } => {
                                    if to != me && drop_flags[to as usize].load(Ordering::Relaxed) {
                                        stats.dropped_in_window.fetch_add(1, Ordering::Relaxed);
                                        continue;
                                    }
                                    stats.messages.fetch_add(1, Ordering::Relaxed);
                                    stats.bytes.fetch_add(msg.wire_size() as u64, Ordering::Relaxed);
                                    // A send to a stopped node is dropped on
                                    // the floor, like the simulator does.
                                    let _ = peers[to as usize].send(Envelope::Msg { from: me, msg });
                                }
                                Action::Timer { after, token } => {
                                    let deadline =
                                        Instant::now() + Duration::from_micros(after.as_micros());
                                    timers.push(std::cmp::Reverse((deadline, token)));
                                }
                            }
                        }
                    };

                    let now_of = |start: Instant| Time(start.elapsed().as_micros() as u64);

                    {
                        let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                        app.on_start(&mut ctx);
                    }
                    flush(&mut app, &mut actions, &mut timers);

                    loop {
                        let timeout = timers
                            .peek()
                            .map(|std::cmp::Reverse((deadline, _))| {
                                deadline.saturating_duration_since(Instant::now())
                            })
                            .unwrap_or(Duration::from_millis(200));
                        match rx.recv_timeout(timeout) {
                            Ok(Envelope::Msg { from, msg }) => {
                                let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                                app.on_message(&mut ctx, from, msg);
                            }
                            Ok(Envelope::Call(f)) => {
                                let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                                f(&mut app, &mut ctx);
                            }
                            Ok(Envelope::Stop) => break,
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                        flush(&mut app, &mut actions, &mut timers);
                        // Fire all due timers.
                        while let Some(std::cmp::Reverse((deadline, token))) = timers.peek().copied()
                        {
                            if deadline > Instant::now() {
                                break;
                            }
                            timers.pop();
                            let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                            app.on_timer(&mut ctx, token);
                            flush(&mut app, &mut actions, &mut timers);
                        }
                    }
                    app
                })
                .expect("spawn node thread");
            handles.push(handle);
        }
        Cluster {
            senders,
            handles,
            start,
            stats,
            drop_inbound,
        }
    }

    /// Abruptly stop one node's thread — the cluster analogue of
    /// [`crate::Sim::fail_node`]. In-flight and future messages to it
    /// drain into its dead channel; peers observe silence, exactly the
    /// ungraceful §5.6 failure. The thread's app is still collected at
    /// [`Self::shutdown`] (its state is frozen at the kill instant).
    pub fn kill(&self, id: NodeId) {
        if let Some(tx) = self.senders.get(id as usize) {
            let _ = tx.send(Envelope::Stop);
        }
    }

    /// Open or close a message-drop window on a node's inbound side
    /// (checked by every sender at send time; the node stays alive).
    pub fn set_inbound_drop(&self, id: NodeId, dropping: bool) {
        if let Some(flag) = self.drop_inbound.get(id as usize) {
            flag.store(dropping, Ordering::Relaxed);
        }
    }

    pub fn node_count(&self) -> usize {
        self.senders.len()
    }

    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Wall-clock time since cluster start, in engine [`Time`] units.
    pub fn now(&self) -> Time {
        Time(self.start.elapsed().as_micros() as u64)
    }

    /// Run `f` on node `id`'s thread and wait for its result.
    pub fn call<R: Send + 'static>(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = bounded(1);
        self.senders[id as usize]
            .send(Envelope::Call(Box::new(move |app, ctx| {
                let _ = tx.send(f(app, ctx));
            })))
            .expect("node thread alive");
        rx.recv().expect("call reply")
    }

    /// Fire-and-forget injection.
    pub fn cast(&self, id: NodeId, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>) + Send + 'static) {
        let _ = self.senders[id as usize].send(Envelope::Call(Box::new(f)));
    }

    /// Stop every node thread and return the automata for inspection.
    pub fn shutdown(self) -> Vec<A> {
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[derive(Clone, Debug)]
    struct Byte(#[allow(dead_code)] u8);
    impl Wire for Byte {
        fn wire_size(&self) -> usize {
            64
        }
    }

    /// Each node forwards a token to the next node; the last returns it to
    /// node 0, which counts laps.
    struct Ring {
        n: u32,
        laps: u32,
        timer_fired: bool,
    }
    impl App for Ring {
        type Msg = Byte;
        fn on_start(&mut self, ctx: &mut Ctx<Byte>) {
            if ctx.me == 0 {
                ctx.send(1 % self.n, Byte(0));
            }
            ctx.set_timer(Dur::from_millis(5), 77);
        }
        fn on_message(&mut self, ctx: &mut Ctx<Byte>, _from: NodeId, msg: Byte) {
            if ctx.me == 0 {
                self.laps += 1;
                if self.laps < 3 {
                    ctx.send(1 % self.n, msg);
                }
            } else {
                ctx.send((ctx.me + 1) % self.n, msg);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<Byte>, token: u64) {
            if token == 77 {
                self.timer_fired = true;
            }
        }
    }

    #[test]
    fn token_ring_completes_three_laps() {
        let n = 8u32;
        let apps = (0..n)
            .map(|_| Ring {
                n,
                laps: 0,
                timer_fired: false,
            })
            .collect();
        let cluster = Cluster::spawn(apps, 11);
        // Wait until node 0 reports 3 laps (bounded busy-wait).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let laps = cluster.call(0, |app, _| app.laps);
            if laps >= 3 || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(20)); // let timers fire
        let apps = cluster.shutdown();
        assert_eq!(apps[0].laps, 3);
        assert!(apps.iter().all(|a| a.timer_fired));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let apps = (0..2)
            .map(|_| Ring {
                n: 2,
                laps: 0,
                timer_fired: false,
            })
            .collect();
        let cluster = Cluster::spawn(apps, 5);
        let deadline = Instant::now() + Duration::from_secs(5);
        while cluster.call(0, |a, _| a.laps) < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let msgs = cluster.stats().messages.load(Ordering::Relaxed);
        let bytes = cluster.stats().bytes.load(Ordering::Relaxed);
        assert!(msgs >= 6, "messages {msgs}");
        assert_eq!(bytes, msgs * 64);
        cluster.shutdown();
    }
}

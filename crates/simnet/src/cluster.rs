//! Wall-clock cluster engine, rebuilt on the actor runtime: the
//! deployment-shaped substitute for the paper's 64-PC cluster (§5.8).
//!
//! A [`Cluster`] spawns one free-running [`crate::actor`] per node over
//! a [`ChannelTransport`] — real time, real scheduling jitter, no
//! global barrier, no lock-step of any kind. The same [`Service`]
//! automata run unchanged under the deterministic simulator via
//! [`crate::transport::SimTransport`].
//!
//! Interaction is exclusively through typed messages: benches and
//! tests hold [`NodeHandle`]s and exchange `Req`/`Resp` values with
//! the actors (the closure `call`/`cast` API of the former
//! `threaded::Cluster` is gone). Faults ([`Cluster::kill`],
//! [`Cluster::revive`], [`Cluster::set_inbound_drop`]) act on the
//! transport's per-link flags, mirroring `Sim`'s semantics exactly, so
//! a seeded [`crate::fault::FaultScript`] replays identically on both
//! engines.
//!
//! Actor threads are joined on [`Cluster::shutdown`] *and* on `Drop`,
//! so a panicking test unwinds without leaking detached workers.

use std::mem;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::unbounded;

use crate::actor::{spawn_actor, Envelope, NodeHandle, Service};
use crate::stats::NetStats;
use crate::time::Time;
use crate::transport::{ChannelTransport, Links};
use crate::NodeId;

/// A running set of node actors connected by a [`ChannelTransport`].
pub struct Cluster<A: Service + 'static>
where
    A::Msg: Send + 'static,
{
    transport: ChannelTransport<A>,
    handles: Vec<NodeHandle<A>>,
    actors: Vec<JoinHandle<A>>,
    start: Instant,
    live_actors: Arc<AtomicUsize>,
}

impl<A: Service + 'static> Cluster<A>
where
    A::Msg: Send + 'static,
{
    /// Spawn one actor per app. Node ids are assigned by vector index,
    /// so automata can be pre-wired with the ids of their peers.
    pub fn spawn(apps: Vec<A>, seed: u64) -> Self {
        let n = apps.len();
        let start = Instant::now();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope<A>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let links = Arc::new(Links::new(senders));
        let live_actors = Arc::new(AtomicUsize::new(0));
        let handles = (0..n as NodeId)
            .map(|i| {
                NodeHandle::new(
                    i,
                    links.sender(i).expect("sender for every id").clone(),
                    Arc::clone(&links),
                )
            })
            .collect();
        let actors = apps
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(i, (app, rx))| {
                spawn_actor(
                    app,
                    i as NodeId,
                    seed,
                    start,
                    rx,
                    Arc::clone(&links),
                    Arc::clone(&live_actors),
                )
            })
            .collect();
        Cluster {
            transport: ChannelTransport::new(links),
            handles,
            actors,
            start,
            live_actors,
        }
    }

    /// A cheap cloneable client handle for node `id` — the only way to
    /// interact with the actor. Handles stay valid across kill/revive
    /// and may outlive the cluster (requests then return `None`).
    pub fn handle(&self, id: NodeId) -> Option<NodeHandle<A>> {
        self.handles.get(id as usize).cloned()
    }

    /// Send a typed request to node `id` and wait for its response.
    /// `None` if the id is out of range or the node has been killed.
    pub fn request(&self, id: NodeId, req: A::Req) -> Option<A::Resp> {
        self.handles.get(id as usize)?.request(req)
    }

    /// Fire-and-forget typed request.
    pub fn cast(&self, id: NodeId, req: A::Req) {
        if let Some(h) = self.handles.get(id as usize) {
            h.cast(req);
        }
    }

    /// Abruptly kill one node — the cluster analogue of
    /// [`crate::Sim::fail_node`]. Death is immediate (any backlogged
    /// mailbox messages are never dispatched); peers observe silence,
    /// exactly the ungraceful §5.6 failure. The actor parks rather
    /// than exiting, so the id can later host a replacement via
    /// [`Self::revive`]; its frozen app is still collected at
    /// [`Self::shutdown`] if never revived.
    pub fn kill(&self, id: NodeId) {
        self.transport.links().kill(id);
    }

    /// Re-seat a fresh automaton at a killed id — the cluster analogue
    /// of [`crate::Sim::revive`] and the executor of
    /// [`crate::fault::Fault::Join`]. The replacement gets a reseeded
    /// RNG (same derivation as at spawn) and runs `on_start` on the
    /// actor thread; timers that came due while the node was dead are
    /// discarded, while still-future ones survive, matching the
    /// simulator's handling of a dead node's queued timer events.
    /// Returns `false` if `id` is out of range or still alive.
    pub fn revive(&self, id: NodeId, app: A) -> bool {
        self.transport.links().revive(id, app)
    }

    /// Has `id` not been killed? The cluster twin of [`crate::Sim::alive`].
    pub fn alive(&self, id: NodeId) -> bool {
        self.transport.links().alive(id)
    }

    /// Open or close a message-drop window on a node's inbound side
    /// (checked by the transport at send time; the node stays alive).
    pub fn set_inbound_drop(&self, id: NodeId, dropping: bool) {
        self.transport.links().set_inbound_drop(id, dropping);
    }

    pub fn node_count(&self) -> usize {
        self.handles.len()
    }

    /// Snapshot of the transport's traffic counters, in the same
    /// [`NetStats`] vocabulary as the simulator engines.
    pub fn stats(&self) -> NetStats {
        self.transport.links().stats()
    }

    /// The underlying transport (for driving through the generic
    /// [`crate::transport::Transport`] surface).
    pub fn transport_mut(&mut self) -> &mut ChannelTransport<A> {
        &mut self.transport
    }

    /// Network messages currently waiting in `id`'s actor mailbox — the
    /// backlog gauge a metrics snapshot reports per node. A healthy
    /// actor hovers near zero; a sustained rise means the node is
    /// dispatching slower than peers are sending.
    pub fn mailbox_depth(&self, id: NodeId) -> usize {
        self.transport.links().mailbox_depth(id)
    }

    /// Wall-clock time since cluster start, in engine [`Time`] units.
    pub fn now(&self) -> Time {
        Time(self.start.elapsed().as_micros() as u64)
    }

    /// Actor threads currently running (live, parked-dead, or shutting
    /// down). Reaches zero once the cluster is shut down or dropped.
    pub fn live_actor_threads(&self) -> usize {
        self.live_actors.load(Ordering::SeqCst)
    }

    fn stop_all(&self) {
        for id in 0..self.handles.len() as NodeId {
            if let Some(tx) = self.transport.links().sender(id) {
                let _ = tx.send(Envelope::Stop);
            }
        }
    }

    /// Stop every actor, join its thread, and return the automata for
    /// inspection.
    pub fn shutdown(mut self) -> Vec<A> {
        self.stop_all();
        mem::take(&mut self.actors)
            .into_iter()
            .map(|h| h.join().expect("actor thread panicked"))
            .collect()
    }
}

impl<A: Service + 'static> Drop for Cluster<A>
where
    A::Msg: Send + 'static,
{
    /// Dropping a cluster without [`Self::shutdown`] — including during
    /// a panic unwind — still stops and joins every actor thread, so no
    /// detached workers outlive the test that spawned them.
    fn drop(&mut self) {
        if self.actors.is_empty() {
            return;
        }
        self.stop_all();
        for h in self.actors.drain(..) {
            // Swallow actor panics here: we may already be unwinding.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{App, Ctx};
    use crate::time::Dur;
    use crate::{NodeId, Wire};
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[derive(Clone, Debug)]
    struct Byte(#[allow(dead_code)] u8);
    impl Wire for Byte {
        fn wire_size(&self) -> usize {
            64
        }
    }

    /// Each node forwards a token to the next node; the last returns it
    /// to node 0, which counts laps.
    struct Ring {
        n: u32,
        laps: u32,
        timer_fired: bool,
    }
    enum RingReq {
        Laps,
    }
    impl App for Ring {
        type Msg = Byte;
        fn on_start(&mut self, ctx: &mut Ctx<Byte>) {
            if ctx.me == 0 {
                ctx.send(1 % self.n, Byte(0));
            }
            ctx.set_timer(Dur::from_millis(5), 77);
        }
        fn on_message(&mut self, ctx: &mut Ctx<Byte>, _from: NodeId, msg: Byte) {
            if ctx.me == 0 {
                self.laps += 1;
                if self.laps < 3 {
                    ctx.send(1 % self.n, msg);
                }
            } else {
                ctx.send((ctx.me + 1) % self.n, msg);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<Byte>, token: u64) {
            if token == 77 {
                self.timer_fired = true;
            }
        }
    }
    impl Service for Ring {
        type Req = RingReq;
        type Resp = u32;
        fn on_request(&mut self, _ctx: &mut Ctx<Byte>, req: RingReq) -> u32 {
            match req {
                RingReq::Laps => self.laps,
            }
        }
    }

    #[test]
    fn token_ring_completes_three_laps() {
        let n = 8u32;
        let apps = (0..n)
            .map(|_| Ring {
                n,
                laps: 0,
                timer_fired: false,
            })
            .collect();
        let cluster = Cluster::spawn(apps, 11);
        // Wait until node 0 reports 3 laps (bounded busy-wait).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let laps = cluster.request(0, RingReq::Laps).unwrap();
            if laps >= 3 || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(20)); // let timers fire
        let apps = cluster.shutdown();
        assert_eq!(apps[0].laps, 3);
        assert!(apps.iter().all(|a| a.timer_fired));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let apps = (0..2)
            .map(|_| Ring {
                n: 2,
                laps: 0,
                timer_fired: false,
            })
            .collect();
        let cluster = Cluster::spawn(apps, 5);
        let deadline = Instant::now() + Duration::from_secs(5);
        while cluster.request(0, RingReq::Laps).unwrap() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = cluster.stats();
        assert!(stats.messages >= 6, "messages {}", stats.messages);
        assert_eq!(stats.bytes, stats.messages * 64);
        // Inbound accounting is per node, same as the simulator's.
        assert_eq!(stats.inbound_bytes.iter().sum::<u64>(), stats.bytes);
        cluster.shutdown();
    }

    /// Counts delivered messages; sends only when asked to.
    struct Count {
        seen: u32,
    }
    enum CountReq {
        /// Read the delivery counter.
        Seen,
        /// Send `n` messages to `to` from this node.
        Burst { to: NodeId, n: u32 },
        /// Raise `parked`, then block the actor thread for `ms`.
        Park { parked: Arc<AtomicBool>, ms: u64 },
    }
    impl App for Count {
        type Msg = Byte;
        fn on_start(&mut self, _ctx: &mut Ctx<Byte>) {}
        fn on_message(&mut self, _ctx: &mut Ctx<Byte>, _from: NodeId, _msg: Byte) {
            self.seen += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<Byte>, _token: u64) {}
    }
    impl Service for Count {
        type Req = CountReq;
        type Resp = u32;
        fn on_request(&mut self, ctx: &mut Ctx<Byte>, req: CountReq) -> u32 {
            match req {
                CountReq::Seen => self.seen,
                CountReq::Burst { to, n } => {
                    for _ in 0..n {
                        ctx.send(to, Byte(0));
                    }
                    0
                }
                CountReq::Park { parked, ms } => {
                    parked.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(ms));
                    0
                }
            }
        }
    }

    #[test]
    fn kill_is_abrupt_even_with_a_loaded_inbox() {
        // A "killed" node must process none of its backlog: the kill
        // flag is checked per dispatch, not queued behind the mailbox.
        let cluster = Cluster::spawn(vec![Count { seen: 0 }, Count { seen: 0 }], 7);
        let parked = Arc::new(AtomicBool::new(false));
        // Park the victim's actor so the backlog builds up behind a
        // dispatch in progress.
        cluster.cast(
            1,
            CountReq::Park {
                parked: Arc::clone(&parked),
                ms: 150,
            },
        );
        while !parked.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        cluster
            .request(0, CountReq::Burst { to: 1, n: 500 })
            .unwrap();
        // Let node 0's flush actually enqueue the sends, then kill.
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.stats().messages < 500 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        cluster.kill(1);
        let apps = cluster.shutdown();
        assert_eq!(apps[1].seen, 0, "killed node drained its inbox");
    }

    #[test]
    fn sends_to_killed_nodes_classify_as_dropped_to_failed() {
        // Traffic to dead nodes must land in `dropped_to_failed`, not
        // inflate the headline counters the simulator excludes.
        let cluster = Cluster::spawn(vec![Count { seen: 0 }, Count { seen: 0 }], 9);
        cluster.kill(1);
        assert!(!cluster.alive(1));
        cluster
            .request(0, CountReq::Burst { to: 1, n: 10 })
            .unwrap();
        // The sends flush on node 0's actor after the request returns.
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.stats().dropped_to_failed < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = cluster.stats();
        assert_eq!(stats.dropped_to_failed, 10);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.bytes, 0);
        cluster.shutdown();
    }

    #[test]
    fn revive_reseats_a_killed_node() {
        let cluster = Cluster::spawn(vec![Count { seen: 0 }, Count { seen: 99 }], 21);
        assert!(!cluster.revive(1, Count { seen: 0 }), "still alive");
        assert!(!cluster.revive(7, Count { seen: 0 }), "no such node");
        cluster.kill(1);
        assert!(!cluster.alive(1));
        // Traffic sent while dead is dropped, not queued for the heir.
        cluster.request(0, CountReq::Burst { to: 1, n: 5 }).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.stats().dropped_to_failed < 5 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(cluster.revive(1, Count { seen: 0 }));
        assert!(cluster.alive(1));
        // The heir is a fresh automaton (seen=0, not the old 99) and
        // receives traffic again.
        cluster.request(0, CountReq::Burst { to: 1, n: 1 }).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let seen = cluster.request(1, CountReq::Seen).unwrap();
            if seen >= 1 || Instant::now() > deadline {
                assert_eq!(seen, 1, "heir state wrong or message lost");
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cluster.shutdown();
    }

    #[test]
    fn request_on_a_killed_node_returns_none() {
        let cluster = Cluster::spawn(vec![Count { seen: 0 }, Count { seen: 0 }], 13);
        cluster.kill(1);
        assert_eq!(cluster.request(1, CountReq::Seen), None);
        assert_eq!(cluster.request(0, CountReq::Seen), Some(0));
        assert_eq!(cluster.request(9, CountReq::Seen), None, "out of range");
        cluster.shutdown();
    }

    #[test]
    fn drop_joins_all_actor_threads() {
        // Regression: the pre-actor Cluster only joined threads in
        // `shutdown`, so a panicking test (which drops the cluster
        // during unwind) leaked detached workers into later tests.
        let cluster = Cluster::spawn(vec![Count { seen: 0 }, Count { seen: 0 }], 3);
        let census = Arc::clone(&cluster.live_actors);
        assert_eq!(census.load(Ordering::SeqCst), 2);
        // Even a parked-dead actor must be stopped and joined.
        cluster.kill(1);
        drop(cluster);
        assert_eq!(
            census.load(Ordering::SeqCst),
            0,
            "dropped Cluster must join every actor thread"
        );
    }

    #[test]
    fn handles_outlive_the_cluster_returning_none() {
        let cluster = Cluster::spawn(vec![Count { seen: 0 }], 17);
        let h = cluster.handle(0).unwrap();
        assert!(cluster.handle(4).is_none());
        assert_eq!(h.id(), 0);
        assert_eq!(h.clone().request(CountReq::Seen), Some(0));
        drop(cluster);
        assert_eq!(
            h.request(CountReq::Seen),
            None,
            "request after teardown must disconnect, not hang"
        );
    }
}

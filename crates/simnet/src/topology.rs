//! Latency topologies for the simulator.
//!
//! The paper evaluates on two topologies (§5.2, §5.7):
//!
//! 1. A fully connected network, 100 ms between any two nodes, 10 Mbps
//!    inbound capacity per node ("congestion at the last hop").
//! 2. A GT-ITM transit-stub topology: 4 transit domains, 10 transit nodes
//!    per domain, 3 stub domains per transit node, nodes spread uniformly
//!    over stubs; 50 ms transit–transit, 10 ms transit–stub, 2 ms
//!    intra-stub, yielding ≈170 ms average end-to-end delay.

use crate::time::Dur;
use crate::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Pairwise propagation latency between nodes.
pub trait Topology: Send + Sync {
    /// One-way propagation delay from `a` to `b`.
    fn latency(&self, a: NodeId, b: NodeId) -> Dur;

    /// Lower bound on [`Self::latency`] over all *distinct* pairs — the
    /// lookahead of the conservative sharded engine
    /// ([`crate::sharded::ShardedSim`]): no message sent at time `t` can
    /// arrive anywhere before `t + min_latency()`, so shards may safely
    /// execute a window of that width past the global minimum without
    /// hearing from each other. Must be positive for the sharded engine
    /// to make parallel progress (a zero bound degenerates to lock-step).
    fn min_latency(&self) -> Dur;
}

/// Fully connected topology with a constant pairwise latency.
#[derive(Debug, Clone)]
pub struct FullMesh {
    pub latency: Dur,
}

impl FullMesh {
    /// The paper's default: 100 ms between any two distinct nodes.
    pub fn paper_default() -> Self {
        FullMesh {
            latency: Dur::from_millis(100),
        }
    }
}

impl Topology for FullMesh {
    fn latency(&self, a: NodeId, b: NodeId) -> Dur {
        if a == b {
            Dur::ZERO
        } else {
            self.latency
        }
    }

    fn min_latency(&self) -> Dur {
        self.latency
    }
}

/// Parameters of the transit-stub generator, defaulting to §5.7's values.
#[derive(Debug, Clone)]
pub struct TransitStubParams {
    pub transit_domains: u32,
    pub transit_nodes_per_domain: u32,
    pub stubs_per_transit_node: u32,
    pub transit_transit: Dur,
    pub transit_stub: Dur,
    pub intra_stub: Dur,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            transit_domains: 4,
            transit_nodes_per_domain: 10,
            stubs_per_transit_node: 3,
            transit_transit: Dur::from_millis(50),
            transit_stub: Dur::from_millis(10),
            intra_stub: Dur::from_millis(2),
        }
    }
}

/// Position of a node in the transit-stub hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StubLoc {
    domain: u32,
    transit_node: u32,
    stub: u32,
}

/// GT-ITM-style transit-stub topology.
///
/// End-to-end latency is the sum of the up-link from the source stub, the
/// transit path (0, 1 or 3 transit hops for same transit node / same
/// domain / different domains), and the down-link — reproducing the
/// paper's ≈170 ms average for inter-domain pairs
/// (10 + 50·3 + 10 = 170 ms).
pub struct TransitStub {
    params: TransitStubParams,
    locs: Vec<StubLoc>,
}

impl TransitStub {
    /// Assign `n` nodes uniformly at random over the stub domains.
    pub fn new(n: u32, seed: u64, params: TransitStubParams) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7261_6e64_7473);
        let locs = (0..n)
            .map(|_| StubLoc {
                domain: rng.gen_range(0..params.transit_domains),
                transit_node: rng.gen_range(0..params.transit_nodes_per_domain),
                stub: rng.gen_range(0..params.stubs_per_transit_node),
            })
            .collect();
        TransitStub { params, locs }
    }

    pub fn paper_default(n: u32, seed: u64) -> Self {
        Self::new(n, seed, TransitStubParams::default())
    }

    fn transit_hops(&self, a: StubLoc, b: StubLoc) -> u64 {
        if a.domain == b.domain {
            if a.transit_node == b.transit_node {
                0
            } else {
                1
            }
        } else {
            // Up to the local domain gateway, across, and down: 3 hops.
            3
        }
    }
}

impl Topology for TransitStub {
    fn latency(&self, a: NodeId, b: NodeId) -> Dur {
        if a == b {
            return Dur::ZERO;
        }
        let (la, lb) = (self.locs[a as usize], self.locs[b as usize]);
        if la == lb {
            return self.params.intra_stub;
        }
        let hops = self.transit_hops(la, lb);
        self.params.transit_stub
            + self.params.transit_transit.saturating_mul(hops)
            + self.params.transit_stub
    }

    fn min_latency(&self) -> Dur {
        // Two co-located stub nodes are `intra_stub` apart; any other
        // distinct pair crosses at least two transit-stub links.
        self.params
            .intra_stub
            .min(self.params.transit_stub + self.params.transit_stub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_is_constant_and_zero_to_self() {
        let t = FullMesh::paper_default();
        assert_eq!(t.latency(0, 0), Dur::ZERO);
        assert_eq!(t.latency(0, 5), Dur::from_millis(100));
        assert_eq!(t.latency(5, 0), Dur::from_millis(100));
    }

    #[test]
    fn transit_stub_latencies_match_paper_cases() {
        // Build a topology and hand-place by searching for representative
        // pairs among many random nodes.
        let ts = TransitStub::paper_default(2048, 42);
        let mut seen_same_stub = false;
        let mut seen_same_tn = false;
        let mut seen_same_domain = false;
        let mut seen_inter = false;
        for a in 0..400u32 {
            for b in (a + 1)..400u32 {
                let (la, lb) = (ts.locs[a as usize], ts.locs[b as usize]);
                let lat = ts.latency(a, b);
                if la == lb {
                    assert_eq!(lat, Dur::from_millis(2));
                    seen_same_stub = true;
                } else if la.domain == lb.domain && la.transit_node == lb.transit_node {
                    assert_eq!(lat, Dur::from_millis(20));
                    seen_same_tn = true;
                } else if la.domain == lb.domain {
                    assert_eq!(lat, Dur::from_millis(70));
                    seen_same_domain = true;
                } else {
                    assert_eq!(lat, Dur::from_millis(170));
                    seen_inter = true;
                }
            }
        }
        assert!(seen_same_stub && seen_same_tn && seen_same_domain && seen_inter);
    }

    #[test]
    fn transit_stub_is_symmetric() {
        let ts = TransitStub::paper_default(128, 7);
        for a in 0..128u32 {
            for b in 0..128u32 {
                assert_eq!(ts.latency(a, b), ts.latency(b, a));
            }
        }
    }

    #[test]
    fn transit_stub_average_latency_near_170ms() {
        // Most random pairs are inter-domain, so the mean should sit a bit
        // below 170 ms — the paper reports ≈170 ms.
        let ts = TransitStub::paper_default(512, 9);
        let mut sum = 0.0;
        let mut cnt = 0u64;
        for a in 0..512u32 {
            for b in (a + 1)..512u32 {
                sum += ts.latency(a, b).as_secs_f64();
                cnt += 1;
            }
        }
        let avg = sum / cnt as f64;
        assert!(avg > 0.12 && avg < 0.175, "avg latency {avg}");
    }
}

//! Traffic accounting for the evaluation metrics of §5.
//!
//! The paper reports aggregate network traffic (Figure 4) and the maximum
//! inbound traffic at a node (§5 intro). The engine charges every
//! delivered message here; harnesses snapshot/diff around a query window.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::NodeId;

/// Cumulative network statistics maintained by an engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered.
    pub messages: u64,
    /// Total bytes delivered (sum of `Wire::wire_size`).
    pub bytes: u64,
    /// Bytes delivered into each node (inbound-link usage).
    pub inbound_bytes: Vec<u64>,
    /// Messages dropped because the destination had failed.
    pub dropped_to_failed: u64,
    /// Messages discarded by an injected message-drop window
    /// ([`crate::fault::Fault::DropStart`]).
    pub dropped_in_window: u64,
}

impl NetStats {
    pub fn new(n: usize) -> Self {
        NetStats {
            inbound_bytes: vec![0; n],
            ..Default::default()
        }
    }

    pub(crate) fn ensure_nodes(&mut self, n: usize) {
        if self.inbound_bytes.len() < n {
            self.inbound_bytes.resize(n, 0);
        }
    }

    pub(crate) fn record_delivery(&mut self, to: NodeId, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        self.ensure_nodes(to as usize + 1);
        self.inbound_bytes[to as usize] += bytes as u64;
    }

    /// Max inbound bytes over all nodes — the paper's "maximum inbound
    /// traffic at a node" metric.
    pub fn max_inbound(&self) -> u64 {
        self.inbound_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Aggregate traffic in megabytes (Figure 4's y-axis).
    pub fn aggregate_mb(&self) -> f64 {
        self.bytes as f64 / 1e6
    }

    /// Fold another engine's counters into this one. All fields are
    /// plain sums, so merging per-shard stats in any order yields the
    /// same totals the sequential engine would have accumulated.
    pub fn merge(&mut self, other: &NetStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.dropped_to_failed += other.dropped_to_failed;
        self.dropped_in_window += other.dropped_in_window;
        self.ensure_nodes(other.inbound_bytes.len());
        for (i, v) in other.inbound_bytes.iter().enumerate() {
            self.inbound_bytes[i] += v;
        }
    }

    /// Traffic accumulated since an earlier snapshot.
    pub fn since(&self, snapshot: &NetStats) -> NetStats {
        let mut inbound = self.inbound_bytes.clone();
        for (i, v) in inbound.iter_mut().enumerate() {
            *v -= snapshot.inbound_bytes.get(i).copied().unwrap_or(0);
        }
        NetStats {
            messages: self.messages - snapshot.messages,
            bytes: self.bytes - snapshot.bytes,
            inbound_bytes: inbound,
            dropped_to_failed: self.dropped_to_failed - snapshot.dropped_to_failed,
            dropped_in_window: self.dropped_in_window - snapshot.dropped_in_window,
        }
    }
}

/// Concurrent twin of [`NetStats`]: the same counters as atomics, for
/// engines whose senders run on many threads at once (the actor
/// runtime's [`crate::transport::ChannelTransport`]).
///
/// There is exactly one accounting vocabulary across engines — a
/// [`Self::snapshot`] is a plain [`NetStats`], so cross-engine parity
/// tests compare one type instead of field-by-field. Per-counter
/// updates are exact; a snapshot taken while senders are active is
/// approximately consistent (each counter individually correct).
#[derive(Debug)]
pub struct AtomicNetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    inbound_bytes: Vec<AtomicU64>,
    dropped_to_failed: AtomicU64,
    dropped_in_window: AtomicU64,
}

impl AtomicNetStats {
    /// Counters for a fixed population of `n` nodes.
    pub fn new(n: usize) -> Self {
        AtomicNetStats {
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            inbound_bytes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dropped_to_failed: AtomicU64::new(0),
            dropped_in_window: AtomicU64::new(0),
        }
    }

    /// Charge one delivered message of `bytes` into node `to`.
    pub fn record_delivery(&self, to: NodeId, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        if let Some(b) = self.inbound_bytes.get(to as usize) {
            b.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// A message addressed to a failed node: a drop, not traffic.
    pub fn record_dropped_to_failed(&self) {
        self.dropped_to_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A message discarded by an injected drop window.
    pub fn record_dropped_in_window(&self) {
        self.dropped_in_window.fetch_add(1, Ordering::Relaxed);
    }

    /// Materialize the counters as the engine-agnostic [`NetStats`].
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            inbound_bytes: self
                .inbound_bytes
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            dropped_to_failed: self.dropped_to_failed.load(Ordering::Relaxed),
            dropped_in_window: self.dropped_in_window.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_accounting_and_diff() {
        let mut s = NetStats::new(3);
        s.record_delivery(1, 100);
        s.record_delivery(1, 50);
        s.record_delivery(2, 500);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 650);
        assert_eq!(s.max_inbound(), 500);

        let snap = s.clone();
        s.record_delivery(0, 25);
        let d = s.since(&snap);
        assert_eq!(d.messages, 1);
        assert_eq!(d.bytes, 25);
        assert_eq!(d.inbound_bytes[0], 25);
        assert_eq!(d.inbound_bytes[2], 0);
    }

    #[test]
    fn grows_for_new_nodes() {
        let mut s = NetStats::new(1);
        s.record_delivery(5, 10);
        assert_eq!(s.inbound_bytes.len(), 6);
        assert_eq!(s.inbound_bytes[5], 10);
    }

    #[test]
    fn atomic_snapshot_matches_sequential_accounting() {
        let atomic = AtomicNetStats::new(3);
        let mut seq = NetStats::new(3);
        atomic.record_delivery(1, 100);
        seq.record_delivery(1, 100);
        atomic.record_delivery(2, 50);
        seq.record_delivery(2, 50);
        atomic.record_dropped_to_failed();
        seq.dropped_to_failed += 1;
        atomic.record_dropped_in_window();
        seq.dropped_in_window += 1;
        let snap = atomic.snapshot();
        assert_eq!(snap.messages, seq.messages);
        assert_eq!(snap.bytes, seq.bytes);
        assert_eq!(snap.inbound_bytes, seq.inbound_bytes);
        assert_eq!(snap.dropped_to_failed, seq.dropped_to_failed);
        assert_eq!(snap.dropped_in_window, seq.dropped_in_window);
        assert_eq!(snap.max_inbound(), 100);
    }

    #[test]
    fn aggregate_mb_scale() {
        let mut s = NetStats::new(1);
        s.record_delivery(0, 2_000_000);
        assert!((s.aggregate_mb() - 2.0).abs() < 1e-9);
    }
}

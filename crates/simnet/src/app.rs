//! The node automaton interface shared by both engines.

use crate::time::{Dur, Time};
use crate::{NodeId, Wire};
use rand::rngs::SmallRng;

/// A PIER node as an event-driven automaton.
///
/// All node-local logic (DHT routing, storage, query processing) lives
/// behind these three callbacks, so the identical code runs under the
/// discrete-event [`crate::Sim`] and the wall-clock actor runtime
/// ([`crate::cluster::Cluster`]).
///
/// Callbacks receive a [`Ctx`] through which the node sends messages, sets
/// timers, and draws deterministic randomness. Handlers must not block.
///
/// Automata (and their messages) are `Send`: the actor-runtime
/// [`crate::cluster::Cluster`] moves each one onto its own OS thread,
/// and the sharded [`crate::sharded::ShardedSim`] moves whole shards of
/// them onto worker threads at every window barrier.
pub trait App: Sized + Send {
    /// Message type exchanged between nodes of this application.
    type Msg: Wire + Clone + Send;

    /// Invoked once when the node is added to the engine.
    fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>);

    /// Invoked when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Invoked when a timer previously set with [`Ctx::set_timer`] fires.
    /// `token` is the app-chosen value passed at registration.
    fn on_timer(&mut self, ctx: &mut Ctx<Self::Msg>, token: u64);
}

/// An action emitted by a node handler, applied by the engine after the
/// handler returns.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to node `to` over the network.
    Send { to: NodeId, msg: M },
    /// Fire `on_timer(token)` after `after` has elapsed.
    Timer { after: Dur, token: u64 },
}

/// Handler context: the node's view of the engine during one callback.
pub struct Ctx<'a, M> {
    /// Current engine time (virtual under simulation, wall-clock offset
    /// under the actor runtime).
    pub now: Time,
    /// This node's id.
    pub me: NodeId,
    /// Per-node deterministic RNG (seeded from the engine seed and node id).
    pub rng: &'a mut SmallRng,
    pub(crate) actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> Ctx<'a, M> {
    pub(crate) fn new(
        now: Time,
        me: NodeId,
        rng: &'a mut SmallRng,
        actions: &'a mut Vec<Action<M>>,
    ) -> Self {
        Ctx {
            now,
            me,
            rng,
            actions,
        }
    }

    /// Queue a message for delivery to `to`. Delivery is asynchronous and
    /// unreliable in the presence of failures: messages addressed to a
    /// failed node are silently dropped, exactly like UDP datagrams in the
    /// paper's soft-state world.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Schedule `on_timer(token)` to fire `after` from now. There is no
    /// cancellation; automata are expected to ignore stale tokens (the
    /// idiom used throughout the DHT layer).
    pub fn set_timer(&mut self, after: Dur, token: u64) {
        self.actions.push(Action::Timer { after, token });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_buffers_actions_in_order() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut ctx = Ctx::new(Time::ZERO, 0, &mut rng, &mut actions);
        ctx.send(3, 42);
        ctx.set_timer(Dur::from_secs(1), 9);
        ctx.send(1, 7);
        assert_eq!(actions.len(), 3);
        match &actions[0] {
            Action::Send { to, msg } => assert_eq!((*to, *msg), (3, 42)),
            _ => panic!("expected send"),
        }
        match &actions[1] {
            Action::Timer { after, token } => {
                assert_eq!(*after, Dur::from_secs(1));
                assert_eq!(*token, 9);
            }
            _ => panic!("expected timer"),
        }
    }
}

//! The message-carrying layer between node actors, pluggable per
//! deployment shape.
//!
//! A [`Transport`] moves application messages from a source node into
//! the destination's mailbox and owns the per-link fault surface (kill
//! flags, inbound drop windows) plus the traffic accounting
//! ([`NetStats`]) for everything it carries. Two backends ship today:
//!
//! * [`ChannelTransport`] — in-process channels, one free-running OS
//!   thread per actor, wall-clock time. A send is an immediate mailbox
//!   push; there is no global barrier of any kind. This is the
//!   deployment shape (`Cluster` is built on it), and the template for
//!   a future socket transport: everything crossing it is a value, not
//!   a closure.
//! * [`SimTransport`] — an adapter presenting the same surface over
//!   the *unchanged* deterministic engines ([`Sim`] / [`ShardedSim`]).
//!   The engine's event queue is the mailbox, its latency/bandwidth
//!   model the link; a send is injected at the source exactly as if
//!   the automaton had emitted it, so every determinism pin (exact
//!   delivery times, bit-identical sharded execution) holds unchanged.
//!
//! What the trait deliberately does *not* promise: cross-pair ordering
//! or reliability under faults. Per src→dst pair, messages arrive in
//! send order (FIFO channels; deterministic single-path latency in the
//! sim); messages to killed destinations or into open drop windows are
//! counted and discarded, never queued.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;

use crate::actor::{Envelope, Service};
use crate::app::App;
use crate::sharded::ShardedSim;
use crate::stats::{AtomicNetStats, NetStats};
use crate::time::Dur;
use crate::{NodeId, Sim, Wire};

/// Engine-agnostic control surface of a message-carrying backend.
///
/// `send` injects a message from `src` as if `src`'s automaton had
/// emitted it; the fault hooks mirror the engines' (`kill` is abrupt,
/// `set_inbound_drop` opens a lossy window while the node stays
/// alive); `settle` lets in-flight traffic drain — virtual time under
/// the simulator, wall time under channels. The conformance suite in
/// `tests/transport_conformance.rs` pins that both backends classify
/// identical traffic identically through this surface.
pub trait Transport<A: App> {
    /// Deliver `msg` from `src` toward `dst`'s mailbox (or classify it
    /// as dropped, per the fault state). No-op if `src` is dead.
    fn send(&mut self, src: NodeId, dst: NodeId, msg: A::Msg);
    /// Abrupt node failure: `dst` stops receiving instantly; traffic
    /// addressed to it counts as `dropped_to_failed`, not traffic.
    fn kill(&mut self, node: NodeId);
    /// Re-seat a fresh automaton at a killed id. `false` if the id is
    /// out of range or still alive.
    fn revive(&mut self, node: NodeId, app: A) -> bool;
    /// Has `node` not been killed?
    fn alive(&self, node: NodeId) -> bool;
    /// Open or close a message-drop window on `node`'s inbound side.
    fn set_inbound_drop(&mut self, node: NodeId, dropping: bool);
    fn node_count(&self) -> usize;
    /// Traffic counters, in the one cross-engine vocabulary.
    fn stats(&self) -> NetStats;
    /// Let in-flight traffic drain for `d` — virtual for simulator
    /// backends, wall-clock for channel backends.
    fn settle(&mut self, d: Dur);
}

// ---------------------------------------------------------------------
// Channel backend: the shared send-side state of a running actor set.
// ---------------------------------------------------------------------

/// Send-side state shared by every actor of one channel transport:
/// mailbox senders, per-node fault flags, and the traffic counters.
/// Every actor holds an `Arc<Links>`; a send consults the destination's
/// fault flags, accounts the outcome, and pushes into its mailbox.
pub(crate) struct Links<A: Service> {
    senders: Vec<Sender<Envelope<A>>>,
    killed: Vec<AtomicBool>,
    drop_inbound: Vec<AtomicBool>,
    stats: AtomicNetStats,
    /// Network messages currently enqueued per mailbox: incremented on
    /// a delivered `Envelope::Msg`, decremented when the actor dequeues
    /// it (dispatched live or discarded parked-dead). The depth gauge
    /// behind `Cluster::mailbox_depth` — a sustained rise on one node
    /// is the backlog signature of an overloaded or wedged actor.
    depth: Vec<AtomicUsize>,
}

impl<A: Service> Links<A> {
    pub(crate) fn new(senders: Vec<Sender<Envelope<A>>>) -> Self {
        let n = senders.len();
        Links {
            senders,
            killed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            drop_inbound: (0..n).map(|_| AtomicBool::new(false)).collect(),
            stats: AtomicNetStats::new(n),
            depth: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Classify-and-deliver one message on the `src → dst` link,
    /// mirroring the simulator's routing exactly: drop windows spare
    /// self-sends (a node's loopback never crosses the faulted link),
    /// and loopback traffic is never accounted — delivered, but not
    /// counted as messages, bytes, or drops.
    pub(crate) fn send(&self, src: NodeId, dst: NodeId, msg: A::Msg) {
        let Some(tx) = self.senders.get(dst as usize) else {
            return;
        };
        if dst != src && self.drop_inbound[dst as usize].load(Ordering::Relaxed) {
            self.stats.record_dropped_in_window();
            return;
        }
        // Liveness next: traffic to a dead node is not traffic, it is
        // a drop — exactly how the simulator classifies it.
        if self.killed[dst as usize].load(Ordering::Relaxed) {
            if dst != src {
                self.stats.record_dropped_to_failed();
            }
            return;
        }
        if dst != src {
            self.stats.record_delivery(dst, msg.wire_size());
        }
        if tx.send(Envelope::Msg { from: src, msg }).is_ok() {
            self.depth[dst as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One `Envelope::Msg` left `id`'s mailbox (dispatched or
    /// discarded); called by the actor loop only.
    pub(crate) fn note_dequeue(&self, id: NodeId) {
        if let Some(d) = self.depth.get(id as usize) {
            d.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Network messages currently waiting in `id`'s mailbox.
    pub(crate) fn mailbox_depth(&self, id: NodeId) -> usize {
        self.depth
            .get(id as usize)
            .map_or(0, |d| d.load(Ordering::Relaxed))
    }

    pub(crate) fn alive(&self, id: NodeId) -> bool {
        self.killed
            .get(id as usize)
            .is_some_and(|f| !f.load(Ordering::Relaxed))
    }

    /// Abruptly kill `node`: raise the flag (checked before every
    /// dispatch, so death is immediate even with a loaded mailbox) and
    /// nudge the actor awake so it notices promptly.
    pub(crate) fn kill(&self, node: NodeId) {
        if let (Some(flag), Some(tx)) = (self.killed.get(node as usize), self.sender(node)) {
            flag.store(true, Ordering::Relaxed);
            let _ = tx.send(Envelope::Nudge);
        }
    }

    /// Re-seat a fresh automaton at a killed id. Returns `false` if
    /// `node` is out of range or still alive.
    pub(crate) fn revive(&self, node: NodeId, app: A) -> bool {
        let (Some(flag), Some(tx)) = (self.killed.get(node as usize), self.sender(node)) else {
            return false;
        };
        if !flag.load(Ordering::Relaxed) {
            return false;
        }
        if tx.send(Envelope::Revive(app)).is_err() {
            return false;
        }
        // Flip liveness immediately so peers route traffic to the
        // newcomer; anything arriving before the actor processes the
        // `Revive` queues behind it and is dispatched afterwards.
        flag.store(false, Ordering::Relaxed);
        true
    }

    pub(crate) fn set_inbound_drop(&self, node: NodeId, dropping: bool) {
        if let Some(flag) = self.drop_inbound.get(node as usize) {
            flag.store(dropping, Ordering::Relaxed);
        }
    }

    pub(crate) fn set_alive(&self, id: NodeId) {
        if let Some(f) = self.killed.get(id as usize) {
            f.store(false, Ordering::Relaxed);
        }
    }

    pub(crate) fn sender(&self, id: NodeId) -> Option<&Sender<Envelope<A>>> {
        self.senders.get(id as usize)
    }

    pub(crate) fn node_count(&self) -> usize {
        self.senders.len()
    }

    pub(crate) fn stats(&self) -> NetStats {
        self.stats.snapshot()
    }
}

/// The free-running in-process backend: crossbeam channels into
/// per-actor mailboxes, wall-clock time, no barrier.
///
/// `Cluster` owns one of these; it is also usable directly (the
/// conformance suite drives it through the [`Transport`] surface).
pub struct ChannelTransport<A: Service> {
    links: Arc<Links<A>>,
}

impl<A: Service> ChannelTransport<A> {
    pub(crate) fn new(links: Arc<Links<A>>) -> Self {
        ChannelTransport { links }
    }

    pub(crate) fn links(&self) -> &Arc<Links<A>> {
        &self.links
    }
}

impl<A: Service> Transport<A> for ChannelTransport<A> {
    fn send(&mut self, src: NodeId, dst: NodeId, msg: A::Msg) {
        if self.links.alive(src) {
            self.links.send(src, dst, msg);
        }
    }

    fn kill(&mut self, node: NodeId) {
        self.links.kill(node);
    }

    fn revive(&mut self, node: NodeId, app: A) -> bool {
        self.links.revive(node, app)
    }

    fn alive(&self, node: NodeId) -> bool {
        self.links.alive(node)
    }

    fn set_inbound_drop(&mut self, node: NodeId, dropping: bool) {
        self.links.set_inbound_drop(node, dropping);
    }

    fn node_count(&self) -> usize {
        self.links.node_count()
    }

    fn stats(&self) -> NetStats {
        self.links.stats()
    }

    fn settle(&mut self, d: Dur) {
        std::thread::sleep(std::time::Duration::from_micros(d.as_micros()));
    }
}

// ---------------------------------------------------------------------
// Simulator backend: adapter over the unchanged deterministic engines.
// ---------------------------------------------------------------------

/// [`Transport`] facade over a deterministic engine, leaving the engine
/// itself untouched: sends are injected at the source automaton, faults
/// map onto the engine's own hooks, and `settle` advances virtual time.
pub struct SimTransport<E> {
    engine: E,
}

impl<E> SimTransport<E> {
    pub fn new(engine: E) -> Self {
        SimTransport { engine }
    }

    /// The wrapped engine, for observation (reading node state, clocks).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Unwrap back into the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }
}

impl<A: App> Transport<A> for SimTransport<Sim<A>> {
    fn send(&mut self, src: NodeId, dst: NodeId, msg: A::Msg) {
        // Injected exactly as an automaton emission: same routing, same
        // latency model, same classification — `with_app` on a dead
        // source is a no-op, like a dead process sending nothing.
        self.engine.with_app(src, move |_, ctx| ctx.send(dst, msg));
    }

    fn kill(&mut self, node: NodeId) {
        self.engine.fail_node(node);
    }

    fn revive(&mut self, node: NodeId, app: A) -> bool {
        self.engine.revive(node, app)
    }

    fn alive(&self, node: NodeId) -> bool {
        self.engine.alive(node)
    }

    fn set_inbound_drop(&mut self, node: NodeId, dropping: bool) {
        self.engine.set_inbound_drop(node, dropping);
    }

    fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    fn stats(&self) -> NetStats {
        self.engine.stats().clone()
    }

    fn settle(&mut self, d: Dur) {
        self.engine.run_for(d);
    }
}

impl<A: App> Transport<A> for SimTransport<ShardedSim<A>> {
    fn send(&mut self, src: NodeId, dst: NodeId, msg: A::Msg) {
        self.engine.with_app(src, move |_, ctx| ctx.send(dst, msg));
    }

    fn kill(&mut self, node: NodeId) {
        self.engine.fail_node(node);
    }

    fn revive(&mut self, node: NodeId, app: A) -> bool {
        self.engine.revive(node, app)
    }

    fn alive(&self, node: NodeId) -> bool {
        self.engine.alive(node)
    }

    fn set_inbound_drop(&mut self, node: NodeId, dropping: bool) {
        self.engine.set_inbound_drop(node, dropping);
    }

    fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    fn stats(&self) -> NetStats {
        self.engine.stats()
    }

    fn settle(&mut self, d: Dur) {
        self.engine.run_for(d);
    }
}

//! # pier-simnet
//!
//! Network engines for PIER (Huebsch et al., VLDB 2003).
//!
//! The paper runs the *same code base* both under simulation (up to 10,000
//! nodes) and deployed on a 64-PC cluster (§5.2). This crate provides that
//! split: a node is an event-driven automaton implementing [`App`], and two
//! engines can host it unchanged:
//!
//! * [`Sim`] — a deterministic discrete-event simulator with a virtual
//!   microsecond clock, a pluggable latency [`topology::Topology`], and a
//!   flow-level bandwidth model that queues messages on the receiver's
//!   inbound link (the paper's "congestion occurs at the last hop" model).
//! * [`sharded::ShardedSim`] — the same simulator partitioned across
//!   worker threads with a conservative time-window barrier; bit-identical
//!   results to [`Sim`] at any shard count, for the 10^4-node-and-beyond
//!   runs a single core can't sustain.
//! * [`cluster::Cluster`] — the actor runtime: one free-running OS
//!   thread per node actor over a [`transport::ChannelTransport`], wall
//!   clock, no barrier; our stand-in for the paper's real cluster
//!   deployment (§5.8). Consumers talk to actors only through typed
//!   [`actor::NodeHandle`] requests.
//!
//! Between actors sits the pluggable [`transport::Transport`] layer:
//! [`transport::ChannelTransport`] carries the cluster's traffic,
//! [`transport::SimTransport`] presents the same surface over the
//! unchanged deterministic engines.
//!
//! Message sizes are modeled by the [`Wire`] trait so that bandwidth and
//! traffic accounting reflect on-the-wire bytes rather than Rust object
//! sizes.

pub mod actor;
pub mod app;
pub mod cluster;
pub mod engine;
pub mod fault;
pub mod sharded;
pub mod stats;
pub mod time;
pub mod topology;
pub mod transport;

pub use actor::{NodeHandle, Service};
pub use app::{Action, App, Ctx};
pub use cluster::Cluster;
pub use engine::{NetConfig, Sim};
pub use fault::{Fault, FaultDriver, FaultScript, Scheduled};
pub use sharded::{ShardMap, ShardedSim};
pub use stats::{AtomicNetStats, NetStats};
pub use time::{Dur, Time};
pub use topology::{FullMesh, Topology, TransitStub, TransitStubParams};
pub use transport::{ChannelTransport, SimTransport, Transport};

/// Identifier of a physical node slot in an engine.
///
/// Node ids are dense indices assigned in creation order; they double as
/// the "IP address" of the PIER node in DHT routing tables.
pub type NodeId = u32;

/// On-the-wire size model for messages.
///
/// Engines charge `wire_size()` bytes against link bandwidth and traffic
/// statistics. Implementations should include their own notion of header
/// overhead; the engine adds nothing.
pub trait Wire {
    /// Number of bytes this message occupies on the wire.
    fn wire_size(&self) -> usize;
}

impl Wire for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl Wire for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

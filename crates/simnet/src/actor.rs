//! The actor runtime: one free-running select loop per node, driven
//! from the outside only through a cloneable client handle.
//!
//! PIER's deployment shape (§3 of the paper) is an overlay of
//! autonomous nodes exchanging asynchronous messages — not a set of
//! automata lock-stepped by a harness. This module is that shape as a
//! first-class runtime:
//!
//! * a **node actor** owns all mutable state (the [`App`] automaton,
//!   its timers, its RNG) and runs a single select loop over an
//!   inbound mailbox of envelopes — network messages delivered by
//!   a [`crate::transport::Transport`], typed requests from clients,
//!   and lifecycle control (revive / stop);
//! * a [`NodeHandle`] is the *only* way benches, tests, and
//!   co-resident apps interact with a running actor. It is cheap to
//!   clone and sends typed [`Service::Req`] messages; there is no
//!   closure-injection API, so nothing outside the actor thread can
//!   ever touch node state.
//!
//! The handle/actor split follows the `DHTClient`/`DHTNode` pair of
//! production DHT stacks: consumers never see the node object, only
//! the client; the node owns the loop.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::app::{Action, App, Ctx};
use crate::time::Time;
use crate::transport::Links;
use crate::NodeId;

/// An [`App`] that also answers typed requests from client handles.
///
/// Requests are the actor runtime's replacement for closure injection:
/// instead of shipping a `FnOnce(&mut A)` to the node thread, a client
/// sends a `Req` value and the actor answers with a `Resp`, both
/// executing inside the node's own loop with a full [`Ctx`] (so a
/// request handler may send messages and set timers like any other
/// callback). This keeps the wire between client and node serializable
/// in principle — the prerequisite for a multi-process transport.
pub trait Service: App {
    /// Typed request accepted from a [`NodeHandle`].
    type Req: Send + 'static;
    /// Typed response returned to the requester.
    type Resp: Send + 'static;

    /// Handle one request on the actor thread.
    fn on_request(&mut self, ctx: &mut Ctx<Self::Msg>, req: Self::Req) -> Self::Resp;
}

/// Everything that can land in an actor's mailbox.
pub(crate) enum Envelope<A: Service> {
    /// A network message delivered by the transport.
    Msg { from: NodeId, msg: A::Msg },
    /// A typed request from a [`NodeHandle`]; `reply` is `None` for
    /// fire-and-forget casts. Dropping the reply sender unanswered
    /// (node killed, request discarded) disconnects the requester.
    Request {
        req: A::Req,
        reply: Option<Sender<A::Resp>>,
    },
    /// Re-seat a fresh automaton at this id (see `Cluster::revive`).
    Revive(A),
    /// Wake the thread so it notices a freshly raised kill flag; no
    /// other effect.
    Nudge,
    /// Shut the thread down for good (cluster teardown).
    Stop,
}

/// Cloneable client half of a node actor.
///
/// Holding a handle does not keep the actor alive; requests to a node
/// that has been killed (or whose cluster has shut down) return `None`.
pub struct NodeHandle<A: Service> {
    id: NodeId,
    tx: Sender<Envelope<A>>,
    links: Arc<Links<A>>,
}

impl<A: Service> Clone for NodeHandle<A> {
    fn clone(&self) -> Self {
        NodeHandle {
            id: self.id,
            tx: self.tx.clone(),
            links: Arc::clone(&self.links),
        }
    }
}

impl<A: Service> NodeHandle<A> {
    pub(crate) fn new(id: NodeId, tx: Sender<Envelope<A>>, links: Arc<Links<A>>) -> Self {
        NodeHandle { id, tx, links }
    }

    /// The node this handle talks to.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Has the node not been killed?
    pub fn alive(&self) -> bool {
        self.links.alive(self.id)
    }

    /// Send `req` and wait for the actor's typed response. Returns
    /// `None` if the node has been killed — before the request was
    /// sent, or while it was still queued (a discarded request drops
    /// its reply channel, which disconnects this call).
    pub fn request(&self, req: A::Req) -> Option<A::Resp> {
        if !self.alive() {
            return None;
        }
        let (tx, rx) = bounded(1);
        self.tx
            .send(Envelope::Request {
                req,
                reply: Some(tx),
            })
            .ok()?;
        // A kill can land after the send but before the actor dispatches
        // the request; the parked actor then drops the reply sender and
        // `rx` disconnects. Poll the kill flag as well so a request
        // never blocks on a corpse that has not reached its mailbox yet.
        loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(r) => return Some(r),
                Err(RecvTimeoutError::Timeout) => {
                    if !self.alive() {
                        return None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    /// Fire-and-forget request: dispatched on the actor thread, response
    /// discarded.
    pub fn cast(&self, req: A::Req) {
        let _ = self.tx.send(Envelope::Request { req, reply: None });
    }
}

/// Decrements the live-thread census when an actor thread exits — on
/// clean shutdown *and* on unwind, so leak checks see the truth.
struct CensusGuard(Arc<AtomicUsize>);

impl Drop for CensusGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Spawn the actor thread for node `me`: the select loop over its
/// mailbox. Returns the join handle yielding the final automaton.
///
/// `census` counts live actor threads; it is incremented here (on the
/// caller's thread, so the count is correct the moment this returns)
/// and decremented when the thread exits.
pub(crate) fn spawn_actor<A: Service + 'static>(
    mut app: A,
    me: NodeId,
    seed: u64,
    start: Instant,
    rx: Receiver<Envelope<A>>,
    links: Arc<Links<A>>,
    census: Arc<AtomicUsize>,
) -> JoinHandle<A>
where
    A::Msg: Send + 'static,
{
    census.fetch_add(1, Ordering::SeqCst);
    let guard = CensusGuard(census);
    std::thread::Builder::new()
        .name(format!("pier-actor-{me}"))
        .spawn(move || {
            let _guard = guard;
            let mut rng = SmallRng::seed_from_u64(actor_seed(seed, me));
            let mut timers: BinaryHeap<std::cmp::Reverse<(Instant, u64)>> = BinaryHeap::new();
            let mut actions: Vec<Action<A::Msg>> = Vec::new();

            // Apply buffered actions: sends go out through the
            // transport links (which classify drops and account
            // stats); timers stay actor-local.
            let flush =
                |actions: &mut Vec<Action<A::Msg>>,
                 timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u64)>>| {
                    for action in actions.drain(..) {
                        match action {
                            Action::Send { to, msg } => links.send(me, to, msg),
                            Action::Timer { after, token } => {
                                let deadline =
                                    Instant::now() + Duration::from_micros(after.as_micros());
                                timers.push(std::cmp::Reverse((deadline, token)));
                            }
                        }
                    }
                };

            let now_of = |start: Instant| Time(start.elapsed().as_micros() as u64);

            {
                let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                app.on_start(&mut ctx);
            }
            flush(&mut actions, &mut timers);

            // Death must be abrupt: the kill flag is checked before
            // *every* dispatch, so a killed node never drains its
            // backlog the way a queued `Stop` would — matching
            // `Sim::fail_node`, which freezes state instantly. A killed
            // actor *parks* rather than exiting: it keeps discarding
            // mailbox traffic until a `Revive` re-seats it or the
            // cluster shuts down.
            let dead = || !links.alive(me);
            // Timers that came due while the node was dead would have
            // dispatched into a corpse; drop them so a revived
            // successor only sees timers still in the future — the
            // simulator's exact behaviour, where due-while-dead timer
            // events dissolve against the empty slot.
            let prune_due = |timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u64)>>| {
                let now = Instant::now();
                while timers
                    .peek()
                    .is_some_and(|std::cmp::Reverse((d, _))| *d <= now)
                {
                    timers.pop();
                }
            };
            'life: loop {
                // Live: dispatch messages, requests, and timers.
                loop {
                    if dead() {
                        break;
                    }
                    let timeout = timers
                        .peek()
                        .map(|std::cmp::Reverse((deadline, _))| {
                            deadline.saturating_duration_since(Instant::now())
                        })
                        .unwrap_or(Duration::from_millis(200));
                    match rx.recv_timeout(timeout) {
                        Ok(Envelope::Msg { from, msg }) => {
                            links.note_dequeue(me);
                            if dead() {
                                break;
                            }
                            let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                            app.on_message(&mut ctx, from, msg);
                        }
                        Ok(Envelope::Request { req, reply }) => {
                            if dead() {
                                break;
                            }
                            let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                            let resp = app.on_request(&mut ctx, req);
                            if let Some(reply) = reply {
                                let _ = reply.send(resp);
                            }
                        }
                        // A kill can race a revive: if the flag flipped
                        // back before we ever parked, the re-seat still
                        // must happen.
                        Ok(Envelope::Revive(new_app)) => {
                            app = new_app;
                            rng = SmallRng::seed_from_u64(actor_seed(seed, me));
                            prune_due(&mut timers);
                            let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                            app.on_start(&mut ctx);
                        }
                        Ok(Envelope::Nudge) => {}
                        Ok(Envelope::Stop) => break 'life,
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break 'life,
                    }
                    flush(&mut actions, &mut timers);
                    // Fire all due timers.
                    while let Some(std::cmp::Reverse((deadline, token))) = timers.peek().copied() {
                        if deadline > Instant::now() || dead() {
                            break;
                        }
                        timers.pop();
                        let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                        app.on_timer(&mut ctx, token);
                        flush(&mut actions, &mut timers);
                    }
                }
                // Parked dead: discard everything except a revival or
                // teardown. State stays frozen at the kill instant for
                // post-mortem inspection; discarded requests drop their
                // reply channels, so blocked clients observe `None`.
                loop {
                    match rx.recv_timeout(Duration::from_millis(200)) {
                        Ok(Envelope::Revive(new_app)) => {
                            app = new_app;
                            rng = SmallRng::seed_from_u64(actor_seed(seed, me));
                            prune_due(&mut timers);
                            links.set_alive(me);
                            let mut ctx = Ctx::new(now_of(start), me, &mut rng, &mut actions);
                            app.on_start(&mut ctx);
                            flush(&mut actions, &mut timers);
                            continue 'life;
                        }
                        Ok(Envelope::Stop) => break 'life,
                        Ok(Envelope::Msg { .. }) => links.note_dequeue(me),
                        Ok(_) => {}
                        Err(RecvTimeoutError::Timeout) => prune_due(&mut timers),
                        Err(RecvTimeoutError::Disconnected) => break 'life,
                    }
                }
            }
            app
        })
        .expect("spawn actor thread")
}

/// Per-node RNG seed derivation — identical at spawn and revive so a
/// replacement automaton draws the same stream a fresh process would.
fn actor_seed(seed: u64, me: NodeId) -> u64 {
    seed.wrapping_add((me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

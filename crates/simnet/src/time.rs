//! Virtual time for the discrete-event engine.
//!
//! Time is an absolute instant in microseconds since engine start; [`Dur`]
//! is a span in microseconds. Microsecond resolution is fine-grained enough
//! to model 2 ms stub links and 10 Mbps transmission of 64-byte messages
//! (51.2 µs) without rounding everything to zero.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the engine clock, in microseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);
    /// A time later than any reachable simulation instant.
    pub const MAX: Time = Time(u64::MAX);

    pub fn from_secs_f64(s: f64) -> Time {
        Time((s * 1e6) as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Span from an earlier instant to `self`; saturates at zero.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The following microsecond tick — the smallest instant strictly
    /// after `self` (saturating at [`Time::MAX`]). Turns an inclusive
    /// deadline into the exclusive bound the window-execution loop
    /// expects.
    pub fn next(self) -> Time {
        Time(self.0.saturating_add(1))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    pub fn from_micros(us: u64) -> Dur {
        Dur(us)
    }

    pub fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000)
    }

    pub fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000)
    }

    pub fn from_secs_f64(s: f64) -> Dur {
        Dur((s * 1e6).max(0.0) as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn saturating_mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, d: Dur) -> Dur {
        Dur(self.0.saturating_add(d.0))
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, d: Dur) -> Dur {
        Dur(self.0.saturating_sub(d.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000);
        assert_eq!((t + Dur::from_millis(250)).as_secs_f64(), 1.75);
        assert_eq!(Time(2_000_000).since(Time(500_000)), Dur(1_500_000));
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        assert_eq!(Time(5).since(Time(10)), Dur::ZERO);
    }

    #[test]
    fn dur_constructors_agree() {
        assert_eq!(Dur::from_secs(2), Dur::from_millis(2000));
        assert_eq!(Dur::from_secs(2), Dur::from_secs_f64(2.0));
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
    }

    #[test]
    fn add_saturates_at_max() {
        assert_eq!(Time::MAX + Dur::from_secs(1), Time::MAX);
    }
}

//! Property tests of the sharded engine: under *any* shard map — random
//! widths, random explicit assignments — and any run-deadline split, the
//! sharded engine is bit-identical to the sequential one. This is the
//! shard-invariance property the `(at, origin, oseq)` event key was
//! designed for: partitioning nodes across workers must never change
//! any node's visible delivery order.

use proptest::prelude::*;
use std::sync::Arc;

use pier_simnet::app::{App, Ctx};
use pier_simnet::time::{Dur, Time};
use pier_simnet::topology::FullMesh;
use pier_simnet::{NetConfig, NodeId, ShardMap, ShardedSim, Sim, Wire};

#[derive(Clone, Debug)]
struct Note(u64);

impl Wire for Note {
    fn wire_size(&self) -> usize {
        48
    }
}

/// Chatty automaton: periodic timers fan out RNG-chosen pings, pings
/// echo once, and every arrival is logged — plus a same-instant
/// self-send on each timer to exercise the batching order rules.
struct Chatty {
    n: u32,
    log: Vec<(Time, NodeId, u64)>,
}

impl App for Chatty {
    type Msg = Note;
    fn on_start(&mut self, ctx: &mut Ctx<Note>) {
        ctx.set_timer(Dur::from_millis(500), 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<Note>, from: NodeId, msg: Note) {
        self.log.push((ctx.now, from, msg.0));
        if msg.0.is_multiple_of(3) {
            ctx.send(from, Note(msg.0 + 1));
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<Note>, token: u64) {
        use rand::Rng;
        let a = ctx.rng.gen_range(0..self.n);
        let b = ctx.rng.gen_range(0..self.n);
        ctx.send(a, Note(token * 3));
        ctx.send(ctx.me, Note(1000 + token)); // same-instant self-send
        ctx.send(b, Note(token * 3 + 2));
        if token < 6 {
            ctx.set_timer(Dur::from_millis(500), token + 1);
        }
    }
}

fn cfg(seed: u64, bps: Option<f64>) -> NetConfig {
    NetConfig {
        topology: Arc::new(FullMesh {
            latency: Dur::from_millis(40),
        }),
        inbound_bps: bps,
        seed,
    }
}

type Fingerprint = (Vec<Vec<(Time, NodeId, u64)>>, u64, u64, u64, Vec<u64>);

fn run_seq(n: u32, seed: u64, bps: Option<f64>, splits: &[u64]) -> Fingerprint {
    let mut sim = Sim::new(cfg(seed, bps));
    for _ in 0..n {
        sim.add_node(Chatty { n, log: vec![] });
    }
    for &ms in splits {
        sim.run_for(Dur::from_millis(ms));
    }
    let logs = (0..n).map(|i| sim.app(i).unwrap().log.clone()).collect();
    let stats = sim.stats();
    (
        logs,
        sim.events_processed(),
        stats.messages,
        stats.bytes,
        stats.inbound_bytes.clone(),
    )
}

fn run_sharded(n: u32, seed: u64, bps: Option<f64>, splits: &[u64], map: ShardMap) -> Fingerprint {
    let mut sim = ShardedSim::new(cfg(seed, bps), map);
    for _ in 0..n {
        sim.add_node(Chatty { n, log: vec![] });
    }
    for &ms in splits {
        sim.run_for(Dur::from_millis(ms));
    }
    let logs = (0..n).map(|i| sim.app(i).unwrap().log.clone()).collect();
    let stats = sim.stats();
    (
        logs,
        sim.events_processed(),
        stats.messages,
        stats.bytes,
        stats.inbound_bytes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random explicit shard maps: any assignment of nodes to workers
    /// reproduces the sequential run byte-for-byte.
    #[test]
    fn random_shard_maps_preserve_delivery_order(
        seed in 0u64..1_000,
        shards in 1usize..6,
        assign_seed in prop::collection::vec(0u32..6, 14..15),
        bps in prop::option::of(4_000_000f64..6_000_000f64),
        splits in prop::collection::vec(300u64..1_500, 1..4),
    ) {
        let n = 14u32;
        let assign: Vec<u32> = assign_seed.iter().map(|&s| s % shards as u32).collect();
        let seq = run_seq(n, seed, bps, &splits);
        let shd = run_sharded(n, seed, bps, &splits, ShardMap::explicit(shards, assign));
        prop_assert_eq!(&seq.0, &shd.0, "per-node logs diverge");
        prop_assert_eq!(seq.1, shd.1, "event counts diverge");
        prop_assert_eq!((seq.2, seq.3), (shd.2, shd.3), "traffic counters diverge");
        prop_assert_eq!(&seq.4, &shd.4, "inbound bytes diverge");
    }

    /// Round-robin widths 1..8 with random run splits: the deadline
    /// cadence (which truncates conservative windows) must not matter.
    #[test]
    fn any_width_and_cadence_matches_sequential(
        seed in 0u64..1_000,
        w in 1usize..8,
        splits in prop::collection::vec(200u64..2_000, 1..5),
    ) {
        let n = 12u32;
        let seq = run_seq(n, seed, Some(2e6), &splits);
        let shd = run_sharded(n, seed, Some(2e6), &splits, ShardMap::round_robin(w));
        prop_assert_eq!(&seq.0, &shd.0, "per-node logs diverge");
        prop_assert_eq!(seq.1, shd.1, "event counts diverge");
        prop_assert_eq!(&seq.4, &shd.4, "inbound bytes diverge");
    }
}

//! Transport conformance: every [`Transport`] backend must move and
//! classify traffic identically through the trait surface, so engines
//! can be swapped without consumers noticing. The same four laws run
//! against all three backends — [`SimTransport`] over `Sim` and
//! `ShardedSim`, and the actor runtime's [`ChannelTransport`] — via one
//! generic harness:
//!
//! 1. **Delivery** — a send lands in the destination's mailbox and is
//!    dispatched to its automaton, accounted as messages + bytes.
//! 2. **Per-pair FIFO** — messages on one src→dst pair arrive in send
//!    order, even interleaved with traffic from other sources.
//! 3. **Drop windows** — sends into an open inbound-drop window are
//!    discarded and counted as `dropped_in_window`; self-sends are
//!    spared (loopback never crosses the faulted link); a closed
//!    window delivers again.
//! 4. **Dead destinations** — sends to a killed node count as
//!    `dropped_to_failed`, never as traffic, and are never delivered.

use pier_simnet::time::Dur;
use pier_simnet::{
    App, ChannelTransport, Cluster, Ctx, NetConfig, NodeId, Service, ShardMap, ShardedSim, Sim,
    SimTransport, Transport, Wire,
};

const N: usize = 4;

fn settle_for() -> Dur {
    Dur::from_millis(200)
}

/// One recorded probe; fixed wire size so byte accounting is exact.
#[derive(Clone, Debug)]
struct Rec {
    seq: u32,
}

impl Wire for Rec {
    fn wire_size(&self) -> usize {
        100
    }
}

/// Passive automaton that logs every delivery as `(from, seq)`.
#[derive(Default)]
struct Recorder {
    log: Vec<(NodeId, u32)>,
}

impl App for Recorder {
    type Msg = Rec;
    fn on_start(&mut self, _ctx: &mut Ctx<Rec>) {}
    fn on_message(&mut self, _ctx: &mut Ctx<Rec>, from: NodeId, msg: Rec) {
        self.log.push((from, msg.seq));
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<Rec>, _token: u64) {}
}

/// Single request: read back the delivery log (used by the channel
/// backend, where node state lives on the actor thread).
impl Service for Recorder {
    type Req = ();
    type Resp = Vec<(NodeId, u32)>;
    fn on_request(&mut self, _ctx: &mut Ctx<Rec>, _req: ()) -> Vec<(NodeId, u32)> {
        self.log.clone()
    }
}

/// A backend under test: the [`Transport`] surface plus a way to read a
/// live node's delivery log (engine access for the simulators, a typed
/// request for the actor runtime).
trait Net {
    type T: Transport<Recorder>;
    fn t(&mut self) -> &mut Self::T;
    fn received(&mut self, node: NodeId) -> Vec<(NodeId, u32)>;
}

struct SimNet(SimTransport<Sim<Recorder>>);

impl SimNet {
    fn new() -> Self {
        let mut sim = Sim::new(NetConfig::latency_only(9));
        for _ in 0..N {
            sim.add_node(Recorder::default());
        }
        SimNet(SimTransport::new(sim))
    }
}

impl Net for SimNet {
    type T = SimTransport<Sim<Recorder>>;
    fn t(&mut self) -> &mut Self::T {
        &mut self.0
    }
    fn received(&mut self, node: NodeId) -> Vec<(NodeId, u32)> {
        self.0.engine().app(node).expect("live node").log.clone()
    }
}

struct ShardedNet(SimTransport<ShardedSim<Recorder>>);

impl ShardedNet {
    fn new() -> Self {
        let mut sim = ShardedSim::new(NetConfig::latency_only(9), ShardMap::round_robin(2));
        for _ in 0..N {
            sim.add_node(Recorder::default());
        }
        ShardedNet(SimTransport::new(sim))
    }
}

impl Net for ShardedNet {
    type T = SimTransport<ShardedSim<Recorder>>;
    fn t(&mut self) -> &mut Self::T {
        &mut self.0
    }
    fn received(&mut self, node: NodeId) -> Vec<(NodeId, u32)> {
        self.0.engine().app(node).expect("live node").log.clone()
    }
}

struct ClusterNet(Cluster<Recorder>);

impl ClusterNet {
    fn new() -> Self {
        ClusterNet(Cluster::spawn(
            (0..N).map(|_| Recorder::default()).collect(),
            9,
        ))
    }
}

impl Net for ClusterNet {
    type T = ChannelTransport<Recorder>;
    fn t(&mut self) -> &mut Self::T {
        self.0.transport_mut()
    }
    fn received(&mut self, node: NodeId) -> Vec<(NodeId, u32)> {
        // The request queues behind every prior delivery in the node's
        // mailbox, so the log it returns covers them all.
        self.0.request(node, ()).expect("live node")
    }
}

// ---------------------------------------------------------------------
// The four laws, generic over the backend.
// ---------------------------------------------------------------------

fn law_delivery<B: Net>(mut net: B) {
    for seq in 0..5 {
        net.t().send(0, 1, Rec { seq });
    }
    net.t().settle(settle_for());
    let got = net.received(1);
    assert_eq!(got, (0..5).map(|s| (0, s)).collect::<Vec<_>>());
    let st = net.t().stats();
    assert_eq!(st.messages, 5);
    assert_eq!(st.bytes, 500);
    assert_eq!(st.dropped_to_failed, 0);
    assert_eq!(st.dropped_in_window, 0);
}

fn law_per_pair_fifo<B: Net>(mut net: B) {
    // Interleave two sources toward one destination; each pair's
    // subsequence must stay in send order.
    for seq in 0..20 {
        net.t().send(0, 2, Rec { seq });
        net.t().send(1, 2, Rec { seq });
    }
    net.t().settle(settle_for());
    let got = net.received(2);
    assert_eq!(got.len(), 40);
    for src in [0, 1] {
        let seqs: Vec<u32> = got
            .iter()
            .filter(|(f, _)| *f == src)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>(), "src {src} out of order");
    }
}

fn law_drop_windows<B: Net>(mut net: B) {
    net.t().set_inbound_drop(1, true);
    for seq in 0..3 {
        net.t().send(0, 1, Rec { seq });
    }
    // Loopback is spared by the window and never accounted as traffic.
    net.t().send(1, 1, Rec { seq: 99 });
    net.t().settle(settle_for());
    let st = net.t().stats();
    assert_eq!(st.dropped_in_window, 3);
    assert_eq!(st.messages, 0);
    assert_eq!(net.received(1), vec![(1, 99)]);
    // A closed window delivers again.
    net.t().set_inbound_drop(1, false);
    net.t().send(0, 1, Rec { seq: 7 });
    net.t().settle(settle_for());
    assert_eq!(net.received(1), vec![(1, 99), (0, 7)]);
    let st = net.t().stats();
    assert_eq!(st.messages, 1);
    assert_eq!(st.dropped_in_window, 3);
}

fn law_dead_destination<B: Net>(mut net: B) {
    net.t().kill(3);
    assert!(!net.t().alive(3));
    net.t().send(0, 3, Rec { seq: 0 });
    net.t().send(1, 3, Rec { seq: 1 });
    // Control traffic to live nodes keeps flowing.
    net.t().send(0, 2, Rec { seq: 2 });
    net.t().settle(settle_for());
    let st = net.t().stats();
    assert_eq!(st.dropped_to_failed, 2);
    assert_eq!(st.messages, 1);
    assert_eq!(st.bytes, 100);
    assert_eq!(net.received(2), vec![(0, 2)]);
}

macro_rules! conformance {
    ($backend:ident, $mk:expr) => {
        mod $backend {
            use super::*;

            #[test]
            fn delivers_in_order_and_accounts_traffic() {
                law_delivery($mk);
            }

            #[test]
            fn preserves_per_pair_fifo() {
                law_per_pair_fifo($mk);
            }

            #[test]
            fn drop_windows_discard_account_and_spare_loopback() {
                law_drop_windows($mk);
            }

            #[test]
            fn dead_destinations_account_never_deliver() {
                law_dead_destination($mk);
            }
        }
    };
}

conformance!(sim_backend, SimNet::new());
conformance!(sharded_backend, ShardedNet::new());
conformance!(channel_backend, ClusterNet::new());

//! Property tests of the discrete-event engine: delivery-time invariants
//! of the flow-level network model, determinism, and topology behaviour.

use proptest::prelude::*;
use std::sync::Arc;

use pier_simnet::app::{App, Ctx};
use pier_simnet::time::{Dur, Time};
use pier_simnet::topology::{FullMesh, Topology, TransitStub};
use pier_simnet::{NetConfig, NodeId, Sim, Wire};

#[derive(Clone, Debug)]
struct Blob {
    seq: u32,
    bytes: usize,
}

impl Wire for Blob {
    fn wire_size(&self) -> usize {
        self.bytes
    }
}

/// Sends a scripted batch of messages to node 0 at start; the sink
/// records (arrival time, seq).
struct Scripted {
    to_send: Vec<Blob>,
    got: Vec<(Time, u32)>,
}

impl App for Scripted {
    type Msg = Blob;
    fn on_start(&mut self, ctx: &mut Ctx<Blob>) {
        for b in self.to_send.drain(..) {
            ctx.send(0, b);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<Blob>, _from: NodeId, msg: Blob) {
        self.got.push((ctx.now, msg.seq));
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<Blob>, _token: u64) {}
}

fn run_scripted(batches: Vec<Vec<usize>>, bps: Option<f64>) -> Vec<(Time, u32)> {
    let mut sim: Sim<Scripted> = Sim::new(NetConfig {
        topology: Arc::new(FullMesh {
            latency: Dur::from_millis(100),
        }),
        inbound_bps: bps,
        seed: 1,
    });
    sim.add_node(Scripted {
        to_send: vec![],
        got: vec![],
    });
    let mut seq = 0;
    for batch in batches {
        let blobs = batch
            .into_iter()
            .map(|bytes| {
                seq += 1;
                Blob { seq, bytes }
            })
            .collect();
        sim.add_node(Scripted {
            to_send: blobs,
            got: vec![],
        });
    }
    sim.run_idle(1_000_000);
    sim.app(0).unwrap().got.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Nothing arrives before the propagation latency, and with finite
    /// bandwidth arrivals are spaced by at least their transmission time.
    #[test]
    fn deliveries_respect_latency_and_serialization(
        batches in prop::collection::vec(
            prop::collection::vec(1usize..20_000, 1..8), 1..4),
    ) {
        let total: usize = batches.iter().map(Vec::len).sum();
        let got = run_scripted(batches.clone(), Some(1e6));
        prop_assert_eq!(got.len(), total);
        let latency = Dur::from_millis(100);
        let mut sorted = got.clone();
        sorted.sort_by_key(|(t, _)| *t);
        for (t, _) in &sorted {
            prop_assert!(*t >= Time::ZERO + latency);
        }
        // Aggregate serialization: the last arrival is no earlier than
        // total_bytes/bps after the first could possibly start.
        let total_bytes: usize = batches.iter().flatten().sum();
        let min_finish = latency + Dur::from_secs_f64(total_bytes as f64 * 8.0 / 1e6);
        let last = sorted.last().unwrap().0;
        prop_assert!(
            last + Dur::from_millis(1) >= Time::ZERO + min_finish,
            "last {last:?} vs min {min_finish:?}"
        );
    }

    /// Infinite bandwidth: every message lands exactly at the latency.
    #[test]
    fn infinite_bandwidth_is_pure_latency(
        batch in prop::collection::vec(1usize..50_000, 1..10),
    ) {
        let got = run_scripted(vec![batch], None);
        for (t, _) in &got {
            prop_assert_eq!(*t, Time::ZERO + Dur::from_millis(100));
        }
    }

    /// The engine is deterministic: same config, same history.
    #[test]
    fn runs_are_deterministic(
        batches in prop::collection::vec(
            prop::collection::vec(1usize..10_000, 1..5), 1..4),
        bps in prop::option::of(1e4f64..1e8),
    ) {
        let a = run_scripted(batches.clone(), bps);
        let b = run_scripted(batches, bps);
        prop_assert_eq!(a, b);
    }

    /// Per-sender FIFO: messages from one sender arrive in send order.
    #[test]
    fn per_sender_fifo(batch in prop::collection::vec(1usize..30_000, 2..10)) {
        let got = run_scripted(vec![batch], Some(5e5));
        let mut seqs: Vec<u32> = got.iter().map(|(_, s)| *s).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(seqs, sorted);
    }
}

#[test]
fn transit_stub_triangle_inequality_violations_are_bounded() {
    // Hierarchical latencies are not a metric space in general, but our
    // generator's worst stretch is bounded: up + 3 transit hops + down.
    let ts = TransitStub::paper_default(64, 3);
    let max = Dur::from_millis(170);
    for a in 0..64u32 {
        for b in 0..64u32 {
            assert!(ts.latency(a, b) <= max);
        }
    }
}

#[test]
fn run_until_is_idempotent_at_same_deadline() {
    let mut sim: Sim<Scripted> = Sim::new(NetConfig::latency_only(1));
    sim.add_node(Scripted {
        to_send: vec![],
        got: vec![],
    });
    sim.add_node(Scripted {
        to_send: vec![Blob { seq: 1, bytes: 10 }],
        got: vec![],
    });
    sim.run_until(Time::from_secs_f64(1.0));
    let got1 = sim.app(0).unwrap().got.len();
    sim.run_until(Time::from_secs_f64(1.0));
    assert_eq!(sim.app(0).unwrap().got.len(), got1);
    assert_eq!(sim.now(), Time::from_secs_f64(1.0));
}

//! A bare DHT node automaton for tests and DHT-level benchmarks.
//!
//! [`DhtNode`] hosts a [`Dht`] directly on the engine (message type =
//! `DhtMsg<V>`) and records every upcall with its arrival time. PIER
//! proper wraps the DHT inside a larger automaton (pier-core), but the
//! protocol behaviour exercised here is identical.

use pier_simnet::app::{App, Ctx};
use pier_simnet::time::{Dur, Time};
use pier_simnet::{NodeId, Service, Wire};

use crate::dht::Dht;
use crate::env::CtxEnv;
use crate::event::DhtEvent;
use crate::msg::DhtMsg;
use crate::{DhtConfig, Ns, Rid};

/// Test harness automaton: one DHT stack, an event log, nothing else.
pub struct DhtNode<V: Wire + Clone> {
    pub dht: Dht<V>,
    pub bootstrap: Option<NodeId>,
    pub events: Vec<(Time, DhtEvent<V>)>,
}

impl<V: Wire + Clone> DhtNode<V> {
    /// A node that will join via `bootstrap` (or start a new overlay).
    pub fn new(cfg: DhtConfig, me: NodeId, bootstrap: Option<NodeId>) -> Self {
        DhtNode {
            dht: Dht::new(cfg, me),
            bootstrap,
            events: Vec::new(),
        }
    }

    /// A node with a pre-stabilized overlay state.
    pub fn with_dht(dht: Dht<V>) -> Self {
        DhtNode {
            dht,
            bootstrap: None,
            events: Vec::new(),
        }
    }

    /// Events of a given predicate, with times.
    pub fn events_where(
        &self,
        pred: impl Fn(&DhtEvent<V>) -> bool,
    ) -> impl Iterator<Item = &(Time, DhtEvent<V>)> {
        self.events.iter().filter(move |(_, e)| pred(e))
    }
}

impl<V: Wire + Clone + Send + 'static> App for DhtNode<V> {
    type Msg = DhtMsg<V>;

    fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>) {
        let bootstrap = self.bootstrap;
        let mut env = CtxEnv { ctx };
        // Pre-stabilized nodes still need their tick timer; `start` with
        // no bootstrap is idempotent for an already-joined overlay.
        if self.dht.is_joined() {
            env.ctx.set_timer(self.dht.cfg.tick, crate::DHT_TICK_TOKEN);
        } else {
            self.dht.start(&mut env, bootstrap);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: NodeId, msg: Self::Msg) {
        let now = ctx.now;
        let mut env = CtxEnv { ctx };
        let mut events = Vec::new();
        self.dht.handle_message(&mut env, from, msg, &mut events);
        self.events.extend(events.into_iter().map(|e| (now, e)));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Self::Msg>, token: u64) {
        let now = ctx.now;
        let mut env = CtxEnv { ctx };
        let mut events = Vec::new();
        self.dht.handle_timer(&mut env, token, &mut events);
        self.events.extend(events.into_iter().map(|e| (now, e)));
    }
}

/// Typed requests for a [`DhtNode`] actor — the DHT's Table 3 provider
/// calls plus the observations replication tests need, expressed as
/// values so they can cross the actor-runtime wire.
#[derive(Clone, Debug)]
pub enum DhtRequest<V> {
    /// Provider `put` into `(ns, rid, iid)` with a soft-state lifetime.
    Put {
        ns: Ns,
        rid: Rid,
        iid: u32,
        val: V,
        lifetime: Dur,
    },
    /// Provider `get`; results surface later as `GetResult` events
    /// tagged with `token` (query via [`DhtRequest::NonEmptyGetResults`]).
    Get { ns: Ns, rid: Rid, token: u64 },
    /// How many items (live or not) does this node store under `ns`?
    NsLen(Ns),
    /// How many `GetResult` events with at least one item has this node
    /// observed so far?
    NonEmptyGetResults,
}

/// Typed responses to [`DhtRequest`]s.
#[derive(Clone, Debug)]
pub enum DhtResponse {
    Done,
    Count(usize),
}

impl DhtResponse {
    /// Unwrap a [`DhtResponse::Count`]; panics on a variant mismatch.
    pub fn into_count(self) -> usize {
        match self {
            DhtResponse::Count(c) => c,
            DhtResponse::Done => panic!("expected Count, got Done"),
        }
    }
}

impl<V: Wire + Clone + Send + 'static> Service for DhtNode<V> {
    type Req = DhtRequest<V>;
    type Resp = DhtResponse;

    fn on_request(&mut self, ctx: &mut Ctx<Self::Msg>, req: DhtRequest<V>) -> DhtResponse {
        let now = ctx.now;
        match req {
            DhtRequest::Put {
                ns,
                rid,
                iid,
                val,
                lifetime,
            } => {
                let mut env = CtxEnv { ctx };
                let mut events = Vec::new();
                self.dht
                    .put(&mut env, ns, rid, iid, val, lifetime, &mut events);
                self.events.extend(events.into_iter().map(|e| (now, e)));
                DhtResponse::Done
            }
            DhtRequest::Get { ns, rid, token } => {
                let mut env = CtxEnv { ctx };
                let mut events = Vec::new();
                self.dht.get(&mut env, ns, rid, token, &mut events);
                self.events.extend(events.into_iter().map(|e| (now, e)));
                DhtResponse::Done
            }
            DhtRequest::NsLen(ns) => DhtResponse::Count(self.dht.store.ns_len(ns)),
            DhtRequest::NonEmptyGetResults => DhtResponse::Count(
                self.events_where(
                    |e| matches!(e, DhtEvent::GetResult { items, .. } if !items.is_empty()),
                )
                .count(),
            ),
        }
    }
}

/// Build a simulator hosting `n` pre-stabilized CAN nodes (balanced
/// bootstrap). Returns the sim; node ids are `0..n`.
pub fn stabilized_can_sim<V: Wire + Clone + Send + 'static>(
    n: usize,
    cfg: DhtConfig,
    net: pier_simnet::NetConfig,
) -> pier_simnet::Sim<DhtNode<V>> {
    let mut sim = pier_simnet::Sim::new(net);
    let states = crate::can::balanced_overlay(n, cfg.dims, Time::ZERO);
    for (i, st) in states.into_iter().enumerate() {
        let dht = Dht::with_can(cfg.clone(), i as NodeId, st);
        sim.add_node(DhtNode::with_dht(dht));
    }
    sim
}

/// Build a simulator hosting `n` pre-stabilized Chord nodes.
pub fn stabilized_chord_sim<V: Wire + Clone + Send + 'static>(
    n: usize,
    cfg: DhtConfig,
    net: pier_simnet::NetConfig,
) -> pier_simnet::Sim<DhtNode<V>> {
    let mut sim = pier_simnet::Sim::new(net);
    let states = crate::chord::balanced_chord_overlay(n, Time::ZERO);
    for (i, st) in states.into_iter().enumerate() {
        let dht = Dht::with_chord(cfg.clone(), i as NodeId, st);
        sim.add_node(DhtNode::with_dht(dht));
    }
    sim
}

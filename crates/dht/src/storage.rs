//! The storage manager (Table 2): node-local, main-memory soft state.
//!
//! The paper deliberately uses a simple main-memory store ("all we expect
//! of the storage manager is to provide performance that is reasonably
//! efficient relative to network bottlenecks", §3.2.2). Items are indexed
//! by namespace and resourceID; items sharing both are distinguished by
//! instanceID. Every item carries a soft-state expiry (§3.2.3).

use std::collections::BTreeMap;

use crate::msg::Entry;
use crate::{Ns, Rid};
use pier_simnet::time::Time;

/// Main-memory storage manager for one node.
#[derive(Debug, Clone)]
pub struct StorageManager<V> {
    by_ns: BTreeMap<Ns, BTreeMap<Rid, Vec<Entry<V>>>>,
    len: usize,
}

impl<V> Default for StorageManager<V> {
    fn default() -> Self {
        StorageManager {
            by_ns: BTreeMap::new(),
            len: 0,
        }
    }
}

impl<V> StorageManager<V> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored items across all namespaces.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store an item. If an item with the same (ns, rid, iid) exists it is
    /// replaced and its lifetime extended — this is `renew` (§3.2.3).
    /// Returns `true` when the item is new (not a renewal), which is what
    /// drives `newData` callbacks.
    pub fn store(&mut self, entry: Entry<V>) -> bool {
        let bucket = self
            .by_ns
            .entry(entry.ns)
            .or_default()
            .entry(entry.rid)
            .or_default();
        if let Some(existing) = bucket.iter_mut().find(|e| e.iid == entry.iid) {
            *existing = entry;
            false
        } else {
            bucket.push(entry);
            self.len += 1;
            true
        }
    }

    /// Store `entry` unless an existing copy of the same instance already
    /// has an equal or later expiry. Replica fan-out and anti-entropy
    /// repair use this instead of [`Self::store`]: a copy arriving late
    /// (or pulled from a peer that missed a renewal) must never *shorten*
    /// the soft-state lifetime the holder already granted. Returns
    /// `Some(is_new)` when stored, `None` when the stale copy was skipped.
    pub fn store_no_regress(&mut self, entry: Entry<V>) -> Option<bool> {
        let current = self
            .get(entry.ns, entry.rid)
            .iter()
            .find(|e| e.iid == entry.iid)
            .map(|e| e.expires);
        match current {
            Some(expires) if expires >= entry.expires => None,
            _ => Some(self.store(entry)),
        }
    }

    /// All live items under (ns, rid) — `get` is key-based, not
    /// instance-based, and may return multiple items.
    pub fn get(&self, ns: Ns, rid: Rid) -> &[Entry<V>] {
        self.by_ns
            .get(&ns)
            .and_then(|m| m.get(&rid))
            .map_or(&[], |v| v.as_slice())
    }

    /// Remove every item in a namespace (query teardown reclaims the
    /// local share of a query's derived namespaces immediately; remote
    /// shares on unreachable peers still age out by expiry). Returns
    /// how many items were removed.
    pub fn remove_ns(&mut self, ns: Ns) -> usize {
        let removed = self
            .by_ns
            .remove(&ns)
            .map_or(0, |m| m.values().map(Vec::len).sum());
        self.len -= removed;
        removed
    }

    /// Remove every item under (ns, rid). Returns how many were removed.
    pub fn remove(&mut self, ns: Ns, rid: Rid) -> usize {
        let Some(m) = self.by_ns.get_mut(&ns) else {
            return 0;
        };
        let removed = m.remove(&rid).map_or(0, |v| v.len());
        self.len -= removed;
        if m.is_empty() {
            // Namespaces are destroyed when their last item expires.
            self.by_ns.remove(&ns);
        }
        removed
    }

    /// Iterate all items in a namespace (the provider's `lscan`).
    pub fn lscan(&self, ns: Ns) -> impl Iterator<Item = &Entry<V>> {
        self.by_ns
            .get(&ns)
            .into_iter()
            .flat_map(|m| m.values().flatten())
    }

    /// Iterate all items in all namespaces.
    pub fn iter_all(&self) -> impl Iterator<Item = &Entry<V>> {
        self.by_ns.values().flat_map(|m| m.values().flatten())
    }

    /// Namespaces currently holding data.
    pub fn namespaces(&self) -> impl Iterator<Item = Ns> + '_ {
        self.by_ns.keys().copied()
    }

    /// Count of items in one namespace.
    pub fn ns_len(&self, ns: Ns) -> usize {
        self.by_ns
            .get(&ns)
            .map_or(0, |m| m.values().map(Vec::len).sum())
    }

    /// Count of *live* items in one namespace — expired-but-unswept
    /// entries (the sweep runs on the maintenance tick) are excluded,
    /// so an audit right after an expiry horizon is exact.
    pub fn ns_len_live(&self, ns: Ns, now: Time) -> usize {
        self.by_ns.get(&ns).map_or(0, |m| {
            m.values().flatten().filter(|e| e.expires > now).count()
        })
    }

    /// Per-namespace occupancy audit: every namespace holding at least
    /// one live item, with its live count — the reclamation invariant's
    /// measurement unit (a torn-down query must leave all of its
    /// derived namespaces at zero within one soft-state lifetime).
    pub fn occupancy(&self, now: Time) -> Vec<(Ns, usize)> {
        let mut out: Vec<(Ns, usize)> = self
            .by_ns
            .keys()
            .map(|&ns| (ns, self.ns_len_live(ns, now)))
            .filter(|&(_, n)| n > 0)
            .collect();
        out.sort_unstable();
        out
    }

    /// Drop expired items (soft-state aging, §3.2.3). Returns the number
    /// discarded.
    pub fn sweep_expired(&mut self, now: Time) -> usize {
        let mut removed = 0;
        self.by_ns.retain(|_, m| {
            m.retain(|_, v| {
                let before = v.len();
                v.retain(|e| e.expires > now);
                removed += before - v.len();
                !v.is_empty()
            });
            !m.is_empty()
        });
        self.len -= removed;
        removed
    }

    /// Extract (remove and return) all items whose routing key fails the
    /// ownership predicate — used for zone handoff when a zone is split
    /// and for re-homing after overlay churn.
    pub fn extract_not_owned(&mut self, owns: impl Fn(u64) -> bool) -> Vec<Entry<V>> {
        let mut out = Vec::new();
        self.by_ns.retain(|_, m| {
            m.retain(|_, v| {
                let mut i = 0;
                while i < v.len() {
                    if owns(v[i].key) {
                        i += 1;
                    } else {
                        out.push(v.swap_remove(i));
                    }
                }
                !v.is_empty()
            });
            !m.is_empty()
        });
        self.len -= out.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ns: Ns, rid: Rid, iid: u32, key: u64, expires: u64, val: u32) -> Entry<u32> {
        Entry {
            ns,
            rid,
            iid,
            key,
            expires: Time(expires),
            val,
        }
    }

    #[test]
    fn store_get_remove_roundtrip() {
        let mut s = StorageManager::new();
        assert!(s.store(entry(1, 10, 0, 99, 1000, 7)));
        assert!(s.store(entry(1, 10, 1, 99, 1000, 8)));
        assert_eq!(s.get(1, 10).len(), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(1, 10), 2);
        assert!(s.is_empty());
        assert_eq!(s.get(1, 10).len(), 0);
    }

    #[test]
    fn same_instance_replaces_and_renews() {
        let mut s = StorageManager::new();
        assert!(s.store(entry(1, 10, 5, 99, 1000, 7)));
        // Renewal: same (ns, rid, iid), later expiry, is not "new data".
        assert!(!s.store(entry(1, 10, 5, 99, 5000, 9)));
        assert_eq!(s.len(), 1);
        let items = s.get(1, 10);
        assert_eq!(items[0].val, 9);
        assert_eq!(items[0].expires, Time(5000));
    }

    #[test]
    fn store_no_regress_never_shortens_a_lifetime() {
        let mut s = StorageManager::new();
        assert_eq!(s.store_no_regress(entry(1, 10, 5, 99, 1000, 7)), Some(true));
        // A stale copy (earlier expiry) is skipped outright…
        assert_eq!(s.store_no_regress(entry(1, 10, 5, 99, 500, 8)), None);
        assert_eq!(s.get(1, 10)[0].val, 7);
        // …while a fresher copy renews like a normal store.
        assert_eq!(
            s.store_no_regress(entry(1, 10, 5, 99, 2000, 9)),
            Some(false)
        );
        assert_eq!(s.get(1, 10)[0].expires, Time(2000));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lscan_iterates_one_namespace_only() {
        let mut s = StorageManager::new();
        s.store(entry(1, 10, 0, 1, 1000, 1));
        s.store(entry(1, 11, 0, 2, 1000, 2));
        s.store(entry(2, 10, 0, 3, 1000, 3));
        let mut ns1: Vec<u32> = s.lscan(1).map(|e| e.val).collect();
        ns1.sort_unstable();
        assert_eq!(ns1, vec![1, 2]);
        assert_eq!(s.ns_len(1), 2);
        assert_eq!(s.ns_len(2), 1);
        assert_eq!(s.lscan(3).count(), 0);
    }

    #[test]
    fn remove_ns_drops_a_whole_namespace() {
        let mut s = StorageManager::new();
        s.store(entry(1, 10, 0, 1, 1000, 1));
        s.store(entry(1, 11, 0, 2, 1000, 2));
        s.store(entry(2, 10, 0, 3, 1000, 3));
        assert_eq!(s.remove_ns(1), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ns_len(1), 0);
        assert_eq!(s.ns_len(2), 1);
        assert_eq!(s.remove_ns(7), 0);
    }

    #[test]
    fn live_occupancy_excludes_expired_unswept_items() {
        let mut s = StorageManager::new();
        s.store(entry(1, 10, 0, 1, 100, 1));
        s.store(entry(1, 11, 0, 2, 400, 2));
        s.store(entry(2, 20, 0, 3, 50, 3));
        // No sweep has run: raw counts still see everything…
        assert_eq!(s.ns_len(1), 2);
        assert_eq!(s.ns_len(2), 1);
        // …but the live audit is expiry-exact.
        assert_eq!(s.ns_len_live(1, Time(150)), 1);
        assert_eq!(s.ns_len_live(2, Time(150)), 0);
        assert_eq!(s.occupancy(Time(150)), vec![(1, 1)]);
        assert_eq!(s.occupancy(Time(500)), vec![]);
    }

    #[test]
    fn sweep_discards_only_expired() {
        let mut s = StorageManager::new();
        s.store(entry(1, 10, 0, 1, 100, 1));
        s.store(entry(1, 10, 1, 1, 300, 2));
        s.store(entry(2, 20, 0, 2, 50, 3));
        assert_eq!(s.sweep_expired(Time(150)), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(1, 10).len(), 1);
        // Namespace 2 disappeared with its last item.
        assert_eq!(s.namespaces().count(), 1);
    }

    #[test]
    fn extract_not_owned_partitions_by_key() {
        let mut s = StorageManager::new();
        for k in 0..10u64 {
            s.store(entry(1, k, 0, k, 1000, k as u32));
        }
        let moved = s.extract_not_owned(|k| k % 2 == 0);
        assert_eq!(moved.len(), 5);
        assert!(moved.iter().all(|e| e.key % 2 == 1));
        assert_eq!(s.len(), 5);
        assert!(s.iter_all().all(|e| e.key % 2 == 0));
    }
}

//! Per-category traffic accounting.
//!
//! Figure 4 reports *query* traffic per join strategy. A live overlay also
//! generates maintenance chatter (heartbeats, stabilization), which the
//! paper's evaluation holds constant by measuring on a stabilized network.
//! We count bytes by category at send time so harnesses can separate
//! workload traffic from overlay upkeep.

use crate::msg::{CanMsg, ChordMsg, DhtMsg};
use pier_simnet::Wire;

/// Byte counters per message category (sender side).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficMeter {
    /// Overlay upkeep: heartbeats, joins, neighbor/finger maintenance.
    pub maintenance: u64,
    /// Routing-layer lookups and replies.
    pub lookup: u64,
    /// Multicast dissemination (query shipping, Bloom distribution).
    pub mcast: u64,
    /// Provider data traffic: puts, gets, replies, re-homing.
    pub data: u64,
    /// Availability overhead (`replication > 1`): replica fan-out and
    /// anti-entropy repair. Counted apart from `data` so the recall-vs-
    /// churn frontier can price what each extra copy costs.
    pub replication: u64,
}

impl TrafficMeter {
    pub fn total(&self) -> u64 {
        self.maintenance + self.lookup + self.mcast + self.data + self.replication
    }

    /// Everything attributable to running queries (excludes upkeep).
    pub fn query_traffic(&self) -> u64 {
        self.lookup + self.mcast + self.data
    }

    pub fn record<V: Wire>(&mut self, msg: &DhtMsg<V>) {
        let bytes = msg.wire_size() as u64;
        match msg {
            DhtMsg::Can(CanMsg::Lookup { .. }) | DhtMsg::LookupReply { .. } => {
                self.lookup += bytes;
            }
            DhtMsg::Can(CanMsg::Mcast { .. }) | DhtMsg::Chord(ChordMsg::Bcast { .. }) => {
                self.mcast += bytes;
            }
            DhtMsg::Chord(ChordMsg::FindSucc { purpose, .. })
            | DhtMsg::Chord(ChordMsg::FoundSucc { purpose, .. }) => {
                if matches!(purpose, crate::msg::FindPurpose::Lookup) {
                    self.lookup += bytes;
                } else {
                    self.maintenance += bytes;
                }
            }
            DhtMsg::Put { .. }
            | DhtMsg::Get { .. }
            | DhtMsg::GetReply { .. }
            | DhtMsg::MoveItems { .. } => {
                self.data += bytes;
            }
            DhtMsg::Replicate { .. }
            | DhtMsg::RepairRequest { .. }
            | DhtMsg::RepairReply { .. } => {
                self.replication += bytes;
            }
            DhtMsg::Can(_) | DhtMsg::Chord(_) => {
                self.maintenance += bytes;
            }
        }
    }

    pub fn merge(&mut self, other: &TrafficMeter) {
        self.maintenance += other.maintenance;
        self.lookup += other.lookup;
        self.mcast += other.mcast;
        self.data += other.data;
        self.replication += other.replication;
    }

    pub fn since(&self, snapshot: &TrafficMeter) -> TrafficMeter {
        TrafficMeter {
            maintenance: self.maintenance - snapshot.maintenance,
            lookup: self.lookup - snapshot.lookup,
            mcast: self.mcast - snapshot.mcast,
            data: self.data - snapshot.data,
            replication: self.replication - snapshot.replication,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Entry;
    use pier_simnet::time::Time;

    #[test]
    fn categorizes_by_variant() {
        let mut m = TrafficMeter::default();
        let put: DhtMsg<Vec<u8>> = DhtMsg::Put {
            entry: Entry {
                ns: 0,
                rid: 0,
                iid: 0,
                key: 0,
                expires: Time::ZERO,
                val: vec![0; 100],
            },
        };
        let lk: DhtMsg<Vec<u8>> = DhtMsg::Can(CanMsg::Lookup {
            key: 1,
            token: 1,
            origin: 0,
            ttl: 8,
        });
        let hb: DhtMsg<Vec<u8>> = DhtMsg::Can(CanMsg::Heartbeat {
            zones: vec![],
            neighbors: vec![],
        });
        m.record(&put);
        m.record(&lk);
        m.record(&hb);
        assert!(m.data > 0 && m.lookup > 0 && m.maintenance > 0);
        assert_eq!(m.mcast, 0);
        assert_eq!(m.total(), m.data + m.lookup + m.maintenance);
        assert_eq!(m.query_traffic(), m.data + m.lookup);
    }

    #[test]
    fn merge_and_since_are_inverses() {
        let mut a = TrafficMeter {
            maintenance: 10,
            lookup: 20,
            mcast: 30,
            data: 40,
            replication: 50,
        };
        let snap = a;
        let b = TrafficMeter {
            maintenance: 1,
            lookup: 2,
            mcast: 3,
            data: 4,
            replication: 5,
        };
        a.merge(&b);
        assert_eq!(a.since(&snap), b);
    }
}

//! DHT wire messages and their size model.

use crate::geom::{Point, Zone};
use crate::{Ns, Rid};
use pier_simnet::time::Time;
use pier_simnet::{NodeId, Wire};

/// Fixed per-message overhead we charge for transport headers
/// (IP + UDP + PIER framing).
pub const HEADER_BYTES: usize = 48;

/// Bytes for one serialized zone (d × two 8-byte bounds, d ≤ 8; we charge
/// the paper-default d = 4).
const ZONE_BYTES: usize = 64;

/// A stored DHT object: the provider naming scheme of §3.2.3.
///
/// `ns`/`rid` are 64-bit hashes of the application-level namespace and
/// resourceID; `iid` is the application-chosen instanceID distinguishing
/// same-key items; `key` is the routing key `hash(ns, rid)`; `expires` is
/// the soft-state deadline after which the owner discards the item.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry<V> {
    pub ns: Ns,
    pub rid: Rid,
    pub iid: u32,
    pub key: u64,
    pub expires: Time,
    pub val: V,
}

impl<V: Wire> Entry<V> {
    /// Wire bytes of the entry itself (header charged by the envelope).
    pub fn body_size(&self) -> usize {
        8 + 8 + 4 + 8 + 8 + self.val.wire_size()
    }
}

/// CAN overlay messages (routing layer of Table 1 plus maintenance).
#[derive(Clone, Debug)]
pub enum CanMsg<V> {
    /// Routed toward `p`; the owner of `p` splits its zone for `joiner`.
    JoinLocate { joiner: NodeId, p: Point, ttl: u16 },
    /// Direct reply to the joiner: its new zone, a starter neighbor set,
    /// and the stored items that fall into the transferred zone.
    JoinOffer {
        zone: Zone,
        neighbors: Vec<(NodeId, Vec<Zone>)>,
        items: Vec<Entry<V>>,
    },
    /// Sender announces its current zone list (join/leave/takeover).
    NeighborUpdate { zones: Vec<Zone> },
    /// Periodic liveness beacon carrying the sender's zones and its
    /// neighbor map (second-hop information, which gives all neighbors of
    /// a failed node a *consistent* candidate set for takeover election).
    Heartbeat {
        zones: Vec<Zone>,
        neighbors: Vec<(NodeId, Vec<Zone>)>,
    },
    /// Claimant absorbed a dead node's zones.
    Takeover { dead: NodeId, zones: Vec<Zone> },
    /// Graceful departure: hand zones and items to a neighbor, who
    /// announces itself to the leaver's old neighborhood.
    Leave {
        zones: Vec<Zone>,
        items: Vec<Entry<V>>,
        neighbors: Vec<NodeId>,
    },
    /// `lookup(key)`: routed greedily toward the key's point.
    Lookup {
        key: u64,
        token: u64,
        origin: NodeId,
        ttl: u16,
    },
    /// Content-based multicast: directed flood over rectangles.
    Mcast {
        id: u64,
        origin: NodeId,
        rect: Zone,
        payload: V,
        ttl: u16,
    },
}

/// Chord overlay messages.
#[derive(Clone, Debug)]
pub enum ChordMsg<V> {
    /// Routed via closest-preceding-finger toward `target`'s successor.
    FindSucc {
        target: u64,
        token: u64,
        origin: NodeId,
        purpose: FindPurpose,
        ttl: u16,
    },
    /// Direct reply: the successor responsible for `target`.
    FoundSucc {
        token: u64,
        target: u64,
        purpose: FindPurpose,
        succ_ring: u64,
        succ: NodeId,
    },
    /// Stabilization probe.
    GetNeighborhood,
    Neighborhood {
        pred: Option<(u64, NodeId)>,
        succs: Vec<(u64, NodeId)>,
    },
    /// "I might be your predecessor."
    Notify { ring: u64 },
    /// Finger-tree broadcast covering (sender, limit).
    Bcast {
        id: u64,
        origin: NodeId,
        payload: V,
        limit: u64,
    },
}

/// The key region an anti-entropy [`DhtMsg::RepairRequest`] asks about:
/// the requester's *current* ownership region, in the geometry of its
/// overlay. Responders return live items whose routing key falls inside.
#[derive(Clone, Debug)]
pub enum RepairScope {
    /// CAN: the requester's zone list after a takeover/absorption.
    Zones(Vec<Zone>),
    /// Chord: ring interval `(from, to]` the requester now owns
    /// (`from == to` means the whole ring, matching `in_open_closed`).
    Ring { from: u64, to: u64 },
}

impl RepairScope {
    /// Does `key` fall inside this scope? `d` is the CAN dimensionality
    /// (ignored for ring scopes).
    pub fn covers(&self, key: u64, d: usize) -> bool {
        match self {
            RepairScope::Zones(zones) => {
                let p = Point::from_key(key, d);
                zones.iter().any(|z| z.contains(p, d))
            }
            RepairScope::Ring { from, to } => {
                crate::chord::in_open_closed(*from, crate::chord::ring_of_key(key), *to)
            }
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            RepairScope::Zones(zones) => 4 + zones.len() * ZONE_BYTES,
            RepairScope::Ring { .. } => 16,
        }
    }
}

/// Why a Chord FindSucc was issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindPurpose {
    /// Provider lookup; `token` keys the pending op at the origin.
    Lookup,
    /// Joining node locating its successor.
    Join,
    /// Finger-table refresh for index `k`.
    Finger(u8),
}

/// Top-level DHT message: overlay routing plus the provider protocol
/// (lookup-then-direct `put`/`get`, §3.2.3 and footnote 6).
#[derive(Clone, Debug)]
pub enum DhtMsg<V> {
    Can(CanMsg<V>),
    Chord(ChordMsg<V>),
    /// Lookup completed: `origin`'s pending op `token` may now fire at
    /// the sender of this message (the key's owner).
    LookupReply {
        token: u64,
        key: u64,
    },
    /// Store an entry at the receiving (owner) node.
    Put {
        entry: Entry<V>,
    },
    /// Key-based retrieval at the receiving (owner) node.
    Get {
        ns: Ns,
        rid: Rid,
        token: u64,
        origin: NodeId,
    },
    GetReply {
        token: u64,
        items: Vec<Entry<V>>,
    },
    /// Bulk re-partitioning transfer (zone handoff / re-homing).
    MoveItems {
        items: Vec<Entry<V>>,
    },
    /// Replica copy fanned out by the key's primary owner (`k > 1`).
    /// Stored in the receiver's replica store; never fires `newData`.
    Replicate {
        entry: Entry<V>,
    },
    /// Anti-entropy pull after an ownership change: the sender now owns
    /// `scope` and asks a likely replica holder for live items in it.
    RepairRequest {
        scope: RepairScope,
    },
    /// Live items from the responder's primary + replica stores that
    /// fall inside the requested scope.
    RepairReply {
        items: Vec<Entry<V>>,
    },
}

impl<V: Wire> Wire for CanMsg<V> {
    fn wire_size(&self) -> usize {
        match self {
            CanMsg::JoinLocate { .. } => 4 + 32 + 2,
            CanMsg::JoinOffer {
                neighbors, items, ..
            } => {
                ZONE_BYTES
                    + neighbors
                        .iter()
                        .map(|(_, zs)| 4 + zs.len() * ZONE_BYTES)
                        .sum::<usize>()
                    + items.iter().map(Entry::body_size).sum::<usize>()
            }
            CanMsg::NeighborUpdate { zones } | CanMsg::Takeover { zones, .. } => {
                4 + zones.len() * ZONE_BYTES
            }
            CanMsg::Heartbeat { zones, neighbors } => {
                4 + zones.len() * ZONE_BYTES
                    + neighbors
                        .iter()
                        .map(|(_, zs)| 4 + zs.len() * ZONE_BYTES)
                        .sum::<usize>()
            }
            CanMsg::Leave {
                zones,
                items,
                neighbors,
            } => {
                4 + zones.len() * ZONE_BYTES
                    + items.iter().map(Entry::body_size).sum::<usize>()
                    + neighbors.len() * 4
            }
            CanMsg::Lookup { .. } => 8 + 8 + 4 + 2,
            CanMsg::Mcast { payload, .. } => 8 + 4 + ZONE_BYTES + 2 + payload.wire_size(),
        }
    }
}

impl<V: Wire> Wire for ChordMsg<V> {
    fn wire_size(&self) -> usize {
        match self {
            ChordMsg::FindSucc { .. } => 8 + 8 + 4 + 2 + 2,
            ChordMsg::FoundSucc { .. } => 8 + 8 + 2 + 8 + 4,
            ChordMsg::GetNeighborhood => 4,
            ChordMsg::Neighborhood { succs, .. } => 12 + succs.len() * 12,
            ChordMsg::Notify { .. } => 8,
            ChordMsg::Bcast { payload, .. } => 8 + 4 + 8 + payload.wire_size(),
        }
    }
}

impl<V: Wire> Wire for DhtMsg<V> {
    fn wire_size(&self) -> usize {
        HEADER_BYTES
            + match self {
                DhtMsg::Can(m) => m.wire_size(),
                DhtMsg::Chord(m) => m.wire_size(),
                DhtMsg::LookupReply { .. } => 16,
                DhtMsg::Put { entry } => entry.body_size(),
                DhtMsg::Get { .. } => 8 + 8 + 8 + 4,
                DhtMsg::GetReply { items, .. } => {
                    8 + items.iter().map(Entry::body_size).sum::<usize>()
                }
                DhtMsg::MoveItems { items } => items.iter().map(Entry::body_size).sum::<usize>(),
                DhtMsg::Replicate { entry } => entry.body_size(),
                DhtMsg::RepairRequest { scope } => scope.wire_size(),
                DhtMsg::RepairReply { items } => items.iter().map(Entry::body_size).sum::<usize>(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(val_size: usize) -> Entry<Vec<u8>> {
        Entry {
            ns: 1,
            rid: 2,
            iid: 3,
            key: 4,
            expires: Time::ZERO,
            val: vec![0u8; val_size],
        }
    }

    #[test]
    fn payload_bytes_dominate_data_messages() {
        let small: DhtMsg<Vec<u8>> = DhtMsg::Put { entry: entry(0) };
        let big: DhtMsg<Vec<u8>> = DhtMsg::Put { entry: entry(1024) };
        assert_eq!(big.wire_size() - small.wire_size(), 1024);
        assert!(small.wire_size() >= HEADER_BYTES);
    }

    #[test]
    fn lookup_is_small_relative_to_data() {
        let lookup: DhtMsg<Vec<u8>> = DhtMsg::Can(CanMsg::Lookup {
            key: 1,
            token: 2,
            origin: 0,
            ttl: 64,
        });
        assert!(lookup.wire_size() < 100);
        let put: DhtMsg<Vec<u8>> = DhtMsg::Put { entry: entry(1024) };
        assert!(put.wire_size() > 10 * lookup.wire_size());
    }

    #[test]
    fn mcast_carries_payload_size() {
        let m: DhtMsg<Vec<u8>> = DhtMsg::Can(CanMsg::Mcast {
            id: 1,
            origin: 0,
            rect: Zone::whole(4),
            payload: vec![0; 200],
            ttl: 32,
        });
        assert!(m.wire_size() >= HEADER_BYTES + 200);
    }
}

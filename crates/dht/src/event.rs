//! Events surfaced by the DHT to the layer above (the query processor).
//!
//! These correspond to the asynchronous callbacks of the paper's APIs:
//! `lookup`'s completion, `newData`, `locationMapChange` (Tables 1 and 3),
//! plus multicast delivery.

use crate::msg::Entry;
use pier_simnet::NodeId;

/// An upcall from the DHT layer.
#[derive(Clone, Debug)]
pub enum DhtEvent<V> {
    /// This node completed its overlay join.
    Joined,
    /// The set of keys mapped to this node changed (Table 1's
    /// `locationMapChange` callback).
    LocationMapChanged,
    /// A new item arrived in a local partition (Table 3's `newData`);
    /// renewals of existing instances do not re-fire.
    NewData { entry: Entry<V> },
    /// Completion of an asynchronous `get`; `token` is caller-chosen.
    GetResult { token: u64, items: Vec<Entry<V>> },
    /// A multicast payload reached this node.
    Multicast { origin: NodeId, payload: V },
}

//! The provider: the glue between routing layer and storage manager
//! (§3.2.3), offering `put`/`get`/`renew`/`multicast`/`lscan`/`newData`.
//!
//! DHT operations follow the paper's footnote 6: a `lookup` locates the
//! owner, then the (possibly large) data message travels *directly* to
//! it rather than hopping along the overlay — "the bandwidth savings of
//! not having a large message hop along the overlay network outweighs the
//! small chance" of a stale lookup, which is healed by retry/re-homing.

use std::collections::BTreeMap;

use pier_simnet::time::Time;
use pier_simnet::{NodeId, Wire};

use crate::can::CanState;
use crate::chord::{ring_of_key, ChordState};
use crate::env::{send_metered, DhtEnv};
use crate::event::DhtEvent;
use crate::geom::{Point, Zone};
use crate::msg::{CanMsg, ChordMsg, DhtMsg, Entry, FindPurpose, RepairScope};
use crate::storage::StorageManager;
use crate::traffic::TrafficMeter;
use crate::{key_of, DhtConfig, Ns, OverlayKind, Rid, DHT_TICK_TOKEN, ROUTE_TTL};

/// The routing layer in use on this node.
#[derive(Debug, Clone)]
pub enum Overlay {
    Can(CanState),
    Chord(ChordState),
}

enum Pending<V> {
    Put(Entry<V>),
    Get { ns: Ns, rid: Rid, user_token: u64 },
}

struct PendingOp<V> {
    key: u64,
    issued: Time,
    retries: u32,
    op: Pending<V>,
}

/// One node's complete DHT stack: overlay + storage manager + provider.
pub struct Dht<V> {
    pub cfg: DhtConfig,
    pub overlay: Overlay,
    pub store: StorageManager<V>,
    /// Standby copies of items whose primary is elsewhere (k ≥ 2).
    /// Kept apart from the primary [`Self::store`] so probes and
    /// `lscan` never see the same logical item twice; read only by `get`
    /// fall-through and anti-entropy repair. Always empty at k = 1.
    pub replicas: StorageManager<V>,
    pub meter: TrafficMeter,
    me: NodeId,
    pending: BTreeMap<u64, PendingOp<V>>,
    awaiting_get: BTreeMap<u64, u64>,
    next_token: u64,
    seen_mcast: BTreeMap<u64, Time>,
    bootstrap: Option<NodeId>,
    join_sent: Time,
    tick_count: u64,
    /// Last anti-entropy pull, for rate limiting repair bursts.
    last_repair: Time,
}

impl<V: Wire + Clone> Dht<V> {
    pub fn new(cfg: DhtConfig, me: NodeId) -> Self {
        let overlay = match cfg.overlay {
            OverlayKind::Can => Overlay::Can(CanState::new(cfg.dims, me)),
            OverlayKind::Chord => Overlay::Chord(ChordState::new(me)),
        };
        Dht {
            cfg,
            overlay,
            store: StorageManager::new(),
            replicas: StorageManager::new(),
            meter: TrafficMeter::default(),
            me,
            pending: BTreeMap::new(),
            awaiting_get: BTreeMap::new(),
            next_token: 1,
            seen_mcast: BTreeMap::new(),
            bootstrap: None,
            join_sent: Time::ZERO,
            tick_count: 0,
            last_repair: Time::ZERO,
        }
    }

    /// Construct a node with a pre-stabilized CAN state (balanced
    /// bootstrap for large experiments).
    pub fn with_can(cfg: DhtConfig, me: NodeId, can: CanState) -> Self {
        let mut d = Self::new(cfg, me);
        d.overlay = Overlay::Can(can);
        d
    }

    /// Construct a node with a pre-stabilized Chord state.
    pub fn with_chord(cfg: DhtConfig, me: NodeId, chord: ChordState) -> Self {
        let mut d = Self::new(cfg, me);
        d.overlay = Overlay::Chord(chord);
        d
    }

    pub fn me(&self) -> NodeId {
        self.me
    }

    pub fn is_joined(&self) -> bool {
        match &self.overlay {
            Overlay::Can(c) => c.joined,
            Overlay::Chord(c) => c.joined,
        }
    }

    pub fn can(&self) -> Option<&CanState> {
        match &self.overlay {
            Overlay::Can(c) => Some(c),
            _ => None,
        }
    }

    pub fn chord(&self) -> Option<&ChordState> {
        match &self.overlay {
            Overlay::Chord(c) => Some(c),
            _ => None,
        }
    }

    /// Start the node: create a new overlay (`bootstrap = None`) or join
    /// an existing one via any member node (Table 1's `join(landmark)`).
    pub fn start(&mut self, env: &mut dyn DhtEnv<V>, bootstrap: Option<NodeId>) {
        self.bootstrap = bootstrap;
        match bootstrap {
            None => match &mut self.overlay {
                Overlay::Can(c) => c.start_first(),
                Overlay::Chord(c) => c.start_first(),
            },
            Some(b) => {
                self.join_sent = env.now();
                match &mut self.overlay {
                    Overlay::Can(c) => c.start_join(env, &mut self.meter, b),
                    Overlay::Chord(c) => c.start_join(env, &mut self.meter, b),
                }
            }
        }
        env.timer(self.cfg.tick, DHT_TICK_TOKEN);
    }

    /// Does this node currently own `key`?
    pub fn owns_key(&self, key: u64) -> bool {
        match &self.overlay {
            Overlay::Can(c) => c.owns_point(Point::from_key(key, c.d)),
            Overlay::Chord(c) => c.owns_pos(ring_of_key(key)),
        }
    }

    /// Provider `put` (Table 3): store `val` under (ns, rid, iid) with a
    /// soft-state `lifetime`. Local fast path when we own the key.
    #[allow(clippy::too_many_arguments)] // Table 3 signature: (ns, rid, iid, item, lifetime)
    pub fn put(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        ns: Ns,
        rid: Rid,
        iid: u32,
        val: V,
        lifetime: pier_simnet::time::Dur,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let key = key_of(ns, rid);
        let entry = Entry {
            ns,
            rid,
            iid,
            key,
            expires: env.now() + lifetime,
            val,
        };
        if self.owns_key(key) {
            self.store_entry(env, entry, events);
        } else {
            self.lookup(env, key, Pending::Put(entry), events);
        }
    }

    /// Provider `renew` (Table 3): identical mechanics to `put` — an
    /// existing (ns, rid, iid) has its value replaced and its lifetime
    /// extended without re-firing `newData`.
    #[allow(clippy::too_many_arguments)] // Table 3 signature, mirroring `put`
    pub fn renew(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        ns: Ns,
        rid: Rid,
        iid: u32,
        val: V,
        lifetime: pier_simnet::time::Dur,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        self.put(env, ns, rid, iid, val, lifetime, events);
    }

    /// Provider `get` (Table 3): asynchronous unless the key is local, in
    /// which case the result event is emitted synchronously (footnote 3).
    pub fn get(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        ns: Ns,
        rid: Rid,
        user_token: u64,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let key = key_of(ns, rid);
        if self.owns_key(key) {
            let items = self.live_items(ns, rid, env.now());
            events.push(DhtEvent::GetResult {
                token: user_token,
                items,
            });
        } else {
            self.lookup(
                env,
                key,
                Pending::Get {
                    ns,
                    rid,
                    user_token,
                },
                events,
            );
        }
    }

    /// Provider `lscan` (Table 3): iterate locally stored items of `ns`.
    pub fn lscan(&self, ns: Ns) -> impl Iterator<Item = &Entry<V>> {
        self.store.lscan(ns)
    }

    /// Multicast `payload` to every node (Table 3's `multicast`,
    /// implementing the content-based multicast of the paper's \[18\]).
    pub fn multicast(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        payload: V,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let id = env.rand64();
        let can_rect = match &self.overlay {
            Overlay::Can(c) => Some(Zone::whole(c.d)),
            Overlay::Chord(_) => None,
        };
        if let Some(rect) = can_rect {
            // Route the whole-space rectangle like any other fragment: the
            // initiator rarely owns the center of the space, and its own
            // delivery arrives when the flood reaches its zone.
            self.route_can_mcast(
                env,
                CanMsg::Mcast {
                    id,
                    origin: self.me,
                    rect,
                    payload,
                    ttl: ROUTE_TTL,
                },
                events,
            );
            return;
        }
        let children = match &self.overlay {
            Overlay::Chord(c) => c.broadcast_children(c.ring),
            Overlay::Can(_) => unreachable!(),
        };
        self.deliver_mcast(env.now(), id, self.me, &payload, events);
        for (child, limit) in children {
            send_metered(
                env,
                &mut self.meter,
                child,
                DhtMsg::Chord(ChordMsg::Bcast {
                    id,
                    origin: self.me,
                    payload: payload.clone(),
                    limit,
                }),
            );
        }
    }

    /// Graceful departure (Table 1's `leave()`).
    pub fn leave(&mut self, env: &mut dyn DhtEnv<V>) {
        if let Overlay::Can(c) = &mut self.overlay {
            c.leave(env, &mut self.meter, &mut self.store);
        }
        // Chord leave: soft state ages out; successors stabilize around us.
    }

    /// Live items for a `get`: the primary store, plus — under k > 1 —
    /// any replica copies of instances the primary store is missing.
    /// The replica fall-through is what answers reads during the window
    /// between a takeover and the completion of anti-entropy repair;
    /// dedup by instanceID keeps the reply a set, never a multiset.
    fn live_items(&self, ns: Ns, rid: Rid, now: Time) -> Vec<Entry<V>> {
        let mut items: Vec<Entry<V>> = self
            .store
            .get(ns, rid)
            .iter()
            .filter(|e| e.expires > now)
            .cloned()
            .collect();
        if self.cfg.replication > 1 {
            for e in self.replicas.get(ns, rid) {
                if e.expires > now && !items.iter().any(|x| x.iid == e.iid) {
                    items.push(e.clone());
                }
            }
        }
        items
    }

    fn store_entry(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        entry: Entry<V>,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let is_new = self.store.store(entry.clone());
        if is_new {
            events.push(DhtEvent::NewData {
                entry: entry.clone(),
            });
        }
        self.replicate(env, entry);
    }

    /// Fan a primary-stored entry out to the replica set (k - 1 peers).
    /// Runs on stores *and* renewals, so replica expiries track the
    /// primary's and copies at ex-replica peers simply age out.
    fn replicate(&mut self, env: &mut dyn DhtEnv<V>, entry: Entry<V>) {
        if self.cfg.replication <= 1 {
            return;
        }
        for peer in self.replica_targets() {
            send_metered(
                env,
                &mut self.meter,
                peer,
                DhtMsg::Replicate {
                    entry: entry.clone(),
                },
            );
        }
    }

    /// The peers holding this node's replica copies, by the overlay's
    /// placement rule (CAN: lowest-id neighbors; Chord: successor list).
    fn replica_targets(&self) -> Vec<NodeId> {
        let extra = self.cfg.replication.saturating_sub(1);
        if extra == 0 {
            return Vec::new();
        }
        match &self.overlay {
            Overlay::Can(c) => c.replica_peers(extra),
            Overlay::Chord(c) => c.replica_peers(extra),
        }
    }

    /// Issue a routing-layer lookup, remembering the op to run on reply.
    fn lookup(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        key: u64,
        op: Pending<V>,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(
            token,
            PendingOp {
                key,
                issued: env.now(),
                retries: 0,
                op,
            },
        );
        self.send_lookup(env, key, token, events);
    }

    fn send_lookup(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        key: u64,
        token: u64,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        enum Step {
            SendCan(NodeId),
            Resolved(NodeId),
            SendChord(NodeId, u64),
            Stuck,
        }
        let step = match &self.overlay {
            Overlay::Can(c) => {
                let p = Point::from_key(key, c.d);
                match c.next_hop(p) {
                    Some(next) => Step::SendCan(next),
                    // No neighbors: single-node overlay; retried on tick.
                    None => Step::Stuck,
                }
            }
            Overlay::Chord(c) => {
                let pos = ring_of_key(key);
                match c.find_succ_step(pos) {
                    Ok((_, owner)) => Step::Resolved(owner),
                    Err(next) => Step::SendChord(next, pos),
                }
            }
        };
        match step {
            Step::SendCan(next) => send_metered(
                env,
                &mut self.meter,
                next,
                DhtMsg::Can(CanMsg::Lookup {
                    key,
                    token,
                    origin: self.me,
                    ttl: ROUTE_TTL,
                }),
            ),
            Step::Resolved(owner) => self.resolve_lookup(env, token, owner, events),
            Step::SendChord(next, pos) => send_metered(
                env,
                &mut self.meter,
                next,
                DhtMsg::Chord(ChordMsg::FindSucc {
                    target: pos,
                    token,
                    origin: self.me,
                    purpose: FindPurpose::Lookup,
                    ttl: ROUTE_TTL,
                }),
            ),
            Step::Stuck => {}
        }
    }

    /// The owner of a pending op's key is known: ship the op to it.
    fn resolve_lookup(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        token: u64,
        owner: NodeId,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let Some(p) = self.pending.remove(&token) else {
            return; // duplicate or expired reply
        };
        match p.op {
            Pending::Put(entry) => {
                if owner == self.me {
                    self.store_entry(env, entry, events);
                } else {
                    send_metered(env, &mut self.meter, owner, DhtMsg::Put { entry });
                }
            }
            Pending::Get {
                ns,
                rid,
                user_token,
            } => {
                if owner == self.me {
                    let items = self.live_items(ns, rid, env.now());
                    events.push(DhtEvent::GetResult {
                        token: user_token,
                        items,
                    });
                } else {
                    self.awaiting_get.insert(token, user_token);
                    send_metered(
                        env,
                        &mut self.meter,
                        owner,
                        DhtMsg::Get {
                            ns,
                            rid,
                            token,
                            origin: self.me,
                        },
                    );
                }
            }
        }
    }

    fn deliver_mcast(
        &mut self,
        now: Time,
        id: u64,
        origin: NodeId,
        payload: &V,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        if self.seen_mcast.insert(id, now).is_none() {
            events.push(DhtEvent::Multicast {
                origin,
                payload: payload.clone(),
            });
        }
    }

    /// Handle a multicast rectangle we own the center of: deliver, then
    /// recurse into the uncovered sub-rectangles (directed flood).
    #[allow(clippy::too_many_arguments)]
    fn process_can_mcast(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        id: u64,
        origin: NodeId,
        rect: Zone,
        payload: V,
        ttl: u16,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        self.deliver_mcast(env.now(), id, origin, &payload, events);
        let Overlay::Can(c) = &self.overlay else {
            return;
        };
        let d = c.d;
        let center = rect.center(d);
        let Some(zone) = c.zones.iter().find(|z| z.contains(center, d)).copied() else {
            return; // routing raced a zone change; retried by sender's TTL
        };
        let Some(covered) = zone.intersection(&rect, d) else {
            return;
        };
        let subs = rect.subtract(&covered, d);
        if ttl == 0 {
            return;
        }
        for sub in subs {
            self.route_can_mcast(
                env,
                CanMsg::Mcast {
                    id,
                    origin,
                    rect: sub,
                    payload: payload.clone(),
                    ttl: ttl - 1,
                },
                events,
            );
        }
    }

    /// Route a CAN mcast fragment toward its rectangle's center; handle
    /// locally if we own it.
    fn route_can_mcast(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        msg: CanMsg<V>,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let CanMsg::Mcast {
            id,
            origin,
            rect,
            payload,
            ttl,
        } = msg
        else {
            unreachable!()
        };
        let Overlay::Can(c) = &self.overlay else {
            return;
        };
        let center = rect.center(c.d);
        if c.owns_point(center) {
            self.process_can_mcast(env, id, origin, rect, payload, ttl, events);
        } else if let Some(next) = c.next_hop(center) {
            send_metered(
                env,
                &mut self.meter,
                next,
                DhtMsg::Can(CanMsg::Mcast {
                    id,
                    origin,
                    rect,
                    payload,
                    ttl,
                }),
            );
        }
    }

    /// Main message dispatcher.
    pub fn handle_message(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        from: NodeId,
        msg: DhtMsg<V>,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let before = events.len();
        match msg {
            DhtMsg::Can(m) => self.handle_can(env, from, m, events),
            DhtMsg::Chord(m) => self.handle_chord(env, from, m, events),
            DhtMsg::LookupReply { token, .. } => {
                self.resolve_lookup(env, token, from, events);
            }
            DhtMsg::Put { entry } => {
                self.store_entry(env, entry, events);
            }
            DhtMsg::Get {
                ns,
                rid,
                token,
                origin,
            } => {
                let items = self.live_items(ns, rid, env.now());
                send_metered(
                    env,
                    &mut self.meter,
                    origin,
                    DhtMsg::GetReply { token, items },
                );
            }
            DhtMsg::GetReply { token, items } => {
                if let Some(user_token) = self.awaiting_get.remove(&token) {
                    events.push(DhtEvent::GetResult {
                        token: user_token,
                        items,
                    });
                }
            }
            DhtMsg::MoveItems { items } => {
                for entry in items {
                    // Re-homed items were announced at their prior home;
                    // still fire newData if the instance is new here, so
                    // probes that raced the move are not lost.
                    self.store_entry(env, entry, events);
                }
            }
            DhtMsg::Replicate { entry } => {
                if self.cfg.replication > 1 {
                    // Standby copy: no newData, no onward fan-out, and a
                    // late duplicate must not shorten a fresher copy.
                    self.replicas.store_no_regress(entry);
                }
            }
            DhtMsg::RepairRequest { scope } => {
                let now = env.now();
                let d = self.cfg.dims;
                let mut seen = std::collections::HashSet::new();
                let items: Vec<Entry<V>> = self
                    .store
                    .iter_all()
                    .chain(self.replicas.iter_all())
                    .filter(|e| e.expires > now && scope.covers(e.key, d))
                    .filter(|e| seen.insert((e.ns, e.rid, e.iid)))
                    .cloned()
                    .collect();
                if !items.is_empty() {
                    send_metered(env, &mut self.meter, from, DhtMsg::RepairReply { items });
                }
            }
            DhtMsg::RepairReply { items } => {
                let now = env.now();
                for entry in items {
                    // Only adopt items we own *now* — the responder
                    // answered against our advertised scope, but routing
                    // may have shifted again while the reply was in
                    // flight, and a stale copy must not regress a renewal
                    // that already reached us directly.
                    if entry.expires > now && self.owns_key(entry.key) {
                        match self.store.store_no_regress(entry.clone()) {
                            Some(true) => {
                                events.push(DhtEvent::NewData {
                                    entry: entry.clone(),
                                });
                                self.replicate(env, entry);
                            }
                            Some(false) => self.replicate(env, entry),
                            None => {}
                        }
                    }
                }
            }
        }
        self.maybe_repair(env, before, events);
    }

    fn handle_can(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        from: NodeId,
        msg: CanMsg<V>,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let Overlay::Can(c) = &mut self.overlay else {
            return;
        };
        match msg {
            CanMsg::JoinLocate { joiner, p, ttl } => {
                if c.owns_point(p) {
                    c.handle_join_locate(env, &mut self.meter, &mut self.store, joiner, p, events);
                } else if ttl > 0 {
                    if let Some(next) = c.next_hop(p) {
                        send_metered(
                            env,
                            &mut self.meter,
                            next,
                            DhtMsg::Can(CanMsg::JoinLocate {
                                joiner,
                                p,
                                ttl: ttl - 1,
                            }),
                        );
                    }
                }
            }
            CanMsg::JoinOffer {
                zone,
                neighbors,
                items,
            } => {
                c.handle_join_offer(
                    env,
                    &mut self.meter,
                    &mut self.store,
                    zone,
                    neighbors,
                    items,
                    events,
                );
            }
            CanMsg::NeighborUpdate { zones } => {
                c.handle_neighbor_update(env.now(), from, zones);
            }
            CanMsg::Heartbeat { zones, neighbors } => {
                c.handle_heartbeat(env.now(), from, zones, neighbors);
            }
            CanMsg::Takeover { dead, zones } => {
                c.handle_takeover(env.now(), from, dead, zones, events);
            }
            CanMsg::Leave {
                zones,
                items,
                neighbors,
            } => {
                c.handle_leave(
                    env,
                    &mut self.meter,
                    &mut self.store,
                    from,
                    zones,
                    items,
                    neighbors,
                    events,
                );
            }
            CanMsg::Lookup {
                key,
                token,
                origin,
                ttl,
            } => {
                let p = Point::from_key(key, c.d);
                if c.owns_point(p) {
                    send_metered(
                        env,
                        &mut self.meter,
                        origin,
                        DhtMsg::LookupReply { token, key },
                    );
                } else if ttl > 0 {
                    if let Some(next) = c.next_hop(p) {
                        send_metered(
                            env,
                            &mut self.meter,
                            next,
                            DhtMsg::Can(CanMsg::Lookup {
                                key,
                                token,
                                origin,
                                ttl: ttl - 1,
                            }),
                        );
                    }
                }
            }
            CanMsg::Mcast {
                id,
                origin,
                rect,
                payload,
                ttl,
            } => {
                self.route_can_mcast(
                    env,
                    CanMsg::Mcast {
                        id,
                        origin,
                        rect,
                        payload,
                        ttl,
                    },
                    events,
                );
            }
        }
    }

    fn handle_chord(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        from: NodeId,
        msg: ChordMsg<V>,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let Overlay::Chord(c) = &mut self.overlay else {
            return;
        };
        match msg {
            ChordMsg::FindSucc {
                target,
                token,
                origin,
                purpose,
                ttl,
            } => match c.find_succ_step(target) {
                Ok((succ_ring, succ)) => {
                    send_metered(
                        env,
                        &mut self.meter,
                        origin,
                        DhtMsg::Chord(ChordMsg::FoundSucc {
                            token,
                            target,
                            purpose,
                            succ_ring,
                            succ,
                        }),
                    );
                }
                Err(next) => {
                    if ttl > 0 {
                        send_metered(
                            env,
                            &mut self.meter,
                            next,
                            DhtMsg::Chord(ChordMsg::FindSucc {
                                target,
                                token,
                                origin,
                                purpose,
                                ttl: ttl - 1,
                            }),
                        );
                    }
                }
            },
            ChordMsg::FoundSucc {
                token,
                target,
                purpose,
                succ_ring,
                succ,
            } => match purpose {
                FindPurpose::Join => {
                    c.complete_join(env, &mut self.meter, succ_ring, succ, events);
                }
                FindPurpose::Finger(k) => {
                    let _ = target;
                    c.set_finger(k as usize, succ_ring, succ);
                }
                FindPurpose::Lookup => {
                    self.resolve_lookup(env, token, succ, events);
                }
            },
            ChordMsg::GetNeighborhood => {
                let reply = ChordMsg::Neighborhood {
                    pred: c.predecessor,
                    succs: c.successors.clone(),
                };
                send_metered(env, &mut self.meter, from, DhtMsg::Chord(reply));
            }
            ChordMsg::Neighborhood { pred, succs } => {
                c.handle_neighborhood(env, &mut self.meter, from, pred, succs);
            }
            ChordMsg::Notify { ring } => {
                c.handle_notify(env.now(), from, ring, events);
            }
            ChordMsg::Bcast {
                id,
                origin,
                payload,
                limit,
            } => {
                let children = c.broadcast_children(limit);
                self.deliver_mcast(env.now(), id, origin, &payload, events);
                for (child, child_limit) in children {
                    send_metered(
                        env,
                        &mut self.meter,
                        child,
                        DhtMsg::Chord(ChordMsg::Bcast {
                            id,
                            origin,
                            payload: payload.clone(),
                            limit: child_limit,
                        }),
                    );
                }
            }
        }
    }

    /// Handle a host timer. Returns `true` if the token belonged to the
    /// DHT layer.
    pub fn handle_timer(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        token: u64,
        events: &mut Vec<DhtEvent<V>>,
    ) -> bool {
        if token != DHT_TICK_TOKEN {
            return false;
        }
        let before = events.len();
        self.tick(env, events);
        self.maybe_repair(env, before, events);
        env.timer(self.cfg.tick, DHT_TICK_TOKEN);
        true
    }

    /// Anti-entropy: if the dispatch that just ran changed this node's
    /// ownership region (takeover claim, zone absorption, predecessor
    /// loss, successor promotion — all signalled by
    /// [`DhtEvent::LocationMapChanged`]), promote matching local replica
    /// copies to primary and pull the rest of the newly owned region
    /// from the likely replica holders. This is how rehash/stage/mini
    /// soft state heals without waiting for the next renewal round.
    fn maybe_repair(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        before: usize,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        if self.cfg.replication <= 1 {
            return;
        }
        if !events[before..]
            .iter()
            .any(|e| matches!(e, DhtEvent::LocationMapChanged))
        {
            return;
        }
        let now = env.now();
        if self.last_repair != Time::ZERO && now.since(self.last_repair) < self.cfg.tick {
            return;
        }
        self.last_repair = now;
        self.promote_replicas(env, events);
        self.reseed_replicas(env);
        let scope = match &self.overlay {
            Overlay::Can(c) => RepairScope::Zones(c.zones.clone()),
            Overlay::Chord(c) => {
                let (from, to) = c.owned_interval();
                RepairScope::Ring { from, to }
            }
        };
        for peer in self.repair_peers() {
            send_metered(
                env,
                &mut self.meter,
                peer,
                DhtMsg::RepairRequest {
                    scope: scope.clone(),
                },
            );
        }
    }

    /// Move replica-held items whose key this node now owns into the
    /// primary store (firing `newData` for instances new here — the
    /// self-serve half of repair: under the successor/neighbor placement
    /// rule, the node absorbing a dead peer's region usually *is* one of
    /// its replicas).
    fn promote_replicas(&mut self, env: &mut dyn DhtEnv<V>, events: &mut Vec<DhtEvent<V>>) {
        let now = env.now();
        let owned: std::collections::HashSet<u64> = self
            .replicas
            .iter_all()
            .map(|e| e.key)
            .filter(|&k| self.owns_key(k))
            .collect();
        if owned.is_empty() {
            return;
        }
        let promoted = self.replicas.extract_not_owned(|k| !owned.contains(&k));
        for entry in promoted {
            if entry.expires > now {
                if self.store.store_no_regress(entry.clone()) == Some(true) {
                    events.push(DhtEvent::NewData {
                        entry: entry.clone(),
                    });
                }
                self.replicate(env, entry);
            }
        }
    }

    /// Re-push every live primary entry to the *current* replica set.
    /// The neighborhood just changed, and a dead peer may have been this
    /// node's only replica holder: items published once with no renewal
    /// loop would otherwise sit at one copy until they expire, losing
    /// the k-durability guarantee on the next failure. Copies left at
    /// ex-replicas are harmless — they age out with the entry's own
    /// lifetime and serve as extra repair sources meanwhile.
    fn reseed_replicas(&mut self, env: &mut dyn DhtEnv<V>) {
        let now = env.now();
        let live: Vec<Entry<V>> = self
            .store
            .iter_all()
            .filter(|e| e.expires > now)
            .cloned()
            .collect();
        for entry in live {
            self.replicate(env, entry);
        }
    }

    /// The peers this node asks for repair data: every CAN neighbor, or
    /// the Chord successor list plus predecessor — the union of all
    /// placement targets whose primaries could have replicated into the
    /// region we now own.
    fn repair_peers(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = match &self.overlay {
            Overlay::Can(c) => c.neighbors.keys().copied().collect(),
            Overlay::Chord(c) => {
                let mut v: Vec<NodeId> = c.successors.iter().map(|&(_, id)| id).collect();
                if let Some((_, p)) = c.predecessor {
                    v.push(p);
                }
                v
            }
        };
        ids.sort_unstable();
        ids.dedup();
        ids.retain(|&id| id != self.me);
        ids
    }

    /// Periodic work: overlay maintenance, soft-state expiry, lookup
    /// retries, re-homing, join retry.
    fn tick(&mut self, env: &mut dyn DhtEnv<V>, events: &mut Vec<DhtEvent<V>>) {
        self.tick_count += 1;
        let now = env.now();
        match &mut self.overlay {
            Overlay::Can(c) => c.tick(env, &mut self.meter, &self.cfg, events),
            Overlay::Chord(c) => c.tick(env, &mut self.meter, &self.cfg, events),
        }
        self.store.sweep_expired(now);
        if self.cfg.replication > 1 {
            // Replica copies age out exactly like primaries: a replica
            // whose primary stopped renewing (or re-targeted its fan-out
            // after a neighborhood change) is stale soft state.
            self.replicas.sweep_expired(now);
        }

        // Retry join if the offer never arrived.
        if !self.is_joined() {
            if let Some(b) = self.bootstrap {
                if now.since(self.join_sent) > self.cfg.lookup_retry {
                    self.join_sent = now;
                    match &mut self.overlay {
                        Overlay::Can(c) => c.start_join(env, &mut self.meter, b),
                        Overlay::Chord(c) => c.start_join(env, &mut self.meter, b),
                    }
                }
            }
        }

        // Retry stale lookups with exponential backoff: under congestion
        // a reply may sit minutes deep in an inbound queue, and dropping
        // the op would lose data. Abandon only after ~10 minutes.
        let stale: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| {
                let backoff = self
                    .cfg
                    .lookup_retry
                    .saturating_mul(1u64 << p.retries.min(5));
                now.since(p.issued) > backoff
            })
            .map(|(&t, _)| t)
            .collect();
        for token in stale {
            let (key, give_up) = {
                let p = self.pending.get_mut(&token).unwrap();
                p.retries += 1;
                p.issued = now;
                (p.key, p.retries > 12)
            };
            if give_up {
                self.pending.remove(&token);
                self.awaiting_get.remove(&token);
            } else if self.owns_key(key) {
                // Ownership shifted to us while the lookup was in flight.
                self.resolve_lookup(env, token, self.me, events);
            } else {
                self.send_lookup(env, key, token, events);
            }
        }

        // Drop old multicast dedup records.
        let horizon = pier_simnet::time::Dur::from_secs(120);
        self.seen_mcast.retain(|_, t| now.since(*t) < horizon);

        // Re-home items we no longer own (every few ticks): the
        // self-healing that follows overlay churn.
        if self.cfg.rehome && self.is_joined() && self.tick_count.is_multiple_of(4) {
            let not_mine: std::collections::HashSet<u64> = self
                .store
                .iter_all()
                .filter(|e| !self.owns_key(e.key))
                .map(|e| e.key)
                .collect();
            if !not_mine.is_empty() {
                let moved = self.store.extract_not_owned(|k| !not_mine.contains(&k));
                for entry in moved {
                    let key = entry.key;
                    self.lookup(env, key, Pending::Put(entry), events);
                }
            }
        }
    }

    /// Number of distinct in-flight lookups (for tests/diagnostics).
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }
}
